"""Tests for round-robin and fixed-priority arbiters."""

import pytest

from repro.arbiters.base import SimpleRequest
from repro.arbiters.round_robin import (
    FixedPriorityArbiter,
    RoundRobinArbiter,
    rr_order,
)

REQ = SimpleRequest()


class TestRrOrder:
    def test_descending_from_pointer(self):
        assert rr_order(2, 4) == [1, 0, 3, 2]

    def test_pointer_zero(self):
        assert rr_order(0, 4) == [3, 2, 1, 0]

    def test_covers_all_inputs(self):
        for pointer in range(5):
            assert sorted(rr_order(pointer, 5)) == list(range(5))


class TestRoundRobinArbiter:
    def test_no_requests(self):
        arb = RoundRobinArbiter(3)
        assert arb.arbitrate([None, None, None]) is None

    def test_single_requester_always_wins(self):
        arb = RoundRobinArbiter(3)
        for _ in range(5):
            assert arb.arbitrate([None, REQ, None]) == 1

    def test_cycles_through_requesters(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.arbitrate([REQ, REQ, REQ]) for _ in range(6)]
        # Every input granted exactly twice over two full cycles.
        assert sorted(grants) == [0, 0, 1, 1, 2, 2]

    def test_no_back_to_back_grants_under_contention(self):
        arb = RoundRobinArbiter(4)
        previous = None
        for _ in range(20):
            granted = arb.arbitrate([REQ] * 4)
            assert granted != previous
            previous = granted

    def test_equal_shares_when_saturated(self):
        arb = RoundRobinArbiter(4)
        for _ in range(400):
            arb.arbitrate([REQ] * 4)
        assert arb.grants == [100] * 4

    def test_validates_length(self):
        arb = RoundRobinArbiter(2)
        with pytest.raises(ValueError):
            arb.arbitrate([REQ])

    def test_at_least_one_input(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    def test_reset_history(self):
        arb = RoundRobinArbiter(2)
        arb.arbitrate([REQ, REQ])
        arb.reset_history()
        assert arb.grants == [0, 0]


class TestFixedPriorityArbiter:
    def test_highest_index_wins(self):
        arb = FixedPriorityArbiter(4)
        assert arb.arbitrate([REQ, REQ, None, REQ]) == 3

    def test_falls_through(self):
        arb = FixedPriorityArbiter(4)
        assert arb.arbitrate([REQ, None, None, None]) == 0

    def test_starves_low_inputs(self):
        arb = FixedPriorityArbiter(2)
        for _ in range(10):
            arb.arbitrate([REQ, REQ])
        assert arb.grants == [0, 10]
