"""Tests for inverse-weight computation (Section 3.3)."""

import pytest

from repro.arbiters.weights import (
    WeightTable,
    choose_beta,
    compute_inverse_weights,
    nint,
    uniform_weight_table,
)


class TestNint:
    def test_rounds_to_nearest(self):
        assert nint(2.4) == 2
        assert nint(2.6) == 3

    def test_halves_away_from_zero(self):
        assert nint(2.5) == 3
        assert nint(-2.5) == -3

    def test_integers_unchanged(self):
        assert nint(7.0) == 7


class TestChooseBeta:
    def test_all_weights_fit(self):
        loads = [[0.1], [1.0], [3.0]]
        beta = choose_beta(loads, weight_bits=5)
        for row in loads:
            assert nint(beta / row[0]) < 32

    def test_zero_loads(self):
        assert choose_beta([[0.0], [0.0]], weight_bits=5) == 1.0

    def test_insignificant_load_does_not_anchor(self):
        # A stray 0.1% load must not compress the meaningful ratios.
        loads = [[3.0], [4.5], [0.004]]
        table = compute_inverse_weights(loads, weight_bits=5)
        w3, w45, w_tiny = (table.inverse_weights[i][0] for i in range(3))
        # The 3.0 vs 4.5 ratio survives quantization...
        assert w3 / w45 == pytest.approx(1.5, rel=0.25)
        assert w3 > 1
        # ...and the negligible input saturates at the maximum weight.
        assert w_tiny == 31

    def test_bad_weight_bits(self):
        with pytest.raises(ValueError):
            choose_beta([[1.0]], weight_bits=0)


class TestComputeInverseWeights:
    def test_ratio_preserved(self):
        table = compute_inverse_weights([[2.0], [1.0]], weight_bits=5)
        w_heavy = table.inverse_weights[0][0]
        w_light = table.inverse_weights[1][0]
        assert w_light == pytest.approx(2 * w_heavy, abs=1)

    def test_all_weights_fit_bits(self):
        table = compute_inverse_weights(
            [[0.5, 2.0], [1.5, 0.25]], weight_bits=5
        )
        for row in table.inverse_weights:
            for weight in row:
                assert 1 <= weight < 32

    def test_zero_load_gets_max_weight(self):
        table = compute_inverse_weights([[1.0], [0.0]], weight_bits=5)
        assert table.inverse_weights[1][0] == 31

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            compute_inverse_weights([[-1.0]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            compute_inverse_weights([[1.0, 2.0], [1.0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_inverse_weights([])

    def test_explicit_beta(self):
        table = compute_inverse_weights([[1.0]], weight_bits=5, beta=10.0)
        assert table.inverse_weights[0][0] == 10
        assert table.beta == 10.0

    def test_bad_beta(self):
        with pytest.raises(ValueError):
            compute_inverse_weights([[1.0]], beta=-1.0)

    def test_table_shape_accessors(self):
        table = compute_inverse_weights([[1.0, 2.0], [3.0, 4.0]])
        assert table.num_inputs == 2
        assert table.num_patterns == 2

    def test_wider_bits_better_resolution(self):
        loads = [[3.086], [4.645]]
        narrow = compute_inverse_weights(loads, weight_bits=3)
        wide = compute_inverse_weights(loads, weight_bits=8)
        true_ratio = 4.645 / 3.086
        narrow_ratio = (
            narrow.inverse_weights[0][0] / narrow.inverse_weights[1][0]
        )
        wide_ratio = wide.inverse_weights[0][0] / wide.inverse_weights[1][0]
        assert abs(wide_ratio - true_ratio) <= abs(narrow_ratio - true_ratio)


class TestUniformTable:
    def test_equal_weights(self):
        table = uniform_weight_table(4, num_patterns=2)
        first = table.inverse_weights[0]
        for row in table.inverse_weights:
            assert tuple(row) == tuple(first)
