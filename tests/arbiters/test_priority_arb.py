"""Tests for the Figure 8 bit-level prioritized arbiter."""

import itertools

import pytest

from repro.arbiters.priority_arb import (
    behavioral_grant,
    clog2,
    grant_index,
    is_thermometer,
    priority_arb_bits,
    thermometer,
    unroll_requests,
)


class TestHelpers:
    def test_clog2(self):
        assert clog2(1) == 0
        assert clog2(2) == 1
        assert clog2(3) == 2
        assert clog2(4) == 2
        assert clog2(5) == 3

    def test_thermometer(self):
        assert thermometer(0, 4) == 0b0000
        assert thermometer(2, 4) == 0b0011
        assert thermometer(4, 4) == 0b1111

    def test_thermometer_range(self):
        with pytest.raises(ValueError):
            thermometer(5, 4)

    def test_is_thermometer(self):
        assert is_thermometer(0b0111, 4)
        assert is_thermometer(0b0000, 4)
        assert not is_thermometer(0b0101, 4)
        assert not is_thermometer(0b10000, 4)

    def test_grant_index(self):
        assert grant_index(0) is None
        assert grant_index(0b0100) == 2
        with pytest.raises(ValueError):
            grant_index(0b0110)


class TestUnroll:
    def test_level_zero_is_raw_requests(self):
        unrolled = unroll_requests(0b1011, [0, 1, 0, 1], 0b0001, 4, 2)
        assert unrolled[0] == 0b1011

    def test_thermometer_property_of_levels(self):
        # req_unroll[p] must be a subset of req_unroll[p-1] (the caption's
        # thermometer encoding of the fixed-priority request).
        for pri_bits in itertools.product(range(2), repeat=4):
            for pointer in range(5):
                unrolled = unroll_requests(
                    0b1111, list(pri_bits), thermometer(pointer, 4), 4, 2
                )
                for lower, upper in zip(unrolled, unrolled[1:]):
                    assert upper & ~lower == 0

    def test_level_two_needs_priority_and_pointer(self):
        unrolled = unroll_requests(0b11, [1, 1], 0b01, 2, 2)
        # Input 0 has pri=1 and the round-robin bit: level 2.
        assert unrolled[2] == 0b01


class TestGrantCorrectness:
    def test_no_requests(self):
        assert priority_arb_bits(0, [0, 0], 0, 2, 2) == 0

    def test_single_request(self):
        assert grant_index(priority_arb_bits(0b010, [0, 0, 0], 0, 3, 2)) == 1

    def test_priority_beats_round_robin(self):
        # Input 0 high priority, input 1 favored by the pointer: priority
        # wins.
        grant = priority_arb_bits(0b11, [1, 0], thermometer(2, 2), 2, 2)
        assert grant_index(grant) == 0

    def test_exhaustive_match_behavioral(self):
        """The bit-level model equals the behavioural reference on every
        (req, pri, pointer) combination for k <= 4, P = 2."""
        for k in (1, 2, 3, 4):
            for req in range(1 << k):
                for pri_bits in itertools.product(range(2), repeat=k):
                    for pointer in range(k + 1):
                        rr = thermometer(pointer, k)
                        bits = priority_arb_bits(req, list(pri_bits), rr, k, 2)
                        expected = behavioral_grant(req, list(pri_bits), rr, k, 2)
                        assert grant_index(bits) == expected, (
                            k, req, pri_bits, pointer
                        )

    def test_three_priority_levels(self):
        for req in range(1, 1 << 3):
            for pri_levels in itertools.product(range(3), repeat=3):
                for pointer in range(4):
                    rr = thermometer(pointer, 3)
                    bits = priority_arb_bits(req, list(pri_levels), rr, 3, 3)
                    expected = behavioral_grant(req, list(pri_levels), rr, 3, 3)
                    assert grant_index(bits) == expected

    def test_grant_always_one_hot(self):
        import random

        rng = random.Random(5)
        for _ in range(500):
            k = rng.randrange(1, 9)
            req = rng.randrange(1, 1 << k)
            pri = [rng.randrange(2) for _ in range(k)]
            rr = thermometer(rng.randrange(k + 1), k)
            grant = priority_arb_bits(req, pri, rr, k, 2)
            assert grant != 0
            assert grant & (grant - 1) == 0
            assert grant & req == grant


class TestValidation:
    def test_bad_thermometer(self):
        with pytest.raises(ValueError):
            priority_arb_bits(0b11, [0, 0], 0b10, 2, 2)

    def test_priority_out_of_range(self):
        with pytest.raises(ValueError):
            priority_arb_bits(0b11, [0, 2], 0b00, 2, 2)

    def test_wrong_priority_count(self):
        with pytest.raises(ValueError):
            priority_arb_bits(0b11, [0], 0b00, 2, 2)

    def test_zero_inputs(self):
        with pytest.raises(ValueError):
            priority_arb_bits(0, [], 0, 0, 2)
