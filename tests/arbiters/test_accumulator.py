"""Tests for the Figure 6 accumulator-update hardware model."""

import pytest

from repro.arbiters.accumulator import AccumulatorBank


class TestConstruction:
    def test_valid(self):
        bank = AccumulatorBank([[1, 2], [3, 4]], weight_bits=5)
        assert bank.num_inputs == 2
        assert bank.num_patterns == 2
        assert bank.accumulators == [0, 0]

    def test_weight_too_wide(self):
        with pytest.raises(ValueError):
            AccumulatorBank([[32]], weight_bits=5)

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            AccumulatorBank([[-1]], weight_bits=5)

    def test_ragged_rows(self):
        with pytest.raises(ValueError):
            AccumulatorBank([[1, 2], [3]], weight_bits=5)

    def test_empty(self):
        with pytest.raises(ValueError):
            AccumulatorBank([], weight_bits=5)

    def test_zero_weight_bits(self):
        with pytest.raises(ValueError):
            AccumulatorBank([[0]], weight_bits=0)


class TestPriorityBit:
    def test_fresh_bank_all_high_priority(self):
        bank = AccumulatorBank([[1], [1]], weight_bits=5)
        assert bank.priorities() == [True, True]

    def test_msb_set_means_low_priority(self):
        bank = AccumulatorBank([[31], [1]], weight_bits=5)
        bank.update(0, 0)  # accumulator 0 -> 31 (still < 32: high)
        assert bank.priority(0)
        bank.update(0, 0)  # -> 62: MSB set, low priority
        assert not bank.priority(0)


class TestUpdateRules:
    def test_grant_adds_inverse_weight(self):
        bank = AccumulatorBank([[5], [7]], weight_bits=5)
        bank.update(0, 0)
        assert bank.accumulators == [5, 0]
        bank.update(1, 0)
        assert bank.accumulators == [5, 7]

    def test_idle_cycle_no_change(self):
        bank = AccumulatorBank([[5], [7]], weight_bits=5)
        bank.update(0, 0)
        before = list(bank.accumulators)
        bank.update(None, 0)
        assert bank.accumulators == before

    def test_window_shift_on_low_priority_grant(self):
        # Drive input 0 into the upper window half, then grant it again:
        # all accumulators shift down by 2^M.
        bank = AccumulatorBank([[20], [20]], weight_bits=5)
        bank.update(0, 0)  # 20
        bank.update(0, 0)  # 40 (low priority)
        bank.update(1, 0)  # input 1 -> 20
        assert bank.accumulators == [40, 20]
        bank.update(0, 0)  # low-priority grant: window slides by 32
        # input 0: (40 - 32) + 20 = 28; input 1: 20 - 32 -> clamps to 0.
        assert bank.accumulators == [28, 0]

    def test_underflow_clamps_to_zero(self):
        bank = AccumulatorBank([[31], [1]], weight_bits=5)
        bank.update(0, 0)  # 31
        bank.update(0, 0)  # 62, low
        # Grant low-priority input 0 again: window shift; input 1 at 0
        # would underflow and clamps at zero.
        bank.update(0, 0)
        assert bank.accumulators[1] == 0

    def test_pattern_selects_weight(self):
        bank = AccumulatorBank([[3, 9]], weight_bits=5)
        bank.update(0, 0)
        assert bank.accumulators == [3]
        bank.update(0, 1)
        assert bank.accumulators == [12]

    def test_pattern_out_of_range(self):
        bank = AccumulatorBank([[3]], weight_bits=5)
        with pytest.raises(ValueError):
            bank.update(0, 1)

    def test_granted_out_of_range(self):
        bank = AccumulatorBank([[3]], weight_bits=5)
        with pytest.raises(ValueError):
            bank.update(2, 0)


class TestInvariant:
    def test_accumulators_stay_bounded(self):
        # The update rule guarantees values < 2^(M+1) forever.
        import random

        rng = random.Random(7)
        bank = AccumulatorBank(
            [[rng.randrange(1, 32) for _ in range(2)] for _ in range(4)],
            weight_bits=5,
        )
        for _ in range(5000):
            bank.update(rng.randrange(4), rng.randrange(2))
            bank.check_invariant()

    def test_check_invariant_detects_corruption(self):
        bank = AccumulatorBank([[1]], weight_bits=5)
        bank.accumulators[0] = 64
        with pytest.raises(AssertionError):
            bank.check_invariant()


class TestServiceProportionality:
    def test_two_to_one_service(self):
        """The core EoS property: inverse weights 1:2 yield grants 2:1."""
        bank = AccumulatorBank([[1], [2]], weight_bits=5)
        grants = [0, 0]
        for _ in range(3000):
            # Grant whichever input has the smaller accumulator (the
            # abstract arbitration policy of Section 3.2).
            winner = 0 if bank.accumulators[0] <= bank.accumulators[1] else 1
            bank.update(winner, 0)
            grants[winner] += 1
        assert grants[0] / grants[1] == pytest.approx(2.0, rel=0.02)

    def test_inverse_weight_accessor(self):
        bank = AccumulatorBank([[4, 8]], weight_bits=5)
        assert bank.inverse_weight(0, 1) == 8
