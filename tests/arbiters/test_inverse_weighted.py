"""Tests for the full inverse-weighted arbiter (Section 3)."""

import random

import pytest

from repro.analysis.fairness import expected_shares, grant_ratio_experiment
from repro.arbiters.base import SimpleRequest
from repro.arbiters.inverse_weighted import InverseWeightedArbiter


class TestBasics:
    def test_no_requests(self):
        arb = InverseWeightedArbiter([[1], [1]], weight_bits=5)
        assert arb.arbitrate([None, None]) is None

    def test_single_requester(self):
        arb = InverseWeightedArbiter([[1], [1]], weight_bits=5)
        assert arb.arbitrate([SimpleRequest(), None]) == 0

    def test_accumulator_exposed(self):
        arb = InverseWeightedArbiter([[3], [5]], weight_bits=5)
        arb.arbitrate([SimpleRequest(), None])
        assert arb.accumulators == (3, 0)

    def test_pattern_above_table_clamped(self):
        # Single-pattern weights under blended traffic (the Figure 10
        # "Forward"/"Reverse" configurations): unknown pattern ids are
        # charged against the last weight set instead of failing.
        arb = InverseWeightedArbiter([[4], [4]], weight_bits=5)
        arb.arbitrate([SimpleRequest(pattern=1), None])
        assert arb.accumulators[0] == 4


class TestEqualityOfService:
    def test_two_to_one(self):
        # The Figure 5 conclusion for arbiter A: loads 1.0 vs 0.5 mean
        # input 0 is granted twice as often.
        from repro.arbiters.weights import compute_inverse_weights

        table = compute_inverse_weights([[1.0], [0.5]], weight_bits=5)
        arb = InverseWeightedArbiter(table.inverse_weights, table.weight_bits)
        shares = grant_ratio_experiment(arb, steps=6000)
        assert shares == pytest.approx(expected_shares([1.0, 0.5]), abs=0.01)

    def test_blended_patterns_self_balance(self):
        """EoS over a pattern blend without knowing the blend (Sec 3.2).

        Input 0 carries pattern-0 load 2 and pattern-1 load 0.5; input 1
        the reverse. A 50/50 packet blend means both inputs deserve equal
        service; a 80/20 blend favors input 0.
        """
        from repro.arbiters.weights import compute_inverse_weights

        table = compute_inverse_weights(
            [[2.0, 0.5], [0.5, 2.0]], weight_bits=6
        )
        rng = random.Random(1)
        for fraction, want in ((0.5, 0.5), (0.8, 0.68)):
            arb = InverseWeightedArbiter(table.inverse_weights, table.weight_bits)
            # Arrivals: each cycle a packet of pattern n w.p. fraction of
            # pattern 0; both inputs always have the blend's head packet.
            grants = [0, 0]
            for _ in range(20000):
                pattern = 0 if rng.random() < fraction else 1
                winner = arb.arbitrate(
                    [SimpleRequest(pattern=pattern), SimpleRequest(pattern=pattern)]
                )
                grants[winner] += 1
            share0 = grants[0] / sum(grants)
            # Expected share of input 0: its blended load over the total.
            load0 = fraction * 2.0 + (1 - fraction) * 0.5
            load1 = fraction * 0.5 + (1 - fraction) * 2.0
            assert share0 == pytest.approx(load0 / (load0 + load1), abs=0.04)
            assert share0 == pytest.approx(want, abs=0.04)

    def test_degenerates_to_round_robin_with_equal_weights(self):
        arb = InverseWeightedArbiter([[4], [4], [4]], weight_bits=5)
        shares = grant_ratio_experiment(arb, steps=3000)
        assert shares == pytest.approx([1 / 3] * 3, abs=0.01)


class TestBitExactEquivalence:
    def test_fast_path_matches_bit_path(self):
        """The behavioural grant equals the literal Figure 8 hardware on a
        long random trace with shared accumulator state."""
        rng = random.Random(42)
        weights = [[rng.randrange(1, 32) for _ in range(2)] for _ in range(5)]
        fast = InverseWeightedArbiter(weights, weight_bits=5, bit_exact=False)
        bits = InverseWeightedArbiter(weights, weight_bits=5, bit_exact=True)
        for step in range(4000):
            requests = [
                SimpleRequest(pattern=rng.randrange(2))
                if rng.random() < 0.7
                else None
                for _ in range(5)
            ]
            assert fast.arbitrate(list(requests)) == bits.arbitrate(
                list(requests)
            ), step
            assert fast.accumulators == bits.accumulators
