"""Tests for the age-based baseline arbiter."""

from repro.arbiters.age_based import AgeBasedArbiter
from repro.arbiters.base import SimpleRequest


def req(age):
    return SimpleRequest(inject_cycle=age)


class TestAgeBased:
    def test_oldest_wins(self):
        arb = AgeBasedArbiter(3)
        assert arb.arbitrate([req(10), req(3), req(7)]) == 1

    def test_none_when_empty(self):
        arb = AgeBasedArbiter(2)
        assert arb.arbitrate([None, None]) is None

    def test_skips_missing(self):
        arb = AgeBasedArbiter(3)
        assert arb.arbitrate([None, req(9), None]) == 1

    def test_tie_broken_round_robin(self):
        arb = AgeBasedArbiter(2)
        grants = [arb.arbitrate([req(0), req(0)]) for _ in range(4)]
        assert sorted(grants) == [0, 0, 1, 1]

    def test_global_age_priority_prevents_starvation(self):
        # An old packet at input 0 beats a stream of young packets.
        arb = AgeBasedArbiter(2)
        assert arb.arbitrate([req(0), req(100)]) == 0

    def test_history_recorded(self):
        arb = AgeBasedArbiter(2)
        arb.arbitrate([req(1), req(2)])
        assert sum(arb.grants) == 1
