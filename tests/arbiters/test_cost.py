"""Tests for the arbiter hardware-cost model (Section 3.4, Figure 7)."""

import pytest

from repro.arbiters.cost import (
    ArbiterCost,
    anton2_router_arbiter_cost,
    fixed_priority_arbiters_conventional,
    fixed_priority_arbiters_optimized,
    reduction_fraction,
)


class TestFixedPriorityCounts:
    def test_paper_case_p2(self):
        # For the inverse-weighted arbiter's two priority levels: 4 -> 3.
        assert fixed_priority_arbiters_conventional(2) == 4
        assert fixed_priority_arbiters_optimized(2) == 3

    def test_general_claim(self):
        # "For P priority levels ... reduced by almost half (from 2P to
        # P+1)".
        for levels in range(1, 9):
            assert fixed_priority_arbiters_conventional(levels) == 2 * levels
            assert fixed_priority_arbiters_optimized(levels) == levels + 1

    def test_reduction_approaches_half(self):
        assert reduction_fraction(2) == pytest.approx(0.25)
        assert reduction_fraction(16) == pytest.approx((32 - 17) / 32)
        assert reduction_fraction(64) > 0.48

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_priority_arbiters_conventional(0)
        with pytest.raises(ValueError):
            fixed_priority_arbiters_optimized(0)


class TestArbiterCostModel:
    def test_accumulator_fraction_about_three_quarters(self):
        # Section 4.4: ~3/4 of arbiter area is weights + accumulators +
        # update logic.
        cost = anton2_router_arbiter_cost()
        assert cost.accumulator_fraction == pytest.approx(0.75, abs=0.08)

    def test_optimized_cheaper_than_conventional(self):
        cost = anton2_router_arbiter_cost()
        assert cost.priority_arbiter_gates < cost.conventional_priority_arbiter_gates

    def test_cost_grows_with_inputs(self):
        small = ArbiterCost(num_inputs=2, num_levels=2, weight_bits=5, num_patterns=2)
        large = ArbiterCost(num_inputs=8, num_levels=2, weight_bits=5, num_patterns=2)
        assert large.total_gates > small.total_gates

    def test_cost_grows_with_patterns(self):
        one = ArbiterCost(num_inputs=6, num_levels=2, weight_bits=5, num_patterns=1)
        two = ArbiterCost(num_inputs=6, num_levels=2, weight_bits=5, num_patterns=2)
        assert two.accumulator_gates > one.accumulator_gates

    def test_cost_grows_with_weight_bits(self):
        narrow = ArbiterCost(num_inputs=6, num_levels=2, weight_bits=3, num_patterns=2)
        wide = ArbiterCost(num_inputs=6, num_levels=2, weight_bits=8, num_patterns=2)
        assert wide.accumulator_gates > narrow.accumulator_gates

    def test_anton2_parameters(self):
        cost = anton2_router_arbiter_cost()
        assert cost.num_inputs == 6
        assert cost.num_levels == 2
        assert cost.weight_bits == 5
        assert cost.num_patterns == 2
