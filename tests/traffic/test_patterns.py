"""Tests for the evaluated traffic patterns."""

import random

import pytest

from repro.traffic.patterns import (
    BitComplement,
    Blend,
    FixedPermutation,
    NHopNeighbor,
    ReverseTornado,
    Tornado,
    UniformRandom,
)

SHAPE = (4, 4, 4)


def check_distribution(pattern, src=(0, 0, 0)):
    dests = pattern.destinations(src)
    total = sum(p for _d, p in dests)
    assert total == pytest.approx(1.0)
    return dests


class TestUniform:
    def test_excludes_self_by_default(self):
        pattern = UniformRandom(SHAPE)
        dests = check_distribution(pattern)
        assert len(dests) == 63
        assert all(d != (0, 0, 0) for d, _p in dests)

    def test_include_self(self):
        pattern = UniformRandom(SHAPE, include_self=True)
        assert len(check_distribution(pattern)) == 64

    def test_sampling_matches_support(self):
        pattern = UniformRandom(SHAPE)
        rng = random.Random(0)
        support = {d for d, _p in pattern.destinations((1, 2, 3))}
        for _ in range(200):
            assert pattern.sample(rng, (1, 2, 3)) in support

    def test_node_symmetric(self):
        assert UniformRandom(SHAPE).node_symmetric

    def test_mean_hops(self):
        # Uniform mean hops on 4x4x4: 3 dims x ring mean (0+1+2+1)/4 = 3,
        # adjusted for self-exclusion: 3 * 64/63.
        assert UniformRandom(SHAPE).mean_hops() == pytest.approx(3 * 64 / 63)


class TestNHopNeighbor:
    def test_one_hop_support(self):
        pattern = NHopNeighbor(SHAPE, 1)
        dests = check_distribution(pattern)
        # 3^3 - 1 = 26 neighbors within one hop per dimension.
        assert len(dests) == 26

    def test_two_hop_covers_radix_four(self):
        pattern = NHopNeighbor(SHAPE, 2)
        dests = check_distribution(pattern)
        # Offsets -2..2 alias to the full radix-4 ring: all 63 others.
        assert len(dests) == 63

    def test_locality(self):
        from repro.core.geometry import torus_delta

        pattern = NHopNeighbor((8, 8, 8), 2)
        for dst, _p in pattern.destinations((4, 4, 4)):
            for d in range(3):
                assert abs(torus_delta(4, dst[d], 8)) <= 2

    def test_sampling_never_self(self):
        pattern = NHopNeighbor(SHAPE, 1)
        rng = random.Random(1)
        for _ in range(100):
            assert pattern.sample(rng, (2, 2, 2)) != (2, 2, 2)

    def test_requires_positive_hops(self):
        with pytest.raises(ValueError):
            NHopNeighbor(SHAPE, 0)

    def test_mean_hops_smaller_than_uniform(self):
        shape = (8, 8, 8)
        assert (
            NHopNeighbor(shape, 1).mean_hops()
            < NHopNeighbor(shape, 2).mean_hops()
            < UniformRandom(shape).mean_hops()
        )


class TestTornado:
    def test_offset_formula(self):
        # Offset k/2 - 1 per dimension (paper's tornado definition).
        assert Tornado((8, 8, 8)).offset == (3, 3, 3)
        assert Tornado((8, 2, 2)).offset == (3, 0, 0)
        assert Tornado((4, 4, 4)).offset == (1, 1, 1)

    def test_reverse_is_opposite(self):
        fwd = Tornado((8, 8, 8))
        rev = ReverseTornado((8, 8, 8))
        src = (1, 2, 3)
        via = fwd.destination_of(src)
        assert rev.destination_of(via) == src

    def test_deterministic(self):
        pattern = Tornado((8, 8, 8))
        dests = pattern.destinations((0, 0, 0))
        assert dests == [((3, 3, 3), 1.0)]

    def test_node_symmetric(self):
        assert Tornado(SHAPE).node_symmetric
        assert ReverseTornado(SHAPE).node_symmetric


class TestBitComplement:
    def test_mapping(self):
        pattern = BitComplement(SHAPE)
        assert pattern.destinations((0, 0, 0)) == [((3, 3, 3), 1.0)]

    def test_involution(self):
        pattern = BitComplement(SHAPE)
        rng = random.Random(0)
        src = (1, 2, 0)
        assert pattern.sample(rng, pattern.sample(rng, src)) == src

    def test_not_node_symmetric(self):
        assert not BitComplement(SHAPE).node_symmetric


class TestFixedPermutation:
    def test_valid_permutation(self):
        from repro.core.geometry import all_coords

        nodes = list(all_coords((2, 2, 2)))
        rotated = nodes[1:] + nodes[:1]
        pattern = FixedPermutation((2, 2, 2), dict(zip(nodes, rotated)))
        check_distribution(pattern, (0, 0, 0))

    def test_non_permutation_rejected(self):
        from repro.core.geometry import all_coords

        nodes = list(all_coords((2, 2, 2)))
        mapping = {node: nodes[0] for node in nodes}
        with pytest.raises(ValueError):
            FixedPermutation((2, 2, 2), mapping)


class TestBlend:
    def test_distribution_merges(self):
        blend = Blend([Tornado(SHAPE), ReverseTornado(SHAPE)], [0.5, 0.5])
        dests = check_distribution(blend)
        assert len(dests) == 2

    def test_zero_fraction_component_dropped(self):
        blend = Blend([Tornado(SHAPE), ReverseTornado(SHAPE)], [1.0, 0.0])
        assert len(blend.destinations((0, 0, 0))) == 1

    def test_sample_with_pattern_fractions(self):
        blend = Blend([Tornado(SHAPE), ReverseTornado(SHAPE)], [0.8, 0.2])
        rng = random.Random(2)
        counts = [0, 0]
        for _ in range(3000):
            _dst, index = blend.sample_with_pattern(rng, (0, 0, 0))
            counts[index] += 1
        assert counts[0] / 3000 == pytest.approx(0.8, abs=0.03)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            Blend([Tornado(SHAPE)], [0.5])
        with pytest.raises(ValueError):
            Blend([Tornado(SHAPE), ReverseTornado(SHAPE)], [0.7, 0.7])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Blend([Tornado(SHAPE), Tornado((8, 8, 8))], [0.5, 0.5])

    def test_symmetry_inherited(self):
        assert Blend([Tornado(SHAPE), ReverseTornado(SHAPE)], [0.5, 0.5]).node_symmetric
        assert not Blend([Tornado(SHAPE), BitComplement(SHAPE)], [0.5, 0.5]).node_symmetric

    def test_name_mentions_components(self):
        blend = Blend([Tornado(SHAPE), ReverseTornado(SHAPE)], [0.25, 0.75])
        assert "tornado" in blend.name
