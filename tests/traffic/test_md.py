"""Tests for the MD multicast workload."""

import pytest

from repro.traffic.md import (
    MdMulticastWorkload,
    import_region,
    random_particle_destinations,
)


SHAPE = (8, 8, 8)


class TestImportRegion:
    def test_full_shell_size(self):
        region = import_region((4, 4, 4), SHAPE, radius=1, method="full-shell")
        assert len(region) == 26

    def test_half_shell_size(self):
        region = import_region((4, 4, 4), SHAPE, radius=1, method="half-shell")
        assert len(region) == 13

    def test_half_shell_is_positive_half(self):
        region = import_region((4, 4, 4), SHAPE, radius=1, method="half-shell")
        for node in region:
            offset = tuple(node[d] - 4 for d in range(3))
            assert offset > (0, 0, 0) or offset >= (0, 0, 0)

    def test_radius_two(self):
        region = import_region((4, 4, 4), SHAPE, radius=2)
        assert len(region) == 5 ** 3 - 1

    def test_wraps_torus(self):
        region = import_region((0, 0, 0), SHAPE, radius=1)
        assert (7, 7, 7) in region

    def test_validation(self):
        with pytest.raises(ValueError):
            import_region((0, 0, 0), SHAPE, radius=0)
        with pytest.raises(ValueError):
            import_region((0, 0, 0), SHAPE, method="quarter-shell")


class TestWorkload:
    def test_trees_are_valid(self):
        from repro.core.multicast import verify_unicast_paths

        workload = MdMulticastWorkload(SHAPE)
        for tree in workload.trees_for((2, 3, 4)):
            verify_unicast_paths(tree, SHAPE)

    def test_per_particle_savings_positive(self):
        workload = MdMulticastWorkload(SHAPE)
        assert workload.per_particle_savings((0, 0, 0)) > 0

    def test_aggregate_savings_ratio(self):
        # Full-shell radius-1 multicast should save roughly half the
        # inter-node bandwidth (26 unicast hops vs. a 26-edge tree whose
        # shared prefixes collapse).
        workload = MdMulticastWorkload(SHAPE)
        stats = workload.aggregate_stats(particles_per_node=16)
        assert 0.3 < stats["savings_ratio"] < 0.7
        assert stats["multicast_hops"] < stats["unicast_hops"]

    def test_alternation_balances(self):
        workload = MdMulticastWorkload(SHAPE)
        stats = workload.aggregate_stats()
        assert (
            stats["peak_direction_load_alternating"]
            <= stats["peak_direction_load_single"]
        )

    def test_table_entries_scale(self):
        workload = MdMulticastWorkload(SHAPE)
        assert workload.table_entries_per_node(128) == 256

    def test_half_shell_cheaper_than_full(self):
        full = MdMulticastWorkload(SHAPE, method="full-shell")
        half = MdMulticastWorkload(SHAPE, method="half-shell")
        assert (
            half.aggregate_stats()["multicast_hops"]
            < full.aggregate_stats()["multicast_hops"]
        )


class TestParticlePopulation:
    def test_counts(self):
        workload = MdMulticastWorkload((4, 4, 4))
        pairs = random_particle_destinations(workload, particles_per_node=2, seed=1)
        assert len(pairs) == 2 * 64

    def test_regions_match_home(self):
        workload = MdMulticastWorkload((4, 4, 4))
        pairs = random_particle_destinations(workload, particles_per_node=1, seed=1)
        for home, region in pairs[:10]:
            assert region == import_region(home, (4, 4, 4), 1, "full-shell")
