"""Tests for the analytic load computation."""

import pytest

from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.traffic.loads import (
    active_endpoints,
    compute_loads,
    ideal_batch_cycles,
    merge_arbiter_loads,
    merge_vc_loads,
)
from repro.traffic.patterns import BitComplement, Tornado, UniformRandom


@pytest.fixture(scope="module")
def loaded(tiny_machine, tiny_routes):
    pattern = UniformRandom((2, 2, 2))
    table = compute_loads(tiny_machine, tiny_routes, pattern, cores_per_chip=2)
    return pattern, table


class TestActiveEndpoints:
    def test_count(self, tiny_machine):
        assert len(active_endpoints(tiny_machine, 2)) == 16

    def test_out_of_range(self, tiny_machine):
        with pytest.raises(ValueError):
            active_endpoints(tiny_machine, 3)


class TestConservation:
    """Flow-conservation invariants the load tables must satisfy."""

    def test_injection_load_one_per_source(self, tiny_machine, loaded):
        # Each source injects exactly one packet per round, all of it on
        # its EP -> router link.
        _pattern, table = loaded
        for channel in tiny_machine.channels:
            if channel.kind == ChannelKind.EP_TO_ROUTER:
                component = tiny_machine.components[channel.src]
                if component.detail < 2:  # active endpoint
                    assert table.channel_load[channel.cid] == pytest.approx(1.0)

    def test_ejection_totals_match_sources(self, tiny_machine, loaded):
        _pattern, table = loaded
        total_ejected = sum(
            load
            for cid, load in table.channel_load.items()
            if tiny_machine.channels[cid].kind == ChannelKind.ROUTER_TO_EP
        )
        assert total_ejected == pytest.approx(16.0)

    def test_arbiter_inputs_sum_to_channel_load(self, tiny_machine, loaded):
        # Everything leaving on a channel arrived via some input (except
        # at injection, which has no upstream arbitration).
        _pattern, table = loaded
        for oc, per_input in table.arbiter_load.items():
            assert sum(per_input) == pytest.approx(table.channel_load[oc])

    def test_vc_loads_sum_to_channel_load(self, tiny_machine, loaded):
        _pattern, table = loaded
        for cid, per_vc in table.vc_load.items():
            assert sum(per_vc) == pytest.approx(table.channel_load[cid])

    def test_torus_load_accounts_for_mean_hops(self, tiny_machine, loaded):
        pattern, table = loaded
        total_torus = sum(
            load
            for cid, load in table.channel_load.items()
            if tiny_machine.channels[cid].kind == ChannelKind.TORUS
        )
        assert total_torus == pytest.approx(16 * pattern.mean_hops())


class TestSymmetryFastPath:
    @pytest.mark.parametrize("pattern_cls", [UniformRandom, Tornado])
    def test_matches_exhaustive(self, tiny_machine, tiny_routes, pattern_cls):
        pattern = pattern_cls((2, 2, 2))
        fast = compute_loads(
            tiny_machine, tiny_routes, pattern, 2, use_symmetry=True
        )
        slow = compute_loads(
            tiny_machine, tiny_routes, pattern, 2, use_symmetry=False
        )
        keys = set(fast.channel_load) | set(slow.channel_load)
        for key in keys:
            assert fast.channel_load.get(key, 0.0) == pytest.approx(
                slow.channel_load.get(key, 0.0)
            )
        for oc in set(fast.arbiter_load) | set(slow.arbiter_load):
            assert fast.arbiter_load[oc] == pytest.approx(slow.arbiter_load[oc])
        for cid in set(fast.vc_load) | set(slow.vc_load):
            assert fast.vc_load[cid] == pytest.approx(slow.vc_load[cid])

    def test_asymmetric_pattern_uses_slow_path(self, tiny_machine, tiny_routes):
        pattern = BitComplement((2, 2, 2))
        table = compute_loads(tiny_machine, tiny_routes, pattern, 2)
        assert table.num_sources == 16

    def test_dst_endpoint_modes(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        same = compute_loads(tiny_machine, tiny_routes, pattern, 2, "same_index")
        uniform = compute_loads(tiny_machine, tiny_routes, pattern, 2, "uniform")
        # Total torus load identical; per-endpoint ejection differs only
        # in distribution.
        total = lambda t: sum(
            load
            for cid, load in t.channel_load.items()
            if tiny_machine.channels[cid].kind == ChannelKind.TORUS
        )
        assert total(same) == pytest.approx(total(uniform))


class TestValidation:
    def test_shape_mismatch(self, tiny_machine, tiny_routes):
        with pytest.raises(ValueError):
            compute_loads(tiny_machine, tiny_routes, UniformRandom((3, 3, 3)), 2)

    def test_bad_mode(self, tiny_machine, tiny_routes):
        with pytest.raises(ValueError):
            compute_loads(
                tiny_machine, tiny_routes, UniformRandom((2, 2, 2)), 2, "roundrobin"
            )


class TestMerging:
    def test_arbiter_matrix_shape(self, tiny_machine, tiny_routes):
        patterns = [Tornado((2, 2, 2)), UniformRandom((2, 2, 2))]
        tables = [
            compute_loads(tiny_machine, tiny_routes, p, 2) for p in patterns
        ]
        merged = merge_arbiter_loads(tiny_machine, tables)
        for oc, matrix in merged.items():
            src = tiny_machine.channels[oc].src
            assert len(matrix) == len(tiny_machine.component_inputs[src])
            assert all(len(row) == 2 for row in matrix)

    def test_vc_matrix_shape(self, tiny_machine, tiny_routes):
        patterns = [Tornado((2, 2, 2)), UniformRandom((2, 2, 2))]
        tables = [
            compute_loads(tiny_machine, tiny_routes, p, 2) for p in patterns
        ]
        merged = merge_vc_loads(tiny_machine, tables)
        for cid, matrix in merged.items():
            channel = tiny_machine.channels[cid]
            assert len(matrix) == tiny_machine.vcs_for_channel(channel)


class TestIdealCycles:
    def test_torus_normalization_uses_derating(self, tiny_machine, loaded):
        _pattern, table = loaded
        ideal = ideal_batch_cycles(tiny_machine, table, packets_per_source=10)
        expected = (
            10
            * table.max_torus_load(tiny_machine)
            * tiny_machine.config.torus_cycles_per_flit
        )
        assert ideal == pytest.approx(expected)

    def test_any_bottleneck_at_least_torus_term(self, tiny_machine, loaded):
        _pattern, table = loaded
        torus = ideal_batch_cycles(tiny_machine, table, 10, bottleneck="torus")
        any_b = ideal_batch_cycles(tiny_machine, table, 10, bottleneck="any")
        assert any_b >= torus

    def test_unknown_bottleneck(self, tiny_machine, loaded):
        _pattern, table = loaded
        with pytest.raises(ValueError):
            ideal_batch_cycles(tiny_machine, table, 10, bottleneck="mesh")

    def test_flit_scaling(self, tiny_machine, loaded):
        _pattern, table = loaded
        one = ideal_batch_cycles(tiny_machine, table, 10, flits_per_packet=1)
        two = ideal_batch_cycles(tiny_machine, table, 10, flits_per_packet=2)
        assert two == pytest.approx(2 * one)
