"""Adversarial worst-permutation search (Section 2.4 extreme points).

The search's guarantees: seeded determinism, the result is always a
derangement of the node set, its score is the exact analytic peak
torus-channel load of that permutation, hill climbing never returns
less than its restart starting points, and the emitted DemandMatrix /
FixedPermutation agree with the mapping.
"""

import math

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.traffic.adversarial import (
    mesh_lp_bound,
    score_permutation,
    search_worst_permutation,
)
from repro.traffic.patterns import Tornado

_CACHE = {}


def setup(shape=(2, 2, 2)):
    if shape not in _CACHE:
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=1))
        _CACHE[shape] = (machine, RouteComputer(machine))
    return _CACHE[shape]


def search(shape=(2, 2, 2), **kwargs):
    machine, routes = setup(shape)
    kwargs.setdefault("include_lp_bound", False)
    return search_worst_permutation(machine, routes, **kwargs)


class TestSearch:
    def test_seed_determinism(self):
        a = search(seed=5, restarts=2, steps=30)
        b = search(seed=5, restarts=2, steps=30)
        assert a.mapping == b.mapping
        assert a.score == b.score
        assert a.restart_scores == b.restart_scores
        assert a.evaluated == b.evaluated

    def test_different_seeds_explore_differently(self):
        a = search(seed=1, restarts=1, steps=10)
        b = search(seed=2, restarts=1, steps=10)
        # Scores may tie, but the search trajectories must differ.
        assert a.mapping != b.mapping or a.restart_scores != b.restart_scores

    def test_result_is_a_derangement(self):
        result = search(seed=3, restarts=2, steps=40)
        nodes = sorted(result.mapping)
        assert sorted(result.mapping.values()) == nodes
        assert all(src != dst for src, dst in result.mapping.items())

    def test_score_matches_exact_oracle(self):
        machine, routes = setup()
        result = search(seed=4, restarts=2, steps=30)
        assert result.score == score_permutation(
            machine, routes, result.mapping
        )

    def test_score_is_best_restart(self):
        result = search(seed=6, restarts=3, steps=25)
        assert len(result.restart_scores) == 3
        assert result.score == max(result.restart_scores)
        assert result.evaluated >= 3

    def test_beats_or_ties_tornado_on_a_ring(self):
        # On a 4x1x1 ring, tornado (dst = src + 2 in x) is the canonical
        # bad permutation; the search must find something at least as hot.
        machine, routes = setup((4, 1, 1))
        tornado = Tornado((4, 1, 1))
        mapping = {
            src: tornado.sample(None, src)
            for src in result_nodes(machine)
        }
        baseline = score_permutation(machine, routes, mapping)
        result = search((4, 1, 1), seed=0, restarts=3, steps=60)
        assert result.score >= baseline - 1e-12

    def test_tiny_machine_rejected(self):
        machine = Machine(MachineConfig(shape=(1, 1, 1), endpoints_per_chip=1))
        with pytest.raises(ValueError, match="at least 2 nodes"):
            search_worst_permutation(machine, RouteComputer(machine))


def result_nodes(machine):
    from repro.core.geometry import all_coords

    return list(all_coords(machine.config.shape))


class TestEmittedWorkload:
    def test_demand_matrix_is_one_hot_permutation(self):
        result = search(seed=7, restarts=2, steps=30)
        matrix = result.demand
        index = matrix.node_index()
        for src, dst in result.mapping.items():
            row = matrix.rates[index[src]]
            assert row[index[dst]] == 1.0
            assert math.isclose(sum(row), 1.0)

    def test_pattern_agrees_with_mapping(self):
        result = search(seed=8, restarts=1, steps=20)
        for src, dst in result.mapping.items():
            assert result.pattern.sample(None, src) == dst

    def test_lp_bound_reporting(self):
        assert search(seed=9, restarts=1, steps=5).lp_bound is None
        pytest.importorskip("scipy")
        machine, routes = setup()
        result = search_worst_permutation(
            machine, routes, seed=9, restarts=1, steps=5
        )
        assert result.lp_bound == pytest.approx(mesh_lp_bound())
        assert result.lp_bound > 0
