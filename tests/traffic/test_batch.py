"""Tests for workload generation."""

import pytest

from repro.traffic.batch import BatchSpec, generate_batch, generate_open_loop
from repro.traffic.patterns import Blend, ReverseTornado, Tornado, UniformRandom


class TestBatchSpec:
    def test_valid(self):
        BatchSpec(UniformRandom((2, 2, 2)), 4, cores_per_chip=2)

    def test_zero_packets(self):
        with pytest.raises(ValueError):
            BatchSpec(UniformRandom((2, 2, 2)), 0, cores_per_chip=2)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            BatchSpec(
                UniformRandom((2, 2, 2)), 4, cores_per_chip=2,
                dst_endpoint_mode="nearest",
            )


class TestGenerateBatch:
    def test_count(self, tiny_machine, tiny_routes):
        spec = BatchSpec(UniformRandom((2, 2, 2)), 5, cores_per_chip=2)
        packets = generate_batch(tiny_machine, tiny_routes, spec)
        assert len(packets) == 16 * 5

    def test_reproducible(self, tiny_machine, tiny_routes):
        spec = BatchSpec(UniformRandom((2, 2, 2)), 5, cores_per_chip=2, seed=4)
        first = generate_batch(tiny_machine, tiny_routes, spec)
        second = generate_batch(tiny_machine, tiny_routes, spec)
        assert [p.route.hops for p in first] == [p.route.hops for p in second]

    def test_seed_changes_workload(self, tiny_machine, tiny_routes):
        base = BatchSpec(UniformRandom((2, 2, 2)), 8, cores_per_chip=2, seed=1)
        other = BatchSpec(UniformRandom((2, 2, 2)), 8, cores_per_chip=2, seed=2)
        a = generate_batch(tiny_machine, tiny_routes, base)
        b = generate_batch(tiny_machine, tiny_routes, other)
        assert [p.route.dst for p in a] != [p.route.dst for p in b]

    def test_all_released_at_zero(self, tiny_machine, tiny_routes):
        spec = BatchSpec(UniformRandom((2, 2, 2)), 3, cores_per_chip=2)
        for packet in generate_batch(tiny_machine, tiny_routes, spec):
            assert packet.release_cycle == 0

    def test_blend_marks_patterns(self, tiny_machine, tiny_routes):
        blend = Blend(
            [Tornado((2, 2, 2)), ReverseTornado((2, 2, 2))], [0.5, 0.5]
        )
        spec = BatchSpec(blend, 20, cores_per_chip=2, seed=3)
        packets = generate_batch(tiny_machine, tiny_routes, spec)
        patterns = {p.pattern for p in packets}
        assert patterns == {0, 1}

    def test_unblended_marks_zero(self, tiny_machine, tiny_routes):
        spec = BatchSpec(UniformRandom((2, 2, 2)), 5, cores_per_chip=2)
        for packet in generate_batch(tiny_machine, tiny_routes, spec):
            assert packet.pattern == 0

    def test_same_index_mode(self, tiny_machine, tiny_routes):
        spec = BatchSpec(
            Tornado((2, 2, 2)), 2, cores_per_chip=2, dst_endpoint_mode="same_index"
        )
        for packet in generate_batch(tiny_machine, tiny_routes, spec):
            src = tiny_machine.components[packet.src]
            dst = tiny_machine.components[packet.dst]
            assert src.detail == dst.detail

    def test_shape_mismatch(self, tiny_machine, tiny_routes):
        spec = BatchSpec(UniformRandom((3, 3, 3)), 2, cores_per_chip=2)
        with pytest.raises(ValueError):
            generate_batch(tiny_machine, tiny_routes, spec)

    def test_size_flits_propagates(self, tiny_machine, tiny_routes):
        spec = BatchSpec(UniformRandom((2, 2, 2)), 2, cores_per_chip=2, size_flits=2)
        for packet in generate_batch(tiny_machine, tiny_routes, spec):
            assert packet.size_flits == 2


class TestOpenLoop:
    def test_rate_approximate(self, tiny_machine, tiny_routes):
        packets = generate_open_loop(
            tiny_machine, tiny_routes, UniformRandom((2, 2, 2)),
            injection_rate=0.25, duration_cycles=800, cores_per_chip=2, seed=5,
        )
        rate = len(packets) / (16 * 800)
        assert rate == pytest.approx(0.25, abs=0.03)

    def test_release_cycles_within_duration(self, tiny_machine, tiny_routes):
        packets = generate_open_loop(
            tiny_machine, tiny_routes, UniformRandom((2, 2, 2)),
            injection_rate=0.5, duration_cycles=100, cores_per_chip=1,
        )
        assert all(0 <= p.release_cycle < 100 for p in packets)

    def test_release_order_per_source(self, tiny_machine, tiny_routes):
        packets = generate_open_loop(
            tiny_machine, tiny_routes, UniformRandom((2, 2, 2)),
            injection_rate=0.5, duration_cycles=100, cores_per_chip=2,
        )
        per_source = {}
        for packet in packets:
            per_source.setdefault(packet.src, []).append(packet.release_cycle)
        for releases in per_source.values():
            assert releases == sorted(releases)

    def test_rate_validation(self, tiny_machine, tiny_routes):
        with pytest.raises(ValueError):
            generate_open_loop(
                tiny_machine, tiny_routes, UniformRandom((2, 2, 2)),
                injection_rate=1.5, duration_cycles=10, cores_per_chip=1,
            )

    def test_runs_through_engine(self, tiny_machine, tiny_routes):
        from repro.sim.engine import Engine

        packets = generate_open_loop(
            tiny_machine, tiny_routes, UniformRandom((2, 2, 2)),
            injection_rate=0.1, duration_cycles=200, cores_per_chip=2, seed=2,
        )
        engine = Engine(tiny_machine)
        for packet in packets:
            engine.enqueue(packet)
        stats = engine.run()
        assert stats.delivered == len(packets)
