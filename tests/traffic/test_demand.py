"""Demand-matrix workloads: generators, schedules, and conservation laws.

The conservation tests pin the workload subsystem's accounting
invariants: every generated packet is eventually delivered or dropped
(healthy runs drop nothing), and paced open-loop injection never offers
more than the matrix row sums -- a *hard* bound, per source, by
construction of the credit accumulator.
"""

import io
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import all_coords
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.faults import FaultPolicy, FaultRuntime, FaultSet, FaultSpec
from repro.faults.model import failable_channels
from repro.sim.sweep import SweepPoint, run_sweep
from repro.sim.trace import JsonlTraceWriter
from repro.traffic.demand import (
    DemandMatrix,
    DemandMatrixPattern,
    DemandPoint,
    DemandSchedule,
    DemandSpec,
    as_schedule,
    generate_demand,
    measure_demand_point,
    run_demand,
)
from repro.traffic.loads import active_endpoints

SHAPE = (2, 2, 2)

_CACHE = {}


def setup():
    if "m" not in _CACHE:
        machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=2))
        _CACHE["m"] = (machine, RouteComputer(machine))
    return _CACHE["m"]


class TestDemandMatrix:
    def test_rejects_wrong_dimensions(self):
        with pytest.raises(ValueError, match="8x8"):
            DemandMatrix(shape=SHAPE, rates=((0.0,),))

    def test_rejects_negative_and_nonfinite(self):
        n = 8
        rates = [[0.0] * n for _ in range(n)]
        rates[0][1] = -0.1
        with pytest.raises(ValueError, match=">= 0"):
            DemandMatrix(shape=SHAPE, rates=rates)
        rates[0][1] = float("nan")
        with pytest.raises(ValueError, match="finite"):
            DemandMatrix(shape=SHAPE, rates=rates)

    def test_uniform_rows_sum_to_rate_off_diagonal(self):
        matrix = DemandMatrix.uniform(SHAPE, rate=0.4)
        for i, row in enumerate(matrix.rates):
            assert row[i] == 0.0
            assert math.isclose(sum(row), 0.4)

    def test_hotspot_rows_sum_to_rate(self):
        matrix = DemandMatrix.hotspot(
            SHAPE, rate=0.5, hotspots=2, hot_fraction=0.7, seed=3
        )
        for i, row in enumerate(matrix.rates):
            assert row[i] == 0.0
            assert math.isclose(sum(row), 0.5)

    def test_hotspot_concentrates_hot_fraction(self):
        matrix = DemandMatrix.hotspot(
            SHAPE, rate=1.0, hotspots=1, hot_fraction=0.8, seed=0
        )
        # Exactly one column receives the 0.8 share from every non-hot row.
        hot_cols = [
            j
            for j in range(8)
            if sum(matrix.rates[i][j] for i in range(8)) > 1.0
        ]
        assert len(hot_cols) == 1

    def test_generators_are_seed_deterministic(self):
        for maker in (
            lambda s: DemandMatrix.hotspot(SHAPE, 0.3, seed=s),
            lambda s: DemandMatrix.skewed(SHAPE, 0.3, exponent=1.5, seed=s),
            lambda s: DemandMatrix.permutation(SHAPE, seed=s),
        ):
            assert maker(7).rates == maker(7).rates
            assert maker(7).rates != maker(8).rates

    def test_skewed_rows_sum_to_rate(self):
        matrix = DemandMatrix.skewed(SHAPE, rate=0.25, exponent=2.0, seed=1)
        for row in matrix.rates:
            assert math.isclose(sum(row), 0.25)

    def test_permutation_is_one_hot_derangement(self):
        matrix = DemandMatrix.permutation(SHAPE, rate=0.9, seed=4)
        cols = []
        for i, row in enumerate(matrix.rates):
            nonzero = [j for j, v in enumerate(row) if v > 0]
            assert nonzero != [i]
            assert len(nonzero) == 1
            assert row[nonzero[0]] == 0.9
            cols.append(nonzero[0])
        assert sorted(cols) == list(range(8))

    def test_from_mapping_round_trip(self):
        nodes = list(all_coords(SHAPE))
        mapping = {nodes[i]: nodes[(i + 1) % 8] for i in range(8)}
        matrix = DemandMatrix.from_mapping(SHAPE, mapping, rate=0.5)
        index = matrix.node_index()
        for src, dst in mapping.items():
            assert matrix.rates[index[src]][index[dst]] == 0.5
        with pytest.raises(ValueError, match="permutation"):
            DemandMatrix.from_mapping(SHAPE, {nodes[0]: nodes[1]})

    def test_json_round_trip(self):
        matrix = DemandMatrix.hotspot(SHAPE, 0.3, seed=2)
        again = DemandMatrix.from_json(matrix.to_json())
        assert again == matrix

    def test_scaled(self):
        matrix = DemandMatrix.uniform(SHAPE, rate=0.4)
        assert math.isclose(matrix.scaled(0.5).row_sum(0), 0.2)
        with pytest.raises(ValueError):
            matrix.scaled(-1.0)


class TestDemandSchedule:
    def test_validation(self):
        base = DemandMatrix.uniform(SHAPE, 0.2)
        with pytest.raises(ValueError, match="start at cycle 0"):
            DemandSchedule(epochs=((5, base),))
        with pytest.raises(ValueError, match="strictly increase"):
            DemandSchedule(epochs=((0, base), (0, base)))
        other = DemandMatrix.uniform((2, 2, 1), 0.2)
        with pytest.raises(ValueError, match="one shape"):
            DemandSchedule(epochs=((0, base), (10, other)))

    def test_matrix_at_and_spans(self):
        a = DemandMatrix.uniform(SHAPE, 0.1)
        b = DemandMatrix.uniform(SHAPE, 0.2)
        sched = DemandSchedule.from_matrices([a, b], epoch_length=32)
        assert sched.matrix_at(0) is a
        assert sched.matrix_at(31) is a
        assert sched.matrix_at(32) is b
        assert sched.spans(48) == [(0, 32, 0), (32, 48, 1)]
        assert sched.spans(16) == [(0, 16, 0)]

    def test_as_schedule(self):
        matrix = DemandMatrix.uniform(SHAPE, 0.1)
        assert as_schedule(matrix).epochs == ((0, matrix),)
        with pytest.raises(TypeError):
            as_schedule("nope")


class TestDemandMatrixPattern:
    def test_destinations_are_normalized_rows(self):
        matrix = DemandMatrix.hotspot(SHAPE, 0.5, seed=1)
        pattern = DemandMatrixPattern(matrix)
        assert not pattern.node_symmetric
        for src in matrix.nodes():
            probs = [p for _dst, p in pattern.destinations(src)]
            assert math.isclose(sum(probs), 1.0)

    def test_zero_row_cannot_sample(self):
        import random

        rates = [[0.0] * 8 for _ in range(8)]
        rates[1][0] = 1.0
        pattern = DemandMatrixPattern(DemandMatrix(shape=SHAPE, rates=rates))
        with pytest.raises(ValueError, match="zero demand"):
            pattern.sample(random.Random(0), (0, 0, 0))


def open_spec(injection="paced", rate=0.4, seed=0, duration=48):
    base = DemandMatrix.hotspot(SHAPE, rate=rate, seed=3)
    shifted = DemandMatrix.hotspot(SHAPE, rate=rate, hotspots=2, seed=4)
    return DemandSpec(
        demand=DemandSchedule(epochs=((0, base), (duration // 2, shifted))),
        cores_per_chip=2,
        mode="open",
        duration_cycles=duration,
        injection=injection,
        seed=seed,
    )


class TestGenerateDemand:
    def test_deterministic(self):
        machine, routes = setup()
        spec = open_spec(injection="bernoulli", seed=11)
        a = generate_demand(machine, routes, spec)
        b = generate_demand(machine, routes, spec)
        assert [
            (p.pid, p.release_cycle, p.route.hops) for p in a
        ] == [(p.pid, p.release_cycle, p.route.hops) for p in b]

    def test_closed_counts_match_row_sums(self):
        machine, routes = setup()
        matrix = DemandMatrix.hotspot(SHAPE, rate=0.5, seed=5)
        spec = DemandSpec(
            demand=matrix, cores_per_chip=2, mode="closed", packets_scale=6.0
        )
        packets = generate_demand(machine, routes, spec)
        index = matrix.node_index()
        per_source = {}
        for packet in packets:
            assert packet.release_cycle == 0
            per_source[packet.route.src] = (
                per_source.get(packet.route.src, 0) + 1
            )
        for src in active_endpoints(machine, 2):
            chip = machine.components[src].chip
            expected = int(round(6.0 * matrix.row_sum(index[chip])))
            assert per_source.get(src, 0) == expected

    def test_paced_offered_load_never_exceeds_row_sums(self):
        machine, routes = setup()
        spec = open_spec(injection="paced", rate=0.7, duration=64)
        packets = generate_demand(machine, routes, spec)
        schedule = spec.schedule
        index = schedule.epochs[0][1].node_index()
        per_source = {}
        for packet in packets:
            per_source[packet.route.src] = (
                per_source.get(packet.route.src, 0) + 1
            )
        for src in active_endpoints(machine, 2):
            chip = machine.components[src].chip
            budget = sum(
                (end - start)
                * min(1.0, schedule.epochs[k][1].row_sum(index[chip]))
                for start, end, k in schedule.spans(64)
            )
            assert per_source.get(src, 0) <= budget + 1e-9

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.05, max_value=1.5),
    )
    @settings(max_examples=15, deadline=None)
    def test_paced_bound_holds_for_any_rate(self, seed, rate):
        machine, routes = setup()
        matrix = DemandMatrix.hotspot(SHAPE, rate=rate, seed=seed % 97)
        spec = DemandSpec(
            demand=matrix,
            cores_per_chip=2,
            mode="open",
            duration_cycles=40,
            injection="paced",
            seed=seed,
        )
        packets = generate_demand(machine, routes, spec)
        cap = 40 * min(1.0, rate)
        per_source = {}
        for packet in packets:
            per_source[packet.route.src] = (
                per_source.get(packet.route.src, 0) + 1
            )
        assert all(n <= cap + 1e-9 for n in per_source.values())

    def test_release_cycles_respect_epoch_spans(self):
        machine, routes = setup()
        spec = open_spec(injection="bernoulli", duration=48)
        packets = generate_demand(machine, routes, spec)
        assert packets
        assert all(0 <= p.release_cycle < 48 for p in packets)

    def test_shape_mismatch_rejected(self):
        machine, routes = setup()
        spec = DemandSpec(
            demand=DemandMatrix.uniform((2, 2, 1), 0.2),
            cores_per_chip=2,
            mode="open",
            duration_cycles=16,
        )
        with pytest.raises(ValueError, match="does not match machine"):
            generate_demand(machine, routes, spec)


class TestConservation:
    """generated == delivered + dropped, healthy and faulted."""

    def test_healthy_closed_loop_conserves_packets(self):
        machine, routes = setup()
        matrix = DemandMatrix.hotspot(SHAPE, rate=0.5, seed=6)
        spec = DemandSpec(
            demand=matrix, cores_per_chip=2, mode="closed", packets_scale=8.0
        )
        generated = len(generate_demand(machine, routes, spec))
        stats = run_demand(machine, routes, spec)
        assert stats.injected == generated
        assert stats.dropped == 0
        assert stats.delivered == generated

    def test_healthy_open_loop_conserves_packets(self):
        machine, routes = setup()
        spec = open_spec(injection="bernoulli", rate=0.5, seed=2)
        generated = len(generate_demand(machine, routes, spec))
        stats = run_demand(machine, routes, spec)
        assert stats.injected == generated
        assert stats.delivered + stats.dropped == generated
        assert stats.dropped == 0

    @pytest.mark.parametrize("policy", ["reroute", "drop", "retry"])
    def test_faulted_runs_conserve_packets(self, policy):
        machine, _routes = setup()
        torus = failable_channels(machine)
        fault_set = FaultSet(
            specs=(
                FaultSpec(kind="link", channel=torus[1], down_cycle=4),
                FaultSpec(
                    kind="link",
                    channel=torus[len(torus) // 3],
                    down_cycle=10,
                    up_cycle=30,
                ),
            ),
            shape=SHAPE,
        )
        runtime = FaultRuntime(
            machine,
            fault_set,
            policy=FaultPolicy(mode=policy, max_retries=3),
        )
        spec = open_spec(injection="bernoulli", rate=0.5, seed=9)
        generated = len(
            generate_demand(machine, runtime.route_computer, spec)
        )
        stats = run_demand(
            machine, runtime.route_computer, spec, faults=runtime
        )
        # Drops can happen at the source (never injected) and retries
        # re-inject, so ``injected`` counts injection *attempts*:
        # generated minus source drops plus re-injections. Every
        # generated packet is still accounted for exactly once as
        # delivered or dropped.
        assert stats.delivered + stats.dropped == generated
        assert stats.injected - stats.retried <= generated
        assert stats.delivered <= stats.injected


class TestRunDemand:
    def test_trace_bytes_are_deterministic(self):
        machine, routes = setup()

        def trace_bytes():
            stream = io.StringIO()
            writer = JsonlTraceWriter(stream, meta={"run": "demand-test"})
            run_demand(
                machine, routes, open_spec(seed=5), trace=writer
            )
            writer.flush()
            return stream.getvalue()

        first = trace_bytes()
        assert first == trace_bytes()
        assert '"ev":"inject"' in first.replace(" ", "")

    def test_iw_arbitration_runs(self):
        machine, routes = setup()
        matrix = DemandMatrix.hotspot(SHAPE, rate=0.4, seed=8)
        spec = DemandSpec(
            demand=matrix, cores_per_chip=2, mode="closed", packets_scale=4.0
        )
        stats = run_demand(machine, routes, spec, arbitration="iw")
        assert stats.delivered == stats.injected > 0


class TestSweepIntegration:
    def test_measure_demand_point_via_run_sweep(self):
        spec = DemandSpec(
            demand=DemandMatrix.hotspot(SHAPE, rate=0.4, seed=1),
            cores_per_chip=2,
            mode="open",
            duration_cycles=32,
            injection="paced",
            seed=3,
        )
        point = DemandPoint(
            config=MachineConfig(shape=SHAPE, endpoints_per_chip=2),
            spec=spec,
            label="demand-sweep",
        )
        points = [
            SweepPoint(
                label="demand-sweep",
                fn=measure_demand_point,
                kwargs={"point": point},
            )
        ]
        serial = run_sweep(points, max_workers=1)
        parallel = run_sweep(points, max_workers=2)
        assert serial[0].error is None and parallel[0].error is None
        assert serial[0].value == parallel[0].value
        result = serial[0].value
        assert result.generated == result.delivered + result.dropped
        assert result.offered_rate <= spec.schedule.epochs[0][1].max_row_sum()
        assert json.loads(json.dumps(result.__dict__))  # plain-data result
