"""Pins for the shared generator-parameter surfaces.

``matrix_from_params`` is the single authority behind every surface
that accepts demand-generator parameters (``repro demand``, the serve
protocol); ``pattern_factories``/``PATTERN_NAMES`` play the same role
for batch patterns. These tests pin that the shared helpers agree with
the underlying constructors and that the CLI's literal choice tuple
stays in sync.
"""

import json

import pytest

from repro.traffic.demand import DemandMatrix, matrix_from_params
from repro.traffic.patterns import PATTERN_NAMES, pattern_factories

SHAPE = (2, 2, 2)


class TestMatrixFromParams:
    def test_uniform_matches_constructor(self):
        assert matrix_from_params(SHAPE, "uniform", 0.2) == DemandMatrix.uniform(
            SHAPE, 0.2
        )

    def test_hotspot_matches_constructor(self):
        assert matrix_from_params(
            SHAPE, "hotspot", 0.1, seed=4, hotspots=2, hot_fraction=0.7
        ) == DemandMatrix.hotspot(
            SHAPE, 0.1, hotspots=2, hot_fraction=0.7, seed=4
        )

    def test_skew_matches_constructor(self):
        assert matrix_from_params(
            SHAPE, "skew", 0.1, seed=3, skew_exponent=2.0
        ) == DemandMatrix.skewed(SHAPE, 0.1, exponent=2.0, seed=3)

    def test_permutation_matches_constructor(self):
        assert matrix_from_params(
            SHAPE, "permutation", 0.1, seed=6
        ) == DemandMatrix.permutation(SHAPE, rate=0.1, seed=6)

    def test_seed_actually_selects_the_matrix(self):
        a = matrix_from_params(SHAPE, "hotspot", 0.1, seed=1)
        b = matrix_from_params(SHAPE, "hotspot", 0.1, seed=2)
        assert a != b

    def test_file_round_trips_matrix_json(self):
        matrix = DemandMatrix.hotspot(SHAPE, 0.1, seed=5)
        text = matrix.to_json()
        assert matrix_from_params(
            SHAPE, "file", 0.1, matrix_json=text
        ) == matrix

    def test_file_without_json_is_an_error(self):
        with pytest.raises(ValueError, match="matrix JSON"):
            matrix_from_params(SHAPE, "file", 0.1)

    def test_unknown_generator_is_an_error(self):
        with pytest.raises(ValueError, match="zipf"):
            matrix_from_params(SHAPE, "zipf", 0.1)


class TestPatternFactories:
    def test_factories_cover_exactly_the_declared_names(self):
        factories = pattern_factories(SHAPE)
        assert tuple(factories) == PATTERN_NAMES

    def test_factories_build_working_patterns(self):
        for name, factory in pattern_factories(SHAPE).items():
            pattern = factory()
            assert pattern is not None, name

    def test_cli_choices_stay_in_sync_with_pattern_names(self):
        # cli.py keeps a literal copy so it can defer importing the
        # traffic package; this is the pin that keeps the copy honest.
        from repro.cli import PATTERN_CHOICES

        assert tuple(PATTERN_CHOICES) == PATTERN_NAMES
