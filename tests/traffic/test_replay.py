"""Trace-replay conformance: a recorded run replays byte-for-byte.

The replay contract (:mod:`repro.traffic.replay`): feeding a recorded
JSONL trace back through :func:`replay_trace` reproduces the *exact*
bytes of the original -- header and metadata verbatim, every event
re-derived by actually re-running the simulation from the reconstructed
inject schedule. These tests pin that contract against the committed
golden traces and against freshly recorded runs, and pin the rejection
behavior for every class of non-replayable trace.
"""

import io
import json

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.sim.goldens import GOLDEN_DIR, render_golden
from repro.sim.trace import JsonlTraceWriter
from repro.traffic.demand import (
    DemandMatrix,
    DemandSpec,
    build_demand_engine,
)
from repro.traffic.patterns import Tornado
from repro.traffic.replay import (
    ReplayError,
    build_replay_engine,
    load_replay,
    replay_trace,
)

HEALTHY_GOLDENS = {
    # name -> weight_patterns needed to rebuild iw tables (None otherwise)
    "uniform_2x2x2": None,
    "tornado_4x1x1": [Tornado((4, 1, 1))],
    "pingpong_2x2x2": None,
    "demand_2x2x2": None,
}


def golden_text(name):
    return (GOLDEN_DIR / f"{name}.jsonl").read_text()


def round_trip(text, weight_patterns=None):
    out = io.StringIO()
    stats, workload, events = replay_trace(
        text.splitlines(), out_stream=out, weight_patterns=weight_patterns
    )
    return out.getvalue(), stats, workload, events


class TestGoldenRoundTrips:
    def test_uniform_golden_replays_bitwise(self):
        # The headline acceptance criterion: the committed uniform golden,
        # fed back through replay, reproduces its own bytes.
        text = golden_text("uniform_2x2x2")
        replayed, stats, workload, events = round_trip(text)
        assert replayed == text
        assert events == workload.num_events
        assert stats.delivered == len(workload.packets)

    @pytest.mark.parametrize("name", sorted(HEALTHY_GOLDENS))
    def test_every_healthy_golden_replays_bitwise(self, name):
        text = golden_text(name)
        replayed, _stats, _workload, _events = round_trip(
            text, weight_patterns=HEALTHY_GOLDENS[name]
        )
        assert replayed == text

    @pytest.mark.parametrize("name", sorted(HEALTHY_GOLDENS))
    def test_committed_goldens_match_generators(self, name):
        # Replay conformance is only meaningful if the committed bytes
        # are the generator's bytes.
        assert golden_text(name) == render_golden(name)

    def test_replay_of_replay_is_fixed_point(self):
        text = golden_text("uniform_2x2x2")
        once, _s, _w, _e = round_trip(text)
        twice, _s, _w, _e = round_trip(once)
        assert twice == once == text

    def test_faulted_golden_is_rejected(self):
        text = golden_text("faulted_2x2x2")
        with pytest.raises(ReplayError, match="not bitwise-replayable"):
            load_replay(text.splitlines())


class TestFreshTraceRoundTrip:
    def test_recorded_demand_run_replays_bitwise(self):
        shape = (2, 2, 2)
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=2))
        from repro.core.routing import RouteComputer

        routes = RouteComputer(machine)
        spec = DemandSpec(
            demand=DemandMatrix.hotspot(shape, rate=0.4, seed=21),
            cores_per_chip=2,
            mode="open",
            duration_cycles=40,
            injection="paced",
            seed=13,
        )
        stream = io.StringIO()
        writer = JsonlTraceWriter(
            stream,
            meta={
                "shape": list(shape),
                "endpoints": 2,
                "tpc": machine.ticks_per_cycle,
                "arb": "rr",
            },
        )
        engine = build_demand_engine(
            machine, routes, spec, arbitration="rr", trace=writer
        )
        engine.run()
        writer.flush()
        text = stream.getvalue()

        replayed, stats, _workload, _events = round_trip(text)
        assert replayed == text
        assert stats.delivered == engine.stats.delivered


class TestWorkloadReconstruction:
    def test_header_metadata_is_parsed(self):
        workload = load_replay(golden_text("tornado_4x1x1").splitlines())
        assert workload.shape == (4, 1, 1)
        assert workload.endpoints_per_chip == 1
        assert workload.arbitration == "iw"
        assert workload.pattern == "tornado"
        assert workload.cores == 1

    def test_packets_match_trace_events(self):
        text = golden_text("uniform_2x2x2")
        workload = load_replay(text.splitlines())
        events = [json.loads(line) for line in text.splitlines()[1:]]
        injects = {e["pid"]: e for e in events if e.get("ev") == "inject"}
        delivers = {e["pid"]: e for e in events if e.get("ev") == "deliver"}
        departs = {}
        for e in events:
            if e.get("ev") == "depart":
                departs.setdefault(e["pid"], []).append((e["ch"], e["vc"]))
        assert len(workload.packets) == len(injects) == len(delivers)
        by_pid = {p.pid: p for p in workload.packets}
        for pid, packet in by_pid.items():
            deliver = delivers[pid]
            assert packet.release_cycle == deliver["cyc"] - deliver["qlat"]
            assert list(packet.route.hops) == departs[pid]
            assert packet.route.src == injects[pid]["src"]
            assert packet.route.dst == injects[pid]["dst"]

    def test_per_source_blocks_are_queue_ordered(self):
        workload = load_replay(golden_text("demand_2x2x2").splitlines())
        last = {}
        for packet in workload.packets:
            src = packet.route.src
            assert last.get(src, -1) <= packet.release_cycle
            last[src] = packet.release_cycle


def perturbed(name="uniform_2x2x2", header=None, drop_last_deliver=False):
    lines = golden_text(name).splitlines()
    if header is not None:
        obj = json.loads(lines[0])
        obj.update(header)
        lines[0] = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    if drop_last_deliver:
        keep = []
        dropped = False
        for line in reversed(lines):
            if not dropped and '"ev":"deliver"' in line.replace(" ", ""):
                dropped = True
                continue
            keep.append(line)
        lines = list(reversed(keep))
        assert dropped
    return lines


class TestRejection:
    def test_empty_trace(self):
        with pytest.raises(ReplayError, match="empty trace"):
            load_replay([])
        with pytest.raises(ReplayError, match="empty trace"):
            load_replay(["", "  \n"])

    def test_missing_header(self):
        lines = golden_text("uniform_2x2x2").splitlines()
        with pytest.raises(ReplayError, match="no header record"):
            load_replay(lines[1:])

    def test_unsupported_schema(self):
        with pytest.raises(ReplayError, match="unsupported trace schema"):
            load_replay(perturbed(header={"schema": 2}))

    def test_missing_machine_metadata(self):
        lines = golden_text("uniform_2x2x2").splitlines()
        obj = json.loads(lines[0])
        del obj["shape"]
        lines[0] = json.dumps(obj, sort_keys=True)
        with pytest.raises(ReplayError, match="lacks 'shape'"):
            load_replay(lines)

    def test_timebase_mismatch(self):
        with pytest.raises(ReplayError, match="timebase"):
            load_replay(perturbed(header={"tpc": 99}))

    def test_header_only_trace_has_no_events(self):
        lines = [golden_text("uniform_2x2x2").splitlines()[0]]
        with pytest.raises(ReplayError, match="no events"):
            load_replay(lines)

    def test_interleaved_metadata_rejected(self):
        lines = golden_text("uniform_2x2x2").splitlines()
        # Splice a metadata record into the middle of the event stream.
        lines.insert(len(lines) // 2, '{"ev":"note","text":"mid"}')
        with pytest.raises(ReplayError, match="interleaved"):
            load_replay(lines)

    def test_truncated_trace_rejected(self):
        with pytest.raises(ReplayError, match="never delivered"):
            load_replay(perturbed(drop_last_deliver=True))

    def test_duplicate_inject_rejected(self):
        lines = golden_text("uniform_2x2x2").splitlines()
        index, inject = next(
            (i, line)
            for i, line in enumerate(lines)
            if '"ev":"inject"' in line.replace(" ", "")
        )
        lines.insert(index + 1, inject)
        with pytest.raises(ReplayError, match="injected twice"):
            load_replay(lines)

    def test_machine_mismatch_rejected(self):
        workload = load_replay(golden_text("uniform_2x2x2").splitlines())
        wrong = Machine(MachineConfig(shape=(4, 1, 1), endpoints_per_chip=2))
        with pytest.raises(ReplayError, match="does not match"):
            build_replay_engine(wrong, workload)

    def test_iw_without_weight_patterns_rejected(self):
        workload = load_replay(golden_text("tornado_4x1x1").splitlines())
        machine = Machine(MachineConfig(shape=(4, 1, 1), endpoints_per_chip=1))
        with pytest.raises(ReplayError, match="needs weight_patterns"):
            build_replay_engine(machine, workload)
