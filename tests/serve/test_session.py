"""Session conformance: quantum-sliced serving vs the serial oracle.

The load-bearing claims: advancing a session in bounded quanta (with
stream publishing interleaved) is bitwise-invisible next to one
uninterrupted ``run()``; so is an evict/thaw cycle, including after a
mid-run fault injection; and the trace stream carries exactly the lines
a :class:`~repro.sim.trace.JsonlTraceWriter` would have written.
"""

import asyncio
import json

import pytest

from repro.serve.protocol import decode_frame
from repro.serve.session import (
    MachineCache,
    OutboundChannel,
    Session,
    SessionConfig,
    SessionError,
    Subscriber,
    TraceStreamBuffer,
)
from repro.sim.metrics import MetricsCollector

from tests.serve.oracle import canon, oracle_artifacts, session_artifacts

BATCH_RR = {
    "kind": "batch",
    "shape": [2, 2, 2],
    "endpoints": 2,
    "cores": 2,
    "pattern": "uniform",
    "batch": 6,
    "seed": 11,
}

BATCH_IW = {
    "kind": "batch",
    "shape": [2, 2, 2],
    "endpoints": 2,
    "cores": 2,
    "pattern": "tornado",
    "batch": 5,
    "arbitration": "iw",
    "seed": 3,
}

DEMAND_AGE = {
    "kind": "demand",
    "shape": [2, 2, 2],
    "endpoints": 2,
    "cores": 2,
    "arbitration": "age",
    "seed": 5,
    "demand": {
        "generator": "hotspot",
        "rate": 0.08,
        "matrix_seed": 9,
        "epochs": 2,
        "epoch_length": 32,
        "duration": 96,
    },
}


def drive(session, cycles=None):
    return asyncio.run(session.advance(cycles))


async def _drain_in_steps(session, step):
    while True:
        result = await session.advance(step)
        if result["drained"]:
            return result


class TestConfigAndWorkloadValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SessionConfig(quantum_cycles=0)
        with pytest.raises(ValueError, match="backpressure"):
            SessionConfig(backpressure="spill")
        with pytest.raises(ValueError):
            SessionConfig(trace_batch=0)
        with pytest.raises(ValueError):
            SessionConfig(metrics_every=-1)
        with pytest.raises(ValueError):
            SessionConfig(max_cycles=0)

    def test_workload_rejects_bad_specs(self):
        with pytest.raises(SessionError, match="JSON object"):
            Session.create("s", ["batch"])
        with pytest.raises(SessionError, match="unknown workload kind"):
            Session.create("s", {"kind": "fuzz"})
        with pytest.raises(SessionError, match="shape"):
            Session.create("s", {"kind": "batch", "shape": [2, 2]})
        with pytest.raises(SessionError, match="arbitration"):
            Session.create("s", {"kind": "batch", "arbitration": "lotto"})
        with pytest.raises(SessionError, match="unknown pattern"):
            Session.create("s", {"kind": "batch", "pattern": "zigzag"})
        with pytest.raises(SessionError, match="idle sessions use rr"):
            Session.create("s", {"kind": "idle", "arbitration": "iw"})

    def test_machine_cache_shares_elaborations(self):
        cache = MachineCache()
        a = Session.create("a", dict(BATCH_RR), machines=cache)
        b = Session.create("b", dict(BATCH_RR), machines=cache)
        assert a.engine.machine is b.engine.machine
        assert len(cache) == 1


class TestOracleEquality:
    @pytest.mark.parametrize(
        "workload", [BATCH_RR, BATCH_IW, DEMAND_AGE], ids=["rr", "iw", "age"]
    )
    def test_run_matches_serial_oracle(self, workload):
        session = Session.create(
            "s", dict(workload), SessionConfig(quantum_cycles=17)
        )
        result = drive(session)
        assert result["drained"]
        assert session_artifacts(session) == oracle_artifacts(workload)

    def test_batch_stats_match_run_batch_itself(self):
        # Belt and braces on the oracle builder: the engine it constructs
        # reproduces run_batch() exactly for the same spec.
        from repro.core.machine import Machine, MachineConfig
        from repro.core.routing import RouteComputer
        from repro.sim.simulator import run_batch
        from repro.traffic.batch import BatchSpec
        from repro.traffic.patterns import pattern_factories

        shape = tuple(BATCH_RR["shape"])
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=2))
        stats = run_batch(
            machine,
            RouteComputer(machine),
            BatchSpec(
                pattern=pattern_factories(shape)["uniform"](),
                packets_per_source=BATCH_RR["batch"],
                cores_per_chip=BATCH_RR["cores"],
                seed=BATCH_RR["seed"],
            ),
        )
        session = Session.create("s", dict(BATCH_RR))
        drive(session)
        assert canon(session.stats_payload()["stats"]) == canon(
            stats.asdict()
        )

    def test_step_granularity_is_invisible(self):
        coarse = Session.create(
            "a", dict(DEMAND_AGE), SessionConfig(quantum_cycles=64)
        )
        fine = Session.create(
            "b", dict(DEMAND_AGE), SessionConfig(quantum_cycles=5)
        )
        drive(coarse)
        asyncio.run(_drain_in_steps(fine, 13))
        assert session_artifacts(fine) == session_artifacts(coarse)

    def test_step_on_drained_session_is_a_noop(self):
        session = Session.create("s", dict(BATCH_RR))
        drive(session)
        cycle = session.engine.cycle
        result = drive(session, 64)
        assert result["advanced"] == 0 and result["cycle"] == cycle

    def test_max_cycles_turns_wedge_into_error(self):
        session = Session.create(
            "s", dict(BATCH_RR), SessionConfig(max_cycles=4)
        )
        with pytest.raises(SessionError, match="max_cycles"):
            drive(session)
        assert not session.busy  # guard is released on the error path


class TestSpoolThaw:
    def test_evict_thaw_midrun_is_bitwise_invisible(self):
        session = Session.create(
            "s", dict(DEMAND_AGE), SessionConfig(quantum_cycles=16)
        )
        drive(session, 48)
        assert not session.drained  # the cut lands mid-run
        spooled = json.loads(canon(session.spool_payload()))
        thawed = Session.thaw(spooled)
        drive(thawed)
        assert thawed.thaws == 1
        assert session_artifacts(thawed) == oracle_artifacts(DEMAND_AGE)

    def test_thaw_preserves_serving_counters(self):
        session = Session.create(
            "s", dict(BATCH_RR), SessionConfig(quantum_cycles=8)
        )
        drive(session, 24)
        before = session.counters()
        thawed = Session.thaw(json.loads(canon(session.spool_payload())))
        after = thawed.counters()
        assert after["cycles_run"] == before["cycles_run"]
        assert after["quanta"] == before["quanta"]
        assert after["thaws"] == before["thaws"] + 1

    def test_thaw_rejects_foreign_payloads(self):
        with pytest.raises(SessionError, match="spool record"):
            Session.thaw({"kind": "checkpoint"})
        session = Session.create("s", dict(BATCH_RR))
        payload = session.spool_payload()
        payload["schema"] = 99
        with pytest.raises(SessionError, match="schema"):
            Session.thaw(payload)


class TestSubmitDemand:
    DEMAND = {
        "generator": "skew",
        "rate": 0.05,
        "matrix_seed": 2,
        "duration": 64,
        "seed": 7,
    }

    def test_submission_into_idle_matches_run_demand_oracle(self):
        session = Session.create(
            "s",
            {"kind": "idle", "shape": [2, 2, 2], "endpoints": 2},
            SessionConfig(quantum_cycles=9),
        )
        result = session.submit_demand(dict(self.DEMAND))
        assert result["enqueued"] > 0 and result["at_cycle"] == 0
        drive(session)
        oracle = oracle_artifacts(
            {
                "kind": "demand",
                "shape": [2, 2, 2],
                "endpoints": 2,
                "cores": 2,
                "seed": 0,
                "demand": dict(self.DEMAND),
            }
        )
        assert session_artifacts(session) == oracle

    def test_midrun_submission_shifts_release_cycles(self):
        session = Session.create("s", dict(BATCH_RR))
        drive(session)
        at = session.engine.cycle
        assert at > 0
        delivered = session.engine.stats.delivered
        result = session.submit_demand(dict(self.DEMAND))
        assert result["at_cycle"] == at and result["enqueued"] > 0
        final = drive(session)
        assert final["drained"]
        assert session.engine.stats.delivered > delivered
        assert session.demands_submitted == 1


class TestFaultInjection:
    def _fault_obj(self, session, down, up=None):
        from repro.faults import FAULT_SCHEMA_VERSION, failable_channels

        spec = {
            "kind": "link",
            "channel": failable_channels(session.engine.machine)[0],
            "down": down,
        }
        if up is not None:
            spec["up"] = up
        return {
            "version": FAULT_SCHEMA_VERSION,
            "shape": list(session.engine.machine.config.shape),
            "faults": [spec],
        }

    def _faulted_workload(self):
        workload = dict(DEMAND_AGE)
        workload["arbitration"] = "rr"
        workload["policy"] = {"mode": "reroute", "retries": 4}
        return workload

    def test_injection_needs_a_fault_runtime(self):
        session = Session.create("s", dict(BATCH_RR))
        with pytest.raises(ValueError, match="without fault support"):
            session.inject_faults(self._fault_obj(session, down=50))

    def test_injection_rejects_past_cycles(self):
        session = Session.create("s", self._faulted_workload())
        drive(session, 40)
        with pytest.raises(ValueError):
            session.inject_faults(self._fault_obj(session, down=10))

    def test_injection_schedules_and_survives_thaw_bitwise(self):
        # Two identical sessions, the same injection; one is frozen and
        # thawed after the injection but before the fault lands. Equal
        # final bytes pin that injected schedules live in the checkpoint.
        down, up = 64, 96
        finals = []
        for freeze in (False, True):
            session = Session.create(
                "s",
                self._faulted_workload(),
                SessionConfig(quantum_cycles=16),
            )
            drive(session, 32)
            result = session.inject_faults(
                self._fault_obj(session, down=down, up=up)
            )
            assert result["scheduled"] == 2  # down + up events
            if freeze:
                session = Session.thaw(
                    json.loads(canon(session.spool_payload()))
                )
            drive(session)
            assert session.faults_injected == 2
            finals.append(session_artifacts(session))
        assert finals[0] == finals[1]


class TestStreams:
    def test_trace_stream_carries_writer_identical_lines(self):
        class CaptureSink:
            def __init__(self):
                self.lines = []

            def emit(self, event):
                self.lines.append(event.to_json())

            def flush(self):
                pass

        async def scenario():
            session = Session.create(
                "s", dict(BATCH_RR), SessionConfig(quantum_cycles=16)
            )
            channel = OutboundChannel()
            session.subscribe(Subscriber(channel, ["trace"]))
            await session.advance()
            lines = []
            while not channel.empty():
                frame = decode_frame(channel.get_nowait())
                assert frame["stream"] == "trace"
                assert frame["session"] == "s"
                lines.extend(frame["events"])
            return lines, session.trace_events_streamed

        streamed, counted = asyncio.run(scenario())

        from repro.core.machine import Machine, MachineConfig
        from repro.core.routing import RouteComputer
        from repro.sim.simulator import build_batch_engine
        from repro.sim.trace import Tee
        from repro.traffic.batch import BatchSpec
        from repro.traffic.patterns import pattern_factories

        capture = CaptureSink()
        shape = tuple(BATCH_RR["shape"])
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=2))
        engine = build_batch_engine(
            machine,
            RouteComputer(machine),
            BatchSpec(
                pattern=pattern_factories(shape)["uniform"](),
                packets_per_source=BATCH_RR["batch"],
                cores_per_chip=BATCH_RR["cores"],
                seed=BATCH_RR["seed"],
            ),
            trace=Tee(MetricsCollector(window_cycles=256), capture),
        )
        engine.run()
        assert streamed == capture.lines
        assert counted == len(capture.lines) > 0

    def test_metrics_stream_honors_cadence(self):
        async def scenario():
            session = Session.create(
                "s", dict(BATCH_RR), SessionConfig(quantum_cycles=8)
            )
            channel = OutboundChannel()
            session.subscribe(Subscriber(channel, ["metrics"], metrics_every=24))
            await session.advance()
            frames = []
            while not channel.empty():
                frames.append(decode_frame(channel.get_nowait()))
            return frames

        frames = asyncio.run(scenario())
        assert frames, "expected at least one metrics push"
        cycles = [f["cycle"] for f in frames]
        assert cycles == sorted(cycles)
        assert all(b - a >= 24 for a, b in zip(cycles, cycles[1:]))
        assert all(f["stream"] == "metrics" for f in frames)
        assert "delivered" in frames[-1]["snapshot"]

    def test_subscriber_rejects_unknown_streams(self):
        with pytest.raises(SessionError, match="unknown streams"):
            Subscriber(OutboundChannel(), ["trace", "video"])

    def test_unsubscribe_disables_and_drains_the_buffer(self):
        session = Session.create("s", dict(BATCH_RR))
        channel = OutboundChannel()
        session.subscribe(Subscriber(channel, ["trace"]))
        assert session.buffer.enabled
        session.buffer.lines.append("pending")
        session.unsubscribe_channel(channel)
        assert not session.buffer.enabled
        assert session.buffer.lines == []

    def test_unobserved_sessions_buffer_nothing(self):
        session = Session.create("s", dict(BATCH_RR))
        drive(session)
        assert session.buffer.lines == []
        assert session.trace_events_streamed == 0


class TestBackpressure:
    def test_drop_oldest_counts_and_never_blocks(self):
        async def scenario():
            session = Session.create(
                "s",
                dict(BATCH_RR),
                SessionConfig(
                    quantum_cycles=8,
                    trace_batch=1,
                    backpressure="drop-oldest",
                ),
            )
            channel = OutboundChannel(limit=2)
            session.subscribe(Subscriber(channel, ["trace"]))
            result = await session.advance()
            return session, result

        session, result = asyncio.run(scenario())
        assert result["drained"]
        assert session.trace_frames_dropped > 0
        # The observed run still matches the oracle: dropping frames
        # must not perturb the simulation itself.
        assert session_artifacts(session) == oracle_artifacts(BATCH_RR)

    def test_drop_oldest_never_drops_control_frames(self):
        """Overload may discard event frames, never a queued reply: the
        exactly-one-reply-per-request invariant survives a drop storm."""

        async def scenario():
            session = Session.create(
                "s",
                dict(BATCH_RR),
                SessionConfig(
                    quantum_cycles=8,
                    trace_batch=1,
                    backpressure="drop-oldest",
                ),
            )
            channel = OutboundChannel(limit=2)
            channel.put_control(b"hello-frame")
            session.subscribe(Subscriber(channel, ["trace"]))
            await session.advance()
            channel.put_control(b"reply-frame")
            drained = []
            while not channel.empty():
                drained.append(channel.get_nowait())
            return session, drained

        session, drained = asyncio.run(scenario())
        assert session.trace_frames_dropped > 0
        # Both control frames survive, in order, around at most `limit`
        # event frames.
        assert drained[0] == b"hello-frame"
        assert drained[-1] == b"reply-frame"
        assert len(drained) <= 2 + 2

    def test_pause_blocks_until_the_consumer_catches_up(self):
        async def scenario():
            session = Session.create(
                "s",
                dict(BATCH_RR),
                SessionConfig(
                    quantum_cycles=8, trace_batch=1, backpressure="pause"
                ),
            )
            channel = OutboundChannel(limit=2)
            session.subscribe(Subscriber(channel, ["trace"]))
            drained = 0

            async def consumer():
                nonlocal drained
                while True:
                    frame = await channel.get()
                    if frame is None:
                        return
                    drained += 1

            task = asyncio.ensure_future(consumer())
            result = await session.advance()
            channel.put_control(None)
            await task
            return session, result, drained

        session, result, drained = asyncio.run(scenario())
        assert result["drained"]
        assert session.backpressure_pauses > 0
        assert session.trace_frames_dropped == 0
        assert drained == session.trace_events_streamed > 0


class TestBusyGuards:
    def test_requests_against_a_running_session_are_rejected(self):
        async def scenario():
            session = Session.create(
                "s", dict(DEMAND_AGE), SessionConfig(quantum_cycles=4)
            )
            task = asyncio.ensure_future(session.advance())
            await asyncio.sleep(0)
            assert session.busy
            with pytest.raises(SessionError, match="busy"):
                await session.advance(1)
            with pytest.raises(SessionError, match="busy"):
                session.snapshot_text()
            with pytest.raises(SessionError, match="busy"):
                session.submit_demand({})
            with pytest.raises(SessionError, match="busy"):
                session.spool_payload()
            # stats stays valid mid-run -- the one observation that must
            # not require quiescence.
            payload = session.stats_payload()
            assert payload["busy"] is True
            await task
            assert not session.busy

        asyncio.run(scenario())
