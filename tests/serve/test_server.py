"""Wire-level conformance and table-management tests for SimServer.

The headline test drives K interleaved sessions over real TCP -- one of
them force-evicted to the spool and transparently thawed mid-run -- and
byte-compares every session's stats, metrics, and checkpoint text
against its serial oracle. A second test kills a server after an
eviction and proves a fresh server on the same spool directory picks the
session up and still matches the oracle.
"""

import asyncio
import json
import pathlib

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import PROTOCOL_VERSION, encode_frame
from repro.serve.server import SimServer
from repro.serve.session import SessionConfig

from tests.serve.oracle import canon, oracle_artifacts

WORKLOADS = {
    "alpha": {
        "kind": "batch",
        "shape": [2, 2, 2],
        "endpoints": 2,
        "cores": 2,
        "pattern": "uniform",
        "batch": 6,
        "seed": 21,
    },
    "bravo": {
        "kind": "batch",
        "shape": [2, 2, 2],
        "endpoints": 2,
        "cores": 2,
        "pattern": "tornado",
        "batch": 5,
        "arbitration": "iw",
        "seed": 8,
    },
    "charlie": {
        "kind": "demand",
        "shape": [2, 2, 2],
        "endpoints": 2,
        "cores": 2,
        "arbitration": "age",
        "seed": 4,
        "demand": {
            "generator": "hotspot",
            "rate": 0.08,
            "matrix_seed": 5,
            "epochs": 2,
            "epoch_length": 32,
            "duration": 96,
        },
    },
    "delta": {
        "kind": "demand",
        "shape": [2, 2, 2],
        "endpoints": 2,
        "cores": 2,
        "seed": 13,
        "policy": {"mode": "reroute", "retries": 4},
        "demand": {
            "generator": "skew",
            "rate": 0.06,
            "matrix_seed": 1,
            "duration": 80,
        },
    },
}


async def _wire_artifacts(client, sid):
    stats = await client.stats(sid)
    snapshot = await client.snapshot(sid)
    return {
        "stats": canon(stats["stats"]),
        "metrics": canon(stats["metrics"]),
        "checkpoint": snapshot["checkpoint"],
    }


def test_interleaved_wire_sessions_match_serial_oracles(tmp_path):
    """K concurrent sessions, stepped round-robin over TCP, one of them
    evicted to the spool and thawed mid-run: every one must end
    byte-identical to its uninterrupted serial run."""

    async def scenario():
        server = SimServer(
            spool_dir=str(tmp_path / "spool"),
            session_config=SessionConfig(quantum_cycles=16),
        )
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)
            for sid, workload in WORKLOADS.items():
                created = await client.create(workload, session=sid)
                assert created["session"] == sid
                assert created["cycle"] == 0

            # Freeze one session mid-run; the next step request must
            # thaw it without the client doing anything.
            result = await client.step("bravo", 4)
            assert not result["drained"]
            result = await client.evict("bravo")
            assert result["evicted"]

            done = set()
            while len(done) < len(WORKLOADS):
                for sid in WORKLOADS:
                    if sid in done:
                        continue
                    result = await client.step(sid, 16)
                    if result["drained"]:
                        done.add(sid)

            wire = {
                sid: await _wire_artifacts(client, sid) for sid in WORKLOADS
            }
            stats = await client.server_stats()
            assert stats["evictions"] == 1
            assert stats["thaws"] == 1
            await client.close()
            return wire
        finally:
            await server.close()

    wire = asyncio.run(scenario())
    for sid, workload in WORKLOADS.items():
        assert wire[sid] == oracle_artifacts(workload), sid


def test_killed_server_recovers_spooled_sessions(tmp_path):
    """A server dying after an eviction loses nothing: a fresh server on
    the same spool directory re-indexes the record, and the session
    still completes byte-identical to its oracle."""
    spool = str(tmp_path / "spool")
    workload = WORKLOADS["charlie"]

    async def first_life():
        server = SimServer(
            spool_dir=spool,
            session_config=SessionConfig(quantum_cycles=16),
        )
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)
            await client.create(workload, session="survivor")
            result = await client.step("survivor", 48)
            assert not result["drained"]
            await client.evict("survivor")
            await client.close()
        finally:
            # No graceful shutdown of the session table: everything not
            # already spooled dies with the process.
            await server.close()

    async def second_life():
        server = SimServer(spool_dir=spool)
        await server.start()
        try:
            assert server.counters["recovered"] == 1
            assert "survivor" in server.spooled
            client = await ServeClient.connect(*server.address)
            result = await client.run("survivor")
            assert result["drained"]
            artifacts = await _wire_artifacts(client, "survivor")
            stats = await client.server_stats()
            assert stats["thaws"] == 1
            await client.close()
            return artifacts
        finally:
            await server.close()

    asyncio.run(first_life())
    artifacts = asyncio.run(second_life())
    assert artifacts == oracle_artifacts(workload)


def test_lru_eviction_makes_room_and_thaw_is_transparent(tmp_path):
    async def scenario():
        server = SimServer(spool_dir=str(tmp_path / "spool"), max_sessions=2)
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)
            for sid in ("one", "two", "three"):
                await client.create(WORKLOADS["alpha"], session=sid)
            # "one" was coldest when "three" arrived.
            stats = await client.server_stats()
            assert stats["sessions"] == {"live": 2, "spooled": 1, "max": 2}
            assert set(server.spooled) == {"one"}
            # Addressing "one" thaws it, which in turn evicts the new
            # coldest ("two") to make room.
            payload = await client.stats("one")
            assert payload["session"] == "one"
            assert set(server.spooled) == {"two"}
            assert server.counters["evictions"] == 2
            assert server.counters["thaws"] == 1
            await client.close()
        finally:
            await server.close()

    asyncio.run(scenario())


def test_eviction_without_spool_dir_is_an_error():
    async def scenario():
        server = SimServer(max_sessions=16)
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)
            await client.create(WORKLOADS["alpha"], session="s")
            with pytest.raises(ServeError, match="spool"):
                await client.evict("s")
            await client.close()
        finally:
            await server.close()

    asyncio.run(scenario())


def test_raw_wire_protocol_errors(tmp_path):
    """Drive the socket by hand: hello first, malformed lines get error
    replies (id -1 when unknowable), and the connection survives."""

    async def scenario():
        server = SimServer()
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(*server.address)
            hello = json.loads(await reader.readline())
            assert hello["type"] == "hello"
            assert hello["proto"] == PROTOCOL_VERSION

            async def roundtrip(raw):
                writer.write(raw)
                await writer.drain()
                return json.loads(await reader.readline())

            reply = await roundtrip(b"this is not json\n")
            assert reply["ok"] is False and reply["id"] == -1

            reply = await roundtrip(encode_frame({"type": "reboot", "id": 5}))
            assert reply["ok"] is False and reply["id"] == 5
            assert "unknown request type" in reply["error"]

            reply = await roundtrip(encode_frame({"type": "stats", "id": 6}))
            assert reply["ok"] is False and "session" in reply["error"]

            reply = await roundtrip(
                encode_frame({"type": "stats", "id": 7, "session": "ghost"})
            )
            assert reply["ok"] is False
            assert "unknown session" in reply["error"]

            # The connection is still usable after every error above.
            reply = await roundtrip(encode_frame({"type": "ping", "id": 8}))
            assert reply["ok"] is True and reply["result"]["pong"] is True

            writer.close()
            await writer.wait_closed()
            assert server.counters["protocol_errors"] == 3
        finally:
            await server.close()

    asyncio.run(scenario())


def test_create_validation_and_close(tmp_path):
    async def scenario():
        server = SimServer()
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)

            # Generated ids when the client does not pick one.
            sid = (await client.create(WORKLOADS["alpha"]))["session"]
            assert sid == "s0"

            with pytest.raises(ServeError, match="session ids"):
                await client.create(WORKLOADS["alpha"], session="../escape")
            with pytest.raises(ServeError, match="already exists"):
                await client.create(WORKLOADS["alpha"], session="s0")
            with pytest.raises(ServeError, match="unknown config keys"):
                await client.create(
                    WORKLOADS["alpha"], config={"quantum": 8}
                )
            with pytest.raises(ServeError, match="unknown workload kind"):
                await client.create({"kind": "fuzz"})

            # Per-session config overrides apply.
            await client.create(
                WORKLOADS["alpha"],
                config={"quantum_cycles": 4},
                session="tuned",
            )
            assert server.sessions["tuned"].config.quantum_cycles == 4

            result = await client.run("s0")
            assert result["drained"]
            closed = await client.close_session("s0")
            assert closed["closed"] is True
            assert closed["final"]["stats"]["delivered"] > 0
            with pytest.raises(ServeError, match="unknown session"):
                await client.stats("s0")
            await client.close()
        finally:
            await server.close()

    asyncio.run(scenario())


def test_subscribe_over_the_wire_streams_events():
    async def scenario():
        server = SimServer(session_config=SessionConfig(quantum_cycles=16))
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)
            await client.create(WORKLOADS["alpha"], session="s")
            sub = await client.subscribe(
                "s", streams=["trace", "metrics"], metrics_every=32
            )
            assert sub["streams"] == ["metrics", "trace"]
            with pytest.raises(ServeError, match="unknown streams"):
                await client.subscribe("s", streams=["video"])
            await client.run("s")
            await client.close_session("s")
            seen = {"trace": 0, "metrics": 0}
            while not client.events.empty():
                frame = client.events.get_nowait()
                if frame is None:
                    break
                assert frame["session"] == "s"
                seen[frame["stream"]] += (
                    len(frame.get("events", [])) or 1
                )
            await client.close()
            return seen
        finally:
            await server.close()

    seen = asyncio.run(scenario())
    assert seen["trace"] > 0
    assert seen["metrics"] > 0


def test_subscriptions_survive_evict_and_thaw(tmp_path):
    """Eviction parks a session's subscribers server-side and thaw
    re-attaches them: a subscribed client keeps receiving events after
    its session bounced through the spool."""

    async def scenario():
        server = SimServer(
            spool_dir=str(tmp_path / "spool"),
            session_config=SessionConfig(quantum_cycles=16),
        )
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)
            await client.create(WORKLOADS["alpha"], session="s")
            await client.subscribe("s", streams=["trace"])
            await client.evict("s")
            assert "s" in server._evicted_subs
            result = await client.run("s")  # transparent thaw
            assert result["drained"]
            assert not server._evicted_subs
            await client.close_session("s")
            events = 0
            while not client.events.empty():
                frame = client.events.get_nowait()
                if frame is None:
                    break
                assert frame["stream"] == "trace"
                events += len(frame.get("events", []))
            await client.close()
            return events
        finally:
            await server.close()

    assert asyncio.run(scenario()) > 0


def test_full_table_of_busy_sessions_keeps_spooled_session_reachable(
    tmp_path,
):
    """A thaw that cannot make room fails as an error reply, but the
    session must stay spooled -- reachable once the table clears."""

    async def scenario():
        server = SimServer(
            spool_dir=str(tmp_path / "spool"),
            max_sessions=1,
            session_config=SessionConfig(quantum_cycles=4),
        )
        await server.start()
        try:
            c1 = await ServeClient.connect(*server.address)
            c2 = await ServeClient.connect(*server.address)
            await c1.create(WORKLOADS["alpha"], session="a")
            await c1.evict("a")
            await c1.create(WORKLOADS["alpha"], session="b")
            run_task = asyncio.ensure_future(c1.run("b"))
            while not (
                "b" in server.sessions and server.sessions["b"].busy
            ):
                await asyncio.sleep(0)
            with pytest.raises(ServeError, match="busy"):
                await c2.stats("a")
            assert "a" in server.spooled
            assert pathlib.Path(server.spooled["a"]).exists()
            await run_task
            # Retry succeeds now that "b" is idle (it gets evicted).
            payload = await c2.stats("a")
            assert payload["session"] == "a"
            assert set(server.spooled) == {"b"}
            await c1.close()
            await c2.close()
        finally:
            await server.close()

    asyncio.run(scenario())


def test_server_stats_shape_and_counters():
    async def scenario():
        server = SimServer()
        await server.start()
        try:
            client = await ServeClient.connect(*server.address)
            await client.ping()
            await client.create(WORKLOADS["alpha"], session="s")
            await client.run("s")
            stats = await client.server_stats()
            await client.close()
            return stats
        finally:
            await server.close()

    stats = asyncio.run(scenario())
    assert stats["proto"] == PROTOCOL_VERSION
    assert stats["sessions"]["live"] == 1
    assert stats["connections"] == 1
    assert stats["created"] == 1
    # ping + create + run were counted; the server_stats request itself
    # is timed after its payload is built.
    assert stats["requests"] == 3
    assert stats["latency_us"]["count"] == stats["requests"]
    assert stats["latency_us"]["p99"] >= stats["latency_us"]["p50"] >= 0


def test_constructor_validation():
    with pytest.raises(ValueError, match="max_sessions"):
        SimServer(max_sessions=0)
    with pytest.raises(ValueError, match="outbound_limit"):
        SimServer(outbound_limit=0)
