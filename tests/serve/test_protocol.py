"""Frame-level tests for the serve wire protocol."""

import json

import pytest

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    SESSION_REQUEST_TYPES,
    ProtocolError,
    decode_frame,
    encode_frame,
    hello_frame,
    metrics_event_frame,
    parse_request,
    reply_error,
    reply_ok,
    trace_event_frame,
)


class TestEncodeDecode:
    def test_round_trip(self):
        frame = {"type": "ping", "id": 7}
        assert decode_frame(encode_frame(frame)) == frame

    def test_canonical_bytes_are_compact_and_newline_terminated(self):
        line = encode_frame({"type": "ping", "id": 1})
        assert line == b'{"type":"ping","id":1}\n'

    def test_insertion_order_is_preserved_not_sorted(self):
        # Embedded stats dicts carry meaning in key order; the codec must
        # never canonicalize by sorting.
        line = encode_frame({"type": "x", "zeta": 1, "alpha": 2})
        assert line.index(b"zeta") < line.index(b"alpha")

    def test_encode_rejects_non_dict_and_missing_type(self):
        with pytest.raises(ProtocolError):
            encode_frame(["type", "ping"])
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1})

    def test_encode_rejects_oversized_frame(self):
        blob = "x" * MAX_FRAME_BYTES
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": "x", "blob": blob})

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(b"not json\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1,2,3]\n")
        with pytest.raises(ProtocolError, match="'type'"):
            decode_frame(b'{"id":1}\n')
        with pytest.raises(ProtocolError, match="'type'"):
            decode_frame(b'{"type":5}\n')
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_frame(b'\xff\xfe{"type":"x"}\n')

    def test_decode_rejects_oversized_line(self):
        line = b'{"type":"x"}' + b" " * MAX_FRAME_BYTES
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_frame(line)

    def test_decode_accepts_str_input(self):
        assert decode_frame('{"type":"ping","id":1}') == {
            "type": "ping",
            "id": 1,
        }


class TestParseRequest:
    def test_every_declared_type_parses(self):
        for rtype in REQUEST_TYPES:
            frame = {"type": rtype, "id": 1}
            if rtype in SESSION_REQUEST_TYPES:
                frame["session"] = "s0"
            parsed = parse_request(frame)
            assert parsed[0] == rtype and parsed[1] == 1

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            parse_request({"type": "reboot", "id": 1})

    def test_id_must_be_a_real_integer(self):
        with pytest.raises(ProtocolError, match="integer 'id'"):
            parse_request({"type": "ping"})
        with pytest.raises(ProtocolError, match="integer 'id'"):
            parse_request({"type": "ping", "id": "1"})
        # bool is an int subclass but not a valid correlation id.
        with pytest.raises(ProtocolError, match="integer 'id'"):
            parse_request({"type": "ping", "id": True})

    def test_session_scoped_types_need_a_session(self):
        for rtype in sorted(SESSION_REQUEST_TYPES):
            with pytest.raises(ProtocolError, match="'session'"):
                parse_request({"type": rtype, "id": 1})
            with pytest.raises(ProtocolError, match="'session'"):
                parse_request({"type": rtype, "id": 1, "session": ""})

    def test_create_session_is_optional_but_must_be_string(self):
        assert parse_request({"type": "create", "id": 1}) == ("create", 1, None)
        assert parse_request(
            {"type": "create", "id": 1, "session": "mine"}
        ) == ("create", 1, "mine")
        with pytest.raises(ProtocolError, match="must be a string"):
            parse_request({"type": "create", "id": 1, "session": 5})


class TestFrameBuilders:
    def test_hello_carries_protocol_version(self):
        hello = hello_frame()
        assert hello["type"] == "hello"
        assert hello["proto"] == PROTOCOL_VERSION

    def test_reply_shapes(self):
        ok = reply_ok(3, {"pong": True})
        assert (ok["type"], ok["id"], ok["ok"]) == ("reply", 3, True)
        assert ok["result"] == {"pong": True}
        err = reply_error(4, "boom")
        assert (err["type"], err["id"], err["ok"]) == ("reply", 4, False)
        assert err["error"] == "boom"

    def test_event_frames(self):
        trace = trace_event_frame("s1", ['{"ev":"deliver"}'])
        assert trace["type"] == "event" and trace["stream"] == "trace"
        assert trace["session"] == "s1"
        assert trace["events"] == ['{"ev":"deliver"}']
        metrics = metrics_event_frame("s1", 128, {"delivered": 5})
        assert metrics["stream"] == "metrics" and metrics["cycle"] == 128
        assert metrics["snapshot"] == {"delivered": 5}

    def test_frames_survive_the_codec(self):
        for frame in (
            hello_frame(),
            reply_ok(1, {"a": 1}),
            reply_error(2, "no"),
            trace_event_frame("s", ["x"]),
            metrics_event_frame("s", 1, {}),
        ):
            assert decode_frame(encode_frame(frame)) == json.loads(
                json.dumps(frame)
            )
