"""Serial oracles for the serve conformance tests.

The serving path's acceptance bar is byte-identity against the direct
runners: a workload driven over the wire (in quanta, across evictions)
must produce the same stats dict, the same metrics snapshot, and the
same checkpoint text as one uninterrupted ``run()`` of the engine the
direct :func:`~repro.sim.simulator.run_batch` /
:func:`~repro.traffic.demand.run_demand` call would build. The helpers
here build and run exactly that engine.
"""

import json

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.serve.session import Session
from repro.sim.checkpoint import dumps as checkpoint_dumps
from repro.sim.checkpoint import snapshot_engine
from repro.sim.metrics import MetricsCollector


def canon(obj) -> str:
    """Canonical text of a JSON payload (compact, insertion-ordered)."""
    return json.dumps(obj, separators=(",", ":"))


def oracle_engine(workload, window_cycles=256):
    """Build the direct-runner engine for a serve workload spec.

    Mirrors ``Session.create``: same builders, same arbiter programming,
    same seeds -- but traced by a bare collector (the checkpoint trace
    section ignores the session's extra stream buffer, so the bytes must
    still agree). Returns ``(engine, collector)`` without running.
    """
    workload = dict(workload)
    shape = tuple(workload.get("shape", (2, 2, 2)))
    endpoints = int(workload.get("endpoints", 2))
    cores = int(workload.get("cores", 2))
    arbitration = workload.get("arbitration", "rr")
    seed = int(workload.get("seed", 0))
    machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=endpoints))
    routes = RouteComputer(machine)

    faults = None
    if workload.get("faults") is not None or "policy" in workload:
        from repro.faults import FaultPolicy, FaultRuntime, FaultSet

        if workload.get("faults") is not None:
            fault_set = FaultSet.from_json(json.dumps(workload["faults"]))
        else:
            fault_set = FaultSet(shape=shape)
        pol = workload.get("policy") or {}
        policy = FaultPolicy(
            mode=pol.get("mode", "reroute"),
            max_retries=int(pol.get("retries", 4)),
        )
        faults = FaultRuntime(machine, fault_set, policy=policy)
        routes = faults.route_computer

    collector = MetricsCollector(window_cycles=window_cycles)
    kind = workload.get("kind", "idle")
    if kind == "batch":
        from repro.sim.simulator import build_batch_engine
        from repro.traffic.batch import BatchSpec
        from repro.traffic.patterns import pattern_factories

        pattern = pattern_factories(shape)[workload.get("pattern", "uniform")]()
        spec = BatchSpec(
            pattern=pattern,
            packets_per_source=int(workload.get("batch", 8)),
            cores_per_chip=cores,
            seed=seed,
        )
        engine = build_batch_engine(
            machine,
            routes,
            spec,
            arbitration=arbitration,
            weight_patterns=[pattern] if arbitration == "iw" else None,
            trace=collector,
            faults=faults,
        )
    elif kind == "demand":
        from repro.traffic.demand import build_demand_engine

        spec = Session._demand_spec(
            workload.get("demand") or {}, shape, cores, seed, machine, routes
        )
        engine = build_demand_engine(
            machine,
            routes,
            spec,
            arbitration=arbitration,
            trace=collector,
            faults=faults,
        )
    else:
        raise ValueError(f"no oracle for workload kind {kind!r}")
    return engine, collector


def oracle_artifacts(workload):
    """Run a workload serially; return its canonical observable bytes."""
    engine, collector = oracle_engine(workload)
    engine.run()
    return {
        "stats": canon(engine.stats.asdict()),
        "metrics": canon(collector.snapshot()),
        "checkpoint": checkpoint_dumps(snapshot_engine(engine)),
    }


def session_artifacts(session):
    """The same three observables, read off a (drained) served session."""
    payload = session.stats_payload()
    return {
        "stats": canon(payload["stats"]),
        "metrics": canon(payload["metrics"]),
        "checkpoint": session.snapshot_text(),
    }
