"""Tests for the loadtest harness and its regression gate."""

import asyncio

import pytest

from repro.serve.loadtest import (
    LOADTEST_SCHEMA_VERSION,
    LoadTestSpec,
    check_report,
    default_workload,
    run_loadtest,
)


class TestSpec:
    def test_defaults_target_hundreds_of_sessions(self):
        spec = LoadTestSpec()
        assert spec.sessions >= 500

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadTestSpec(sessions=0)
        with pytest.raises(ValueError):
            LoadTestSpec(connections=0)
        with pytest.raises(ValueError):
            LoadTestSpec(step_cycles=0)
        with pytest.raises(ValueError):
            LoadTestSpec(arrival_spread_s=-0.1)

    def test_default_workload_varies_per_session(self):
        a = default_workload(0, seed=7)
        b = default_workload(1, seed=7)
        assert a["seed"] != b["seed"]
        assert a["kind"] == "batch"


class TestRun:
    def test_small_fleet_completes_with_measured_concurrency(self):
        spec = LoadTestSpec(
            sessions=40,
            connections=4,
            steps=2,
            step_cycles=32,
            arrival_spread_s=0.01,
            seed=3,
        )
        report = asyncio.run(run_loadtest(spec))
        assert report["kind"] == "serve-loadtest"
        assert report["schema"] == LOADTEST_SCHEMA_VERSION
        assert report["completed"] == 40
        assert report["failed"] == 0
        assert "first_error" not in report
        # The barrier holds every session resident while the coordinator
        # samples the server, so this is a measurement, not a hope.
        assert report["peak_live_sessions"] == 40
        assert report["in_process_server"] is True
        assert report["cycles_simulated"] > 0
        assert report["duration_s"] > 0
        # create + steps + stats + close per session.
        per_session = 1 + spec.steps + 2
        assert report["requests"] == 40 * per_session
        assert report["client_latency_us"]["count"] == report["requests"]
        assert report["server"]["created"] == 40
        assert report["server"]["closed"] == 40
        assert report["server"]["sessions"]["live"] == 0

    def test_external_server_needs_a_port(self):
        spec = LoadTestSpec(sessions=1)
        with pytest.raises(ValueError, match="port"):
            asyncio.run(run_loadtest(spec, host="127.0.0.1"))


class TestCheckReport:
    BASELINE = {
        "peak_live_sessions": 500,
        "client_latency_us": {"p99": 1000},
        "server": {"latency_us": {"p99": 400}},
    }

    def _report(self, **overrides):
        report = {
            "failed": 0,
            "peak_live_sessions": 500,
            "client_latency_us": {"p99": 1200},
            "server": {"latency_us": {"p99": 500}},
        }
        report.update(overrides)
        return report

    def test_clean_report_passes(self):
        assert check_report(self._report(), self.BASELINE) == []

    def test_failed_sessions_are_a_hard_floor(self):
        problems = check_report(self._report(failed=3), self.BASELINE)
        assert any("3 sessions failed" in p for p in problems)

    def test_lost_concurrency_is_a_hard_floor(self):
        problems = check_report(
            self._report(peak_live_sessions=20), self.BASELINE
        )
        assert any("peak_live_sessions" in p for p in problems)

    def test_latency_regression_beyond_factor_flags(self):
        report = self._report(client_latency_us={"p99": 5001})
        assert check_report(report, self.BASELINE, factor=5.0)
        report = self._report(client_latency_us={"p99": 4999})
        assert check_report(report, self.BASELINE, factor=5.0) == []

    def test_server_latency_checked_too(self):
        report = self._report(server={"latency_us": {"p99": 2001}})
        problems = check_report(report, self.BASELINE, factor=5.0)
        assert any("server p99" in p for p in problems)

    def test_missing_baseline_quantiles_do_not_flag(self):
        assert check_report(self._report(), {}) == []
