"""Tests for the simulation-as-a-service layer (repro.serve)."""
