"""Shared fixtures: small machines reused across the test suite.

Session-scoped because Machine construction elaborates every component
and channel; tests must treat these instances as immutable.
"""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer


@pytest.fixture(scope="session")
def tiny_machine():
    """2x2x2 torus, 2 endpoints per chip: the smallest full machine."""
    return Machine(MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2))


@pytest.fixture(scope="session")
def tiny_routes(tiny_machine):
    return RouteComputer(tiny_machine)


@pytest.fixture(scope="session")
def small_machine():
    """4x4x4 torus, 4 endpoints per chip: even radix (route tie-breaks)."""
    return Machine(MachineConfig(shape=(4, 4, 4), endpoints_per_chip=4))


@pytest.fixture(scope="session")
def small_routes(small_machine):
    return RouteComputer(small_machine)


@pytest.fixture(scope="session")
def odd_machine():
    """3x3x3 torus: odd radix, no route tie-breaks."""
    return Machine(MachineConfig(shape=(3, 3, 3), endpoints_per_chip=2))


@pytest.fixture(scope="session")
def odd_routes(odd_machine):
    return RouteComputer(odd_machine)
