"""Crash-resume integration for the sweep runner.

The acceptance property: kill a sweep mid-flight, restart it with
``resume=True``, and the completed sweep's results are identical to a
never-interrupted run -- through both the serial loop and the
process-pool path. Two persistence layers compose here:

* per-point result pickles in ``checkpoint_dir`` (completed points are
  not re-run on resume);
* per-point *engine* checkpoints (``BatchPoint.checkpoint_path``), so
  the point that was interrupted mid-simulation resumes from its last
  periodic snapshot rather than from cycle 0.

The "kill" is deterministic: ``REPRO_CRASH_AT_CYCLE`` makes
:func:`repro.sim.checkpoint.run_with_checkpoints` raise
``KeyboardInterrupt`` at a fixed cycle, exactly as an operator signal
would land between checkpoint writes.
"""

import dataclasses
import os

import pytest

from repro.analysis.throughput import BatchPoint, run_batch_points
from repro.core.machine import MachineConfig
from repro.sim.checkpoint import CRASH_ENV_VAR
from repro.traffic.patterns import UniformRandom

# Short point drains at cycle 73; long points run past 110. Crashing at
# cycle 90 with 32-cycle checkpoints means: the short point completes
# and persists its result, the interrupted long point leaves an engine
# snapshot from cycle 64 behind, and any point after the crash never
# started at all -- all three resume paths in one sweep.
CRASH_CYCLE = 90
CHECKPOINT_EVERY = 32
POINT_SPECS = [(2, 3), (32, 4), (32, 5)]  # (batch_size, seed)


def _points(engine_ckpt_dir=None):
    config = MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2)
    pattern = UniformRandom(config.shape)
    return [
        BatchPoint(
            config=config,
            pattern=pattern,
            batch_size=batch,
            cores_per_chip=2,
            arbitration="rr",
            seed=seed,
            collect_metrics=True,
            checkpoint_path=(
                None
                if engine_ckpt_dir is None
                else os.path.join(engine_ckpt_dir, f"engine_{i}.json")
            ),
            checkpoint_every=0 if engine_ckpt_dir is None else CHECKPOINT_EVERY,
        )
        for i, (batch, seed) in enumerate(POINT_SPECS)
    ]


def _comparable(result):
    fields = dataclasses.asdict(result)
    del fields["wall_seconds"]  # the one legitimately nondeterministic field
    return fields


@pytest.mark.parametrize("max_workers", [1, 2], ids=["serial", "pool"])
def test_killed_sweep_resumes_bitwise(tmp_path, monkeypatch, max_workers):
    reference = run_batch_points(_points(), max_workers=1)

    engine_dir = tmp_path / "engines"
    engine_dir.mkdir()
    sweep_dir = tmp_path / "sweep"

    # Leg 1: the sweep dies at CRASH_CYCLE. Worker processes inherit the
    # environment, so the pool path crashes inside its workers and the
    # interrupt surfaces through future.result().
    monkeypatch.setenv(CRASH_ENV_VAR, str(CRASH_CYCLE))
    with pytest.raises(KeyboardInterrupt):
        run_batch_points(
            _points(str(engine_dir)),
            max_workers=max_workers,
            checkpoint_dir=str(sweep_dir),
        )
    monkeypatch.delenv(CRASH_ENV_VAR)

    if max_workers == 1:
        # Serial order is deterministic: the short point finished and
        # persisted, the first long point died between checkpoints (its
        # cycle-64 engine snapshot survives, its own checkpoint file was
        # *not* cleaned up), and the third point never started.
        assert (sweep_dir / "point_0000.result.pkl").exists()
        assert not (sweep_dir / "point_0001.result.pkl").exists()
        assert not (sweep_dir / "point_0002.result.pkl").exists()
        assert not (engine_dir / "engine_0.json").exists()  # removed on success
        assert (engine_dir / "engine_1.json").exists()
        assert not (engine_dir / "engine_2.json").exists()
    else:
        # Pool scheduling is timing-dependent; the invariant is just
        # that the sweep did not finish.
        persisted = sorted(p.name for p in sweep_dir.glob("*.result.pkl"))
        assert len(persisted) < len(POINT_SPECS)

    # Leg 2: restart with resume. Completed points load from their
    # pickles, the interrupted point resumes from its engine snapshot,
    # never-started points run fresh.
    resumed = run_batch_points(
        _points(str(engine_dir)),
        max_workers=max_workers,
        checkpoint_dir=str(sweep_dir),
        resume=True,
    )

    assert len(resumed) == len(reference)
    for got, want in zip(resumed, reference):
        assert _comparable(got) == _comparable(want)
        assert got.metrics == want.metrics
    # Every engine snapshot was consumed and cleaned up on completion.
    assert list(engine_dir.glob("*.json")) == []


def test_resume_with_nothing_done_equals_fresh_run(tmp_path):
    # resume=True against an empty checkpoint dir is just a normal run.
    reference = run_batch_points(_points(), max_workers=1)
    resumed = run_batch_points(
        _points(),
        max_workers=1,
        checkpoint_dir=str(tmp_path / "sweep"),
        resume=True,
    )
    for got, want in zip(resumed, reference):
        assert _comparable(got) == _comparable(want)


def test_completed_sweep_resume_is_pure_replay(tmp_path):
    # A second resume invocation after success re-runs nothing: results
    # come back from the pickles (observable via the recorded pids/walls
    # being byte-for-byte the persisted ones).
    sweep_dir = str(tmp_path / "sweep")
    first = run_batch_points(
        _points(), max_workers=1, checkpoint_dir=sweep_dir
    )
    replayed = run_batch_points(
        _points(), max_workers=1, checkpoint_dir=sweep_dir, resume=True
    )
    for got, want in zip(replayed, first):
        # Full equality including wall_seconds: these are the persisted
        # results themselves, not re-measurements.
        assert dataclasses.asdict(got) == dataclasses.asdict(want)
