"""Integration tests: analytic models against the cycle-level simulator."""

import pytest

from repro.analysis.fairness import finish_time_fairness
from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.simulator import run_batch
from repro.traffic.batch import BatchSpec, generate_batch
from repro.traffic.loads import compute_loads, ideal_batch_cycles
from repro.traffic.patterns import Tornado, UniformRandom


class TestLoadsPredictSimulation:
    """The analytic expected loads must match measured channel traffic."""

    def test_channel_flits_match_expected_loads(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        batch = 64
        table = compute_loads(tiny_machine, tiny_routes, pattern, cores_per_chip=2)
        spec = BatchSpec(pattern, packets_per_source=batch, cores_per_chip=2, seed=2)
        stats = run_batch(tiny_machine, tiny_routes, spec, arbitration="rr")
        # Aggregate per channel kind: statistical noise washes out.
        expected = {}
        measured = {}
        for cid, load in table.channel_load.items():
            kind = tiny_machine.channels[cid].kind
            expected[kind] = expected.get(kind, 0.0) + load * batch
        for cid, flits in stats.channel_flits.items():
            kind = tiny_machine.channels[cid].kind
            measured[kind] = measured.get(kind, 0.0) + flits
        for kind, value in expected.items():
            assert measured[kind] == pytest.approx(value, rel=0.06), kind

    def test_deterministic_pattern_matches_exactly_per_channel(
        self, tiny_machine, tiny_routes
    ):
        # Tornado with a fixed seed still randomizes routes, so compare
        # totals over torus channels, which are route-invariant.
        pattern = Tornado((2, 2, 2))
        batch = 32
        table = compute_loads(tiny_machine, tiny_routes, pattern, cores_per_chip=2)
        spec = BatchSpec(pattern, packets_per_source=batch, cores_per_chip=2, seed=1)
        stats = run_batch(tiny_machine, tiny_routes, spec, arbitration="rr")
        expected_torus = sum(
            load * batch
            for cid, load in table.channel_load.items()
            if tiny_machine.channels[cid].kind == ChannelKind.TORUS
        )
        measured_torus = sum(
            flits
            for cid, flits in stats.channel_flits.items()
            if tiny_machine.channels[cid].kind == ChannelKind.TORUS
        )
        assert measured_torus == pytest.approx(expected_torus, rel=1e-9)

    def test_completion_not_faster_than_ideal(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        table = compute_loads(tiny_machine, tiny_routes, pattern, cores_per_chip=2)
        batch = 64
        spec = BatchSpec(pattern, packets_per_source=batch, cores_per_chip=2, seed=3)
        stats = run_batch(tiny_machine, tiny_routes, spec, arbitration="rr")
        # The torus-normalized ideal is a lower bound on completion time
        # up to batch sampling noise.
        ideal = ideal_batch_cycles(tiny_machine, table, batch)
        assert stats.last_delivery_cycle > 0.5 * ideal


class TestFairnessEndToEnd:
    """The paper's core result at demonstration scale: beyond saturation,
    round-robin starves distant sources while inverse weighting holds
    every source near equal finish times (tornado on an X ring)."""

    @pytest.fixture(scope="class")
    def tornado_setup(self):
        config = MachineConfig(shape=(8, 2, 2), endpoints_per_chip=2)
        machine = Machine(config)
        routes = RouteComputer(machine)
        pattern = Tornado(config.shape)
        table = compute_loads(machine, routes, pattern, cores_per_chip=2)
        return machine, routes, pattern, table

    def test_inverse_weighted_beats_round_robin(self, tornado_setup):
        machine, routes, pattern, table = tornado_setup
        # The batch must exceed the network's total buffer capacity for
        # sustained saturation (the regime Figure 9 measures); at 192
        # packets per source the gap is ~1.8x at this scale.
        batch = 192
        ideal = ideal_batch_cycles(machine, table, batch)
        results = {}
        for arbitration in ("rr", "iw"):
            spec = BatchSpec(
                pattern, packets_per_source=batch, cores_per_chip=2, seed=5
            )
            stats = run_batch(
                machine, routes, spec,
                arbitration=arbitration,
                weight_patterns=[pattern] if arbitration == "iw" else None,
            )
            results[arbitration] = {
                "throughput": ideal / stats.last_delivery_cycle,
                "fairness": finish_time_fairness(stats),
            }
        assert (
            results["iw"]["throughput"] > 1.25 * results["rr"]["throughput"]
        )
        # Inverse weighting also evens out finish times.
        assert results["iw"]["fairness"][1] < results["rr"]["fairness"][1]

    def test_all_packets_delivered_under_both_policies(self, tornado_setup):
        machine, routes, pattern, _table = tornado_setup
        for arbitration in ("rr", "iw"):
            spec = BatchSpec(pattern, packets_per_source=16, cores_per_chip=2, seed=1)
            stats = run_batch(
                machine, routes, spec,
                arbitration=arbitration,
                weight_patterns=[pattern] if arbitration == "iw" else None,
            )
            assert stats.delivered == stats.injected


class TestBothVcSchemesRunIdenticalWorkloads:
    def test_same_batch_same_deliveries(self):
        results = {}
        for scheme in ("anton", "baseline"):
            config = MachineConfig(
                shape=(3, 3, 3), endpoints_per_chip=2, vc_scheme=scheme
            )
            machine = Machine(config)
            routes = RouteComputer(machine)
            pattern = UniformRandom((3, 3, 3))
            spec = BatchSpec(pattern, packets_per_source=16, cores_per_chip=2, seed=7)
            stats = run_batch(machine, routes, spec, arbitration="rr")
            results[scheme] = stats.delivered
        assert results["anton"] == results["baseline"]
