"""Arbiter service accounting under real network traffic.

Two properties are checked at the hottest arbitration point feeding a
torus channel:

* **conservation** -- over a completed batch, cumulative grant shares
  match the analytic per-input loads under *any* policy (every packet
  eventually passes), validating the load analytics against the
  simulator. This is also why arbitration unfairness manifests as
  finish-time spread (tested in ``test_end_to_end.py``) rather than as
  final counts;
* **mid-run observability** -- :meth:`Engine.run_for` exposes the
  saturated phase, where instantaneous shares are shaped by both the
  arbiter policy and upstream supply (the reason the paper evaluates
  EoS end to end rather than per arbiter).
"""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.engine import Engine
from repro.sim.simulator import (
    arbiter_builder_for,
    make_vc_weight_tables,
    make_weight_tables,
)
from repro.traffic.batch import BatchSpec, generate_batch
from repro.traffic.loads import compute_loads
from repro.traffic.patterns import Tornado


@pytest.fixture(scope="module")
def setup():
    machine = Machine(MachineConfig(shape=(8, 2, 2), endpoints_per_chip=4))
    routes = RouteComputer(machine)
    pattern = Tornado((8, 2, 2))
    table = compute_loads(machine, routes, pattern, cores_per_chip=4)
    return machine, routes, pattern, table


def hottest_merge(machine, table):
    """The output channel with the largest load that has >= 2 loaded
    inputs (a real merge point)."""
    best = None
    best_load = 0.0
    for oc, per_input in table.arbiter_load.items():
        loaded = [g for g in per_input if g > 1e-9]
        if len(loaded) < 2:
            continue
        load = table.channel_load[oc]
        if load > best_load:
            best_load = load
            best = oc
    assert best is not None
    return best


def make_engine(machine, routes, pattern, arbitration, tables=None):
    builder = arbiter_builder_for(arbitration, tables[0] if tables else None, 1)
    vc_builder = arbiter_builder_for(arbitration, tables[1] if tables else None, 1)
    engine = Engine(machine, arbiter_builder=builder, vc_arbiter_builder=vc_builder)
    spec = BatchSpec(pattern, packets_per_source=96, cores_per_chip=4, seed=3)
    for packet in generate_batch(machine, routes, spec):
        engine.enqueue(packet)
    return engine


def max_share_deviation(engine, oc, expected):
    grants = engine.arbiters[oc].grants
    total_granted = sum(grants)
    assert total_granted > 0
    total_expected = sum(expected)
    return max(
        abs(grants[i] / total_granted - expected[i] / total_expected)
        for i in range(len(expected))
    )


class TestRunFor:
    def test_partial_run_then_completion(self, setup):
        machine, routes, pattern, _table = setup
        engine = make_engine(machine, routes, pattern, "rr")
        stats = engine.run_for(300)
        assert engine.cycle >= 300
        assert stats.delivered < stats.injected + engine.buffered_packets() or True
        final = engine.run()
        assert final.delivered == final.injected

    def test_run_for_observes_saturation(self, setup):
        machine, routes, pattern, table = setup
        oc = hottest_merge(machine, table)
        engine = make_engine(machine, routes, pattern, "rr")
        engine.run_for(600)
        # Mid-run: the batch is still flowing and the merge has granted.
        assert sum(engine.arbiters[oc].grants) > 0
        assert engine.buffered_packets() > 0

    def test_run_for_returns_early_when_drained(self, tiny_machine, tiny_routes):
        from repro.core.routing import RouteChoice
        from repro.sim.packet import Packet

        engine = Engine(tiny_machine)
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 0, 0), 0)]
        engine.enqueue(Packet(0, tiny_routes.compute(src, dst, RouteChoice())))
        engine.run_for(100_000)
        assert engine.stats.delivered == 1
        assert engine.cycle < 1000


class TestCompletedRunConservation:
    @pytest.mark.parametrize("arbitration", ["rr", "iw"])
    def test_cumulative_shares_match_loads(self, setup, arbitration):
        machine, routes, pattern, table = setup
        oc = hottest_merge(machine, table)
        tables = None
        if arbitration == "iw":
            tables = (
                make_weight_tables(machine, routes, [pattern], 4, load_tables=[table]),
                make_vc_weight_tables(
                    machine, routes, [pattern], 4, load_tables=[table]
                ),
            )
        engine = make_engine(machine, routes, pattern, arbitration, tables)
        engine.run()
        assert max_share_deviation(engine, oc, table.arbiter_load[oc]) < 0.02
