"""CLI tests for the serving subcommands (repro loadtest / repro serve)."""

import json

import pytest

from repro.cli import main


class TestLoadtestCommand:
    def _run(self, tmp_path, *extra):
        out = tmp_path / "BENCH_serve.json"
        rc = main(
            [
                "loadtest",
                "--sessions",
                "12",
                "--connections",
                "3",
                "--steps",
                "1",
                "--step-cycles",
                "16",
                "--spread",
                "0.0",
                "--out",
                str(out),
                *extra,
            ]
        )
        return rc, out

    def test_writes_report_and_exits_zero(self, tmp_path, capsys):
        rc, out = self._run(tmp_path)
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["kind"] == "serve-loadtest"
        assert report["completed"] == 12
        assert report["failed"] == 0
        assert report["peak_live_sessions"] == 12
        stdout = capsys.readouterr().out
        assert "12/12 sessions completed" in stdout
        assert "latency us" in stdout

    def test_check_against_own_baseline_passes(self, tmp_path, capsys):
        rc, out = self._run(tmp_path)
        assert rc == 0
        rc, _ = self._run(tmp_path, "--check", str(out), "--tolerance", "1e9")
        assert rc == 0
        assert "ok" in capsys.readouterr().out

    def test_check_regression_is_soft_gateable(self, tmp_path, capsys):
        rc, out = self._run(tmp_path)
        assert rc == 0
        baseline = json.loads(out.read_text())
        baseline["peak_live_sessions"] = 10_000  # unreachable floor
        gate = tmp_path / "impossible.json"
        gate.write_text(json.dumps(baseline))

        (tmp_path / "hard").mkdir()
        (tmp_path / "soft").mkdir()
        rc, _ = self._run(tmp_path / "hard", "--check", str(gate))
        captured = capsys.readouterr()
        assert rc == 2
        assert "::warning title=serve regression::" in captured.out
        assert "SERVE REGRESSION" in captured.err

        rc, _ = self._run(tmp_path / "soft", "--check", str(gate), "--soft")
        assert rc == 0


class TestServeCommand:
    def test_parser_wires_the_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        helptext = capsys.readouterr().out
        assert "--spool-dir" in helptext
        assert "--max-sessions" in helptext
        assert "--backpressure" in helptext
