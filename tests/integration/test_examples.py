"""Smoke tests: the example scripts run and produce their headline output.

The heavyweight sweep examples are exercised through their importable
pieces elsewhere; here we run the fast scripts end to end as a user
would.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, timeout=360):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Anton 2 machine 4x4x4" in output
        assert "SKIP" in output or "TORUS" in output
        assert "norm. throughput" in output

    def test_md_multicast(self):
        output = run_example("md_multicast.py", timeout=120)
        assert "saves" in output
        assert "full-shell" in output
        assert "half-shell" in output

    def test_route_optimizer_demo(self):
        output = run_example("route_optimizer_demo.py", timeout=120)
        assert "V-,U+,U-,V+" in output
        assert "True" in output  # paper's order in the optimal class
        assert "2 torus channels" in output

    def test_link_and_reduction(self):
        output = run_example("link_and_reduction.py", timeout=120)
        assert "89.6" in output
        assert "combining chips" in output

    def test_latency_vs_load(self):
        output = run_example("latency_vs_load.py", timeout=300)
        assert "saturation" in output
        assert "p99" in output

    def test_latency_pingpong(self):
        output = run_example("latency_pingpong.py", timeout=360)
        assert "linear fit" in output
        assert "99" in output

    def test_degraded_throughput(self):
        output = run_example("degraded_throughput.py", timeout=360)
        assert "failed torus links" in output
        assert "vs healthy" in output
        # The sweep spans the healthy baseline through 4 failed links.
        for k in range(5):
            assert f"\n{k:>5d} " in output

    @pytest.mark.slow
    def test_fairness_sweep(self):
        output = run_example("fairness_sweep.py", timeout=1800)
        assert "tornado fraction" in output
