"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_endpoint, parse_shape


class TestParsers:
    def test_parse_shape(self):
        assert parse_shape("8x2x2") == (8, 2, 2)
        assert parse_shape("4X4X4") == (4, 4, 4)

    def test_parse_shape_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_shape("8x2")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_shape("axbxc")

    def test_parse_endpoint(self):
        assert parse_endpoint("1,2,3:4") == ((1, 2, 3), 4)
        assert parse_endpoint("0,0,0") == ((0, 0, 0), 0)

    def test_parse_endpoint_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_endpoint("1,2")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--shape", "2x2x2", "--endpoints", "2"]) == 0
        out = capsys.readouterr().out
        assert "2x2x2" in out
        assert "nodecards" in out

    def test_route(self, capsys):
        code = main(
            [
                "route", "--shape", "2x2x2", "--endpoints", "2",
                "--src", "0,0,0:0", "--dst", "1,0,0:1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TORUS" in out
        assert "inter-node hops" in out

    def test_search(self, capsys):
        assert main(["search"]) == 0
        out = capsys.readouterr().out
        assert "2.0 torus channels" in out
        assert "V-,U+,U-,V+" in out

    def test_deadlock_safe_scheme(self, capsys):
        assert main(["deadlock", "--shape", "2x2x2", "--scheme", "anton"]) == 0
        assert "deadlock_free=True" in capsys.readouterr().out

    def test_deadlock_unsafe_scheme(self, capsys):
        assert (
            main(["deadlock", "--shape", "4x1x1", "--scheme", "unsafe-single"]) == 0
        )
        out = capsys.readouterr().out
        assert "deadlock_free=False" in out
        assert "cycle:" in out

    def test_throughput(self, capsys):
        code = main(
            [
                "throughput", "--shape", "2x2x2", "--endpoints", "2",
                "--cores", "2", "--batch", "8", "--pattern", "tornado",
                "--arbitration", "rr",
            ]
        )
        assert code == 0
        assert "normalized throughput" in capsys.readouterr().out

    def test_latency(self, capsys):
        assert main(["latency", "--shape", "4x2x2", "--endpoints", "2"]) == 0
        out = capsys.readouterr().out
        assert "ns/hop" in out
        assert "minimum inter-node latency" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Queues" in out
        assert "Router" in out

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "random" in out
        assert "pJ/flit" in out
