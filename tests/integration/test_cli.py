"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_endpoint, parse_shape


class TestParsers:
    def test_parse_shape(self):
        assert parse_shape("8x2x2") == (8, 2, 2)
        assert parse_shape("4X4X4") == (4, 4, 4)
        # Two axes are valid for the 2D topologies (mesh, chiplet).
        assert parse_shape("8x2") == (8, 2)

    def test_parse_shape_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_shape("8")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_shape("axbxc")

    def test_parse_endpoint(self):
        assert parse_endpoint("1,2,3:4") == ((1, 2, 3), 4)
        assert parse_endpoint("0,0,0") == ((0, 0, 0), 0)

    def test_parse_endpoint_invalid(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_endpoint("1,2")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--shape", "2x2x2", "--endpoints", "2"]) == 0
        out = capsys.readouterr().out
        assert "2x2x2" in out
        assert "nodecards" in out

    def test_route(self, capsys):
        code = main(
            [
                "route", "--shape", "2x2x2", "--endpoints", "2",
                "--src", "0,0,0:0", "--dst", "1,0,0:1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TORUS" in out
        assert "inter-node hops" in out

    def test_search(self, capsys):
        assert main(["search"]) == 0
        out = capsys.readouterr().out
        assert "2.0 torus channels" in out
        assert "V-,U+,U-,V+" in out

    def test_deadlock_safe_scheme(self, capsys):
        assert main(["deadlock", "--shape", "2x2x2", "--scheme", "anton"]) == 0
        assert "deadlock_free=True" in capsys.readouterr().out

    def test_deadlock_unsafe_scheme(self, capsys):
        assert (
            main(["deadlock", "--shape", "4x1x1", "--scheme", "unsafe-single"]) == 0
        )
        out = capsys.readouterr().out
        assert "deadlock_free=False" in out
        assert "cycle:" in out

    def test_throughput(self, capsys):
        code = main(
            [
                "throughput", "--shape", "2x2x2", "--endpoints", "2",
                "--cores", "2", "--batch", "8", "--pattern", "tornado",
                "--arbitration", "rr",
            ]
        )
        assert code == 0
        assert "normalized throughput" in capsys.readouterr().out

    def test_latency(self, capsys):
        assert main(["latency", "--shape", "4x2x2", "--endpoints", "2"]) == 0
        out = capsys.readouterr().out
        assert "ns/hop" in out
        assert "minimum inter-node latency" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Queues" in out
        assert "Router" in out

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "random" in out
        assert "pJ/flit" in out


class TestTraceCommand:
    def test_list_goldens(self, capsys):
        from repro.sim.goldens import GOLDEN_NAMES

        assert main(["trace", "--list-goldens"]) == 0
        out = capsys.readouterr().out
        for name in GOLDEN_NAMES:
            assert name in out

    def test_golden_matches_committed_artifact(self, tmp_path):
        from repro.sim.goldens import committed_golden_path

        out_path = tmp_path / "golden.jsonl"
        code = main(
            ["trace", "--golden", "pingpong_2x2x2", "--out", str(out_path)]
        )
        assert code == 0
        assert (
            out_path.read_text()
            == committed_golden_path("pingpong_2x2x2").read_text()
        )

    def test_unknown_golden_rejected(self, tmp_path, capsys):
        code = main(["trace", "--golden", "nonesuch",
                     "--out", str(tmp_path / "x.jsonl")])
        assert code == 2
        assert "unknown golden trace" in capsys.readouterr().err
        assert not (tmp_path / "x.jsonl").exists()

    def test_generic_run_writes_parseable_trace(self, tmp_path, capsys):
        from repro.sim.trace import read_trace

        out_path = tmp_path / "run.jsonl"
        code = main(
            [
                "trace", "--shape", "2x2x2", "--endpoints", "2",
                "--cores", "2", "--pattern", "uniform", "--batch", "2",
                "--seed", "5", "--out", str(out_path),
            ]
        )
        assert code == 0
        records, events = read_trace(out_path.read_text().splitlines())
        assert records[0]["ev"] == "trace"
        assert records[-1]["ev"] == "end"
        kinds = {e.kind for e in events}
        assert "inject" in kinds and "deliver" in kinds
        # The human-readable summary goes to stderr, not into the trace.
        err = capsys.readouterr().err
        assert "p50" in err and "p99" in err

    def test_stdout_trace(self, capsys):
        code = main(
            [
                "trace", "--shape", "2x2x2", "--endpoints", "1",
                "--cores", "1", "--pattern", "1hop", "--batch", "1",
                "--out", "-",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        import json

        for line in out.splitlines():
            json.loads(line)


class TestProfileCommand:
    ARGS = [
        "profile", "--shape", "2x2x2", "--endpoints", "2",
        "--cores", "2", "--batch", "8", "--top", "12",
    ]

    def test_prints_hot_function_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "ncalls" in out
        assert "sim/engine.py" in out
        # Preamble + header row + 12 table rows + summary line.
        assert len(out.strip().splitlines()) == 15

    def test_stdout_is_deterministic(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        second = capsys.readouterr().out
        assert first == second


class TestVersionAndErrors:
    def test_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_operational_error_exits_one_not_traceback(self, capsys):
        # A missing fault file is an operational failure: one line on
        # stderr, exit code 1, no traceback.
        code = main(["faults", "validate", "/nonexistent/faults.json"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_invalid_fault_json_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 999, "faults": []}')
        code = main(["faults", "validate", str(bad)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "version" in err


class TestFaultsCommand:
    def _sample(self, tmp_path, capsys, k="2", shape="2x2x2", seed="3",
                down=None):
        path = tmp_path / "faults.json"
        argv = [
            "faults", "sample", "--shape", shape, "--endpoints", "2",
            "-k", k, "--seed", seed, "--out", str(path),
        ]
        if down is not None:
            argv += ["--down", down]
        assert main(argv) == 0
        capsys.readouterr()  # discard the summary line
        return path

    def test_sample_writes_valid_json(self, tmp_path, capsys):
        import json

        path = self._sample(tmp_path, capsys)
        payload = json.loads(path.read_text())
        assert len(payload["faults"]) == 2
        assert payload["shape"] == [2, 2, 2]

    def test_sample_to_stdout(self, capsys):
        import json

        code = main(
            [
                "faults", "sample", "--shape", "2x2x2", "--endpoints", "2",
                "-k", "1", "--seed", "3", "--out", "-",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["faults"]) == 1

    def test_validate_sampled_set(self, tmp_path, capsys):
        path = self._sample(tmp_path, capsys)
        code = main(
            [
                "faults", "validate", str(path),
                "--check-routes", "--check-deadlock",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "route resolution:" in out
        assert "acyclic (deadlock-free)" in out

    def test_validate_shape_comes_from_file(self, tmp_path, capsys):
        # `sample` records the shape, so `validate` needs no --shape.
        path = self._sample(tmp_path, capsys, shape="3x3x3")
        assert main(["faults", "validate", str(path)]) == 0
        assert "3x3x3" in capsys.readouterr().out

    def test_run_round_trip_reproduces_identical_trace(self, tmp_path, capsys):
        """The acceptance property at the CLI level: a sampled fault set
        round-tripped through JSON reproduces the byte-identical
        degraded-run trace."""
        # Mid-run failures (cycle 20) so the trace carries fault events.
        fault_path = self._sample(tmp_path, capsys, down="20")
        traces = []
        for name in ("a.jsonl", "b.jsonl"):
            trace_path = tmp_path / name
            code = main(
                [
                    "faults", "run", str(fault_path),
                    "--pattern", "uniform", "--batch", "4", "--cores", "2",
                    "--seed", "5", "--trace", str(trace_path),
                ]
            )
            assert code == 0
            traces.append(trace_path.read_bytes())
        assert traces[0] == traces[1]
        assert b'"ev": "fault"' in traces[0] or b'"ev":"fault"' in traces[0]
        capsys.readouterr()

    def test_run_summary_reports_outcomes(self, tmp_path, capsys):
        fault_path = self._sample(tmp_path, capsys, down="20")
        code = main(
            [
                "faults", "run", str(fault_path),
                "--pattern", "uniform", "--batch", "4", "--cores", "2",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out
        assert "(2 fault events)" in out


class TestShardedCli:
    """The --shards surface: run, trace --golden, checkpoint save, and
    profile all route through the sharded runner and must agree with
    their serial counterparts."""

    def test_run_sharded_matches_serial_summary(self, capsys):
        args = [
            "run", "--shape", "2x2x2", "--endpoints", "2",
            "--batch", "4", "--cores", "2", "--seed", "7",
        ]
        assert main(args + ["--shards", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--shards", "2", "--transport", "inline"]) == 0
        sharded = capsys.readouterr().out
        # Same delivered/injected/cycle counts; only the wall-clock
        # parenthetical and the shards= label may differ.
        assert serial.split(":", 1)[1].split("(")[0] == \
            sharded.split(":", 1)[1].split("(")[0]
        assert "shards=2" in sharded

    def test_golden_regenerates_sharded(self, tmp_path):
        from repro.sim.goldens import committed_golden_path

        out_path = tmp_path / "golden.jsonl"
        code = main(
            ["trace", "--golden", "uniform_2x2x2", "--shards", "2",
             "--out", str(out_path)]
        )
        assert code == 0
        assert (
            out_path.read_text()
            == committed_golden_path("uniform_2x2x2").read_text()
        )

    def test_unshardable_golden_rejected(self, tmp_path, capsys):
        code = main(
            ["trace", "--golden", "pingpong_2x2x2", "--shards", "2",
             "--out", str(tmp_path / "x.jsonl")]
        )
        assert code == 2
        assert "cannot run sharded" in capsys.readouterr().err

    def test_shards_require_golden_mode(self, tmp_path, capsys):
        code = main(
            ["trace", "--shape", "2x2x2", "--endpoints", "2", "--shards",
             "2", "--out", str(tmp_path / "x.jsonl")]
        )
        assert code == 2
        assert "--golden" in capsys.readouterr().err

    def test_checkpoint_save_sharded_matches_golden(self, tmp_path, capsys):
        import pathlib

        out_path = tmp_path / "ck.json"
        code = main(
            [
                "checkpoint", "save", "--shape", "2x2x2", "--endpoints",
                "2", "--pattern", "uniform", "--batch", "8", "--cores",
                "2", "--arbitration", "rr", "--seed", "3", "--cycles",
                "40", "--shards", "2", "--out", str(out_path),
            ]
        )
        assert code == 0
        golden = pathlib.Path("tests/golden/checkpoint_uniform_2x2x2.json")
        assert out_path.read_bytes() == golden.read_bytes()
        assert "cycle 40" in capsys.readouterr().err

    def test_profile_sharded_prints_merged_table(self, capsys):
        args = [
            "profile", "--shape", "2x2x2", "--endpoints", "2",
            "--cores", "2", "--batch", "8", "--top", "12", "--shards", "2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "ncalls" in out
        assert "sim/engine.py" in out
        assert len(out.strip().splitlines()) == 15
        # Deterministic across invocations, like the serial table.
        assert main(args) == 0
        assert capsys.readouterr().out == out
