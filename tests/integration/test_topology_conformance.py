"""Cross-subsystem conformance for every registered topology.

The Topology interface is only as strong as its weakest consumer, so
each subsystem that the torus path exercises is either driven through
mesh and chiplet here, or pinned to reject the combination loudly:

* mechanical deadlock freedom -- the CDG analysis is acyclic for the
  healthy machine *and* under every single-link degradation, and the
  mesh/chiplet T-VC set is exactly ``{0, 1}`` (rule-2 promotion only):
  the degenerate dateline, observed rather than assumed;
* the Figure 9/10 fairness harness completes on mesh and chiplet;
* checkpoint split-runs are bitwise identical to uninterrupted runs;
* the SoA fast path is bit-exact against the scalar engine;
* golden traces exist and regenerate byte-identically;
* the shard partitioner (torus-only) rejects other topologies with a
  ``ValueError`` naming the unsupported combination.
"""

import io
import json

import pytest

from repro.cli import main
from repro.core import deadlock
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.faults.verify import verify_single_link_failures
from repro.sim.goldens import GOLDEN_NAMES, check_goldens
from repro.sim.simulator import build_batch_engine, run_batch
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import Tornado, UniformRandom

_CACHE = {}

#: One small representative machine per topology; endpoints=2 so
#: arbitration contention is real.
CASES = {
    "torus": (2, 2, 2),
    "mesh": (3, 3),
    "chiplet": (2, 2),
}


def setup_for(name, endpoints=2):
    key = (name, endpoints)
    if key not in _CACHE:
        machine = Machine(
            MachineConfig(
                shape=CASES[name],
                endpoints_per_chip=endpoints,
                topology=name,
            )
        )
        _CACHE[key] = (machine, RouteComputer(machine))
    return _CACHE[key]


class TestMechanicalDeadlockFreedom:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_healthy_cdg_acyclic(self, name):
        machine, routes = setup_for(name, endpoints=1)
        report = deadlock.analyze(machine, routes)
        assert report.deadlock_free
        assert report.routes > 0

    @pytest.mark.parametrize("name", ["mesh", "chiplet"])
    def test_degenerate_dateline_proven(self, name):
        # On a line topology rule 1 (dateline crossing) is unreachable,
        # so T-channel VCs stop at {0, 1}: base plus one rule-2
        # (dimension-completion) promotion. The torus needs {0..3}.
        machine, routes = setup_for(name, endpoints=1)
        report = deadlock.analyze(machine, routes)
        assert report.t_vcs_used == {0, 1}
        torus, torus_routes = setup_for("torus", endpoints=1)
        torus_report = deadlock.analyze(torus, torus_routes)
        assert torus_report.t_vcs_used == {0, 1, 2, 3}

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_single_link_failures_stay_acyclic(self, name):
        machine, _routes = setup_for(name, endpoints=1)
        report = verify_single_link_failures(machine)
        assert report.checked > 0
        assert report.all_acyclic
        assert not report.unroutable

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_cli_faults_validate(self, name, capsys):
        # The acceptance command: one invocation proves healthy +
        # degraded deadlock freedom mechanically.
        assert main(["faults", "validate", "--topology", name]) == 0
        out = capsys.readouterr().out
        assert f"topology={name}" in out
        assert "healthy dependency graph acyclic (deadlock-free)" in out
        assert "all degraded graphs acyclic, 0 unroutable" in out


class TestFairnessHarness:
    @pytest.mark.parametrize("name", ["mesh", "chiplet"])
    def test_figure9_points_complete(self, name):
        from repro.analysis.throughput import throughput_vs_batch_size

        machine, routes = setup_for(name)
        pattern = UniformRandom(machine.config.shape)
        points = throughput_vs_batch_size(
            machine,
            routes,
            patterns=[pattern],
            batch_sizes=[2, 4],
            cores_per_chip=2,
            arbitrations=("rr", "iw"),
            seed=3,
        )
        assert len(points) == 4
        for point in points:
            assert point.completion_cycles > 0
            assert 0.0 < point.normalized_throughput <= 1.0
            assert point.finish_spread >= 0.0

    @pytest.mark.parametrize("name", ["mesh", "chiplet"])
    def test_figure10_blend_completes(self, name):
        from repro.analysis.throughput import blend_sweep

        machine, routes = setup_for(name)
        shape = machine.config.shape
        points = blend_sweep(
            machine,
            routes,
            pattern_a=Tornado(shape),
            pattern_b=UniformRandom(shape),
            fractions=[0.5],
            batch_size=2,
            cores_per_chip=2,
            seed=1,
        )
        assert {p.arbitration for p in points} == {
            "none", "forward", "reverse", "both"
        }
        for point in points:
            assert point.completion_cycles > 0

    @pytest.mark.parametrize("name", ["mesh", "chiplet"])
    def test_finish_time_fairness_measurable(self, name):
        from repro.analysis.fairness import finish_time_fairness

        machine, routes = setup_for(name)
        pattern = UniformRandom(machine.config.shape)
        spec = BatchSpec(
            pattern, packets_per_source=4, cores_per_chip=2, seed=11
        )
        stats = run_batch(machine, routes, spec)
        assert stats.delivered == stats.injected > 0
        index, spread = finish_time_fairness(stats)
        assert 0.0 < index <= 1.0
        assert spread >= 0.0


class TestCheckpointSplitRun:
    @pytest.mark.parametrize("name,split", [("mesh", 9), ("chiplet", 5)])
    def test_split_run_is_bitwise(self, name, split):
        from repro.sim.checkpoint import (
            dumps,
            loads,
            restore_engine,
            snapshot_engine,
        )
        from repro.sim.trace import JsonlTraceWriter

        machine, routes = setup_for(name)
        pattern = UniformRandom(machine.config.shape)
        spec = BatchSpec(
            pattern, packets_per_source=3, cores_per_chip=2, seed=7
        )

        def writer(stream, **kwargs):
            return JsonlTraceWriter(stream, meta={"run": name}, **kwargs)

        full_stream = io.StringIO()
        full_writer = writer(full_stream)
        engine = build_batch_engine(
            machine, routes, spec, trace=full_writer
        )
        full_stats = engine.run()
        full_writer.flush()

        head_stream = io.StringIO()
        head_writer = writer(head_stream)
        engine = build_batch_engine(
            machine, routes, spec, trace=head_writer
        )
        engine.run_for(split)
        head_writer.flush()
        data = loads(dumps(snapshot_engine(engine)))
        tail_stream = io.StringIO()
        resumed = JsonlTraceWriter(
            tail_stream,
            header=False,
            resume_counts=(
                data["trace"]["events_written"],
                data["trace"]["bytes_written"],
            ),
        )
        split_stats = restore_engine(data, trace=resumed).run()
        resumed.flush()

        assert (
            head_stream.getvalue() + tail_stream.getvalue()
            == full_stream.getvalue()
        )
        assert json.dumps(split_stats.asdict()) == json.dumps(
            full_stats.asdict()
        )


class TestFastpathOracle:
    @pytest.mark.parametrize("name", ["mesh", "chiplet"])
    def test_fastpath_bit_exact(self, name):
        pytest.importorskip("numpy")
        from repro.sim.checkpoint import dumps, snapshot_engine

        machine, routes = setup_for(name)
        pattern = UniformRandom(machine.config.shape)
        spec = BatchSpec(
            pattern, packets_per_source=3, cores_per_chip=2, seed=13
        )

        def state(use_fastpath):
            engine = build_batch_engine(
                machine, routes, spec, use_fastpath=use_fastpath
            )
            engine.run()
            return dumps(snapshot_engine(engine))

        assert state(False) == state(True)


class TestGoldens:
    def test_new_topologies_have_goldens(self):
        assert "mesh_4x4" in GOLDEN_NAMES
        assert "chiplet_2x2" in GOLDEN_NAMES

    def test_goldens_regenerate_byte_identically(self):
        results = check_goldens()
        assert results["mesh_4x4"] is True
        assert results["chiplet_2x2"] is True


class TestShardRejection:
    @pytest.mark.parametrize("name", ["mesh", "chiplet"])
    def test_shard_plan_rejects_non_torus(self, name):
        from repro.sim.shard import ShardPlan

        machine, _routes = setup_for(name)
        with pytest.raises(
            ValueError,
            match="sharded runs support only the torus topology",
        ):
            ShardPlan.for_machine(machine, shards=2)

    def test_cli_sharded_run_rejects_mesh(self, capsys):
        code = main(
            [
                "run", "--topology", "mesh", "--shape", "3x3",
                "--endpoints", "2", "--batch", "1", "--shards", "2",
            ]
        )
        assert code != 0
        err = capsys.readouterr().err
        assert "sharded runs support only the torus topology" in err
