"""Ablation: route randomization balances channel load (Section 2.3).

Anton 2 randomizes each packet's dimension order and torus slice. This
test quantifies what that buys: restricting routing to a single fixed
dimension order and slice concentrates load (the idle slice alone doubles
the peak torus-channel load) and skews the on-chip mesh.
"""

import pytest

from repro.core.machine import ChannelKind
from repro.core.routing import RouteChoice, RouteComputer
from repro.traffic.loads import compute_loads
from repro.traffic.patterns import UniformRandom


class FixedRouteComputer(RouteComputer):
    """Oblivious router with randomization disabled: always XYZ order,
    slice 0, positive tie-breaks."""

    def all_choices(self, src_chip, dst_chip):
        yield RouteChoice(), 1.0


class TestRandomizationAblation:
    @pytest.fixture(scope="class")
    def tables(self, small_machine):
        pattern = UniformRandom((4, 4, 4))
        randomized = compute_loads(
            small_machine, RouteComputer(small_machine), pattern, cores_per_chip=2
        )
        fixed = compute_loads(
            small_machine,
            FixedRouteComputer(small_machine),
            pattern,
            cores_per_chip=2,
        )
        return randomized, fixed

    def test_fixed_routing_doubles_peak_torus_load(self, small_machine, tables):
        randomized, fixed = tables
        # Slice randomization alone halves the per-channel load; fixing
        # the slice at least doubles the peak.
        assert fixed.max_torus_load(small_machine) >= 2 * randomized.max_torus_load(
            small_machine
        ) * 0.99

    def test_fixed_routing_idles_one_slice(self, small_machine, tables):
        _randomized, fixed = tables
        slice1_load = 0.0
        for cid, load in fixed.channel_load.items():
            channel = small_machine.channels[cid]
            if channel.kind == ChannelKind.TORUS:
                _direction, slice_index = small_machine.components[
                    channel.src
                ].detail
                if slice_index == 1:
                    slice1_load += load
        assert slice1_load == 0.0

    def test_randomization_balances_mesh(self, small_machine, tables):
        randomized, fixed = tables

        def max_mesh(table):
            return table.max_load(small_machine, ChannelKind.MESH)

        assert max_mesh(fixed) > max_mesh(randomized)

    def test_total_torus_work_unchanged(self, small_machine, tables):
        # Randomization moves load around; it does not change the total
        # (minimal routes have fixed hop counts).
        randomized, fixed = tables

        def total(table):
            return sum(
                load
                for cid, load in table.channel_load.items()
                if small_machine.channels[cid].kind == ChannelKind.TORUS
            )

        assert total(fixed) == pytest.approx(total(randomized))
