"""Regression tests for the engine's exact fixed-point channel timing.

The torus derating ratio the throughput experiments hinge on
(288 / 89.6 Gb/s = 45/14 cycles per flit) is not representable in binary
floating point, so the engine carries all channel timing in integer
ticks: 1 cycle = 14 ticks on a default machine, one torus flit = 45
ticks. These tests pin the behavior the old float code could only
approximate -- arrival cycles at exact serialization boundaries
(formerly guarded by an epsilon-ceil hack in ``_depart``) and zero
cumulative drift over a million-cycle saturated run.
"""

from fractions import Fraction

import pytest

from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.core.routing import RouteChoice, RouteComputer
from repro.sim.engine import Engine, arrival_cycle, serialization_end_ticks
from repro.sim.packet import Packet

#: Ticks per cycle on any default machine (LCM of mesh 1 and torus 14).
TPC = 14
#: Ticks one flit occupies a derated torus channel (45/14 cycles).
TORUS_FLIT_TICKS = 45


class TestArrivalCycleBoundaries:
    """Unit tests for the integer expression that replaced the
    epsilon-guarded float expression ``-int(-(end - 1e-6)) - 1``
    (a *floor*, since ``int()`` truncates toward zero): the latency
    pipeline counts from ``floor(end) - 1``, with a serialization ending
    exactly on a cycle boundary attributed to the cycle it closes."""

    @pytest.mark.parametrize(
        "end_ticks, base",
        [
            (1, -1),  # first tick of cycle 0
            (14, -1),  # exactly on the cycle-0/1 boundary: closes cycle 0
            (15, 0),  # one tick past the boundary
            (42, 1),  # 3 mesh flits: boundary again
            (45, 2),  # one torus flit finishes during cycle 3
            (90, 5),  # two torus flits: mid-cycle
            (630, 43),  # 14 torus flits = exactly 45 cycles: boundary
            (631, 44),
        ],
    )
    def test_boundary_cases_at_14_ticks_per_cycle(self, end_ticks, base):
        assert arrival_cycle(end_ticks, TPC, latency=0) == base
        assert arrival_cycle(end_ticks, TPC, latency=12) == base + 12

    @pytest.mark.parametrize("end_cycle", [1, 2, 3, 10, 1_000_000])
    @pytest.mark.parametrize("tpc", [1, 2, 14, 630])
    def test_integer_boundary_closes_the_cycle_it_ends(self, end_cycle, tpc):
        # A serialization ending exactly on a cycle boundary belongs to
        # the cycle it closes -- the case the old epsilon hack guarded,
        # and the one float drift could flip by a cycle.
        assert arrival_cycle(end_cycle * tpc, tpc, latency=12) == end_cycle + 10

    def test_matches_seed_float_expression_where_float_was_correct(self):
        # The original engine computed the arrival cycle from a float
        # serialization end as -int(-(end - 1e-6)) - 1 + latency. For
        # every end the float code represented accurately (error below
        # the epsilon -- a single rational division is), the integer
        # expression must agree exactly. What it *removes* is the drift
        # of accumulated sums, where the float result was noise.
        for end_ticks in range(1, 2000):
            end = end_ticks / TPC  # one rounding, error ~1e-15 << 1e-6
            seed_arrival = -int(-(end - 0.000001)) - 1 + 12
            assert arrival_cycle(end_ticks, TPC, latency=12) == seed_arrival


class TestSerializationStart:
    def test_idle_channel_starts_now(self):
        assert serialization_end_ticks(0, 5 * TPC, 1, TORUS_FLIT_TICKS) == (
            5 * TPC + TORUS_FLIT_TICKS
        )

    def test_busy_channel_continues_mid_cycle(self):
        # free_at mid-cycle in the future: back-to-back packets serialize
        # gaplessly from the previous packet's last tick.
        free_at = 3 * TPC + 3
        end = serialization_end_ticks(free_at, 2 * TPC, 2, TORUS_FLIT_TICKS)
        assert end == free_at + 2 * TORUS_FLIT_TICKS

    def test_stale_free_at_does_not_reach_back_in_time(self):
        end = serialization_end_ticks(10, 6 * TPC, 1, TORUS_FLIT_TICKS)
        assert end == 6 * TPC + TORUS_FLIT_TICKS


def _derated_machine(**overrides):
    config = MachineConfig(
        shape=(2, 1, 1),
        endpoints_per_chip=1,
        onchip_buffer_flits=64,
        torus_buffer_flits=128,
        **overrides,
    )
    machine = Machine(config)
    return machine, RouteComputer(machine)


def _one_channel_route(machine, routes):
    """A fixed route crossing exactly one +X torus channel on slice 0."""
    src = machine.ep_id[((0, 0, 0), 0)]
    dst = machine.ep_id[((1, 0, 0), 0)]
    route = routes.compute(src, dst, RouteChoice(deltas=(1, 0, 0), slice_index=0))
    (torus_cid,) = [
        cid
        for cid, _vc in route.hops
        if machine.channels[cid].kind == ChannelKind.TORUS
    ]
    return route, torus_cid


def _run_saturated(machine, route, count, size_flits=1):
    engine = Engine(machine)
    for pid in range(count):
        engine.enqueue(Packet(pid, route, size_flits=size_flits))
    stats = engine.run()
    return engine, stats


class TestBackToBackDeratedChannel:
    """Engine-level boundary regressions: a saturated 45/14 torus channel
    delivers on the exact integer schedule the rational arithmetic
    predicts, with no epsilon and no drift."""

    def test_serialization_is_gapless_and_exact(self):
        machine, routes = _derated_machine()
        route, torus_cid = _one_channel_route(machine, routes)
        count = 29  # two 14-packet LCM periods plus one
        reference, _ = _run_saturated(machine, route, 1)
        start_tick = reference._channel_free_at[torus_cid] - TORUS_FLIT_TICKS
        assert start_tick % TPC == 0  # idle channel: start on a boundary
        engine, stats = _run_saturated(machine, route, count)
        # Back-to-back packets extend the free horizon by exactly 45
        # ticks per flit from the very first grant: zero accumulated gap.
        assert (
            engine._channel_free_at[torus_cid]
            == start_tick + count * TORUS_FLIT_TICKS
        )
        assert stats.channel_busy_ticks[torus_cid] == count * TORUS_FLIT_TICKS

    def test_delivery_schedule_matches_exact_arithmetic(self):
        machine, routes = _derated_machine()
        route, _ = _one_channel_route(machine, routes)
        count = 43  # three LCM periods plus one
        engine = Engine(machine)
        packets = [Packet(pid, route) for pid in range(count)]
        for packet in packets:
            engine.enqueue(packet)
        engine.run()
        cycles = [packet.deliver_cycle for packet in packets]
        assert cycles == sorted(cycles)
        deltas = [b - a for a, b in zip(cycles, cycles[1:])]
        # Consecutive single-flit packets on a 45/14 channel arrive 3 or
        # 4 cycles apart (floor differences of a 45/14-tick ramp) ...
        assert set(deltas) <= {3, 4}
        # ... every 14-packet window advances *exactly* 45 cycles (the
        # LCM period, 630 ticks), independent of phase -- the old float
        # accumulation could flip a boundary anywhere in the run ...
        for k in range(count - TPC):
            assert cycles[k + TPC] - cycles[k] == 45
        # ... and each window contains exactly eleven 3s and three 4s.
        for k in range(len(deltas) - TPC + 1):
            window = deltas[k : k + TPC]
            assert window.count(3) == 11 and window.count(4) == 3

    def test_exact_carried_rate(self):
        machine, routes = _derated_machine()
        route, torus_cid = _one_channel_route(machine, routes)
        _, stats = _run_saturated(machine, route, 50)
        carried = Fraction(
            stats.channel_flits[torus_cid] * stats.ticks_per_cycle,
            stats.channel_busy_ticks[torus_cid],
        )
        assert carried == Fraction(TPC, TORUS_FLIT_TICKS)


@pytest.mark.slow
class TestMillionCycleDrift:
    def test_long_run_has_zero_cumulative_drift(self):
        """A >= 1M-cycle saturated run carries exactly 14/45 flits/cycle.

        320,000 flits through one 45/14 channel occupy exactly
        14,400,000 ticks (~1.03M cycles). The float accumulation this
        engine used to perform provably cannot represent that sum, so
        this is the regression fence against timing state ever going
        back to floating point.
        """
        machine, routes = _derated_machine()
        route, torus_cid = _one_channel_route(machine, routes)
        count, size = 20_000, 16
        flits = count * size
        reference, _ = _run_saturated(machine, route, 1, size_flits=size)
        start_tick = (
            reference._channel_free_at[torus_cid] - size * TORUS_FLIT_TICKS
        )
        engine, stats = _run_saturated(machine, route, count, size_flits=size)
        assert stats.end_cycle > 1_000_000
        # Gapless serialization for the whole run, to the exact tick.
        assert stats.channel_busy_ticks[torus_cid] == flits * TORUS_FLIT_TICKS
        assert (
            engine._channel_free_at[torus_cid]
            == start_tick + flits * TORUS_FLIT_TICKS
        )
        carried = Fraction(
            stats.channel_flits[torus_cid] * stats.ticks_per_cycle,
            stats.channel_busy_ticks[torus_cid],
        )
        assert carried == Fraction(TPC, TORUS_FLIT_TICKS)
        # The float loop this replaced drifts: summing 45/14 once per
        # flit neither hits the exact rational total nor stays stable.
        acc, per_flit = 0.0, 45 / 14
        for _ in range(flits):
            acc += per_flit
        assert Fraction(acc) != Fraction(flits * TORUS_FLIT_TICKS, TPC)
