"""Golden-trace conformance: canonical runs byte-compared to committed
JSONL artifacts under ``tests/golden/``.

These pin the engine's observable semantics — arbitration order, VC
promotion, serialization timing, trace schema. A diff here means either
a bug or an intentional semantics change; regenerate with::

    python -m repro trace --golden <name> --out tests/golden/<name>.jsonl
"""

import json

import pytest

from repro.sim.goldens import (
    GOLDEN_NAMES,
    committed_golden_path,
    render_golden,
)
from repro.sim.trace import TRACE_SCHEMA_VERSION, read_trace


class TestCommittedArtifacts:
    """Fast structural checks on the files as committed (no simulation)."""

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_committed_file_is_valid_trace(self, name):
        path = committed_golden_path(name)
        assert path.exists(), f"missing golden artifact {path}"
        lines = path.read_text().splitlines()
        records, events = read_trace(lines)
        header = records[0]
        assert header["ev"] == "trace"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["name"] == name
        assert records[-1]["ev"] == "end"
        assert records[-1]["events"] == len(events)
        # Canonical serialization: every line round-trips byte-exactly.
        for line in lines:
            parsed = json.loads(line)
            if parsed["ev"] in ("trace", "end"):
                assert json.dumps(
                    parsed, sort_keys=True, separators=(",", ":")
                ) == line

    def test_no_stray_files_in_golden_dir(self):
        from repro.sim.goldens import GOLDEN_DIR

        committed = sorted(p.name for p in GOLDEN_DIR.glob("*.jsonl"))
        assert committed == sorted(f"{n}.jsonl" for n in GOLDEN_NAMES)


def test_pingpong_regeneration_matches(tmp_path):
    """Fast smoke: the cheapest golden regenerates byte-identically."""
    name = "pingpong_2x2x2"
    assert render_golden(name) == committed_golden_path(name).read_text()


@pytest.mark.slow
class TestGoldenConformance:
    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_regeneration_is_byte_identical(self, name):
        committed = committed_golden_path(name).read_text()
        regenerated = render_golden(name)
        if committed != regenerated:
            committed_lines = committed.splitlines()
            regenerated_lines = regenerated.splitlines()
            for i, (old, new) in enumerate(
                zip(committed_lines, regenerated_lines)
            ):
                assert old == new, (
                    f"{name} diverges at line {i + 1}:\n"
                    f"  committed:   {old}\n"
                    f"  regenerated: {new}"
                )
            pytest.fail(
                f"{name}: line counts differ "
                f"({len(committed_lines)} committed, "
                f"{len(regenerated_lines)} regenerated)"
            )

    def test_regeneration_is_stable_across_repeats(self):
        # Two renders in one process share interned objects and caches;
        # identical output rules out hidden mutable state in the runners.
        name = GOLDEN_NAMES[0]
        assert render_golden(name) == render_golden(name)
