"""Tests for the two hardware traffic classes (request and reply).

Separate classes exist to break protocol deadlock (Section 2.1); each
class owns its own set of VCs on every channel. The experiments drive a
single class, but the machinery must support both.
"""

import pytest

from repro.core.machine import ChannelGroup, Machine, MachineConfig
from repro.core.routing import RouteChoice, RouteComputer
from repro.sim.engine import Engine
from repro.sim.packet import Packet


@pytest.fixture(scope="module")
def two_class_machine():
    return Machine(
        MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2, num_classes=2)
    )


@pytest.fixture(scope="module")
def two_class_routes(two_class_machine):
    return RouteComputer(two_class_machine)


class TestVcPartitioning:
    def test_channel_vc_counts_doubled(self, two_class_machine):
        for channel in two_class_machine.channels:
            vcs = two_class_machine.vcs_for_channel(channel)
            if channel.group == ChannelGroup.E:
                assert vcs == 2
            else:
                assert vcs == 8

    def test_class_one_routes_use_upper_vcs(
        self, two_class_machine, two_class_routes
    ):
        src = two_class_machine.ep_id[((0, 0, 0), 0)]
        dst = two_class_machine.ep_id[((1, 1, 0), 0)]
        request = two_class_routes.compute(src, dst, RouteChoice(), traffic_class=0)
        reply = two_class_routes.compute(src, dst, RouteChoice(), traffic_class=1)
        for (channel_id, req_vc), (_cid2, rep_vc) in zip(request.hops, reply.hops):
            channel = two_class_machine.channels[channel_id]
            if channel.group == ChannelGroup.E:
                assert rep_vc == req_vc + 1
            else:
                assert rep_vc == req_vc + 4

    def test_classes_never_share_vcs(self, two_class_machine, two_class_routes):
        src = two_class_machine.ep_id[((0, 0, 0), 0)]
        dst = two_class_machine.ep_id[((1, 1, 1), 1)]
        request = two_class_routes.compute(src, dst, RouteChoice(), traffic_class=0)
        reply = two_class_routes.compute(src, dst, RouteChoice(), traffic_class=1)
        for (channel_id, req_vc), (_c, rep_vc) in zip(request.hops, reply.hops):
            channel = two_class_machine.channels[channel_id]
            if channel.group != ChannelGroup.E:
                assert req_vc < 4 <= rep_vc


class TestMixedClassTraffic:
    def test_both_classes_deliver(self, two_class_machine, two_class_routes):
        engine = Engine(two_class_machine)
        pid = 0
        for traffic_class in (0, 1):
            for x in range(2):
                src = two_class_machine.ep_id[((x, 0, 0), 0)]
                dst = two_class_machine.ep_id[(((x + 1) % 2, 1, 1), 1)]
                route = two_class_routes.compute(
                    src, dst, RouteChoice(), traffic_class
                )
                for _ in range(10):
                    engine.enqueue(Packet(pid, route, traffic_class=traffic_class))
                    pid += 1
        stats = engine.run()
        assert stats.delivered == pid

    def test_class_isolation_under_backpressure(
        self, two_class_machine, two_class_routes
    ):
        """Saturating class 0 must not stop class 1 (separate VCs and
        credits); both finish."""
        engine = Engine(two_class_machine)
        src = two_class_machine.ep_id[((0, 0, 0), 0)]
        dst = two_class_machine.ep_id[((1, 0, 0), 0)]
        choice = RouteChoice(deltas=(1, 0, 0))
        pid = 0
        heavy = two_class_routes.compute(src, dst, choice, 0)
        light = two_class_routes.compute(src, dst, choice, 1)
        for _ in range(80):
            engine.enqueue(Packet(pid, heavy, traffic_class=0))
            pid += 1
        engine.enqueue(Packet(pid, light, traffic_class=1))
        stats = engine.run()
        assert stats.delivered == 81
