"""Pins for MetricsCollector.snapshot(): non-mutating, mid-run safe.

The serve package's metrics stream snapshots live collectors between
quanta; the bitwise contract is that snapshotting and continuing is
indistinguishable from never having observed at all.
"""

import json

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.metrics import MetricsCollector
from repro.sim.simulator import build_batch_engine
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import pattern_factories


def _build(machine, collector):
    shape = machine.config.shape
    return build_batch_engine(
        machine,
        RouteComputer(machine),
        BatchSpec(
            pattern=pattern_factories(shape)["uniform"](),
            packets_per_source=6,
            cores_per_chip=2,
            seed=5,
        ),
        trace=collector,
    )


def test_snapshot_then_continue_is_bitwise_invisible(tiny_machine):
    observed = MetricsCollector(window_cycles=64)
    blind = MetricsCollector(window_cycles=64)
    engine_a = _build(tiny_machine, observed)
    engine_b = _build(tiny_machine, blind)

    # Drive A in chunks, snapshotting between every chunk; B runs once,
    # unobserved.
    while True:
        engine_a.run_for(16)
        observed.snapshot()
        observed.snapshot()  # twice: repeated observation is free too
        if not (
            engine_a._queued or engine_a._in_network or engine_a._events.pending
        ):
            break
    engine_b.run()

    assert engine_a.stats.asdict() == engine_b.stats.asdict()
    canon = lambda c: json.dumps(c.state(), sort_keys=True)  # noqa: E731
    assert canon(observed) == canon(blind)
    assert observed.snapshot() == blind.snapshot()


def test_snapshot_is_state_plus_quantiles(tiny_machine):
    collector = MetricsCollector(window_cycles=64)
    engine = _build(tiny_machine, collector)
    engine.run()
    snap = collector.snapshot()
    assert snap["delivered"] == engine.stats.delivered > 0
    # state() keys are all present, plus the live quantile view.
    for key in collector.state():
        assert key in snap
    assert set(snap["latency_quantiles"]) == {
        str(q) for q in collector._quantiles
    }
    # The snapshot is detached: mutating it cannot reach the reducers.
    snap["busy"]["window_cycles"] = -1
    assert collector.busy.window_cycles == 64


def test_snapshot_of_an_idle_collector_has_empty_quantiles():
    collector = MetricsCollector()
    snap = collector.snapshot()
    assert snap["delivered"] == 0
    assert snap["latency_quantiles"] == {}
