"""Tests for the parallel sweep runner.

The load-bearing property is that parallel execution is a pure
performance optimization: fanning points across a process pool must
return results identical to the serial loop, in input order.
"""

import dataclasses
import os
import signal

import pytest

from repro.analysis.throughput import BatchPoint, measure_batch_point
from repro.core.machine import MachineConfig
from repro.sim.sweep import (
    SweepPoint,
    SweepPointError,
    default_workers,
    point_fingerprint,
    run_sweep,
    shared_machine,
)
from repro.traffic.patterns import UniformRandom


def _points(seeds=(3, 4), **batch_kwargs):
    config = MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2)
    pattern = UniformRandom(config.shape)
    return [
        SweepPoint(
            label=f"uniform/rr/seed{seed}",
            fn=measure_batch_point,
            kwargs={
                "point": BatchPoint(
                    config=config,
                    pattern=pattern,
                    batch_size=16,
                    cores_per_chip=2,
                    arbitration="rr",
                    seed=seed,
                    **batch_kwargs,
                )
            },
        )
        for seed in seeds
    ]


class TestRunSweep:
    def test_serial_matches_parallel(self):
        serial = run_sweep(_points(), max_workers=1)
        parallel = run_sweep(_points(), max_workers=2)
        assert [r.label for r in serial] == [r.label for r in parallel]
        for s, p in zip(serial, parallel):
            # Every measured field must be bitwise-identical; only the
            # wall-clock timing of the measurement itself may differ.
            measured_s = dataclasses.asdict(s.value)
            measured_p = dataclasses.asdict(p.value)
            measured_s.pop("wall_seconds")
            measured_p.pop("wall_seconds")
            assert measured_s == measured_p

    def test_results_in_input_order(self):
        results = run_sweep(_points(seeds=(9, 8, 7)), max_workers=2)
        assert [r.label for r in results] == [
            "uniform/rr/seed9",
            "uniform/rr/seed8",
            "uniform/rr/seed7",
        ]
        assert [r.index for r in results] == [0, 1, 2]

    def test_serial_runs_in_process(self):
        (result,) = run_sweep(_points(seeds=(1,)), max_workers=1)
        assert result.worker_pid == os.getpid()
        assert result.wall_seconds >= 0

    def test_single_point_skips_pool(self):
        # One point never pays pool startup, whatever max_workers says.
        (result,) = run_sweep(_points(seeds=(2,)), max_workers=8)
        assert result.worker_pid == os.getpid()


class TestMetricsThroughSweep:
    """Metric summaries must survive the process-pool boundary and match
    the serial path exactly -- they ride inside the pickled result."""

    def test_metrics_collected_per_point_in_order(self):
        points = _points(seeds=(5, 6), collect_metrics=True, metrics_window=64)
        results = run_sweep(points, max_workers=2)
        assert [r.label for r in results] == [p.label for p in points]
        for result in results:
            summary = result.value.metrics
            assert summary is not None
            # Whole batch delivered: 8 chips x 2 cores x 16 packets.
            assert summary.delivered == 256
            assert summary.window_cycles == 64
            assert set(summary.latency_quantiles) == {0.5, 0.95, 0.99}

    def test_parallel_metrics_match_serial(self):
        serial = run_sweep(
            _points(seeds=(5, 6), collect_metrics=True), max_workers=1
        )
        parallel = run_sweep(
            _points(seeds=(5, 6), collect_metrics=True), max_workers=2
        )
        for s, p in zip(serial, parallel):
            assert s.value.metrics == p.value.metrics

    def test_metrics_off_by_default(self):
        (result,) = run_sweep(_points(seeds=(5,)), max_workers=1)
        assert result.value.metrics is None


def _boom(seed=0, detail="kaboom"):
    raise ValueError(f"simulated point failure: {detail}")


def _mixed_points():
    """Two good points around one that raises -- order must be preserved."""
    good = _points(seeds=(3, 4))
    bad = SweepPoint(
        label="uniform/rr/broken",
        fn=_boom,
        kwargs={"detail": "bad-spec"},
        seed=11,
    )
    return [good[0], bad, good[1]]


class TestSweepFailures:
    """A worker exception must not forfeit the rest of the sweep: the
    failing point's parameters are reported and the other points still
    complete (partial results ride on the raised error)."""

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_failure_reports_point_and_keeps_partial_results(self, max_workers):
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(_mixed_points(), max_workers=max_workers)
        err = excinfo.value
        # The summary names the failing point, its parameters, and the
        # original exception.
        assert "1 of 3 sweep points failed" in str(err)
        assert "uniform/rr/broken" in str(err)
        assert "'detail': 'bad-spec'" in str(err)
        assert "'seed': 11" in str(err)
        assert "simulated point failure: bad-spec" in str(err)
        # All three points executed; the good ones carry real values.
        assert [r.label for r in err.results] == [
            "uniform/rr/seed3",
            "uniform/rr/broken",
            "uniform/rr/seed4",
        ]
        assert [f.label for f in err.failures] == ["uniform/rr/broken"]
        assert err.results[1].value is None
        assert "ValueError" in err.results[1].error
        for good in (err.results[0], err.results[2]):
            assert good.error is None
            assert good.value.normalized_throughput > 0

    def test_on_error_return_yields_partial_results(self):
        results = run_sweep(_mixed_points(), max_workers=2, on_error="return")
        assert [r.error is None for r in results] == [True, False, True]
        assert results[0].value.normalized_throughput > 0
        assert results[2].value.normalized_throughput > 0

    def test_on_error_mode_validated(self):
        with pytest.raises(ValueError, match="on_error"):
            run_sweep(_points(seeds=(1,)), on_error="ignore")

    def test_green_path_has_no_errors(self):
        for result in run_sweep(_points(), max_workers=2):
            assert result.error is None


class TestResumeFingerprint:
    """``resume=True`` must only reuse a persisted result whose identity
    matches the point now at that index: a checkpoint dir left over from
    a *different* sweep (or an edited point list) re-runs instead of
    silently returning the other sweep's result."""

    def _strip_wall(self, result):
        fields = dataclasses.asdict(result.value)
        fields.pop("wall_seconds")
        return fields

    def test_dir_reused_across_different_sweeps_reruns(self, tmp_path):
        sweep_dir = str(tmp_path / "sweep")
        run_sweep(_points(seeds=(3, 4)), max_workers=1, checkpoint_dir=sweep_dir)
        reference = run_sweep(_points(seeds=(8, 9)), max_workers=1)
        resumed = run_sweep(
            _points(seeds=(8, 9)),
            max_workers=1,
            checkpoint_dir=sweep_dir,
            resume=True,
        )
        assert [r.label for r in resumed] == [r.label for r in reference]
        for got, want in zip(resumed, reference):
            assert self._strip_wall(got) == self._strip_wall(want)

    def test_same_labels_different_kwargs_rerun(self, tmp_path):
        # Labels alone are not identity: the same sweep with one kwarg
        # changed must not resume from the stale results.
        sweep_dir = str(tmp_path / "sweep")
        first = run_sweep(_points(), max_workers=1, checkpoint_dir=sweep_dir)
        assert all(r.value.metrics is None for r in first)
        resumed = run_sweep(
            _points(collect_metrics=True),
            max_workers=1,
            checkpoint_dir=sweep_dir,
            resume=True,
        )
        assert all(r.value.metrics is not None for r in resumed)

    def test_results_carry_fingerprints(self):
        points = _points(seeds=(3,))
        (result,) = run_sweep(points, max_workers=1)
        assert result.fingerprint == point_fingerprint(points[0])
        assert points[0].label in result.fingerprint


def _kill_worker(seed=0):
    # Simulates an OOM-killed worker: the process dies without raising a
    # Python exception, so the parent sees BrokenProcessPool (a pool-level
    # failure, not a point failure) out of future.result().
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.mark.skipif(os.name != "posix", reason="needs SIGKILL")
class TestPoolFailure:
    """A dead worker must degrade into per-point errors under the
    documented partial-results contract, not propagate raw and discard
    every completed point."""

    def _kill_points(self, count=2):
        return [
            SweepPoint(label=f"pool/kill{i}", fn=_kill_worker, seed=i)
            for i in range(count)
        ]

    def test_pool_failure_becomes_per_point_errors(self):
        results = run_sweep(
            self._kill_points(), max_workers=2, on_error="return"
        )
        assert [r.label for r in results] == ["pool/kill0", "pool/kill1"]
        for result in results:
            assert result.value is None
            assert "worker-pool failure" in result.error
            assert result.fingerprint is not None

    def test_pool_failure_raises_sweep_point_error(self):
        with pytest.raises(SweepPointError) as excinfo:
            run_sweep(self._kill_points(), max_workers=2)
        assert "2 of 2 sweep points failed" in str(excinfo.value)
        assert "worker-pool failure" in str(excinfo.value)

    def test_completed_points_survive_pool_failure(self):
        # Mid-sweep kill: whether the good point finishes before the pool
        # breaks is timing-dependent, but either way it gets a structured
        # result and the dead points report their loss -- nothing
        # propagates raw out of run_sweep.
        points = _points(seeds=(3,)) + self._kill_points()
        results = run_sweep(points, max_workers=2, on_error="return")
        assert [r.index for r in results] == [0, 1, 2]
        good = results[0]
        assert (good.error is None and good.value is not None) or (
            "worker-pool failure" in good.error
        )
        for result in results[1:]:
            assert result.value is None
            assert "worker-pool failure" in result.error


class TestSweepPoint:
    def test_seed_merged_into_kwargs(self):
        point = SweepPoint(label="x", fn=dict, kwargs={"a": 1}, seed=42)
        assert point.call_kwargs() == {"a": 1, "seed": 42}

    def test_kwargs_not_mutated(self):
        kwargs = {"a": 1}
        point = SweepPoint(label="x", fn=dict, kwargs=kwargs, seed=7)
        point.call_kwargs()
        assert kwargs == {"a": 1}

    def test_no_seed_leaves_kwargs_alone(self):
        point = SweepPoint(label="x", fn=dict, kwargs={"a": 1})
        assert point.call_kwargs() == {"a": 1}


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3

    def test_env_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        assert default_workers() == 1

    def test_default_capped(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert 1 <= default_workers() <= 4


class TestWorkerEnvPinning:
    """REPRO_SWEEP_WORKERS must flow through ``run_sweep`` end to end:
    the env decides serial-vs-pool when ``max_workers`` is omitted, and
    either route returns the same measured bytes -- the contract the CI
    smoke sweep and the benchmarks rely on."""

    def test_env_one_forces_in_process_execution(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        results = run_sweep(_points())
        assert all(r.worker_pid == os.getpid() for r in results)

    def test_env_pool_runs_out_of_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        results = run_sweep(_points())
        assert all(r.worker_pid != os.getpid() for r in results)

    def test_env_serial_and_env_pool_results_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        serial = run_sweep(_points())
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        pooled = run_sweep(_points())
        for s, p in zip(serial, pooled):
            measured_s = dataclasses.asdict(s.value)
            measured_p = dataclasses.asdict(p.value)
            measured_s.pop("wall_seconds")
            measured_p.pop("wall_seconds")
            assert measured_s == measured_p

    def test_explicit_max_workers_overrides_env(self, monkeypatch):
        # An explicit kwarg wins over the env in both directions.
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        results = run_sweep(_points(), max_workers=1)
        assert all(r.worker_pid == os.getpid() for r in results)
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        results = run_sweep(_points(), max_workers=2)
        assert all(r.worker_pid != os.getpid() for r in results)


class TestSharedMachine:
    def test_cached_per_config(self):
        config = MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2)
        first = shared_machine(config)
        second = shared_machine(MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2))
        assert first[0] is second[0]
        assert first[1] is second[1]
