"""Tests for the streaming metric reducers."""

import math

import pytest

from repro.sim.metrics import (
    ChannelBusyWindows,
    MetricsCollector,
    StreamingQuantile,
    VcOccupancyHistogram,
)
from repro.sim.simulator import run_batch
from repro.sim.trace import TraceEvent
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import UniformRandom


def nearest_rank(samples, q):
    ordered = sorted(samples)
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


class TestStreamingQuantile:
    def test_exact_on_small_samples(self):
        est = StreamingQuantile()
        samples = [5, 1, 9, 9, 3, 7, 2, 8, 4, 6]
        est.add_many(samples)
        for q in (0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert est.quantile(q) == nearest_rank(samples, q)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            StreamingQuantile().quantile(0.5)

    def test_empty_estimator_reports_no_quantiles(self):
        # A zero-sample estimator (a faulted run that delivered nothing)
        # reports an empty dict; only the singular accessor raises.
        assert StreamingQuantile().quantiles() == {}
        assert StreamingQuantile().quantiles((0.5, 0.99)) == {}

    def test_invalid_q_rejected(self):
        est = StreamingQuantile()
        est.add(1)
        with pytest.raises(ValueError):
            est.quantile(0.0)
        with pytest.raises(ValueError):
            est.quantile(1.5)

    def test_memory_bound_enforced(self):
        est = StreamingQuantile(max_bins=8)
        est.add_many(range(1000))
        assert len(est._bins) <= 8
        assert est.count == 1000
        # Width grew to the minimal power of two covering 1000 distinct
        # values in 8 bins.
        assert est.width == 128

    def test_compacted_quantiles_bounded_by_width(self):
        est = StreamingQuantile(max_bins=8)
        samples = list(range(1000))
        est.add_many(samples)
        for q in (0.25, 0.5, 0.95):
            exact = nearest_rank(samples, q)
            approx = est.quantile(q)
            # The bin's lower edge is within one bin width below the
            # exact order statistic.
            assert approx <= exact < approx + 2 * est.width

    def test_order_invariance_after_compaction(self):
        samples = list(range(300))
        forward, backward = StreamingQuantile(max_bins=16), StreamingQuantile(max_bins=16)
        forward.add_many(samples)
        backward.add_many(reversed(samples))
        assert forward == backward

    def test_merge_matches_combined_feed(self):
        a, b, combined = (StreamingQuantile() for _ in range(3))
        a.add_many([1, 2, 3, 50])
        b.add_many([4, 5, 60, 70])
        combined.add_many([1, 2, 3, 50, 4, 5, 60, 70])
        a.merge(b)
        assert a == combined

    def test_state_round_trip(self):
        est = StreamingQuantile(max_bins=8)
        est.add_many(range(100))
        revived = StreamingQuantile.from_state(est.state())
        assert revived == est
        assert revived.quantiles() == est.quantiles()

    def test_rejects_degenerate_max_bins(self):
        with pytest.raises(ValueError):
            StreamingQuantile(max_bins=1)


def _depart(cycle, channel, busy, pid=0, flits=1):
    return TraceEvent(
        "depart", cycle, cycle * 14, pid, channel, 0,
        (("flits", flits), ("busy", busy), ("end", 0)),
    )


class TestChannelBusyWindows:
    def test_series_and_totals(self):
        busy = ChannelBusyWindows(window_cycles=10)
        busy.on_depart(_depart(0, channel=3, busy=14))
        busy.on_depart(_depart(9, channel=3, busy=14))
        busy.on_depart(_depart(25, channel=3, busy=45))
        busy.on_depart(_depart(4, channel=7, busy=28))
        assert busy.series(3) == [28, 0, 45]
        assert busy.series(7) == [28]
        assert busy.series(99) == []
        assert busy.totals() == {3: 73, 7: 28}

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            ChannelBusyWindows(window_cycles=0)


class TestVcOccupancyHistogram:
    def test_residency_accounting(self):
        hist = VcOccupancyHistogram()
        # Buffer (5, 1): empty 0-10, one packet 10-14, two 14-20, one 20-30.
        hist.on_arrive(TraceEvent("arrive", 10, 140, 1, 5, 1))
        hist.on_arrive(TraceEvent("arrive", 14, 196, 2, 5, 1))
        hist.on_grant(
            TraceEvent("grant", 20, 280, 1, 9, 0, (("in_ch", 5), ("in_vc", 1)))
        )
        hist.finalize(30)
        assert hist.histogram(5, 1) == {0: 10, 1: 14, 2: 6}
        # Total residency covers the whole observed span.
        assert sum(hist.histogram(5, 1).values()) == 30

    def test_untouched_buffer_absent(self):
        hist = VcOccupancyHistogram()
        hist.finalize(100)
        assert hist.histogram(0, 0) == {}


class TestMetricsCollectorEndToEnd:
    @pytest.fixture(scope="class")
    def run(self, tiny_machine, tiny_routes):
        collector = MetricsCollector(window_cycles=16)
        stats = run_batch(
            tiny_machine,
            tiny_routes,
            BatchSpec(
                UniformRandom(tiny_machine.config.shape),
                packets_per_source=4,
                cores_per_chip=2,
                seed=2,
            ),
            trace=collector,
            latency_quantiles=True,
        )
        return collector.summary(stats.end_cycle), stats

    def test_delivered_matches_stats(self, run):
        summary, stats = run
        assert summary.delivered == stats.delivered

    def test_busy_ticks_match_engine_accounting(self, run):
        summary, stats = run
        # The trace-derived totals must agree with the engine's own exact
        # integer accounting, channel by channel.
        assert summary.channel_busy_ticks == {
            cid: ticks
            for cid, ticks in sorted(stats.channel_busy_ticks.items())
            if ticks
        }
        for channel, series in summary.busy_windows.items():
            assert sum(series) == summary.channel_busy_ticks[channel]

    def test_quantiles_match_stats_estimator(self, run):
        summary, stats = run
        # Collector (trace-fed) and SimStats (delivery-fed) estimators see
        # the same latencies.
        assert summary.latency_quantiles == stats.latency_quantiles()
        p50, p95, p99 = (
            summary.latency_quantiles[q] for q in (0.5, 0.95, 0.99)
        )
        assert p50 <= p95 <= p99

    def test_occupancy_time_is_conserved(self, run):
        summary, _ = run
        assert summary.vc_occupancy
        for (channel, vc), histogram in summary.vc_occupancy.items():
            assert all(level >= 0 for level in histogram)
            assert all(cycles > 0 for cycles in histogram.values())

    def test_summary_is_picklable(self, run):
        import pickle

        summary, _ = run
        assert pickle.loads(pickle.dumps(summary)) == summary
