"""Tests for counted-write synchronization and the ping-pong driver."""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.endpoints import (
    CountedWriteCounter,
    PingPongDriver,
    measure_one_way_latency,
)


class TestCountedWriteCounter:
    def test_fires_at_zero(self):
        fired = []
        counter = CountedWriteCounter(3, fired.append)
        counter.on_write(10)
        counter.on_write(11)
        assert not fired
        counter.on_write(12)
        assert fired == [12]
        assert counter.fired

    def test_over_satisfaction_rejected(self):
        counter = CountedWriteCounter(1, lambda cycle: None)
        counter.on_write(0)
        with pytest.raises(RuntimeError):
            counter.on_write(1)

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            CountedWriteCounter(0, lambda cycle: None)


class TestPingPong:
    @pytest.fixture(scope="class")
    def setup(self):
        machine = Machine(MachineConfig(shape=(4, 4, 4), endpoints_per_chip=2))
        return machine, RouteComputer(machine)

    def test_completes_all_rounds(self, setup):
        machine, routes = setup
        driver = PingPongDriver(
            machine, routes,
            machine.ep_id[((0, 0, 0), 0)],
            machine.ep_id[((0, 1, 0), 0)],
            rounds=5,
        )
        result = driver.run()
        assert result.round_trips == 5
        assert len(result.round_trip_cycles) == 5
        assert result.total_cycles == sum(result.round_trip_cycles)

    def test_one_way_is_half_round_trip(self, setup):
        machine, routes = setup
        driver = PingPongDriver(
            machine, routes,
            machine.ep_id[((0, 0, 0), 0)],
            machine.ep_id[((0, 1, 0), 0)],
            rounds=4,
        )
        result = driver.run()
        assert result.one_way_cycles == pytest.approx(
            result.total_cycles / 8
        )

    def test_latency_grows_with_distance(self, setup):
        machine, routes = setup
        a = machine.ep_id[((0, 0, 0), 0)]
        near = measure_one_way_latency(
            machine, routes, a, machine.ep_id[((0, 1, 0), 0)], rounds=4
        )
        far = measure_one_way_latency(
            machine, routes, a, machine.ep_id[((2, 2, 2), 0)], rounds=4
        )
        assert far > near

    def test_software_overhead_included(self, setup):
        machine, routes = setup
        a = machine.ep_id[((0, 0, 0), 0)]
        b = machine.ep_id[((0, 1, 0), 0)]
        fast = measure_one_way_latency(
            machine, routes, a, b, rounds=4, software_overhead_cycles=0
        )
        slow = measure_one_way_latency(
            machine, routes, a, b, rounds=4, software_overhead_cycles=40
        )
        # The pong-side handler overhead lands inside each round trip:
        # one dispatch per one-way, so +40 cycles overhead adds ~20 per
        # one-way latency.
        assert slow == pytest.approx(fast + 20, abs=2)

    def test_rounds_validated(self, setup):
        machine, routes = setup
        with pytest.raises(ValueError):
            PingPongDriver(
                machine, routes,
                machine.ep_id[((0, 0, 0), 0)],
                machine.ep_id[((0, 1, 0), 0)],
                rounds=0,
            )

    def test_deterministic(self, setup):
        machine, routes = setup
        a = machine.ep_id[((0, 0, 0), 0)]
        b = machine.ep_id[((1, 1, 0), 1)]
        first = measure_one_way_latency(machine, routes, a, b, rounds=3)
        second = measure_one_way_latency(machine, routes, a, b, rounds=3)
        assert first == second
