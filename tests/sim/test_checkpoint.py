"""Per-component checkpoint round-trips and payload validation.

Each mutable component the engine checkpoint captures is exercised in
isolation: ``restore(save(x))`` must be *observationally* equal to ``x``
-- continuing both with an identical stimulus stream produces identical
outputs -- and a second snapshot of the restored object must be
byte-identical to the first (double-checkpoint idempotence). The
end-to-end bitwise guarantee lives in
``tests/properties/test_checkpoint_props.py``; these tests localize a
failure to the component that lost state.
"""

import io
import json
import random

import pytest

from repro.arbiters.age_based import AgeBasedArbiter
from repro.arbiters.base import SimpleRequest
from repro.arbiters.inverse_weighted import InverseWeightedArbiter
from repro.arbiters.round_robin import FixedPriorityArbiter, RoundRobinArbiter
from repro.core.machine import Machine, MachineConfig
from repro.faults import FaultPolicy, FaultRuntime, FaultSet, FaultSpec
from repro.sim.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    _build_arbiter,
    _dump_arbiter,
    _wheel_from_json,
    _wheel_to_json,
    dumps,
    load_checkpoint,
    loads,
    restore_engine,
    rng_state_from_json,
    rng_state_to_json,
    save_checkpoint,
    snapshot_engine,
)
from repro.sim.metrics import MetricsCollector, StreamingQuantile
from repro.sim.simulator import build_batch_engine
from repro.sim.trace import JsonlTraceWriter
from repro.sim.wheel import TimingWheel
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import UniformRandom

SHAPE = (2, 2, 2)


def make_machine():
    return Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=2))


def make_engine(machine, seed=11, batch=8, arbitration="rr", faults=None,
                trace=None):
    from repro.core.routing import RouteComputer

    routes = (
        faults.route_computer if faults is not None else RouteComputer(machine)
    )
    pattern = UniformRandom(SHAPE)
    spec = BatchSpec(
        pattern, packets_per_source=batch, cores_per_chip=2, seed=seed
    )
    return build_batch_engine(
        machine,
        routes,
        spec,
        arbitration=arbitration,
        weight_patterns=[pattern] if arbitration == "iw" else None,
        faults=faults,
        trace=trace,
    )


def roundtrip(engine, trace=None):
    """Snapshot -> canonical text -> parse -> restore (the full path)."""
    return restore_engine(loads(dumps(snapshot_engine(engine))), trace=trace)


# --- timing wheel -----------------------------------------------------------------


def drain(wheel: TimingWheel, now: int):
    """Full drain in engine order: overflow-due, bucket FIFO, overflow."""
    import heapq

    out = []
    while wheel.pending:
        cycle = wheel.next_cycle(now)
        assert cycle is not None
        now = max(now, cycle)
        overflow = wheel.overflow
        while overflow and overflow[0][0] <= now:
            out.append((now, heapq.heappop(overflow)[2]))
            wheel.pending -= 1
        bucket = wheel.buckets[now & wheel.mask]
        for payload in bucket:
            out.append((now, payload))
            wheel.pending -= 1
        del bucket[:]
        while overflow and overflow[0][0] <= now:
            out.append((now, heapq.heappop(overflow)[2]))
            wheel.pending -= 1
    return out


class TestTimingWheelRoundTrip:
    def build(self):
        wheel = TimingWheel(32)
        now = 100
        rng = random.Random(5)
        for i in range(40):
            # Near events (bucket fast path) and far events (overflow),
            # interleaved, plus some at the same target cycle to pin
            # FIFO order within a bucket.
            delta = rng.choice([1, 2, 3, 3, 7, 40, 63, 64, 200, 500])
            wheel.push(now + delta, now, (0, i, delta, None))
        return wheel, now

    def test_drain_order_preserved(self):
        original, now = self.build()
        data = _wheel_to_json(original, now)
        restored = TimingWheel(32)
        _wheel_from_json(restored, data, decode=tuple)
        assert restored.pending == original.pending
        # Overflow sequence numbers are canonically renumbered 0..k-1 on
        # serialization (push history erased); the restored counter is
        # the overflow population, not the lifetime push count.
        assert restored.seq == len(data["overflow"])
        assert drain(restored, now) == drain(original, now)

    def test_snapshot_is_idempotent(self):
        original, now = self.build()
        data = _wheel_to_json(original, now)
        restored = TimingWheel(32)
        _wheel_from_json(restored, data, decode=tuple)
        again = _wheel_to_json(restored, now)
        # decode=tuple turns payload lists into tuples; re-encoding with
        # the default list encoder must reproduce the exact payload.
        assert json.dumps(again) == json.dumps(data)

    def test_overflow_serialized_sorted(self):
        wheel = TimingWheel(32)
        now = 0
        # Push far-future events out of cycle order: the overflow heap's
        # array layout now differs from sorted order.
        for cycle in (900, 300, 700, 100, 500):
            wheel.push(cycle, now, (0, cycle, None, None))
        data = _wheel_to_json(wheel, now)
        cycles = [entry[0] for entry in data["overflow"]]
        assert cycles == sorted(cycles)
        restored = TimingWheel(32)
        _wheel_from_json(restored, data, decode=tuple)
        assert drain(restored, now) == drain(wheel, now)


# --- arbiters ---------------------------------------------------------------------


def arbiter_cases():
    return [
        ("rr", RoundRobinArbiter(4)),
        ("fixed", FixedPriorityArbiter(4)),
        ("age", AgeBasedArbiter(4)),
        (
            "iw",
            InverseWeightedArbiter(
                [[31], [16], [8], [4]], 5, bit_exact=False
            ),
        ),
        (
            "iw-exact",
            InverseWeightedArbiter(
                [[31], [16], [8], [4]], 5, bit_exact=True
            ),
        ),
    ]


def drive(arbiter, seed, rounds=40):
    """Deterministic pseudo-random request stream; returns grant list."""
    rng = random.Random(seed)
    grants = []
    for cycle in range(rounds):
        requests = [
            SimpleRequest(inject_cycle=cycle) if rng.random() < 0.7 else None
            for _ in range(4)
        ]
        if not any(requests):
            requests[0] = SimpleRequest(inject_cycle=cycle)
        grants.append(arbiter.arbitrate(requests))
    return grants


class TestArbiterRoundTrip:
    @pytest.mark.parametrize("name,arbiter", arbiter_cases())
    def test_resume_equals_uninterrupted(self, name, arbiter):
        # Warm the arbiter (pointer/accumulator state away from reset),
        # snapshot, and check both copies grant identically afterwards.
        drive(arbiter, seed=1)
        spec = json.loads(json.dumps(_dump_arbiter(arbiter)))
        restored = _build_arbiter(spec)
        assert type(restored) is type(arbiter)
        assert restored.state() == arbiter.state()
        assert drive(restored, seed=2) == drive(arbiter, seed=2)

    @pytest.mark.parametrize("name,arbiter", arbiter_cases())
    def test_double_checkpoint_idempotent(self, name, arbiter):
        drive(arbiter, seed=3)
        first = _dump_arbiter(arbiter)
        second = _dump_arbiter(_build_arbiter(first))
        assert json.dumps(second) == json.dumps(first)

    def test_unknown_arbiter_type_rejected(self):
        with pytest.raises(CheckpointError):
            _build_arbiter({"type": "mystery", "state": {"grants": [0]}})

    def test_iw_accumulators_survive(self):
        arbiter = InverseWeightedArbiter([[31], [8], [16]], 5)
        for cycle in range(7):
            arbiter.arbitrate([SimpleRequest(inject_cycle=cycle)] * 3)
        state = arbiter.state()
        assert any(state["accumulators"])
        restored = _build_arbiter(_dump_arbiter(arbiter))
        assert restored.state()["accumulators"] == state["accumulators"]


# --- RNG streams ------------------------------------------------------------------


class TestRngStreamRoundTrip:
    def test_mid_stream_resume(self):
        rng = random.Random(1234)
        [rng.random() for _ in range(100)]
        rng.gauss(0.0, 1.0)  # leaves a cached second gaussian in-state
        state = json.loads(json.dumps(rng_state_to_json(rng)))
        resumed = rng_state_from_json(state)
        tail = [rng.random() for _ in range(50)] + [rng.gauss(0.0, 1.0)]
        assert [resumed.random() for _ in range(50)] + [
            resumed.gauss(0.0, 1.0)
        ] == tail

    def test_state_is_json_safe(self):
        rng = random.Random(7)
        rng.randrange(1000)
        text = json.dumps(rng_state_to_json(rng))
        assert rng_state_from_json(json.loads(text)).getstate() == rng.getstate()


# --- streaming quantile -----------------------------------------------------------


class TestStreamingQuantileRoundTrip:
    def test_resume_equals_uninterrupted(self):
        full = StreamingQuantile(max_bins=16)
        half = StreamingQuantile(max_bins=16)
        samples = [random.Random(9).randrange(10_000) for _ in range(500)]
        for value in samples[:250]:
            full.add(value)
            half.add(value)
        resumed = StreamingQuantile.from_state(
            json.loads(json.dumps(half.state()))
        )
        for value in samples[250:]:
            full.add(value)
            resumed.add(value)
        assert resumed == full
        assert resumed.quantiles() == full.quantiles()

    def test_state_idempotent(self):
        est = StreamingQuantile(max_bins=8)
        est.add_many(range(100))  # forces re-binning past 8 bins
        state = est.state()
        assert StreamingQuantile.from_state(state).state() == state


# --- fault runtime ----------------------------------------------------------------


def faulted_engine(policy="retry", down=0, up=40, seed=11):
    machine = make_machine()
    fault_set = FaultSet(
        specs=(
            FaultSpec(kind="link", channel=640, down_cycle=down, up_cycle=up),
            FaultSpec(kind="link", channel=656, down_cycle=10, up_cycle=None),
        ),
        shape=SHAPE,
    )
    runtime = FaultRuntime(
        machine,
        fault_set,
        policy=FaultPolicy(mode=policy, max_retries=3),
    )
    return make_engine(machine, seed=seed, faults=runtime), runtime


class TestFaultRuntimeRoundTrip:
    def test_runtime_state_survives(self):
        engine, runtime = faulted_engine()
        engine.run_for(25)
        restored = roundtrip(engine)
        r2 = restored._fault_runtime
        assert r2 is not None
        assert r2.policy.mode == runtime.policy.mode
        assert r2.policy.max_retries == runtime.policy.max_retries
        assert r2.fault_set.to_json() == runtime.fault_set.to_json()
        assert restored._failed_channels == engine._failed_channels
        assert restored.cycle == engine.cycle
        # In-flight retry bookkeeping maps onto the restored packet
        # objects with identical output channels.
        assert sorted(restored._inflight.values()) == sorted(
            engine._inflight.values()
        )
        assert len(restored._inflight) == len(engine._inflight)

    def test_resolution_counts_survive(self):
        # Regression: the fault-aware route computer's escalation-stage
        # counters are observable diagnostics and were not captured by
        # an early version of the snapshot (its caches restart cold --
        # pure memoization -- but the counts must not).
        engine, runtime = faulted_engine(policy="reroute")
        engine.run_for(25)
        counts = dict(runtime.route_computer.resolution_counts)
        assert counts  # faults are down from cycle 0: stages were used
        restored = roundtrip(engine)
        assert (
            dict(restored._fault_runtime.route_computer.resolution_counts)
            == counts
        )

    def test_faulted_resume_is_bitwise(self):
        engine, _ = faulted_engine(policy="retry")
        engine.run_for(30)
        restored = roundtrip(engine)
        engine.run()
        restored.run()
        assert json.dumps(engine.stats.asdict()) == json.dumps(
            restored.stats.asdict()
        )


# --- stats bookkeeping ------------------------------------------------------------


class TestStatsBookkeeping:
    def test_end_cycle_restored_at_checkpoint(self):
        engine = make_engine(make_machine())
        engine.run_for(20)
        assert engine.stats.end_cycle == 20
        restored = roundtrip(engine)
        assert restored.stats.end_cycle == 20

    def test_end_cycle_after_resume_matches(self):
        reference = make_engine(make_machine())
        reference.run()
        engine = make_engine(make_machine())
        engine.run_for(20)
        restored = roundtrip(engine)
        restored.run()
        assert restored.stats.end_cycle == reference.stats.end_cycle
        assert json.dumps(restored.stats.asdict()) == json.dumps(
            reference.stats.asdict()
        )


# --- whole-engine double-checkpoint idempotence ----------------------------------


class TestDoubleCheckpointIdempotence:
    def test_without_trace(self):
        engine = make_engine(make_machine(), arbitration="iw")
        engine.run_for(25)
        first = dumps(snapshot_engine(engine))
        second = dumps(snapshot_engine(restore_engine(loads(first))))
        assert second == first

    def test_with_trace_writer(self):
        stream = io.StringIO()
        engine = make_engine(
            make_machine(), trace=JsonlTraceWriter(stream, meta={"t": 1})
        )
        engine.run_for(25)
        first = snapshot_engine(engine)
        # An equivalent resumed writer (header-free, counters carried
        # over) must make the second snapshot byte-identical.
        resumed = JsonlTraceWriter(
            io.StringIO(),
            header=False,
            resume_counts=(
                first["trace"]["events_written"],
                first["trace"]["bytes_written"],
            ),
        )
        restored = restore_engine(loads(dumps(first)), trace=resumed)
        assert dumps(snapshot_engine(restored)) == dumps(first)

    def test_with_collector(self):
        engine = make_engine(make_machine(), trace=MetricsCollector())
        engine.run_for(25)
        first = dumps(snapshot_engine(engine))
        # restore_engine revives the captured collector automatically.
        second = dumps(snapshot_engine(restore_engine(loads(first))))
        assert second == first

    def test_faulted(self):
        engine, _ = faulted_engine(policy="retry")
        engine.run_for(30)
        first = dumps(snapshot_engine(engine))
        second = dumps(snapshot_engine(restore_engine(loads(first))))
        assert second == first


# --- payload validation -----------------------------------------------------------


class TestPayloadValidation:
    def snapshot(self):
        engine = make_engine(make_machine())
        engine.run_for(10)
        return snapshot_engine(engine)

    def test_future_schema_rejected(self):
        data = self.snapshot()
        data["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        with pytest.raises(CheckpointError, match="schema version"):
            loads(dumps(data))

    def test_missing_kind_rejected(self):
        with pytest.raises(CheckpointError, match="not an engine checkpoint"):
            loads('{"schema": 1}\n')

    def test_non_object_rejected(self):
        with pytest.raises(CheckpointError):
            loads("[1, 2, 3]\n")

    def test_truncated_text_rejected(self):
        text = dumps(self.snapshot())
        with pytest.raises(CheckpointError, match="not valid JSON"):
            loads(text[: len(text) // 2])

    def test_corrupted_section_rejected(self):
        data = self.snapshot()
        del data["wheel"]
        with pytest.raises(CheckpointError, match="truncated or corrupted"):
            restore_engine(json.loads(dumps(data)))

    def test_mangled_packet_index_rejected(self):
        data = self.snapshot()
        data["source_queues"] = [[0, [10_000_000]]]
        with pytest.raises(CheckpointError, match="truncated or corrupted"):
            restore_engine(json.loads(dumps(data)))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "nope.json"))

    def test_on_delivery_hook_rejected(self):
        engine = make_engine(make_machine())
        engine.on_delivery = lambda packet: None
        with pytest.raises(CheckpointError, match="on_delivery"):
            snapshot_engine(engine)

    def test_save_load_round_trip(self, tmp_path):
        engine = make_engine(make_machine())
        engine.run_for(10)
        path = str(tmp_path / "ck.json")
        written = save_checkpoint(engine, path)
        assert dumps(load_checkpoint(path)) == dumps(written)
