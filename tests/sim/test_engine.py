"""Tests for the cycle-level simulation engine."""

import pytest

from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.core.routing import RouteChoice, RouteComputer
from repro.sim.engine import DeadlockError, Engine
from repro.sim.packet import Packet


def make_packet(machine, routes, src_key, dst_key, pid=0, **kwargs):
    src = machine.ep_id[src_key]
    dst = machine.ep_id[dst_key]
    choice = kwargs.pop("choice", RouteChoice())
    route = routes.compute(src, dst, choice)
    return Packet(pid, route, **kwargs)


class TestSinglePacket:
    def test_delivery(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        packet = make_packet(tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0))
        engine.enqueue(packet)
        stats = engine.run()
        assert packet.delivered
        assert stats.delivered == stats.injected == 1

    def test_latency_deterministic(self, tiny_machine, tiny_routes):
        latencies = []
        for _ in range(2):
            engine = Engine(tiny_machine)
            packet = make_packet(
                tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 1, 0), 1)
            )
            engine.enqueue(packet)
            engine.run()
            latencies.append(packet.network_latency)
        assert latencies[0] == latencies[1]

    def test_latency_includes_torus_delay(self, tiny_machine, tiny_routes):
        # One inter-node hop must cost at least the torus channel latency.
        engine = Engine(tiny_machine)
        packet = make_packet(tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0))
        engine.enqueue(packet)
        engine.run()
        assert packet.network_latency >= tiny_machine.config.torus_latency

    def test_same_chip_faster_than_internode(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        local = make_packet(
            tiny_machine, tiny_routes, ((0, 0, 0), 0), ((0, 0, 0), 1), pid=0
        )
        engine.enqueue(local)
        engine.run()
        engine2 = Engine(tiny_machine)
        remote = make_packet(
            tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 1, 1), 0), pid=1
        )
        engine2.enqueue(remote)
        engine2.run()
        assert local.network_latency < remote.network_latency

    def test_release_cycle_respected(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        packet = make_packet(
            tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0),
            release_cycle=100,
        )
        engine.enqueue(packet)
        engine.run()
        assert packet.inject_cycle >= 100


class TestEnqueueValidation:
    def test_release_order_enforced(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        late = make_packet(
            tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0),
            pid=0, release_cycle=10,
        )
        early = make_packet(
            tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0),
            pid=1, release_cycle=5,
        )
        engine.enqueue(late)
        with pytest.raises(ValueError):
            engine.enqueue(early)

    def test_non_endpoint_source_rejected(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        packet = make_packet(tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0))
        # Forge a route starting at a router.
        class Fake:
            src = tiny_machine.router_id[((0, 0, 0), (0, 0))]
            hops = packet.route.hops

        packet.route = Fake()
        with pytest.raises(ValueError):
            engine.enqueue(packet)


class TestBandwidth:
    def test_torus_serialization_limits_throughput(self, tiny_machine, tiny_routes):
        """N packets over one torus channel take at least N x 3.2 cycles."""
        machine = tiny_machine
        routes = tiny_routes
        engine = Engine(machine)
        count = 50
        choice = RouteChoice(deltas=(1, 0, 0), slice_index=0)
        for pid in range(count):
            engine.enqueue(
                make_packet(
                    machine, routes, ((0, 0, 0), 0), ((1, 0, 0), 0),
                    pid=pid, choice=choice,
                )
            )
        stats = engine.run()
        expected = count * machine.config.torus_cycles_per_flit
        assert stats.last_delivery_cycle >= expected * 0.95

    def test_mesh_channel_one_flit_per_cycle(self, tiny_machine, tiny_routes):
        # Same-chip traffic between two endpoints on one router chain:
        # delivery rate bounded by one packet per cycle.
        engine = Engine(tiny_machine)
        count = 30
        for pid in range(count):
            engine.enqueue(
                make_packet(
                    tiny_machine, tiny_routes, ((0, 0, 0), 0), ((0, 0, 0), 1),
                    pid=pid,
                )
            )
        stats = engine.run()
        assert stats.last_delivery_cycle >= count

    def test_channel_flit_accounting(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        packet = make_packet(tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0))
        engine.enqueue(packet)
        stats = engine.run()
        # Every hop of the route recorded exactly one flit.
        for channel_id, _vc in packet.route.hops:
            assert stats.channel_flits[channel_id] == 1


class TestTwoFlitPackets:
    def test_double_occupancy(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        count = 20
        for pid in range(count):
            engine.enqueue(
                make_packet(
                    tiny_machine, tiny_routes, ((0, 0, 0), 0), ((0, 0, 0), 1),
                    pid=pid, size_flits=2,
                )
            )
        stats = engine.run()
        # Two-flit packets need two cycles per mesh channel.
        assert stats.last_delivery_cycle >= 2 * count


class TestCredits:
    def test_all_credits_returned_after_drain(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        for pid in range(40):
            engine.enqueue(
                make_packet(
                    tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 1, 0), 0),
                    pid=pid,
                )
            )
        engine.run()
        for channel in tiny_machine.channels:
            for vc in range(tiny_machine.vcs_for_channel(channel)):
                assert engine.credits_outstanding(channel.cid, vc) == 0

    def test_no_buffered_packets_after_run(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        engine.enqueue(
            make_packet(tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 1), 1))
        )
        engine.run()
        assert engine.buffered_packets() == 0


class TestGuards:
    def test_max_cycles(self, tiny_machine, tiny_routes):
        engine = Engine(tiny_machine)
        engine.enqueue(
            make_packet(
                tiny_machine, tiny_routes, ((0, 0, 0), 0), ((1, 0, 0), 0),
                release_cycle=10_000,
            )
        )
        with pytest.raises(RuntimeError):
            engine.run(max_cycles=100)

    @staticmethod
    def _ring_jam_engine(scheme):
        """All eight nodes of a radix-8 X ring send half way around on one
        slice with one-flit buffers: with a single VC and no datelines the
        ring wedges (every buffer holds a through packet waiting for the
        next link); with the promotion scheme the dateline breaks it."""
        config = MachineConfig(
            shape=(8, 1, 1),
            endpoints_per_chip=1,
            vc_scheme=scheme,
            onchip_buffer_flits=1,
            torus_buffer_flits=1,
            torus_latency=1,
        )
        machine = Machine(config)
        routes = RouteComputer(machine)
        engine = Engine(machine, watchdog_cycles=2_000)
        pid = 0
        for x in range(8):
            src = machine.ep_id[((x, 0, 0), 0)]
            dst = machine.ep_id[(((x + 4) % 8, 0, 0), 0)]
            choice = RouteChoice(deltas=(4, 0, 0), slice_index=0)
            route = routes.compute(src, dst, choice)
            for _ in range(50):
                engine.enqueue(Packet(pid, route))
                pid += 1
        return engine

    def test_deadlock_watchdog_fires_on_unsafe_vcs(self):
        engine = self._ring_jam_engine("unsafe-single")
        with pytest.raises(DeadlockError):
            engine.run()

    def test_run_for_deadlock_watchdog_fires_on_unsafe_vcs(self):
        # run_for must not silently burn the caller's whole cycle budget
        # on a wedged network: same watchdog as run().
        engine = self._ring_jam_engine("unsafe-single")
        with pytest.raises(DeadlockError):
            engine.run_for(1_000_000)
        # The watchdog fired within its window, not at the budget.
        assert engine.cycle < 100_000

    def test_run_for_completes_workload_with_anton_vcs(self):
        engine = self._ring_jam_engine("anton")
        stats = engine.run_for(1_000_000)
        assert stats.delivered == stats.injected == 8 * 50

    def test_anton_vcs_complete_same_workload(self):
        engine = self._ring_jam_engine("anton")
        stats = engine.run()
        assert stats.delivered == stats.injected == 8 * 50

    def test_baseline_vcs_complete_same_workload(self):
        engine = self._ring_jam_engine("baseline")
        stats = engine.run()
        assert stats.delivered == stats.injected == 8 * 50
