"""Tests for simulated packets."""

import pytest

from repro.core.routing import RouteChoice
from repro.sim.packet import Packet


@pytest.fixture()
def route(tiny_machine, tiny_routes):
    src = tiny_machine.ep_id[((0, 0, 0), 0)]
    dst = tiny_machine.ep_id[((1, 0, 0), 0)]
    return tiny_routes.compute(src, dst, RouteChoice())


class TestPacket:
    def test_defaults(self, route):
        packet = Packet(1, route)
        assert packet.size_flits == 1
        assert packet.pattern == 0
        assert packet.hop_index == 0
        assert not packet.delivered

    def test_src_dst_from_route(self, route):
        packet = Packet(1, route)
        assert packet.src == route.src
        assert packet.dst == route.dst

    def test_zero_size_rejected(self, route):
        with pytest.raises(ValueError):
            Packet(1, route, size_flits=0)

    def test_latency_requires_delivery(self, route):
        packet = Packet(1, route)
        with pytest.raises(ValueError):
            _ = packet.latency

    def test_latencies(self, route):
        packet = Packet(1, route, release_cycle=10)
        packet.inject_cycle = 15
        packet.deliver_cycle = 40
        assert packet.latency == 30
        assert packet.network_latency == 25

    def test_satisfies_request_protocol(self, route):
        from repro.arbiters.base import Request

        packet = Packet(1, route, pattern=1)
        assert isinstance(packet, Request)
