"""Tests for the structured event tracing subsystem."""

import json

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteChoice, RouteComputer
from repro.sim.engine import DeadlockError, Engine
from repro.sim.packet import Packet
from repro.sim.simulator import run_batch
from repro.sim.trace import (
    EVENT_KINDS,
    JsonlTraceWriter,
    ListSink,
    Tee,
    TraceEvent,
    read_trace,
)
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import UniformRandom


class TestTraceEvent:
    def test_to_json_key_order(self):
        event = TraceEvent("depart", 3, 42, 7, 12, 1, (("flits", 2), ("end", 132)))
        assert event.to_json() == (
            '{"ev":"depart","cyc":3,"t":42,"pid":7,"ch":12,"vc":1,'
            '"flits":2,"end":132}'
        )

    def test_json_round_trip(self):
        event = TraceEvent("grant", 5, 70, 9, 3, 0, (("in_ch", 1), ("in_vc", 2)))
        assert TraceEvent.from_json(event.to_json()) == event

    def test_get_extra_field(self):
        event = TraceEvent("deliver", 1, 14, 0, 2, 0, (("lat", 33),))
        assert event.get("lat") == 33
        assert event.get("missing", -1) == -1


class TestJsonlTraceWriter:
    def test_header_then_events_parse(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as stream:
            writer = JsonlTraceWriter(stream, meta={"name": "x"})
            writer.emit(TraceEvent("inject", 0, 0, 0, 1, 0))
            writer.write_record({"ev": "end", "events": 1})
        records, events = read_trace(path.read_text().splitlines())
        assert [r["ev"] for r in records] == ["trace", "end"]
        assert records[0]["schema"] == 1
        assert records[0]["name"] == "x"
        assert len(events) == 1 and events[0].kind == "inject"

    def test_tee_fans_out(self):
        a, b = ListSink(), ListSink()
        tee = Tee(a, b)
        event = TraceEvent("arrive", 2, 28, 5, 9, 1)
        tee.emit(event)
        tee.flush()
        assert a.events == [event] and b.events == [event]


def _traced_batch(machine, routes, seed=5, **engine_kwargs):
    sink = ListSink()
    stats = run_batch(
        machine,
        routes,
        BatchSpec(
            UniformRandom(machine.config.shape),
            packets_per_source=2,
            cores_per_chip=2,
            seed=seed,
        ),
        trace=sink,
        **engine_kwargs,
    )
    return sink.events, stats


class TestEngineEmission:
    @pytest.fixture(scope="class")
    def traced(self, tiny_machine, tiny_routes):
        return _traced_batch(tiny_machine, tiny_routes)

    def test_only_known_kinds(self, traced):
        events, _ = traced
        assert events and {e.kind for e in events} <= set(EVENT_KINDS)

    def test_event_counts_match_stats(self, traced):
        events, stats = traced
        kinds = [e.kind for e in events]
        assert kinds.count("inject") == stats.injected
        assert kinds.count("deliver") == stats.delivered
        # Every hop departs exactly once: flit-weighted departures equal
        # the stats channel accounting.
        departs = [e for e in events if e.kind == "depart"]
        assert sum(e.get("flits") for e in departs) == sum(
            stats.channel_flits.values()
        )
        assert sum(e.get("busy") for e in departs) == sum(
            stats.channel_busy_ticks.values()
        )

    def test_events_in_cycle_order(self, traced):
        events, _ = traced
        cycles = [e.cycle for e in events]
        assert cycles == sorted(cycles)
        for event in events:
            assert event.tick == event.cycle * 14

    def test_per_packet_causality(self, traced):
        events, stats = traced
        by_pid = {}
        for event in events:
            by_pid.setdefault(event.pid, []).append(event)
        assert len(by_pid) == stats.injected
        for pid, stream in by_pid.items():
            kinds = [e.kind for e in stream]
            assert kinds[0] == "inject"
            assert kinds[-1] == "deliver"
            # Delivery latency stamped on the event matches the cycle span.
            deliver = stream[-1]
            assert deliver.get("lat") == deliver.cycle - stream[0].cycle

    def test_grants_pair_with_router_departs(self, traced):
        events, _ = traced
        # Every grant is immediately followed by the depart it caused
        # (same packet, channel, cycle); injection departs have no grant.
        for i, event in enumerate(events):
            if event.kind != "grant":
                continue
            depart = events[i + 1]
            assert depart.kind == "depart"
            assert (depart.pid, depart.channel, depart.cycle) == (
                event.pid,
                event.channel,
                event.cycle,
            )

    def test_promotions_record_vc_change(self, traced):
        events, _ = traced
        promotions = [e for e in events if e.kind == "promote"]
        # Uniform traffic on the 2x2x2 torus crosses datelines: the trace
        # must witness VC promotion.
        assert promotions
        for event in promotions:
            assert event.get("from_vc") != event.vc

    def test_tracing_does_not_change_results(self, tiny_machine, tiny_routes, traced):
        _, traced_stats = traced
        untraced = run_batch(
            tiny_machine,
            tiny_routes,
            BatchSpec(
                UniformRandom(tiny_machine.config.shape),
                packets_per_source=2,
                cores_per_chip=2,
                seed=5,
            ),
        )
        assert untraced.asdict() == traced_stats.asdict()


class TestWatchdogFlushesPartialTrace:
    """A wedged network must still raise DeadlockError with tracing on,
    leaving a parseable partial trace on disk (the deadlock post-mortem)."""

    @staticmethod
    def _jammed_engine(trace):
        # The radix-8 X-ring jam from the engine deadlock tests: a single
        # VC with no datelines wedges under all-to-halfway traffic.
        config = MachineConfig(
            shape=(8, 1, 1),
            endpoints_per_chip=1,
            vc_scheme="unsafe-single",
            onchip_buffer_flits=1,
            torus_buffer_flits=1,
            torus_latency=1,
        )
        machine = Machine(config)
        routes = RouteComputer(machine)
        engine = Engine(machine, watchdog_cycles=2_000, trace=trace)
        pid = 0
        for x in range(8):
            src = machine.ep_id[((x, 0, 0), 0)]
            dst = machine.ep_id[(((x + 4) % 8, 0, 0), 0)]
            route = routes.compute(
                src, dst, RouteChoice(deltas=(4, 0, 0), slice_index=0)
            )
            for _ in range(50):
                engine.enqueue(Packet(pid, route))
                pid += 1
        return engine

    def test_run_for_raises_and_flushes(self, tmp_path):
        path = tmp_path / "jam.jsonl"
        with open(path, "w") as stream:
            writer = JsonlTraceWriter(stream, meta={"name": "jam"})
            engine = self._jammed_engine(writer)
            with pytest.raises(DeadlockError):
                engine.run_for(1_000_000)
            # Flushed by the watchdog, before the stream is closed.
            records, events = read_trace(path.read_text().splitlines())
        assert records[0]["ev"] == "trace"
        assert events, "partial trace must contain the pre-jam events"
        kinds = {e.kind for e in events}
        assert "inject" in kinds and "depart" in kinds
        # The jam wedged before anything was delivered all the way around.
        assert len([e for e in events if e.kind == "deliver"]) < engine.stats.injected

    def test_every_flushed_line_is_valid_json(self, tmp_path):
        path = tmp_path / "jam.jsonl"
        with open(path, "w") as stream:
            writer = JsonlTraceWriter(stream, meta={"name": "jam"})
            engine = self._jammed_engine(writer)
            with pytest.raises(DeadlockError):
                engine.run()
        for line in path.read_text().splitlines():
            json.loads(line)
