"""Tests for simulation statistics."""

import pytest

from repro.core.routing import RouteChoice
from repro.sim.packet import Packet
from repro.sim.stats import SimStats


@pytest.fixture()
def delivered_packet(tiny_machine, tiny_routes):
    src = tiny_machine.ep_id[((0, 0, 0), 0)]
    dst = tiny_machine.ep_id[((1, 0, 0), 0)]
    route = tiny_routes.compute(src, dst, RouteChoice())
    packet = Packet(0, route)
    packet.inject_cycle = 5
    packet.deliver_cycle = 30
    return packet


class TestRecording:
    def test_delivery_updates_counters(self, delivered_packet):
        stats = SimStats()
        stats.record_injection(delivered_packet)
        stats.record_delivery(delivered_packet)
        assert stats.injected == 1
        assert stats.delivered == 1
        assert stats.last_delivery_cycle == 30
        assert stats.delivered_per_source[delivered_packet.src] == 1
        assert stats.source_finish_cycle[delivered_packet.src] == 30

    def test_latency_accumulation(self, delivered_packet):
        stats = SimStats()
        stats.record_delivery(delivered_packet)
        assert stats.mean_latency == 30  # release 0 -> deliver 30
        assert stats.mean_network_latency == 25

    def test_keep_latencies(self, delivered_packet):
        stats = SimStats()
        stats.record_delivery(delivered_packet, keep_latency=True)
        assert stats.packet_latencies == [25]

    def test_channel_use(self):
        stats = SimStats()
        stats.record_channel_use(7, 2)
        stats.record_channel_use(7, 1)
        assert stats.channel_flits[7] == 3


class TestMetrics:
    def test_mean_latency_requires_deliveries(self):
        with pytest.raises(ValueError):
            SimStats().mean_latency

    def test_throughput(self, delivered_packet):
        stats = SimStats()
        stats.record_delivery(delivered_packet)
        assert stats.throughput_packets_per_cycle() == pytest.approx(1 / 30)

    def test_throughput_no_deliveries(self):
        assert SimStats().throughput_packets_per_cycle() == 0.0

    def test_finish_spread(self):
        stats = SimStats()
        stats.source_finish_cycle = {1: 100, 2: 50}
        assert stats.finish_spread() == pytest.approx(0.5)

    def test_finish_spread_empty(self):
        assert SimStats().finish_spread() is None

    def test_service_counts_sorted(self):
        stats = SimStats()
        stats.delivered_per_source.update({1: 5, 2: 2, 3: 9})
        assert stats.service_counts() == [2, 5, 9]

    def test_min_max_service_ratio(self):
        stats = SimStats()
        stats.delivered_per_source.update({1: 5, 2: 10})
        assert stats.min_max_service_ratio() == pytest.approx(0.5)
