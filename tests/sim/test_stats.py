"""Tests for simulation statistics."""

import json

import pytest

from repro.core.routing import RouteChoice
from repro.sim.metrics import StreamingQuantile
from repro.sim.packet import Packet
from repro.sim.stats import SimStats


@pytest.fixture()
def delivered_packet(tiny_machine, tiny_routes):
    src = tiny_machine.ep_id[((0, 0, 0), 0)]
    dst = tiny_machine.ep_id[((1, 0, 0), 0)]
    route = tiny_routes.compute(src, dst, RouteChoice())
    packet = Packet(0, route)
    packet.inject_cycle = 5
    packet.deliver_cycle = 30
    return packet


class TestRecording:
    def test_delivery_updates_counters(self, delivered_packet):
        stats = SimStats()
        stats.record_injection(delivered_packet)
        stats.record_delivery(delivered_packet)
        assert stats.injected == 1
        assert stats.delivered == 1
        assert stats.last_delivery_cycle == 30
        assert stats.delivered_per_source[delivered_packet.src] == 1
        assert stats.source_finish_cycle[delivered_packet.src] == 30

    def test_latency_accumulation(self, delivered_packet):
        stats = SimStats()
        stats.record_delivery(delivered_packet)
        assert stats.mean_latency == 30  # release 0 -> deliver 30
        assert stats.mean_network_latency == 25

    def test_keep_latencies(self, delivered_packet):
        stats = SimStats()
        stats.record_delivery(delivered_packet, keep_latency=True)
        assert stats.packet_latencies == [25]

    def test_channel_use(self):
        stats = SimStats()
        stats.record_channel_use(7, 2)
        stats.record_channel_use(7, 1)
        assert stats.channel_flits[7] == 3


class TestMetrics:
    def test_mean_latency_requires_deliveries(self):
        with pytest.raises(ValueError):
            SimStats().mean_latency

    def test_throughput(self, delivered_packet):
        stats = SimStats()
        stats.record_delivery(delivered_packet)
        assert stats.throughput_packets_per_cycle() == pytest.approx(1 / 30)

    def test_throughput_no_deliveries(self):
        assert SimStats().throughput_packets_per_cycle() == 0.0

    def test_finish_spread(self):
        stats = SimStats()
        stats.source_finish_cycle = {1: 100, 2: 50}
        assert stats.finish_spread() == pytest.approx(0.5)

    def test_finish_spread_empty(self):
        assert SimStats().finish_spread() is None

    def test_service_counts_sorted(self):
        stats = SimStats()
        stats.delivered_per_source.update({1: 5, 2: 2, 3: 9})
        assert stats.service_counts() == [2, 5, 9]

    def test_min_max_service_ratio(self):
        stats = SimStats()
        stats.delivered_per_source.update({1: 5, 2: 10})
        assert stats.min_max_service_ratio() == pytest.approx(0.5)


def _populated_stats(delivered_packet, with_estimator=False):
    stats = SimStats(ticks_per_cycle=14)
    if with_estimator:
        stats.latency_estimator = StreamingQuantile()
    stats.record_injection(delivered_packet)
    stats.record_delivery(delivered_packet)
    stats.record_channel_use(7, 2, busy_ticks=90)
    stats.end_cycle = 40
    return stats


class TestRoundTrip:
    """Regression: asdict()/from_dict() must restore *behavior*, not just
    values -- the counter dicts were silently coming back as plain dicts,
    turning reads of untouched ids into KeyErrors."""

    def test_round_trip_restores_defaultdict_behavior(self, delivered_packet):
        stats = _populated_stats(delivered_packet)
        revived = SimStats.from_dict(stats.asdict())
        # Reading an id never touched must yield 0, exactly like a live run.
        assert revived.delivered_per_source[999] == 0
        assert revived.channel_flits[999] == 0
        assert revived.channel_busy_ticks[999] == 0
        # And an id that was touched keeps its value.
        assert revived.channel_flits[7] == 2
        assert revived.channel_busy_ticks[7] == 90

    def test_round_trip_preserves_values(self, delivered_packet):
        stats = _populated_stats(delivered_packet)
        assert SimStats.from_dict(stats.asdict()).asdict() == stats.asdict()

    def test_json_round_trip_restores_int_keys(self, delivered_packet):
        stats = _populated_stats(delivered_packet)
        revived = SimStats.from_dict(json.loads(json.dumps(stats.asdict())))
        assert revived.asdict() == stats.asdict()
        assert all(
            isinstance(key, int) for key in revived.delivered_per_source
        )
        assert all(isinstance(key, int) for key in revived.source_finish_cycle)

    def test_estimator_survives_round_trip(self, delivered_packet):
        stats = _populated_stats(delivered_packet, with_estimator=True)
        revived = SimStats.from_dict(json.loads(json.dumps(stats.asdict())))
        assert revived.latency_estimator == stats.latency_estimator
        assert revived.latency_quantiles() == stats.latency_quantiles()

    def test_asdict_does_not_alias_live_dicts(self, delivered_packet):
        stats = _populated_stats(delivered_packet)
        snapshot = stats.asdict()
        stats.record_channel_use(7, 5, busy_ticks=10)
        assert snapshot["channel_flits"][7] == 2


class TestMerge:
    def test_merge_folds_counters_and_dicts(self, delivered_packet):
        a = _populated_stats(delivered_packet)
        b = _populated_stats(delivered_packet)
        b.record_channel_use(8, 1, busy_ticks=45)
        b.source_finish_cycle[delivered_packet.src] = 99
        a.merge(b)
        assert a.injected == 2 and a.delivered == 2
        assert a.channel_flits[7] == 4
        assert a.channel_busy_ticks[8] == 45
        # Latest finish wins.
        assert a.source_finish_cycle[delivered_packet.src] == 99
        assert a.end_cycle == 40

    def test_merge_rejects_timebase_mismatch(self, delivered_packet):
        a = _populated_stats(delivered_packet)
        b = SimStats(ticks_per_cycle=7)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_combines_estimators(self, delivered_packet):
        a = _populated_stats(delivered_packet, with_estimator=True)
        b = _populated_stats(delivered_packet, with_estimator=True)
        b.latency_estimator.add_many([100, 200])
        a.merge(b)
        assert a.latency_estimator.count == 4

    def test_merge_adopts_other_estimator_without_aliasing(
        self, delivered_packet
    ):
        a = _populated_stats(delivered_packet)
        b = _populated_stats(delivered_packet, with_estimator=True)
        a.merge(b)
        assert a.latency_estimator == b.latency_estimator
        a.latency_estimator.add(1_000_000)
        assert a.latency_estimator != b.latency_estimator
