"""Regression tests for ``Engine.run_for``.

Two contracts pinned here:

* ``stats.end_cycle`` is updated on *every* return path (it was once
  only set by :meth:`run`, so mid-run snapshots reported a stale span);
* splitting a run -- ``run_for(n)`` then ``run_for(m)`` -- is bitwise
  identical to ``run_for(n + m)``: same stats, same trace, same
  per-packet outcomes. The timing wheel makes scheduling state richer
  than a flat heap, so pausing and resuming must not perturb it.
"""

import random

from repro.core.geometry import all_coords
from repro.sim.engine import Engine
from repro.sim.packet import Packet
from repro.sim.trace import ListSink


def build_workload(machine, routes, seed=11, count=48):
    """A seeded uniform workload as a list of enqueue-ready packets."""
    rng = random.Random(seed)
    chips = list(all_coords(machine.config.shape))
    packets = []
    per_source_release = {}
    for pid in range(count):
        src_chip = rng.choice(chips)
        dst_chip = rng.choice(chips)
        src = machine.ep_id[(src_chip, rng.randrange(2))]
        dst = machine.ep_id[(dst_chip, rng.randrange(2))]
        if src == dst:
            continue
        choice = routes.random_choice(rng, src_chip, dst_chip)
        route = routes.compute(src, dst, choice)
        release = per_source_release.get(src, 0) + rng.randrange(3)
        per_source_release[src] = release
        packets.append(Packet(pid, route, release_cycle=release))
    return packets


def fresh_engine(machine, routes, trace=None, seed=11):
    engine = Engine(machine, keep_packet_latencies=True, trace=trace)
    for packet in build_workload(machine, routes, seed=seed):
        engine.enqueue(packet)
    return engine


class TestEndCycle:
    def test_set_on_budget_exhaustion(self, tiny_machine, tiny_routes):
        engine = fresh_engine(tiny_machine, tiny_routes)
        stats = engine.run_for(3)
        assert stats.end_cycle == engine.cycle == 3

    def test_set_on_early_drain(self, tiny_machine, tiny_routes):
        engine = fresh_engine(tiny_machine, tiny_routes)
        stats = engine.run_for(1_000_000)
        assert stats.delivered == stats.injected
        assert engine.cycle < 1_000_000
        assert stats.end_cycle == engine.cycle

    def test_set_when_nothing_to_do(self, tiny_machine):
        engine = Engine(tiny_machine)
        stats = engine.run_for(5)
        assert stats.end_cycle == engine.cycle == 0

    def test_tracks_successive_calls(self, tiny_machine, tiny_routes):
        engine = fresh_engine(tiny_machine, tiny_routes)
        for _ in range(4):
            stats = engine.run_for(2)
            assert stats.end_cycle == engine.cycle


class TestSplitRunEquivalence:
    def test_split_matches_single_run(self, tiny_machine, tiny_routes):
        for n, m in ((1, 7), (5, 5), (13, 200)):
            sink_a, sink_b = ListSink(), ListSink()
            split = fresh_engine(tiny_machine, tiny_routes, trace=sink_a)
            single = fresh_engine(tiny_machine, tiny_routes, trace=sink_b)
            split.run_for(n)
            split.run_for(m)
            single.run_for(n + m)
            assert split.cycle == single.cycle
            # Dataclass equality: every counter, per-source tally,
            # per-channel flit/busy map, and retained latency list.
            assert split.stats == single.stats
            assert sink_a.events == sink_b.events
            assert split.buffered_packets() == single.buffered_packets()

    def test_split_run_to_completion(self, tiny_machine, tiny_routes):
        sink_a, sink_b = ListSink(), ListSink()
        split = fresh_engine(tiny_machine, tiny_routes, trace=sink_a)
        single = fresh_engine(tiny_machine, tiny_routes, trace=sink_b)
        # Same stop condition as run(): trailing credit returns after the
        # last delivery still advance the cycle count.
        while split._queued or split._in_network or split._events.pending:
            split.run_for(3)
        single.run()
        assert split.stats == single.stats
        assert sink_a.events == sink_b.events
