"""Pins for JsonlTraceWriter's opt-in flush_every liveness mode.

Flushing changes *when* bytes reach the stream, never what they are:
the serialized output must be byte-identical across flush cadences, and
the default (0) must never flush mid-run -- the golden-trace contract.
"""

import io

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.simulator import run_batch
from repro.sim.trace import JsonlTraceWriter
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import pattern_factories


class FlushCountingStream(io.StringIO):
    def __init__(self):
        super().__init__()
        self.flushes = 0

    def flush(self):
        self.flushes += 1
        super().flush()


def _run_traced(machine, writer):
    shape = machine.config.shape
    return run_batch(
        machine,
        RouteComputer(machine),
        BatchSpec(
            pattern=pattern_factories(shape)["uniform"](),
            packets_per_source=4,
            cores_per_chip=2,
            seed=9,
        ),
        trace=writer,
    )


def test_flush_every_rejects_negative():
    with pytest.raises(ValueError, match="flush_every"):
        JsonlTraceWriter(io.StringIO(), flush_every=-1)


def test_flush_cadence_never_changes_bytes(tiny_machine):
    outputs = {}
    for flush_every in (0, 1, 7):
        stream = io.StringIO()
        writer = JsonlTraceWriter(
            stream, meta={"run": "flush-pin"}, flush_every=flush_every
        )
        _run_traced(tiny_machine, writer)
        outputs[flush_every] = stream.getvalue()
    assert outputs[0] == outputs[1] == outputs[7]
    assert outputs[0].count("\n") > 1


def test_default_never_flushes_line_by_line_mode_does(tiny_machine):
    buffered = FlushCountingStream()
    writer = JsonlTraceWriter(buffered, flush_every=0)
    _run_traced(tiny_machine, writer)
    midrun_flushes = buffered.flushes
    # run_batch's final sink flush is the only one allowed by default.
    assert midrun_flushes <= 1

    live = FlushCountingStream()
    writer = JsonlTraceWriter(live, flush_every=1)
    _run_traced(tiny_machine, writer)
    assert writer.events_written > 0
    assert live.flushes >= writer.events_written


def test_flush_every_counts_from_events_not_records(tiny_machine):
    stream = FlushCountingStream()
    writer = JsonlTraceWriter(stream, flush_every=5)
    assert stream.flushes == 0  # the header record does not flush
    _run_traced(tiny_machine, writer)
    assert stream.flushes >= writer.events_written // 5
