"""Tests for the router-pipeline latency option."""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteChoice, RouteComputer
from repro.sim.simulator import run_single_packet


def latency_with_pipeline(pipeline_cycles, src_key, dst_key):
    machine = Machine(
        MachineConfig(
            shape=(2, 2, 2),
            endpoints_per_chip=2,
            router_pipeline_cycles=pipeline_cycles,
        )
    )
    routes = RouteComputer(machine)
    src = machine.ep_id[src_key]
    dst = machine.ep_id[dst_key]
    route = routes.compute(src, dst, RouteChoice())
    latency = run_single_packet(machine, routes, src, dst)
    return latency, route


class TestPipelineLatency:
    def test_default_zero_unchanged(self):
        base, _route = latency_with_pipeline(0, ((0, 0, 0), 0), ((1, 0, 0), 0))
        again, _route = latency_with_pipeline(0, ((0, 0, 0), 0), ((1, 0, 0), 0))
        assert base == again

    def test_pipeline_adds_per_forwarding_component(self):
        base, route = latency_with_pipeline(0, ((0, 0, 0), 0), ((1, 0, 0), 0))
        deep, _route = latency_with_pipeline(4, ((0, 0, 0), 0), ((1, 0, 0), 0))
        # The packet is buffered (and pipelined) after every hop except
        # the final one, whose arrival is consumed at the endpoint.
        forwarding_hops = len(route.hops) - 1
        assert deep == base + 4 * forwarding_hops

    def test_longer_routes_pay_more(self):
        near_base, _r = latency_with_pipeline(0, ((0, 0, 0), 0), ((1, 0, 0), 0))
        near_deep, _r = latency_with_pipeline(3, ((0, 0, 0), 0), ((1, 0, 0), 0))
        far_base, _r = latency_with_pipeline(0, ((0, 0, 0), 0), ((1, 1, 1), 0))
        far_deep, _r = latency_with_pipeline(3, ((0, 0, 0), 0), ((1, 1, 1), 0))
        assert far_deep - far_base > near_deep - near_base

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(router_pipeline_cycles=-1)

    def test_throughput_unaffected_in_steady_state(self):
        """The pipeline adds latency, not bandwidth loss: a stream of
        packets over one path completes in near-identical time."""
        from repro.sim.engine import Engine
        from repro.sim.packet import Packet

        def completion(pipeline):
            machine = Machine(
                MachineConfig(
                    shape=(2, 2, 2),
                    endpoints_per_chip=2,
                    router_pipeline_cycles=pipeline,
                )
            )
            routes = RouteComputer(machine)
            src = machine.ep_id[((0, 0, 0), 0)]
            dst = machine.ep_id[((0, 0, 0), 1)]
            route = routes.compute(src, dst, RouteChoice())
            engine = Engine(machine)
            for pid in range(60):
                engine.enqueue(Packet(pid, route))
            return engine.run().last_delivery_cycle

        base = completion(0)
        deep = completion(4)
        # Fixed offset (pipeline fill), not a per-packet slowdown.
        assert deep - base < 20
