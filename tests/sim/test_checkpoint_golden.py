"""Golden checkpoint conformance: the committed snapshot under
``tests/golden/`` pins the checkpoint schema and canonical serialization.

A diff here means either a bug or an intentional schema change; bump
``CHECKPOINT_SCHEMA_VERSION`` and regenerate with::

    python -m repro checkpoint save --shape 2x2x2 --endpoints 2 \
        --pattern uniform --batch 8 --cores 2 --arbitration rr \
        --seed 3 --cycles 40 --out tests/golden/checkpoint_uniform_2x2x2.json
"""

import json
import subprocess
import sys

import pytest

from repro.cli import main
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    checkpoint_info,
    dumps,
    load_checkpoint,
    restore_engine,
    snapshot_engine,
)
from repro.sim.goldens import GOLDEN_DIR
from repro.sim.simulator import build_batch_engine
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import UniformRandom

FIXTURE = GOLDEN_DIR / "checkpoint_uniform_2x2x2.json"

# The exact recipe the fixture was generated with (see module docstring).
SHAPE = (2, 2, 2)
SEED = 3
BATCH = 8
CYCLES = 40


def build_fixture_engine():
    machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=2))
    routes = RouteComputer(machine)
    spec = BatchSpec(
        UniformRandom(SHAPE), packets_per_source=BATCH,
        cores_per_chip=2, seed=SEED,
    )
    return build_batch_engine(machine, routes, spec, arbitration="rr")


class TestCommittedFixture:
    def test_fixture_is_valid_and_current_schema(self):
        assert FIXTURE.exists(), f"missing golden checkpoint {FIXTURE}"
        data = load_checkpoint(str(FIXTURE))
        assert data["schema"] == CHECKPOINT_SCHEMA_VERSION
        info = checkpoint_info(data)
        assert info["cycle"] == CYCLES
        assert info["shape"] == SHAPE
        assert info["injected"] == 128
        assert not info["faulted"]

    def test_fixture_is_canonical_serialization(self):
        # One line of compact JSON plus a trailing newline, and loading
        # then re-dumping reproduces the committed bytes exactly.
        text = FIXTURE.read_text()
        assert text.endswith("\n")
        assert "\n" not in text[:-1]
        assert dumps(json.loads(text)) == text

    def test_regeneration_is_byte_identical(self):
        engine = build_fixture_engine()
        engine.run_for(CYCLES)
        assert dumps(snapshot_engine(engine)) == FIXTURE.read_text()

    def test_fixture_restores_and_finishes_bitwise(self):
        # Resuming the committed snapshot must land on the same final
        # stats as running the recipe uninterrupted today.
        uninterrupted = build_fixture_engine()
        full_stats = json.dumps(uninterrupted.run().asdict())

        restored = restore_engine(load_checkpoint(str(FIXTURE)))
        resumed_stats = json.dumps(restored.run().asdict())
        assert resumed_stats == full_stats


class TestRejectionViaCli:
    """Unknown/future versions and damaged payloads fail with exit code 1
    and a one-line ``error:`` diagnostic -- never a traceback."""

    def _assert_rejected(self, capsys, argv, needle=None):
        code = main(argv)
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err
        if needle is not None:
            assert needle in err

    def test_info_rejects_future_schema(self, tmp_path, capsys):
        data = json.loads(FIXTURE.read_text())
        data["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(dumps(data))
        self._assert_rejected(
            capsys, ["checkpoint", "info", str(path)], "schema version"
        )

    def test_restore_rejects_future_schema(self, tmp_path, capsys):
        data = json.loads(FIXTURE.read_text())
        data["schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(dumps(data))
        self._assert_rejected(
            capsys, ["checkpoint", "restore", str(path)], "schema version"
        )

    def test_info_rejects_truncated_payload(self, tmp_path, capsys):
        path = tmp_path / "truncated.json"
        path.write_text(FIXTURE.read_text()[: len(FIXTURE.read_text()) // 2])
        self._assert_rejected(capsys, ["checkpoint", "info", str(path)])

    def test_restore_rejects_corrupted_payload(self, tmp_path, capsys):
        data = json.loads(FIXTURE.read_text())
        del data["wheel"]
        path = tmp_path / "corrupt.json"
        path.write_text(dumps(data))
        self._assert_rejected(capsys, ["checkpoint", "restore", str(path)])

    def test_restore_rejects_wrong_kind(self, tmp_path, capsys):
        path = tmp_path / "notckpt.json"
        path.write_text('{"kind": "something-else", "schema": 1}\n')
        self._assert_rejected(capsys, ["checkpoint", "restore", str(path)])

    def test_info_rejects_missing_file(self, capsys):
        self._assert_rejected(
            capsys, ["checkpoint", "info", "/nonexistent/ck.json"]
        )

    @pytest.mark.slow
    def test_subprocess_exit_one_no_traceback(self, tmp_path):
        # End-to-end through the real interpreter: a corrupt file must
        # not escape as an uncaught exception.
        path = tmp_path / "garbage.json"
        path.write_text("not json at all\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "checkpoint", "info", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert proc.stderr.startswith("error:")
        assert "Traceback" not in proc.stderr
        assert proc.stdout == ""
