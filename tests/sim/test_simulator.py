"""Tests for the high-level simulation facade."""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.simulator import (
    arbiter_builder_for,
    make_weight_tables,
    run_batch,
    run_single_packet,
)
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import Tornado, UniformRandom


@pytest.fixture(scope="module")
def setup():
    machine = Machine(MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2))
    return machine, RouteComputer(machine)


class TestRunBatch:
    def test_all_policies_deliver_everything(self, setup):
        machine, routes = setup
        pattern = UniformRandom((2, 2, 2))
        spec = BatchSpec(pattern, packets_per_source=8, cores_per_chip=2, seed=1)
        for arbitration in ("rr", "age"):
            stats = run_batch(machine, routes, spec, arbitration=arbitration)
            assert stats.delivered == stats.injected == 16 * 8

    def test_iw_with_weight_patterns(self, setup):
        machine, routes = setup
        pattern = UniformRandom((2, 2, 2))
        spec = BatchSpec(pattern, packets_per_source=8, cores_per_chip=2, seed=1)
        stats = run_batch(
            machine, routes, spec, arbitration="iw", weight_patterns=[pattern]
        )
        assert stats.delivered == 16 * 8

    def test_iw_requires_weights(self, setup):
        machine, routes = setup
        pattern = UniformRandom((2, 2, 2))
        spec = BatchSpec(pattern, packets_per_source=4, cores_per_chip=2)
        with pytest.raises(ValueError):
            run_batch(machine, routes, spec, arbitration="iw")

    def test_unknown_policy(self, setup):
        machine, routes = setup
        pattern = UniformRandom((2, 2, 2))
        spec = BatchSpec(pattern, packets_per_source=4, cores_per_chip=2)
        with pytest.raises(ValueError):
            run_batch(machine, routes, spec, arbitration="lottery")

    def test_deterministic_given_seed(self, setup):
        machine, routes = setup
        pattern = UniformRandom((2, 2, 2))
        spec = BatchSpec(pattern, packets_per_source=8, cores_per_chip=2, seed=9)
        first = run_batch(machine, routes, spec, arbitration="rr")
        second = run_batch(machine, routes, spec, arbitration="rr")
        assert first.last_delivery_cycle == second.last_delivery_cycle


class TestWeightTables:
    def test_tables_cover_loaded_sites(self, setup):
        machine, routes = setup
        pattern = Tornado((2, 2, 2))
        tables = make_weight_tables(machine, routes, [pattern], cores_per_chip=2)
        assert tables
        for table in tables.values():
            assert table.num_patterns == 1

    def test_two_pattern_tables(self, setup):
        machine, routes = setup
        patterns = [UniformRandom((2, 2, 2)), Tornado((2, 2, 2))]
        tables = make_weight_tables(machine, routes, patterns, cores_per_chip=2)
        for table in tables.values():
            assert table.num_patterns == 2

    def test_builder_falls_back_for_unknown_site(self, setup):
        machine, routes = setup
        pattern = Tornado((2, 2, 2))
        tables = make_weight_tables(machine, routes, [pattern], cores_per_chip=2)
        builder = arbiter_builder_for("iw", tables, num_patterns=1)
        # A site with no modeled load still gets a working arbiter.
        arbiter = builder(4, site=-1)
        assert arbiter.num_inputs == 4


class TestRunSinglePacket:
    def test_positive_latency(self, setup):
        machine, routes = setup
        src = machine.ep_id[((0, 0, 0), 0)]
        dst = machine.ep_id[((1, 1, 1), 0)]
        latency = run_single_packet(machine, routes, src, dst)
        assert latency > 0

    def test_monotone_in_distance(self, setup):
        machine, routes = setup
        src = machine.ep_id[((0, 0, 0), 0)]
        near = run_single_packet(machine, routes, src, machine.ep_id[((1, 0, 0), 0)])
        far = run_single_packet(machine, routes, src, machine.ep_id[((1, 1, 1), 0)])
        assert far > near
