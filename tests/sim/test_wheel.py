"""Unit tests for the engine's bucketed timing wheel.

The wheel's contract is *ordering equivalence* with the heap it
replaced: draining events cycle by cycle (overflow pre-drain, bucket
FIFO, overflow post-drain -- the engine's discipline) must yield
exactly the ``(cycle, push order)`` sequence a global heap would.
"""

import heapq
import random

import pytest

from repro.sim.wheel import _MIN_SIZE, TimingWheel


def drain_cycle(wheel, now):
    """Pop every event for ``now``, in the engine's drain order."""
    out = []
    overflow = wheel.overflow
    while overflow and overflow[0][0] <= now:
        out.append(heapq.heappop(overflow)[2])
        wheel.pending -= 1
    bucket = wheel.buckets[now & wheel.mask]
    out.extend(bucket)
    wheel.pending -= len(bucket)
    del bucket[:]
    while overflow and overflow[0][0] <= now:
        out.append(heapq.heappop(overflow)[2])
        wheel.pending -= 1
    return out


class TestSizing:
    def test_minimum_size(self):
        assert TimingWheel(1).size == _MIN_SIZE
        assert TimingWheel(0).size == _MIN_SIZE

    def test_power_of_two_at_least_horizon(self):
        for horizon in (63, 64, 65, 100, 129, 1000):
            wheel = TimingWheel(horizon)
            assert wheel.size >= max(horizon, _MIN_SIZE)
            assert wheel.size & (wheel.size - 1) == 0
            assert wheel.mask == wheel.size - 1

    def test_exact_power_of_two_not_doubled(self):
        assert TimingWheel(128).size == 128


class TestPushPlacement:
    def test_near_future_lands_in_bucket(self):
        wheel = TimingWheel(16)
        wheel.push(5, 0, ("a",))
        assert wheel.buckets[5 & wheel.mask] == [("a",)]
        assert not wheel.overflow
        assert wheel.pending == 1

    def test_far_future_lands_in_overflow(self):
        wheel = TimingWheel(16)
        far = wheel.size + 3
        wheel.push(far, 0, ("b",))
        assert wheel.overflow == [(far, 1, ("b",))]
        assert all(not bucket for bucket in wheel.buckets)
        assert wheel.pending == 1

    def test_same_cycle_push_lands_in_overflow(self):
        # delta == 0: a handler pushing for the cycle being processed
        # must not land in the bucket under the iterator's feet.
        wheel = TimingWheel(16)
        wheel.push(7, 7, ("c",))
        assert wheel.overflow == [(7, 1, ("c",))]

    def test_len_and_bool_track_pending(self):
        wheel = TimingWheel(16)
        assert not wheel and len(wheel) == 0
        wheel.push(3, 0, ("x",))
        wheel.push(wheel.size * 2, 0, ("y",))
        assert wheel and len(wheel) == 2
        drain_cycle(wheel, 3)
        assert len(wheel) == 1


class TestNextCycle:
    def test_empty_wheel(self):
        assert TimingWheel(16).next_cycle(0) is None

    def test_bucket_event_found(self):
        wheel = TimingWheel(16)
        wheel.push(9, 2, ("a",))
        assert wheel.next_cycle(2) == 9
        assert wheel.next_cycle(9) == 9

    def test_overflow_event_found(self):
        wheel = TimingWheel(16)
        far = wheel.size + 40
        wheel.push(far, 0, ("a",))
        assert wheel.next_cycle(0) == far

    def test_earliest_of_bucket_and_overflow(self):
        wheel = TimingWheel(16)
        wheel.push(10, 0, ("bucket",))
        wheel.push(wheel.size + 5, 0, ("over",))
        assert wheel.next_cycle(0) == 10

    def test_overflow_earlier_than_bucket(self):
        wheel = TimingWheel(16)
        wheel.push(10, 0, ("bucket",))
        wheel.push(3, 3, ("over",))  # same-cycle push -> overflow
        assert wheel.next_cycle(3) == 3


class TestHeapEquivalence:
    """Random push/drain schedules against a (cycle, seq) reference heap."""

    @pytest.mark.parametrize("seed", range(8))
    def test_drain_order_matches_reference_heap(self, seed):
        rng = random.Random(seed)
        wheel = TimingWheel(rng.choice([1, 40, 64, 200]))
        reference = []
        seq = 0
        now = 0
        drained = []
        expected = []
        for _ in range(60):
            # A burst of pushes at the current cycle, spanning both the
            # wheel horizon and the far-future overflow range.
            for _ in range(rng.randrange(6)):
                delta = rng.choice([1, 2, 3, wheel.size - 1, wheel.size + 10, 500])
                cycle = now + delta
                seq += 1
                payload = (seq,)
                wheel.push(cycle, now, payload)
                heapq.heappush(reference, (cycle, seq, payload))
            # Advance like the engine: either step one cycle or jump
            # idle gaps to the next pending event.
            if rng.random() < 0.3 and wheel.pending:
                nxt = wheel.next_cycle(now)
                assert nxt == reference[0][0]
                now = max(now + 1, nxt)
            else:
                now += 1
            drained.extend(drain_cycle(wheel, now))
            while reference and reference[0][0] <= now:
                expected.append(heapq.heappop(reference)[2])
            assert drained == expected
            assert wheel.pending == len(reference)
        # Drain the tail so every pushed event is accounted for.
        while wheel.pending:
            now = wheel.next_cycle(now)
            drained.extend(drain_cycle(wheel, now))
            while reference and reference[0][0] <= now:
                expected.append(heapq.heappop(reference)[2])
            assert drained == expected
        assert len(drained) == seq
