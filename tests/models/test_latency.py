"""Tests for the latency model (Figures 11 and 12)."""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.models.latency import (
    LatencyModel,
    aggregate_breakdown,
    latency_vs_hops,
    linear_fit,
    minimum_internode_route,
    network_fraction,
)


@pytest.fixture(scope="module")
def machine():
    return Machine(MachineConfig(shape=(8, 4, 4), endpoints_per_chip=2))


@pytest.fixture(scope="module")
def routes(machine):
    return RouteComputer(machine)


@pytest.fixture(scope="module")
def model():
    return LatencyModel()


class TestFigure12:
    def test_minimum_latency_near_99ns(self, machine, routes, model):
        route = minimum_internode_route(machine, routes)
        items = model.route_breakdown(machine, route)
        total = sum(ns for _l, ns in items)
        assert total == pytest.approx(99.0, rel=0.05)

    def test_network_fraction_near_40pct(self, machine, routes, model):
        route = minimum_internode_route(machine, routes)
        items = model.route_breakdown(machine, route)
        assert network_fraction(items) == pytest.approx(0.40, abs=0.07)

    def test_breakdown_contains_router_pipeline(self, machine, routes, model):
        route = minimum_internode_route(machine, routes)
        labels = {label for label, _ns in model.route_breakdown(machine, route)}
        assert "R(pipeline)" in labels
        assert "SerDes+wire" in labels
        assert "software+sync" in labels

    def test_minimum_route_is_one_hop(self, machine, routes):
        route = minimum_internode_route(machine, routes)
        assert route.internode_hops == 1

    def test_aggregate_merges_labels(self):
        merged = aggregate_breakdown([("a", 1.0), ("b", 2.0), ("a", 3.0)])
        assert merged == [("a", 4.0), ("b", 2.0)]

    def test_router_pipeline_four_stages(self, model):
        from repro.core import params

        assert model.router_ns == pytest.approx(4 * params.CYCLE_NS)


class TestFigure11:
    def test_latency_linear_in_hops(self, machine, routes, model):
        latencies = latency_vs_hops(machine, routes, model, max_pairs_per_distance=6)
        hops = sorted(latencies)
        assert hops[0] == 1
        deltas = [
            latencies[b] - latencies[a] for a, b in zip(hops, hops[1:])
        ]
        # Each extra hop costs a consistent, positive increment.
        assert all(d > 0 for d in deltas)
        assert max(deltas) - min(deltas) < 0.35 * max(deltas)

    def test_per_hop_slope_matches_paper(self, machine, routes, model):
        latencies = latency_vs_hops(machine, routes, model, max_pairs_per_distance=6)
        _intercept, slope = linear_fit(latencies)
        assert slope == pytest.approx(39.1, rel=0.10)

    def test_intercept_positive_and_large(self, machine, routes, model):
        # The fixed overhead dominates short routes (paper: 80.7 ns; the
        # model's ~70 ns depends on unpublished endpoint placement).
        latencies = latency_vs_hops(machine, routes, model, max_pairs_per_distance=6)
        intercept, _slope = linear_fit(latencies)
        assert 55.0 < intercept < 95.0

    def test_min_below_fit_at_one_hop(self, machine, routes, model):
        # The paper's minimum (99 ns) sits below its fit at one hop
        # (119.8 ns): minimum routes skip the average mesh traversal.
        latencies = latency_vs_hops(machine, routes, model, max_pairs_per_distance=6)
        intercept, slope = linear_fit(latencies)
        route = minimum_internode_route(machine, routes)
        minimum = model.route_latency_ns(machine, route)
        assert minimum < intercept + slope


class TestModelApplication:
    def test_route_latency_matches_breakdown(self, machine, routes, model):
        src = machine.ep_id[((0, 0, 0), 0)]
        dst = machine.ep_id[((2, 1, 0), 0)]
        from repro.core.routing import RouteChoice

        route = routes.compute(src, dst, RouteChoice())
        items = model.route_breakdown(machine, route)
        assert model.route_latency_ns(machine, route) == pytest.approx(
            sum(ns for _l, ns in items)
        )

    def test_skip_channel_appears_for_x_through(self, machine, routes, model):
        from repro.core.geometry import Dim
        from repro.core.routing import RouteChoice

        src = machine.ep_id[((0, 0, 0), 0)]
        dst = machine.ep_id[((2, 0, 0), 0)]
        route = routes.compute(
            src, dst, RouteChoice(dim_order=(Dim.X, Dim.Y, Dim.Z), slice_index=1)
        )
        labels = [label for label, _ns in model.route_breakdown(machine, route)]
        assert "skip wire" in labels
