"""Tests for the silicon-area model (Tables 1 and 2)."""

import pytest

from repro.models.area import (
    AreaConfig,
    AreaModel,
    CATEGORIES,
    COMPONENTS,
    queue_area_saving,
)

#: Table 2 of the paper: category -> (router, endpoint, channel, total) %.
PAPER_TABLE2 = {
    "Queues": (21.2, 2.7, 22.7, 46.6),
    "Reduction": (0.0, 0.0, 9.6, 9.6),
    "Link": (0.0, 0.0, 8.9, 8.9),
    "Configuration": (3.3, 2.5, 2.8, 8.6),
    "Debug": (3.0, 2.5, 2.3, 7.8),
    "Miscellaneous": (4.3, 1.0, 2.0, 7.3),
    "Multicast": (0.0, 3.2, 2.5, 5.7),
    "Arbiters": (5.2, 0.1, 0.2, 5.4),
}

#: Table 1: component -> % of total die area.
PAPER_TABLE1 = {"Router": 3.4, "Endpoint": 1.1, "Channel": 4.7}


@pytest.fixture(scope="module")
def model():
    return AreaModel()


class TestTable2:
    def test_every_entry_within_one_point(self, model):
        table = model.table2()
        for category, row in PAPER_TABLE2.items():
            measured = table[category]
            for component, expected in zip(COMPONENTS, row[:3]):
                assert measured[component] == pytest.approx(expected, abs=1.0), (
                    category, component
                )
            assert measured["Total"] == pytest.approx(row[3], abs=1.0), category

    def test_totals_sum_to_hundred(self, model):
        table = model.table2()
        total = sum(table[category]["Total"] for category in CATEGORIES)
        assert total == pytest.approx(100.0)

    def test_queues_dominate(self, model):
        table = model.table2()
        queue_total = table["Queues"]["Total"]
        for category in CATEGORIES:
            if category != "Queues":
                assert table[category]["Total"] < queue_total

    def test_arbiters_smallest(self, model):
        table = model.table2()
        arbiter_total = table["Arbiters"]["Total"]
        for category in CATEGORIES:
            if category != "Arbiters":
                assert table[category]["Total"] >= arbiter_total - 0.3


class TestTable1:
    def test_matches_paper(self, model):
        table = model.table1()
        for component, expected in PAPER_TABLE1.items():
            assert table[component] == pytest.approx(expected, abs=0.3)

    def test_network_under_ten_percent_of_die(self, model):
        assert sum(model.table1().values()) < 10.0

    def test_channel_adapters_largest(self, model):
        table = model.table1()
        assert table["Channel"] > table["Router"] > table["Endpoint"]


class TestArbiterBreakdown:
    def test_accumulator_share_three_quarters(self, model):
        assert model.arbiter_accumulator_fraction() == pytest.approx(0.75, abs=0.05)


class TestVcAblation:
    def test_baseline_inflates_queue_area_by_half(self):
        # 6 VCs instead of 4 on T-group queues: +50% queue area in the
        # components that implement them.
        anton = AreaModel(AreaConfig(vc_scheme="anton"))
        baseline = AreaModel(AreaConfig(vc_scheme="baseline"))
        ratio = baseline.queue_units("Channel") / anton.queue_units("Channel")
        assert ratio == pytest.approx(1.5)

    def test_promotion_scheme_saves_one_third_of_vcs(self):
        assert queue_area_saving(3) == pytest.approx(1 / 3)

    def test_saving_generalizes(self):
        for dims in (2, 3, 4, 6):
            assert queue_area_saving(dims) == pytest.approx(
                (dims - 1) / (2 * dims)
            )

    def test_baseline_network_area_larger(self):
        anton = AreaModel(AreaConfig(vc_scheme="anton"))
        baseline = AreaModel(AreaConfig(vc_scheme="baseline"))
        assert baseline.network_total_units() > anton.network_total_units()

    def test_vc_scheme_validation(self):
        with pytest.raises(ValueError):
            AreaConfig(vc_scheme="wormhole").vcs_per_class("t")


class TestStructuralSensitivity:
    def test_deeper_torus_queues_cost_more(self):
        shallow = AreaModel(AreaConfig(torus_queue_flits=16))
        deep = AreaModel(AreaConfig(torus_queue_flits=64))
        assert deep.queue_units("Channel") > shallow.queue_units("Channel")

    def test_multicast_area_scales_with_entries(self):
        small = AreaModel(AreaConfig(multicast_entries_endpoint=64))
        large = AreaModel(AreaConfig(multicast_entries_endpoint=256))
        assert large.multicast_units("Endpoint") > small.multicast_units("Endpoint")

    def test_unknown_component_rejected(self, model):
        with pytest.raises(ValueError):
            model.queue_units("Switch")
        with pytest.raises(ValueError):
            model.arbiter_units("Switch")
        with pytest.raises(ValueError):
            model.multicast_units("Switch")
