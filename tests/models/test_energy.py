"""Tests for the router energy model (Section 4.5, Figure 13)."""

import pytest

from repro.core import params
from repro.models.energy import (
    EnergyModel,
    FLIT_BITS,
    energy_curve,
    fit_model,
    make_stream,
    max_activation_rate,
    measure_per_hop_energy,
    payload_flit,
    stream_statistics,
    synthesize_measurements,
)


class TestModelFormula:
    def test_paper_coefficients_default(self):
        model = EnergyModel()
        assert model.coefficients() == (42.7, 0.837, 34.4, 0.250)

    def test_zero_payload_minimum(self):
        # All-zeros payload at full rate: only the fixed term remains
        # (a = 0 when r = 1).
        model = EnergyModel()
        assert model.per_flit_energy(1.0, 0.0, 0.0, 0.0) == pytest.approx(42.7)

    def test_activation_term_dominates_at_low_rate(self):
        model = EnergyModel()
        low = model.per_flit_energy(0.05, 0.05, 0.0, 0.0)
        high = model.per_flit_energy(1.0, 0.0, 0.0, 0.0)
        assert low == pytest.approx(42.7 + 34.4)
        assert low > high

    def test_rate_validation(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.per_flit_energy(0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            model.per_flit_energy(0.5, 0.9, 0.0, 0.0)


class TestStreams:
    def test_paper_example_sequences(self):
        # ...0111 0111...: r = 0.75, a = 0.25 (the paper's third example).
        stream = make_stream("ones", 0.75, 4000, seed=0)
        stats = stream_statistics(stream)
        assert stats.injection_rate == pytest.approx(0.75, abs=0.01)
        assert stats.activation_rate == pytest.approx(0.25, abs=0.01)

    def test_alternating_sequence(self):
        # ...010101...: r = 0.5, a = 0.5.
        stream = make_stream("ones", 0.5, 4000)
        stats = stream_statistics(stream)
        assert stats.injection_rate == pytest.approx(0.5, abs=0.01)
        assert stats.activation_rate == pytest.approx(0.5, abs=0.01)

    def test_payload_statistics(self):
        zeros = stream_statistics(make_stream("zeros", 0.5, 4000))
        ones = stream_statistics(make_stream("ones", 0.5, 4000))
        rand = stream_statistics(make_stream("random", 0.5, 8000, seed=3))
        assert zeros.mean_hamming == 0.0
        assert zeros.mean_set_bits == 0.0
        assert ones.mean_hamming == 0.0
        assert ones.mean_set_bits == FLIT_BITS
        assert rand.mean_hamming == pytest.approx(FLIT_BITS / 2, rel=0.05)
        assert rand.mean_set_bits == pytest.approx(FLIT_BITS / 2, rel=0.05)

    def test_activation_bounded(self):
        for rate in (0.1, 0.3, 0.5, 0.7, 0.95):
            stats = stream_statistics(make_stream("random", rate, 4000))
            assert stats.activation_rate <= max_activation_rate(
                stats.injection_rate
            ) + 0.01

    def test_full_rate_single_burst(self):
        stream = make_stream("ones", 1.0, 100)
        stats = stream_statistics(stream)
        assert stats.injection_rate == 1.0
        assert stats.activation_rate == pytest.approx(1 / 100)

    def test_explicit_activation_rate(self):
        stream = make_stream("ones", 0.5, 8000, activation_rate=0.125)
        stats = stream_statistics(stream)
        assert stats.activation_rate == pytest.approx(0.125, abs=0.01)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            make_stream("ones", 0.5, 100, activation_rate=0.9)

    def test_unknown_pattern(self):
        import random

        with pytest.raises(ValueError):
            payload_flit("gray", random.Random(0))

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            stream_statistics([None, None])


class TestFigure13Curves:
    def test_ordering_random_above_ones_above_zeros(self):
        model = EnergyModel()
        rates = (0.1, 0.3, 0.5, 0.7, 0.9)
        zeros = dict(energy_curve(model, "zeros", rates))
        ones = dict(energy_curve(model, "ones", rates))
        rand = dict(energy_curve(model, "random", rates, seed=2))
        for rate in rates:
            assert rand[rate] > ones[rate] > zeros[rate]

    def test_energy_falls_beyond_half_rate(self):
        # a/r = 1 for r <= 0.5, then falls: the Figure 13 knee.
        model = EnergyModel()
        curve = dict(energy_curve(model, "ones", (0.3, 0.5, 0.7, 0.9)))
        assert curve[0.3] == pytest.approx(curve[0.5], rel=0.02)
        assert curve[0.5] > curve[0.7] > curve[0.9]

    def test_two_route_methodology_consistent(self):
        # The 35-hop minus 3-hop subtraction recovers the per-hop energy
        # regardless of the hop counts chosen.
        model = EnergyModel()
        a = measure_per_hop_energy(model, "random", 0.5, long_hops=35, short_hops=3)
        b = measure_per_hop_energy(model, "random", 0.5, long_hops=20, short_hops=5)
        assert a == pytest.approx(b, rel=1e-6)


class TestFitting:
    def test_recovers_paper_coefficients(self):
        true = EnergyModel()
        measurements = synthesize_measurements(true, noise_pj=0.3, seed=11)
        fitted = fit_model(measurements)
        assert fitted.fixed_pj == pytest.approx(true.fixed_pj, abs=1.5)
        assert fitted.per_bitflip_pj == pytest.approx(true.per_bitflip_pj, abs=0.03)
        assert fitted.activation_fixed_pj == pytest.approx(
            true.activation_fixed_pj, abs=2.0
        )
        assert fitted.activation_per_setbit_pj == pytest.approx(
            true.activation_per_setbit_pj, abs=0.03
        )

    def test_noiseless_fit_exact(self):
        true = EnergyModel()
        measurements = synthesize_measurements(true, noise_pj=0.0)
        fitted = fit_model(measurements)
        assert fitted.fixed_pj == pytest.approx(true.fixed_pj, abs=1e-6)

    def test_needs_four_points(self):
        measurements = synthesize_measurements(noise_pj=0.0)[:3]
        with pytest.raises(ValueError):
            fit_model(measurements)

    def test_degenerate_set_rejected(self):
        # Only zeros payloads: h and n never vary, so c1 and c3 are
        # unidentifiable.
        measurements = synthesize_measurements(
            patterns=("zeros",), noise_pj=0.0
        )
        with pytest.raises(ValueError):
            fit_model(measurements)


class TestConstantsSync:
    def test_model_matches_params(self):
        model = EnergyModel()
        assert model.fixed_pj == params.ENERGY_FIXED_PJ
        assert model.per_bitflip_pj == params.ENERGY_PER_BITFLIP_PJ
