"""Tests for fault-aware route resolution: the escalation stages, the
pass-through guarantee, and mid-route rerouting."""

import pytest

from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.core.routing import RouteChoice, RouteComputer, Unroutable
from repro.faults import FaultAwareRouteComputer, FaultSpec, failable_channels


def _torus_between(machine, src_chip, dst_chip):
    """All torus channel ids from src_chip to dst_chip (both slices)."""
    return [
        ch.cid
        for ch in machine.channels
        if ch.kind == ChannelKind.TORUS
        and machine.components[ch.src].chip == src_chip
        and machine.components[ch.dst].chip == dst_chip
    ]


class TestPassThrough:
    def test_no_faults_returns_identical_cached_routes(self, tiny_machine):
        base = RouteComputer(tiny_machine)
        aware = FaultAwareRouteComputer(tiny_machine)
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 1, 0), 0)]
        choice = RouteChoice()
        assert aware.compute(src, dst, choice).hops == base.compute(
            src, dst, choice
        ).hops
        # And the fault-aware computer's own cache is shared with the
        # base path: the same Route object comes back every time.
        assert aware.compute(src, dst, choice) is aware.compute(src, dst, choice)

    def test_clearing_faults_restores_pass_through(self, tiny_machine):
        aware = FaultAwareRouteComputer(tiny_machine)
        torus = failable_channels(tiny_machine)
        aware.set_failed((torus[0],))
        assert aware.failed == {torus[0]}
        aware.set_failed(())
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 0, 0), 0)]
        route = aware.compute(src, dst, RouteChoice())
        assert aware.route_clear(route)


class TestRepick:
    def test_single_torus_failure_resolves_all_routes(self, odd_machine):
        torus = failable_channels(odd_machine)
        aware = FaultAwareRouteComputer(odd_machine, (torus[0],))
        for (src_chip, si), src in odd_machine.ep_id.items():
            for (dst_chip, di), dst in odd_machine.ep_id.items():
                if src == dst:
                    continue
                route = aware.compute(src, dst, RouteChoice())
                assert aware.route_clear(route), (src_chip, dst_chip)
        # Any single torus failure is absorbed without leaving the
        # existing legal choice set (slice re-pick suffices).
        stages = set(aware.resolution_counts) - {"primary", "repick"}
        assert not stages, aware.resolution_counts

    def test_requested_slice_preferred(self, tiny_machine):
        # Fail slice 0's torus link on the requested path; the re-pick
        # should land on slice 1 of the same geometry, not a detour.
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 0, 0), 0)]
        base = RouteComputer(tiny_machine)
        primary = base.compute(src, dst, RouteChoice())
        torus_hops = [
            cid
            for cid, _vc in primary.hops
            if tiny_machine.channels[cid].kind == ChannelKind.TORUS
        ]
        aware = FaultAwareRouteComputer(tiny_machine, (torus_hops[0],))
        route = aware.compute(src, dst, RouteChoice())
        assert aware.route_clear(route)
        assert aware.resolution_counts["repick"] == 1


class TestNonMinimal:
    def test_long_way_around_the_ring(self):
        # 4x1x1: block the minimal X+ hop out of chip 0 on both slices;
        # the resolver must go the long way around (monotone, 3 hops).
        machine = Machine(MachineConfig(shape=(4, 1, 1), endpoints_per_chip=1))
        blocked = _torus_between(machine, (0, 0, 0), (1, 0, 0))
        assert len(blocked) == 2  # one per slice
        aware = FaultAwareRouteComputer(machine, blocked)
        src = machine.ep_id[((0, 0, 0), 0)]
        dst = machine.ep_id[((1, 0, 0), 0)]
        route = aware.compute(src, dst, RouteChoice())
        assert aware.route_clear(route)
        assert aware.resolution_counts["nonminimal"] == 1
        # The non-minimal route is monotone the other way: 3 torus hops.
        torus_hops = [
            cid
            for cid, _vc in route.hops
            if machine.channels[cid].kind == ChannelKind.TORUS
        ]
        assert len(torus_hops) == 3

    def test_vc_promotion_invariant_holds_nonminimal(self):
        # A monotone non-minimal traversal still crosses the dateline at
        # most once, so VCs stay within the promotion bound.
        machine = Machine(MachineConfig(shape=(4, 1, 1), endpoints_per_chip=1))
        blocked = _torus_between(machine, (0, 0, 0), (1, 0, 0))
        aware = FaultAwareRouteComputer(machine, blocked)
        route = aware.compute(
            machine.ep_id[((0, 0, 0), 0)],
            machine.ep_id[((1, 0, 0), 0)],
            RouteChoice(),
        )
        assert max(vc for _cid, vc in route.hops) <= 3


class TestDetour:
    def test_two_phase_plan_route(self, tiny_machine):
        # Drive the detour machinery directly: a 2-leg plan through an
        # intermediate chip yields a stitched route with `via` set.
        aware = FaultAwareRouteComputer(tiny_machine)
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 1, 1), 0)]
        legs = (
            ((1, 0, 0), RouteChoice()),
            ((1, 1, 1), RouteChoice()),
        )
        route = aware.compute_plan(src, dst, legs)
        assert route.via == (1, 0, 0)
        assert route.hops[0][0] != route.hops[-1][0]
        # Each leg restarts the VC allocator: VCs stay in bounds.
        assert max(vc for _cid, vc in route.hops) <= 3

    def test_detour_plans_nearest_first(self, tiny_machine):
        aware = FaultAwareRouteComputer(tiny_machine)
        plans = list(aware._detour_plans((0, 0, 0), (1, 1, 1), 0))
        assert plans
        vias = [legs[0][0] for legs in plans]
        # Every via is distinct from both ends, and plans come sorted by
        # total torus distance (nearest intermediates first).
        assert (0, 0, 0) not in vias and (1, 1, 1) not in vias


class TestUnroutable:
    def test_dead_destination_chip(self, odd_machine):
        spec = FaultSpec(kind="node", chip=(1, 1, 1))
        aware = FaultAwareRouteComputer(odd_machine)
        aware.set_failed(spec.channels_on(odd_machine))
        src = odd_machine.ep_id[((0, 0, 0), 0)]
        dst = odd_machine.ep_id[((1, 1, 1), 0)]
        with pytest.raises(Unroutable) as excinfo:
            aware.compute(src, dst, RouteChoice())
        assert excinfo.value.src == src
        assert excinfo.value.dst == dst
        # The unroutable verdict is cached; a second request raises too.
        with pytest.raises(Unroutable):
            aware.compute(src, dst, RouteChoice())

    def test_routes_past_dead_chip_survive(self, odd_machine):
        spec = FaultSpec(kind="node", chip=(1, 1, 1))
        aware = FaultAwareRouteComputer(odd_machine)
        aware.set_failed(spec.channels_on(odd_machine))
        src = odd_machine.ep_id[((0, 0, 0), 0)]
        dst = odd_machine.ep_id[((2, 2, 2), 0)]
        route = aware.compute(src, dst, RouteChoice())
        assert aware.route_clear(route)


class TestReroute:
    def test_reroute_from_mid_route_router(self, tiny_machine):
        base = RouteComputer(tiny_machine)
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 1, 0), 0)]
        primary = base.compute(src, dst, RouteChoice())
        # Fail the last torus hop of the primary route, then reroute
        # from the component that would have been holding the packet.
        torus_positions = [
            i
            for i, (cid, _vc) in enumerate(primary.hops)
            if tiny_machine.channels[cid].kind == ChannelKind.TORUS
        ]
        blocked_idx = torus_positions[-1]
        blocked_cid = primary.hops[blocked_idx][0]
        holder = tiny_machine.channels[primary.hops[blocked_idx - 1][0]].dst
        aware = FaultAwareRouteComputer(tiny_machine, (blocked_cid,))
        tail = aware.compute_reroute(holder, dst)
        assert aware.route_clear(tail)
        assert tail.hops
        # The reroute is cached.
        assert aware.compute_reroute(holder, dst) is tail

    def test_reroute_unroutable_dead_chip(self, odd_machine):
        spec = FaultSpec(kind="node", chip=(2, 0, 0))
        aware = FaultAwareRouteComputer(odd_machine)
        aware.set_failed(spec.channels_on(odd_machine))
        dst = odd_machine.ep_id[((2, 0, 0), 0)]
        start = next(
            comp.cid
            for comp in odd_machine.components
            if comp.chip == (0, 0, 0) and comp.kind.name == "ROUTER"
        )
        with pytest.raises(Unroutable):
            aware.compute_reroute(start, dst)
