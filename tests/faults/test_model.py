"""Tests for the declarative fault model: specs, sets, JSON, sampling."""

import json

import pytest

from repro.core.machine import ChannelGroup, ChannelKind
from repro.faults import (
    FAULT_SCHEMA_VERSION,
    FaultSet,
    FaultSpec,
    failable_channels,
    sample_link_faults,
)


class TestFaultSpec:
    def test_link_needs_channel(self):
        with pytest.raises(ValueError, match="channel"):
            FaultSpec(kind="link")

    def test_node_needs_chip(self):
        with pytest.raises(ValueError, match="chip"):
            FaultSpec(kind="node")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="gamma-ray", channel=0)

    def test_up_must_follow_down(self):
        with pytest.raises(ValueError, match="up_cycle"):
            FaultSpec(kind="link", channel=3, down_cycle=10, up_cycle=10)

    def test_dict_round_trip(self):
        spec = FaultSpec(kind="link", channel=17, down_cycle=5, up_cycle=50)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        node = FaultSpec(kind="node", chip=(1, 2, 0))
        assert FaultSpec.from_dict(node.to_dict()) == node

    def test_node_fault_covers_all_non_endpoint_channels(self, tiny_machine):
        spec = FaultSpec(kind="node", chip=(0, 0, 0))
        cids = spec.channels_on(tiny_machine)
        assert cids
        for cid in cids:
            channel = tiny_machine.channels[cid]
            assert channel.group != ChannelGroup.E
            assert (
                tiny_machine.components[channel.src].chip == (0, 0, 0)
                or tiny_machine.components[channel.dst].chip == (0, 0, 0)
            )
        # Every non-E channel touching the chip is included.
        expected = sum(
            1
            for ch in tiny_machine.channels
            if ch.group != ChannelGroup.E
            and (
                tiny_machine.components[ch.src].chip == (0, 0, 0)
                or tiny_machine.components[ch.dst].chip == (0, 0, 0)
            )
        )
        assert len(cids) == expected


class TestFaultSetValidation:
    def test_shape_mismatch_rejected(self, tiny_machine):
        fault_set = FaultSet(
            specs=(FaultSpec(kind="link", channel=0),), shape=(3, 3, 3)
        )
        with pytest.raises(ValueError, match="shape"):
            fault_set.validate(tiny_machine)

    def test_endpoint_link_cannot_fail(self, tiny_machine):
        ep_link = next(
            ch.cid for ch in tiny_machine.channels if ch.group == ChannelGroup.E
        )
        fault_set = FaultSet(specs=(FaultSpec(kind="link", channel=ep_link),))
        with pytest.raises(ValueError, match="endpoint"):
            fault_set.validate(tiny_machine)

    def test_unknown_channel_rejected(self, tiny_machine):
        fault_set = FaultSet(
            specs=(FaultSpec(kind="link", channel=len(tiny_machine.channels)),)
        )
        with pytest.raises(ValueError, match="channel"):
            fault_set.validate(tiny_machine)

    def test_chip_outside_shape_rejected(self, tiny_machine):
        fault_set = FaultSet(specs=(FaultSpec(kind="node", chip=(5, 0, 0)),))
        with pytest.raises(ValueError, match="outside"):
            fault_set.validate(tiny_machine)


class TestFaultSetViews:
    def test_initial_failed_only_cycle_zero(self, tiny_machine):
        torus = failable_channels(tiny_machine)
        fault_set = FaultSet(
            specs=(
                FaultSpec(kind="link", channel=torus[0]),
                FaultSpec(kind="link", channel=torus[1], down_cycle=100),
            )
        )
        assert fault_set.initial_failed(tiny_machine) == {torus[0]}

    def test_timeline_sorted_downs_before_ups(self, tiny_machine):
        torus = failable_channels(tiny_machine)
        fault_set = FaultSet(
            specs=(
                FaultSpec(
                    kind="link", channel=torus[1], down_cycle=50, up_cycle=100
                ),
                FaultSpec(kind="link", channel=torus[0], down_cycle=100),
            )
        )
        assert fault_set.timeline(tiny_machine) == [
            (50, torus[1], True),
            (100, torus[0], True),
            (100, torus[1], False),
        ]

    def test_all_channels_includes_scheduled(self, tiny_machine):
        torus = failable_channels(tiny_machine)
        fault_set = FaultSet(
            specs=(
                FaultSpec(kind="link", channel=torus[0]),
                FaultSpec(kind="link", channel=torus[1], down_cycle=100),
            )
        )
        assert fault_set.all_channels(tiny_machine) == {torus[0], torus[1]}


class TestJsonRoundTrip:
    def test_exact_round_trip(self, tiny_machine):
        fault_set = sample_link_faults(tiny_machine, 3, seed=42, note="rt")
        text = fault_set.to_json()
        assert FaultSet.from_json(text) == fault_set
        # Canonical rendering: a second serialization is byte-identical.
        assert FaultSet.from_json(text).to_json() == text

    def test_schema_version_pinned(self):
        bad = json.dumps({"version": FAULT_SCHEMA_VERSION + 1, "faults": []})
        with pytest.raises(ValueError, match="version"):
            FaultSet.from_json(bad)


class TestSampler:
    def test_same_seed_same_set(self, tiny_machine):
        a = sample_link_faults(tiny_machine, 4, seed=9)
        b = sample_link_faults(tiny_machine, 4, seed=9)
        assert a == b

    def test_different_seed_differs(self, tiny_machine):
        a = sample_link_faults(tiny_machine, 4, seed=9)
        b = sample_link_faults(tiny_machine, 4, seed=10)
        assert a != b

    def test_sampled_channels_have_requested_kind(self, tiny_machine):
        fault_set = sample_link_faults(
            tiny_machine, 3, seed=1, kinds=(ChannelKind.MESH,)
        )
        for spec in fault_set.specs:
            assert tiny_machine.channels[spec.channel].kind == ChannelKind.MESH

    def test_oversampling_rejected(self, tiny_machine):
        torus = failable_channels(tiny_machine)
        with pytest.raises(ValueError, match="sample"):
            sample_link_faults(tiny_machine, len(torus) + 1, seed=0)

    def test_endpoint_kind_rejected(self, tiny_machine):
        with pytest.raises(ValueError, match="cannot fail"):
            failable_channels(tiny_machine, kinds=(ChannelKind.ROUTER_TO_EP,))
