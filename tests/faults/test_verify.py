"""Mechanical deadlock re-verification on degraded topologies.

The Section 2.5 dateline argument covers healthy routing; these tests
pin its degraded extensions: the resolved route set of any sampled fault
set keeps the channel-dependency graph acyclic, the exhaustive
single-link-failure property holds, and removing the dateline VCs
(``unsafe-single``) still deadlocks on a degraded machine -- faults do
not accidentally break the cycles that make the scheme necessary.
"""

import pytest

from repro.core import deadlock
from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.faults import (
    FaultAwareRouteComputer,
    FaultSet,
    FaultSpec,
    degraded_report,
    sample_link_faults,
    verify_single_link_failures,
)


class TestDegradedReport:
    def test_sampled_faults_stay_deadlock_free(self, odd_machine):
        fault_set = sample_link_faults(odd_machine, 3, seed=7)
        report = degraded_report(odd_machine, fault_set, endpoints_per_chip=1)
        assert report.deadlock_free
        assert report.routes > 0

    def test_node_fault_stays_deadlock_free(self, odd_machine):
        fault_set = FaultSet(specs=(FaultSpec(kind="node", chip=(1, 1, 1)),))
        report = degraded_report(odd_machine, fault_set, endpoints_per_chip=1)
        assert report.deadlock_free

    def test_scheduled_faults_use_most_degraded_topology(self, tiny_machine):
        # A mid-run-only fault must still be part of the verified set:
        # the report covers every channel the run can ever lose.
        from repro.faults.model import failable_channels

        torus = failable_channels(tiny_machine)
        fault_set = FaultSet(
            specs=(FaultSpec(kind="link", channel=torus[0], down_cycle=500),)
        )
        report = degraded_report(tiny_machine, fault_set, endpoints_per_chip=1)
        assert report.deadlock_free


class TestSingleLinkFailures:
    def test_tiny_machine_all_torus_failures_acyclic(self, tiny_machine):
        report = verify_single_link_failures(tiny_machine)
        assert report.checked == len(
            [c for c in tiny_machine.channels if c.kind == ChannelKind.TORUS]
        )
        assert report.all_acyclic
        assert not report.unroutable
        # Any single torus failure resolves within the existing legal
        # choice set -- no non-minimal or detour escalations needed.
        assert not report.escalations

    @pytest.mark.slow
    def test_3x3x3_every_single_torus_failure_acyclic(self):
        """The acceptance property: VC promotion keeps the dependency
        graph acyclic under every single torus-link failure of a 3x3x3
        machine, with no pair left unroutable."""
        machine = Machine(MachineConfig(shape=(3, 3, 3), endpoints_per_chip=1))
        report = verify_single_link_failures(machine)
        assert report.checked == 324
        assert report.all_acyclic
        assert not report.unroutable
        assert not report.escalations


class TestUnsafeSchemeStillDeadlocks:
    def test_no_dateline_ablation_cyclic_with_faults(self):
        # Degrading the machine must not be mistaken for a fix: with the
        # dateline VCs ablated, the degraded route set still has cycles.
        machine = Machine(
            MachineConfig(
                shape=(4, 2, 2), endpoints_per_chip=1, vc_scheme="unsafe-single"
            )
        )
        fault_set = sample_link_faults(machine, 2, seed=5)
        computer = FaultAwareRouteComputer(machine)
        computer.set_failed(fault_set.all_channels(machine))
        routes = deadlock.enumerate_routes(
            machine, computer, endpoints_per_chip=1, skip_unroutable=True
        )
        report = deadlock.analyze_routes(machine, routes)
        assert not report.deadlock_free
        assert report.cycle
