"""Engine-level fault injection: mid-run failures, stranded-packet
policies, trace events, and the packet conservation laws.

Two conservation laws hold under faults:

* every generated packet has exactly one terminal outcome, so
  ``delivered + dropped == generated`` (a retried packet's clone keeps
  its pid and carries its terminal outcome);
* ``delivered + dropped + retried == injected + queue_drops``: each
  *injection* ends delivered, dropped in-network, or condemned by a
  retry, while packets dropped out of a source queue never injected at
  all -- so the left side can exceed ``injected``, never undershoot it.
"""

from collections import Counter

import pytest

from repro.core.machine import ChannelGroup, ChannelKind, Machine, MachineConfig
from repro.faults import (
    FaultPolicy,
    FaultRuntime,
    FaultSet,
    FaultSpec,
    sample_link_faults,
)
from repro.sim.simulator import run_batch
from repro.sim.trace import ListSink
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import BitComplement, UniformRandom


def _busiest_torus_channels(machine, count=2):
    """The most-used torus channels under uniform traffic -- failing
    these maximizes the number of stranded packets."""
    from repro.core.routing import RouteComputer
    from repro.traffic.loads import compute_loads

    routes = RouteComputer(machine)
    table = compute_loads(
        machine, routes, UniformRandom(machine.config.shape),
        machine.config.endpoints_per_chip,
    )
    torus = [
        (load, cid)
        for cid, load in table.channel_load.items()
        if machine.channels[cid].kind == ChannelKind.TORUS
    ]
    torus.sort(reverse=True)
    return [cid for _load, cid in torus[:count]]


def _run(machine, fault_set, policy_mode, batch=16, seed=7, max_cycles=10_000_000):
    runtime = FaultRuntime(
        machine, fault_set, policy=FaultPolicy(mode=policy_mode)
    )
    sink = ListSink()
    spec = BatchSpec(
        UniformRandom(machine.config.shape),
        packets_per_source=batch,
        cores_per_chip=machine.config.endpoints_per_chip,
        seed=seed,
    )
    stats = run_batch(
        machine,
        runtime.route_computer,
        spec,
        trace=sink,
        faults=runtime,
        max_cycles=max_cycles,
    )
    return stats, sink.events


def _mid_run_faults(machine, cycles=(30, 60)):
    cids = _busiest_torus_channels(machine, len(cycles))
    return FaultSet(
        specs=tuple(
            FaultSpec(kind="link", channel=cid, down_cycle=cycle)
            for cid, cycle in zip(cids, cycles)
        ),
        shape=machine.config.shape,
    )


def _generated(machine, batch):
    """Packets the batch generator enqueues: one batch per source."""
    chips = 1
    for radix in machine.config.shape:
        chips *= radix
    return chips * machine.config.endpoints_per_chip * batch


class TestPolicies:
    @pytest.mark.parametrize("policy", ["reroute", "drop", "retry"])
    def test_conservation_laws(self, tiny_machine, policy):
        fault_set = _mid_run_faults(tiny_machine)
        stats, events = _run(tiny_machine, fault_set, policy, batch=16)
        # One terminal outcome per generated packet...
        assert stats.delivered + stats.dropped == _generated(tiny_machine, 16)
        # ...and every injection is accounted for (source-queue drops
        # never injected, so the left side may only exceed injections).
        assert (
            stats.delivered + stats.dropped + stats.retried >= stats.injected
        )
        assert stats.fault_events == len(fault_set.timeline(tiny_machine))
        kinds = Counter(e.kind for e in events)
        assert kinds["fault"] == stats.fault_events

    def test_mid_run_failure_strands_packets(self, tiny_machine):
        # The busiest torus channels fail mid-run, so some packets must
        # actually get re-dispositioned -- this pins that the sweep runs.
        fault_set = _mid_run_faults(tiny_machine)
        stats, events = _run(tiny_machine, fault_set, "reroute")
        assert stats.rerouted > 0
        kinds = Counter(e.kind for e in events)
        assert kinds["reroute"] == stats.rerouted
        assert stats.dropped == 0

    def test_drop_policy_counts_and_delivers_rest(self, tiny_machine):
        fault_set = _mid_run_faults(tiny_machine)
        stats, events = _run(tiny_machine, fault_set, "drop", batch=16)
        assert stats.dropped > 0
        assert stats.delivered == _generated(tiny_machine, 16) - stats.dropped
        kinds = Counter(e.kind for e in events)
        assert kinds["drop"] == stats.dropped

    def test_retry_reinjects_with_backoff(self, tiny_machine):
        fault_set = _mid_run_faults(tiny_machine)
        stats, events = _run(tiny_machine, fault_set, "retry")
        assert stats.retried > 0
        retry_events = [e for e in events if e.kind == "retry"]
        assert len(retry_events) == stats.retried
        for event in retry_events:
            # Re-release is scheduled strictly after the fault cycle,
            # with the policy's bounded exponential backoff.
            assert event.get("rel") > event.cycle
            assert event.get("attempt") >= 1

    def test_fault_event_fields(self, tiny_machine):
        fault_set = _mid_run_faults(tiny_machine)
        _stats, events = _run(tiny_machine, fault_set, "reroute")
        fault_events = [e for e in events if e.kind == "fault"]
        failed = fault_set.all_channels(tiny_machine)
        for event in fault_events:
            assert event.pid == -1
            assert event.channel in failed
            assert event.get("down") == 1


class TestZeroDelivery:
    def test_total_loss_reports_empty_quantiles(self, tiny_machine, tiny_routes):
        """A run that delivers nothing must still report a result.

        Every network channel is down from cycle 0 and the pattern sends
        no same-chip traffic, so under the drop policy every packet is
        condemned at its source queue: delivered == 0. The quantile
        reporters -- both the SimStats estimator and the trace-fed
        collector summary -- must carry empty dicts, not crash."""
        from repro.sim.metrics import MetricsCollector

        down = tuple(
            FaultSpec(kind="link", channel=channel.cid)
            for channel in tiny_machine.channels
            if channel.group != ChannelGroup.E
        )
        fault_set = FaultSet(specs=down, shape=tiny_machine.config.shape)
        runtime = FaultRuntime(
            tiny_machine, fault_set, policy=FaultPolicy(mode="drop")
        )
        collector = MetricsCollector(window_cycles=16)
        spec = BatchSpec(
            BitComplement(tiny_machine.config.shape),
            packets_per_source=4,
            cores_per_chip=tiny_machine.config.endpoints_per_chip,
            seed=7,
        )
        # Routes are generated against the healthy machine (as a real
        # workload's would be); the engine screens them at enqueue.
        stats = run_batch(
            tiny_machine,
            tiny_routes,
            spec,
            trace=collector,
            faults=runtime,
            latency_quantiles=True,
        )
        assert stats.delivered == 0
        assert stats.dropped == _generated(tiny_machine, 4)
        assert stats.latency_quantiles() == {}
        assert stats.throughput_packets_per_cycle() == 0.0
        summary = collector.summary(stats.end_cycle)
        assert summary.delivered == 0
        assert summary.latency_quantiles == {}


class TestRecovery:
    def test_link_down_then_up_completes(self, tiny_machine):
        cid = _busiest_torus_channels(tiny_machine, 1)[0]
        fault_set = FaultSet(
            specs=(
                FaultSpec(kind="link", channel=cid, down_cycle=30, up_cycle=60),
            ),
            shape=tiny_machine.config.shape,
        )
        stats, events = _run(tiny_machine, fault_set, "reroute", batch=16)
        assert stats.delivered + stats.dropped == _generated(tiny_machine, 16)
        downs = [e for e in events if e.kind == "fault" and e.get("down") == 1]
        ups = [e for e in events if e.kind == "fault" and e.get("down") == 0]
        assert len(downs) == 1 and len(ups) == 1
        assert ups[0].cycle == 60


class TestZeroFaultIdentity:
    def test_empty_fault_runtime_is_bitwise_identical(self, tiny_machine):
        """An attached-but-empty fault runtime must not perturb the run:
        same events, same stats -- the zero-overhead-when-disabled bar."""
        spec = BatchSpec(
            UniformRandom((2, 2, 2)),
            packets_per_source=8,
            cores_per_chip=2,
            seed=3,
        )
        from repro.core.routing import RouteComputer

        plain_sink = ListSink()
        plain = run_batch(
            tiny_machine, RouteComputer(tiny_machine), spec, trace=plain_sink
        )
        runtime = FaultRuntime(tiny_machine, FaultSet())
        faulted_sink = ListSink()
        faulted = run_batch(
            tiny_machine,
            runtime.route_computer,
            spec,
            trace=faulted_sink,
            faults=runtime,
        )
        assert plain_sink.events == faulted_sink.events
        assert plain.delivered == faulted.delivered
        assert plain.end_cycle == faulted.end_cycle
        assert faulted.fault_events == 0


class TestReproducibility:
    def test_json_round_trip_reproduces_identical_trace(self, tiny_machine):
        """The acceptance property: a fault set that went through JSON
        produces the byte-for-byte identical degraded run."""
        fault_set = sample_link_faults(
            tiny_machine, 2, seed=13, down_cycle=30
        )
        round_tripped = FaultSet.from_json(fault_set.to_json())
        assert round_tripped == fault_set
        stats_a, events_a = _run(tiny_machine, fault_set, "reroute")
        stats_b, events_b = _run(tiny_machine, round_tripped, "reroute")
        assert events_a == events_b
        assert stats_a.end_cycle == stats_b.end_cycle
        assert stats_a.rerouted == stats_b.rerouted


@pytest.mark.slow
class TestLongRun:
    @pytest.mark.parametrize("policy", ["reroute", "drop", "retry"])
    def test_50k_cycle_budget_two_midrun_failures(self, tiny_machine, policy):
        """The acceptance run: a seeded long batch with two mid-run link
        failures completes under every policy well inside a 50k-cycle
        watchdog budget."""
        cids = _busiest_torus_channels(tiny_machine, 2)
        fault_set = FaultSet(
            specs=(
                FaultSpec(kind="link", channel=cids[0], down_cycle=500),
                FaultSpec(kind="link", channel=cids[1], down_cycle=1500),
            ),
            shape=tiny_machine.config.shape,
        )
        stats, _events = _run(
            tiny_machine, fault_set, policy, batch=512, max_cycles=50_000
        )
        assert stats.delivered + stats.dropped == _generated(tiny_machine, 512)
        assert (
            stats.delivered + stats.dropped + stats.retried >= stats.injected
        )
        assert stats.end_cycle < 50_000
        assert stats.fault_events == 2
