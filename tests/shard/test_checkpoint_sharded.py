"""Sharded checkpointing: manifest validation, byte-identity, crash-resume.

The hub writes three kinds of file at a checkpoint barrier: the merged
serial-format checkpoint at ``path`` (byte-identical to what the serial
engine would have written at the same cycle), per-shard snapshots at
``path.shard<i>``, and a ``path.manifest`` index. These tests pin the
byte contract, the manifest error paths (missing/extra shard files must
raise :class:`CheckpointError` naming the offending file), and the
full kill-one-worker-and-resume loop.
"""

import json
import os

import pytest

from repro.core.machine import MachineConfig
from repro.sim.checkpoint import CRASH_ENV_VAR, CheckpointError
from repro.sim.metrics import MetricsCollector
from repro.sim.shard import (
    CRASH_SHARD_ENV_VAR,
    ShardPlan,
    ShardedRun,
    load_sharded_checkpoint,
    run_sharded,
)

CONFIG = MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2)
EVERY = 16
CRASH_AT = 32


def _run():
    from repro.traffic.batch import BatchSpec
    from repro.traffic.patterns import UniformRandom

    return ShardedRun(
        config=CONFIG,
        spec=BatchSpec(
            UniformRandom((2, 2, 2)),
            packets_per_source=6,
            cores_per_chip=2,
            seed=9,
        ),
    )


def _crash_sharded(tmp_path, monkeypatch, shard="1", name="ck.json", trace=None):
    """Run sharded until the simulated crash; returns the checkpoint path."""
    path = str(tmp_path / name)
    monkeypatch.setenv(CRASH_ENV_VAR, str(CRASH_AT))
    monkeypatch.setenv(CRASH_SHARD_ENV_VAR, shard)
    with pytest.raises(KeyboardInterrupt, match=f"in shard {shard}"):
        run_sharded(
            _run(),
            2,
            trace=trace,
            checkpoint_path=path,
            checkpoint_every=EVERY,
            transport="inline",
        )
    monkeypatch.delenv(CRASH_ENV_VAR)
    monkeypatch.delenv(CRASH_SHARD_ENV_VAR)
    assert os.path.exists(path)
    assert os.path.exists(path + ".manifest")
    assert os.path.exists(path + ".shard0")
    assert os.path.exists(path + ".shard1")
    return path


def test_run_long_enough_for_crash():
    # Guard for the module's constants: the workload must still have
    # work at CRASH_AT or the crash tests silently test nothing.
    stats = run_sharded(_run(), 1)
    assert stats.end_cycle > CRASH_AT + EVERY


def test_merged_checkpoint_bytes_match_serial_oracle(tmp_path, monkeypatch):
    sharded_path = _crash_sharded(tmp_path, monkeypatch)

    serial_path = str(tmp_path / "serial.json")
    monkeypatch.setenv(CRASH_ENV_VAR, str(CRASH_AT))
    with pytest.raises(KeyboardInterrupt):
        run_sharded(
            _run(),
            1,
            checkpoint_path=serial_path,
            checkpoint_every=EVERY,
        )
    monkeypatch.delenv(CRASH_ENV_VAR)

    with open(sharded_path, "rb") as f:
        sharded_bytes = f.read()
    with open(serial_path, "rb") as f:
        serial_bytes = f.read()
    assert sharded_bytes == serial_bytes


def test_crash_resume_bit_identical(tmp_path, monkeypatch):
    clean = MetricsCollector(window_cycles=16)
    expect = run_sharded(_run(), 2, trace=clean, transport="inline")

    # The interrupted run carries its own collector: its reducer state
    # rides the materialized checkpoint, and the resumed run's (fresh)
    # collector is restored from it -- the serial resume contract.
    path = _crash_sharded(
        tmp_path, monkeypatch, trace=MetricsCollector(window_cycles=16)
    )
    resumed_collector = MetricsCollector(window_cycles=16)
    stats = run_sharded(
        _run(),
        2,
        trace=resumed_collector,
        checkpoint_path=path,
        checkpoint_every=EVERY,
        transport="inline",
    )
    assert json.dumps(stats.asdict()) == json.dumps(expect.asdict())
    assert resumed_collector.state() == clean.state()
    # Completion removes every checkpoint artifact.
    for suffix in ("", ".manifest", ".shard0", ".shard1"):
        assert not os.path.exists(path + suffix)


def test_crash_in_shard_zero(tmp_path, monkeypatch):
    path = _crash_sharded(tmp_path, monkeypatch, shard="0")
    stats = run_sharded(
        _run(),
        2,
        checkpoint_path=path,
        checkpoint_every=EVERY,
        transport="inline",
    )
    expect = run_sharded(_run(), 1)
    assert json.dumps(stats.asdict()) == json.dumps(expect.asdict())


def test_missing_shard_file_names_the_shard(tmp_path, monkeypatch):
    path = _crash_sharded(tmp_path, monkeypatch)
    os.unlink(path + ".shard1")
    with pytest.raises(CheckpointError, match=r"shard1"):
        load_sharded_checkpoint(path)
    # The full runner surfaces the same error.
    with pytest.raises(CheckpointError, match=r"shard1"):
        run_sharded(
            _run(),
            2,
            checkpoint_path=path,
            checkpoint_every=EVERY,
            transport="inline",
        )


def test_extra_shard_file_rejected(tmp_path, monkeypatch):
    path = _crash_sharded(tmp_path, monkeypatch)
    with open(path + ".shard2", "w") as f:
        f.write("{}")
    with pytest.raises(CheckpointError, match=r"shard2"):
        load_sharded_checkpoint(path)


def test_checkpoint_without_manifest_rejected(tmp_path, monkeypatch):
    path = _crash_sharded(tmp_path, monkeypatch)
    os.unlink(path + ".manifest")
    with pytest.raises(CheckpointError, match="manifest"):
        run_sharded(
            _run(),
            2,
            checkpoint_path=path,
            checkpoint_every=EVERY,
            transport="inline",
        )


def test_manifest_shard_count_mismatch(tmp_path, monkeypatch):
    path = _crash_sharded(tmp_path, monkeypatch)
    with pytest.raises(CheckpointError):
        load_sharded_checkpoint(path, expected_shards=4)


def test_manifest_plan_mismatch(tmp_path, monkeypatch):
    from repro.core.machine import Machine

    path = _crash_sharded(tmp_path, monkeypatch)
    other = ShardPlan.for_machine(Machine(CONFIG), 4)
    with pytest.raises(CheckpointError):
        load_sharded_checkpoint(path, expected_plan=other)


@pytest.mark.parametrize("shards", [2, 4])
def test_save_sharded_checkpoint_matches_committed_golden(tmp_path, shards):
    """The golden checkpoint recipe, halted at cycle 40 by the sharded
    runner, must reproduce the committed serial golden byte for byte --
    the hook CI's ``repro checkpoint save --shards`` leg relies on."""
    import pathlib

    from repro.sim.shard import save_sharded_checkpoint
    from repro.traffic.batch import BatchSpec
    from repro.traffic.patterns import UniformRandom

    run = ShardedRun(
        config=CONFIG,
        spec=BatchSpec(
            UniformRandom((2, 2, 2)),
            packets_per_source=8,
            cores_per_chip=2,
            seed=3,
        ),
    )
    out = str(tmp_path / "golden.json")
    stats = save_sharded_checkpoint(run, shards, 40, out)
    assert stats.end_cycle == 40
    golden = pathlib.Path("tests/golden/checkpoint_uniform_2x2x2.json")
    assert pathlib.Path(out).read_bytes() == golden.read_bytes()


def test_process_transport_crash_resume(tmp_path, monkeypatch):
    """Kill an actual worker process mid-window and resume."""
    path = str(tmp_path / "ck.json")
    monkeypatch.setenv(CRASH_ENV_VAR, str(CRASH_AT))
    monkeypatch.setenv(CRASH_SHARD_ENV_VAR, "1")
    with pytest.raises(KeyboardInterrupt):
        run_sharded(
            _run(),
            2,
            checkpoint_path=path,
            checkpoint_every=EVERY,
            transport="process",
        )
    monkeypatch.delenv(CRASH_ENV_VAR)
    monkeypatch.delenv(CRASH_SHARD_ENV_VAR)
    stats = run_sharded(
        _run(),
        2,
        checkpoint_path=path,
        checkpoint_every=EVERY,
        transport="process",
    )
    expect = run_sharded(_run(), 1)
    assert json.dumps(stats.asdict()) == json.dumps(expect.asdict())
