"""Bit-identity conformance: sharded runs versus the serial oracle.

Every observable stream -- ``SimStats.asdict()`` (dict key order
included, via JSON rendering), trace event sequences, metrics-collector
state, and the committed golden bytes -- must be *identical* for every
shard count. These tests run the same workload serially and sharded and
compare exactly; any divergence is a correctness bug in the lookahead
protocol, not a tolerance question.
"""

import json
import os

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.sim.metrics import MetricsCollector
from repro.sim.shard import ShardedRun, run_sharded
from repro.sim.trace import ListSink

CONFIG_2x2x2 = MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2)


def _uniform_run(arbitration):
    from repro.traffic.batch import BatchSpec
    from repro.traffic.patterns import UniformRandom

    pattern = UniformRandom((2, 2, 2))
    return ShardedRun(
        config=CONFIG_2x2x2,
        spec=BatchSpec(
            pattern, packets_per_source=4, cores_per_chip=2, seed=11
        ),
        arbitration=arbitration,
        weight_patterns=(pattern,) if arbitration == "iw" else (),
    )


def _tornado_run(arbitration):
    from repro.traffic.batch import BatchSpec
    from repro.traffic.patterns import Tornado

    pattern = Tornado((2, 2, 2))
    return ShardedRun(
        config=CONFIG_2x2x2,
        spec=BatchSpec(
            pattern, packets_per_source=4, cores_per_chip=2, seed=12
        ),
        arbitration=arbitration,
        weight_patterns=(pattern,) if arbitration == "iw" else (),
    )


def _demand_run(arbitration):
    from repro.traffic.demand import DemandMatrix, DemandSchedule, DemandSpec

    base = DemandMatrix.hotspot(
        (2, 2, 2), rate=0.3, hotspots=1, hot_fraction=0.6, seed=21
    )
    shifted = DemandMatrix.uniform((2, 2, 2), 0.2)
    return ShardedRun(
        config=CONFIG_2x2x2,
        spec=DemandSpec(
            demand=DemandSchedule(epochs=((0, base), (24, shifted))),
            cores_per_chip=2,
            mode="open",
            duration_cycles=48,
            seed=22,
        ),
        arbitration=arbitration,
    )


def _fault_set():
    from repro.faults import FaultSet, FaultSpec
    from repro.faults.model import failable_channels

    machine = Machine(CONFIG_2x2x2)
    torus = failable_channels(machine)
    return FaultSet(
        specs=(
            FaultSpec(kind="link", channel=torus[1], down_cycle=10),
            FaultSpec(
                kind="link",
                channel=torus[len(torus) // 2],
                down_cycle=16,
                up_cycle=36,
            ),
        ),
        shape=(2, 2, 2),
    )


def _faulted_uniform_run(arbitration, mode="reroute"):
    from repro.faults import FaultPolicy

    run = _uniform_run(arbitration)
    return ShardedRun(
        config=run.config,
        spec=run.spec,
        arbitration=run.arbitration,
        weight_patterns=run.weight_patterns,
        fault_set=_fault_set(),
        fault_policy=FaultPolicy(mode=mode) if mode != "reroute" else None,
    )


def _faulted_demand_run(arbitration):
    run = _demand_run(arbitration)
    return ShardedRun(
        config=run.config,
        spec=run.spec,
        arbitration=run.arbitration,
        fault_set=_fault_set(),
    )


WORKLOADS = {
    "uniform-rr": lambda: _uniform_run("rr"),
    "uniform-age": lambda: _uniform_run("age"),
    "uniform-iw": lambda: _uniform_run("iw"),
    "tornado-rr": lambda: _tornado_run("rr"),
    "tornado-age": lambda: _tornado_run("age"),
    "tornado-iw": lambda: _tornado_run("iw"),
    "demand-rr": lambda: _demand_run("rr"),
    "demand-age": lambda: _demand_run("age"),
    "demand-iw": lambda: _demand_run("iw"),
    "uniform-rr-faulted": lambda: _faulted_uniform_run("rr"),
    "uniform-iw-faulted": lambda: _faulted_uniform_run("iw"),
    "uniform-rr-dropping": lambda: _faulted_uniform_run("rr", mode="drop"),
    "demand-rr-faulted": lambda: _faulted_demand_run("rr"),
}

_serial_memo = {}


def _serial(name):
    """Serial oracle for one workload (memoized: stats JSON + events)."""
    if name not in _serial_memo:
        sink = ListSink()
        stats = run_sharded(WORKLOADS[name](), 1, trace=sink)
        _serial_memo[name] = (
            json.dumps(stats.asdict(), sort_keys=False),
            list(sink.events),
        )
    return _serial_memo[name]


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_stats_and_trace_bit_identical(name, shards):
    serial_stats, serial_events = _serial(name)
    sink = ListSink()
    stats = run_sharded(
        WORKLOADS[name](), shards, trace=sink, transport="inline"
    )
    # JSON text comparison pins dict *key order*, not just values.
    assert json.dumps(stats.asdict(), sort_keys=False) == serial_stats
    assert sink.events == serial_events


@pytest.mark.parametrize("name", ["uniform-rr", "uniform-rr-faulted", "demand-rr"])
def test_metrics_collector_state_identical(name):
    serial = MetricsCollector(window_cycles=16)
    run_sharded(WORKLOADS[name](), 1, trace=serial)
    sharded = MetricsCollector(window_cycles=16)
    run_sharded(WORKLOADS[name](), 2, trace=sharded, transport="inline")
    assert sharded.state() == serial.state()
    end = serial.last_cycle
    assert sharded.summary(end) == serial.summary(end)


def test_process_transport_matches_inline():
    """The multiprocessing transport is the perf configuration; it must
    produce the same bytes the inline transport does."""
    name = "uniform-rr-faulted"
    serial_stats, serial_events = _serial(name)
    sink = ListSink()
    stats = run_sharded(
        WORKLOADS[name](), 2, trace=sink, transport="process"
    )
    assert json.dumps(stats.asdict(), sort_keys=False) == serial_stats
    assert sink.events == serial_events


def test_fastpath_composition_matches_serial_scalar():
    """REPRO_FASTPATH engines inside shard workers still match the
    serial *scalar* oracle -- the fast path reads the live event wheel,
    so barrier feeding composes with it."""
    name = "uniform-rr"
    serial_stats, _ = _serial(name)
    stats = run_sharded(
        WORKLOADS[name](), 2, transport="inline", use_fastpath=True
    )
    assert json.dumps(stats.asdict(), sort_keys=False) == serial_stats


@pytest.mark.parametrize("shards", [2, 4])
def test_goldens_byte_identical_under_sharding(shards):
    from repro.sim.goldens import (
        SHARDABLE_GOLDEN_NAMES,
        committed_golden_path,
        render_golden,
    )

    for name in SHARDABLE_GOLDEN_NAMES:
        committed = committed_golden_path(name).read_text()
        assert render_golden(name, shards=shards) == committed, name


def test_pingpong_golden_rejects_sharding():
    from repro.sim.goldens import write_golden
    import io

    with pytest.raises(ValueError, match="cannot run sharded"):
        write_golden("pingpong_2x2x2", io.StringIO(), shards=2)


def test_larger_machine_8_shards():
    """4x4x4 at the maximum shard count, cross-shard channels on every
    axis."""
    from repro.traffic.batch import BatchSpec
    from repro.traffic.patterns import UniformRandom

    run = ShardedRun(
        config=MachineConfig(shape=(4, 4, 4), endpoints_per_chip=2),
        spec=BatchSpec(
            UniformRandom((4, 4, 4)),
            packets_per_source=2,
            cores_per_chip=2,
            seed=33,
        ),
    )
    serial = run_sharded(run, 1)
    for shards in (2, 8):
        stats = run_sharded(run, shards, transport="inline")
        assert json.dumps(stats.asdict()) == json.dumps(serial.asdict())
