"""Partitioning and lookahead-plan unit tests for the sharded runner."""

import pytest

from repro.core.machine import Machine, MachineConfig
from repro.sim.shard import (
    ShardPlan,
    ShardedRun,
    component_owners,
    partition_parts,
    run_sharded,
    shard_boundary,
)


class TestPartitionParts:
    def test_splits_largest_dimension_first(self):
        assert partition_parts((8, 8, 8), 1) == (1, 1, 1)
        assert partition_parts((8, 8, 8), 2) == (2, 1, 1)
        assert partition_parts((8, 8, 8), 4) == (2, 2, 1)
        assert partition_parts((8, 8, 8), 8) == (2, 2, 2)

    def test_prefers_longer_extents(self):
        # The 8-long X axis absorbs two halvings before Y gets one.
        assert partition_parts((8, 4, 2), 4) == (4, 1, 1)
        assert partition_parts((8, 4, 2), 8) == (4, 2, 1)

    def test_ring_shapes(self):
        assert partition_parts((4, 1, 1), 2) == (2, 1, 1)
        assert partition_parts((4, 1, 1), 4) == (4, 1, 1)

    def test_rejects_odd_split(self):
        with pytest.raises(ValueError, match="not even"):
            partition_parts((3, 3, 3), 2)
        # 4x1x1 halves twice but cannot reach 8 shards.
        with pytest.raises(ValueError, match="not even"):
            partition_parts((4, 1, 1), 8)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="shard count"):
            partition_parts((8, 8, 8), 3)
        with pytest.raises(ValueError, match="shard count"):
            partition_parts((8, 8, 8), 16)


class TestComponentOwners:
    def test_every_component_owned_once(self, tiny_machine):
        owners = component_owners(tiny_machine, (2, 1, 1))
        assert len(owners) == len(tiny_machine.components)
        assert set(owners) == {0, 1}

    def test_chip_locality(self, tiny_machine):
        # All components of one chip share an owner: only torus channels
        # may cross a shard boundary.
        owners = component_owners(tiny_machine, (2, 2, 1))
        per_chip = {}
        for comp in tiny_machine.components:
            per_chip.setdefault(comp.chip, set()).add(owners[comp.cid])
        assert all(len(s) == 1 for s in per_chip.values())

    def test_contiguous_slabs(self):
        machine = Machine(MachineConfig(shape=(4, 2, 2), endpoints_per_chip=2))
        owners = component_owners(machine, (2, 1, 1))
        for comp in machine.components:
            x = comp.chip[0]
            assert owners[comp.cid] == (0 if x < 2 else 1)


class TestShardBoundary:
    def test_cross_channels_are_torus_only(self, tiny_machine):
        owners = component_owners(tiny_machine, (2, 1, 1))
        remote_dst, remote_src, _ = shard_boundary(tiny_machine, owners, 0)
        assert remote_dst and remote_src
        for cid in remote_dst | remote_src:
            channel = tiny_machine.channels[cid]
            src = tiny_machine.components[channel.src]
            dst = tiny_machine.components[channel.dst]
            assert src.chip != dst.chip

    def test_boundaries_partition_symmetrically(self, tiny_machine):
        owners = component_owners(tiny_machine, (2, 1, 1))
        dst0, src0, _ = shard_boundary(tiny_machine, owners, 0)
        dst1, src1, _ = shard_boundary(tiny_machine, owners, 1)
        # A channel leaving shard 0 enters shard 1 and vice versa.
        assert dst0 == src1
        assert dst1 == src0


class TestShardPlan:
    def test_default_machine_lookahead(self, tiny_machine):
        plan = ShardPlan.for_machine(tiny_machine, 2)
        lat = min(
            ch.latency
            for ch in tiny_machine.channels
            if tiny_machine.components[ch.src].chip
            != tiny_machine.components[ch.dst].chip
        )
        assert 1 <= plan.lookahead <= lat

    def test_roundtrips_through_json(self, tiny_machine):
        plan = ShardPlan.for_machine(tiny_machine, 4)
        assert ShardPlan.from_json(plan.to_json()) == plan

    def test_one_shard_plan(self, tiny_machine):
        plan = ShardPlan.for_machine(tiny_machine, 1)
        assert plan.shards == 1


class TestRunShardedValidation:
    def test_rejects_retry_fault_policy(self, tiny_machine):
        from repro.faults import FaultPolicy, FaultSet, FaultSpec
        from repro.faults.model import failable_channels
        from repro.traffic.batch import BatchSpec
        from repro.traffic.patterns import UniformRandom

        torus = failable_channels(tiny_machine)
        run = ShardedRun(
            config=MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2),
            spec=BatchSpec(
                UniformRandom((2, 2, 2)),
                packets_per_source=1,
                cores_per_chip=2,
                seed=1,
            ),
            fault_set=FaultSet(
                specs=(FaultSpec(kind="link", channel=torus[0], down_cycle=4),),
                shape=(2, 2, 2),
            ),
            fault_policy=FaultPolicy(mode="retry"),
        )
        with pytest.raises(ValueError, match="retry"):
            run_sharded(run, 2, machine=tiny_machine)

    def test_rejects_unknown_transport(self, tiny_machine):
        from repro.traffic.batch import BatchSpec
        from repro.traffic.patterns import UniformRandom

        run = ShardedRun(
            config=MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2),
            spec=BatchSpec(
                UniformRandom((2, 2, 2)),
                packets_per_source=1,
                cores_per_chip=2,
                seed=1,
            ),
        )
        with pytest.raises(ValueError, match="transport"):
            run_sharded(run, 2, machine=tiny_machine, transport="carrier-pigeon")
