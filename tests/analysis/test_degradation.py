"""Tests for the degraded-machine throughput/fairness harness."""

import pickle

import pytest

from repro.analysis.degradation import (
    DegradedPoint,
    degradation_sweep,
    measure_degraded_point,
)
from repro.faults import FaultSet, sample_link_faults
from repro.traffic.patterns import UniformRandom


def _point(machine, k, seed=3, **kwargs):
    fault_json = sample_link_faults(machine, k, seed=seed).to_json()
    defaults = dict(
        config=machine.config,
        pattern=UniformRandom(machine.config.shape),
        batch_size=8,
        cores_per_chip=2,
        fault_json=fault_json,
        arbitration="rr",
        seed=7,
    )
    defaults.update(kwargs)
    return DegradedPoint(**defaults)


class TestMeasureDegradedPoint:
    def test_healthy_point_full_delivery(self, tiny_machine):
        result = measure_degraded_point(_point(tiny_machine, 0))
        assert result.failed_links == 0
        assert result.delivered == 8 * 8 * 2  # chips x batch x cores
        assert result.dropped == 0
        assert result.unroutable == 0
        assert result.normalized_throughput > 0
        # With zero faults the degraded and healthy ideal bounds agree
        # (up to float summation order: the degraded path accumulates
        # loads exhaustively, the healthy one by translation symmetry).
        assert result.normalized_throughput == pytest.approx(
            result.throughput_vs_healthy_ideal
        )

    def test_degraded_point_delivers_batch(self, tiny_machine):
        result = measure_degraded_point(_point(tiny_machine, 2))
        assert result.failed_links == 2
        assert result.delivered == 8 * 8 * 2
        assert result.dropped == 0
        # Fewer surviving channels -> the degraded ideal bound is never
        # tighter than the healthy one.
        assert (
            result.normalized_throughput >= result.throughput_vs_healthy_ideal
        )

    def test_fault_json_round_trips_through_result(self, tiny_machine):
        point = _point(tiny_machine, 1)
        result = measure_degraded_point(point)
        assert result.fault_json == point.fault_json
        assert len(FaultSet.from_json(result.fault_json)) == 1

    def test_point_is_picklable(self, tiny_machine):
        point = _point(tiny_machine, 1)
        clone = pickle.loads(pickle.dumps(point))
        assert clone.config == point.config
        assert clone.fault_json == point.fault_json
        assert clone.pattern.name == point.pattern.name
        assert clone.policy_mode == point.policy_mode

    def test_measurement_is_deterministic(self, tiny_machine):
        point = _point(tiny_machine, 2, arbitration="iw")
        a = measure_degraded_point(point)
        b = measure_degraded_point(point)
        assert a.completion_cycles == b.completion_cycles
        assert a.normalized_throughput == b.normalized_throughput
        assert a.finish_spread == b.finish_spread


class TestDegradationSweep:
    def test_sweep_spans_zero_to_max(self, tiny_machine):
        points = degradation_sweep(
            tiny_machine,
            UniformRandom((2, 2, 2)),
            batch_size=8,
            cores_per_chip=2,
            max_failed=2,
            arbitration="rr",
            fault_seed=3,
            seed=7,
        )
        assert [p.failed_links for p in points] == [0, 1, 2]
        for p in points:
            assert p.delivered == 8 * 8 * 2
            assert p.policy == "reroute"

    def test_sweep_reproducible(self, tiny_machine):
        kwargs = dict(
            batch_size=8,
            cores_per_chip=2,
            max_failed=1,
            arbitration="rr",
            fault_seed=3,
            seed=7,
        )
        a = degradation_sweep(tiny_machine, UniformRandom((2, 2, 2)), **kwargs)
        b = degradation_sweep(tiny_machine, UniformRandom((2, 2, 2)), **kwargs)
        assert [p.fault_json for p in a] == [p.fault_json for p in b]
        assert [p.completion_cycles for p in a] == [
            p.completion_cycles for p in b
        ]
