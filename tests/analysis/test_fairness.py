"""Tests for fairness metrics and the Figure 5 scenario."""

import pytest

from repro.analysis.fairness import (
    expected_shares,
    figure5_loads,
    finish_time_fairness,
    grant_ratio_experiment,
    jain_index,
    mid_run_service_fairness,
)
from repro.arbiters.inverse_weighted import InverseWeightedArbiter
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.arbiters.weights import compute_inverse_weights
from repro.sim.stats import SimStats


class TestFigure5:
    def test_published_loads(self):
        loads = figure5_loads()
        # Arbiter A: input 0 carries E1 (1.0), input 1 carries E0 (0.5).
        assert loads["A"] == {0: 1.0, 1: 0.5}
        # Arbiter B: input 0 carries A's output (1.5), input 1 E2 (0.75).
        assert loads["B"] == {0: 1.5, 1: 0.75}

    @pytest.mark.parametrize("arbiter_name,ratio", [("A", 2.0), ("B", 2.0)])
    def test_inverse_weighted_achieves_published_ratios(self, arbiter_name, ratio):
        loads = figure5_loads()[arbiter_name]
        table = compute_inverse_weights(
            [[loads[0]], [loads[1]]], weight_bits=5
        )
        arbiter = InverseWeightedArbiter(table.inverse_weights, table.weight_bits)
        shares = grant_ratio_experiment(arbiter, steps=8000)
        # Tolerance covers the 5-bit weight quantization (nint rounding
        # can shift the programmed ratio by about one part in 2^M - 1).
        assert shares[0] / shares[1] == pytest.approx(ratio, rel=0.05)

    def test_round_robin_misallocates(self):
        # RR grants 1:1 where EoS demands 2:1 -- the motivating failure.
        arbiter = RoundRobinArbiter(2)
        shares = grant_ratio_experiment(arbiter, steps=4000)
        assert shares == pytest.approx([0.5, 0.5], abs=0.01)


class TestExpectedShares:
    def test_normalizes(self):
        assert expected_shares([1.0, 0.5]) == pytest.approx([2 / 3, 1 / 3])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            expected_shares([0.0, 0.0])


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_all_zero(self):
        assert jain_index([0, 0]) == 1.0


class TestStatsMetrics:
    def test_finish_time_fairness(self):
        stats = SimStats()
        stats.source_finish_cycle = {1: 100, 2: 100, 3: 100}
        index, spread = finish_time_fairness(stats)
        assert index == pytest.approx(1.0)
        assert spread == 0.0

    def test_finish_time_unfair(self):
        stats = SimStats()
        stats.source_finish_cycle = {1: 10, 2: 100}
        index, spread = finish_time_fairness(stats)
        assert index < 1.0
        assert spread == pytest.approx(0.9)

    def test_requires_finishers(self):
        with pytest.raises(ValueError):
            finish_time_fairness(SimStats())

    def test_mid_run_service(self):
        stats = SimStats()
        stats.delivered_per_source.update({1: 10, 2: 10})
        assert mid_run_service_fairness(stats) == pytest.approx(1.0)

    def test_mid_run_requires_deliveries(self):
        with pytest.raises(ValueError):
            mid_run_service_fairness(SimStats())
