"""Tests for plain-text reporting helpers."""

import pytest

from repro.analysis.report import (
    ascii_bar_chart,
    format_series,
    format_table,
    side_by_side,
)


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.startswith("Table 1")

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159], [123.456]])
        assert "3.142" in text
        assert "123.5" in text


class TestFormatSeries:
    def test_rows_per_x(self):
        series = {"rr": {1: 0.5, 2: 0.4}, "iw": {1: 0.9, 2: 0.9}}
        text = format_series(series, x_label="batch")
        lines = text.splitlines()
        assert "batch" in lines[0]
        assert len(lines) == 4

    def test_missing_points_dashed(self):
        series = {"a": {1: 0.5}, "b": {2: 0.7}}
        text = format_series(series)
        assert "-" in text


class TestBarChart:
    def test_bars_proportional(self):
        text = ascii_bar_chart({"small": 1.0, "big": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})

    def test_zero_values(self):
        text = ascii_bar_chart({"a": 0.0})
        assert "#" not in text


class TestSideBySide:
    def test_pairs_quantities(self):
        text = side_by_side(
            {"latency": 99.0}, {"latency": 101.0}, title="Fig 12"
        )
        assert "Fig 12" in text
        assert "99" in text and "101" in text

    def test_missing_measurement(self):
        text = side_by_side({"x": 1.0}, {}, title="t")
        assert "-" in text
