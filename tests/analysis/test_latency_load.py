"""Tests for the latency-versus-offered-load characterization."""

import pytest

from repro.analysis.latency_load import latency_vs_load, saturation_rate
from repro.traffic.loads import compute_loads
from repro.traffic.patterns import Tornado, UniformRandom


class TestSaturationRate:
    def test_positive_and_below_injection_limit(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        table = compute_loads(tiny_machine, tiny_routes, pattern, 2)
        rate = saturation_rate(tiny_machine, table)
        assert rate > 0

    def test_zero_torus_load_rejected(self, tiny_machine, tiny_routes):
        # Tornado on a radix-2 torus degenerates to self-traffic (offset
        # k/2 - 1 = 0): no torus load, no saturation rate.
        table = compute_loads(tiny_machine, tiny_routes, Tornado((2, 2, 2)), 2)
        with pytest.raises(ValueError):
            saturation_rate(tiny_machine, table)

    def test_heavier_pattern_saturates_earlier(self):
        from repro.core.machine import Machine, MachineConfig
        from repro.core.routing import RouteComputer
        from repro.traffic.patterns import NHopNeighbor

        machine = Machine(MachineConfig(shape=(8, 2, 2), endpoints_per_chip=1))
        routes = RouteComputer(machine)
        local = compute_loads(machine, routes, NHopNeighbor((8, 2, 2), 1), 1)
        uniform = compute_loads(machine, routes, UniformRandom((8, 2, 2)), 1)
        # Uniform travels farther on the X rings, so it saturates at a
        # lower per-source injection rate than 1-hop-neighbor traffic.
        assert saturation_rate(machine, uniform) < saturation_rate(
            machine, local
        )


class TestLatencyLoadCurve:
    @pytest.fixture(scope="class")
    def curve(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        return latency_vs_load(
            tiny_machine,
            tiny_routes,
            pattern,
            cores_per_chip=2,
            fractions_of_saturation=(0.2, 0.6, 0.95),
            duration_cycles=1200,
            seed=4,
        )

    def test_latency_monotone_in_load(self, curve):
        means = [point.mean_latency_cycles for point in curve]
        assert means[0] < means[-1]

    def test_knee_shape(self, curve):
        # The increase from 60% to 95% of saturation dwarfs the increase
        # from 20% to 60% (queueing blows up near the knee).
        low, mid, high = (point.mean_latency_cycles for point in curve)
        assert (high - mid) > (mid - low)

    def test_tail_above_mean(self, curve):
        for point in curve:
            assert point.p99_latency_cycles >= point.mean_latency_cycles

    def test_all_packets_observed(self, curve):
        for point in curve:
            assert point.delivered > 0
