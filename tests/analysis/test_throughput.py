"""Tests for the throughput experiment harnesses."""

import pytest

from repro.analysis.throughput import (
    blend_sweep,
    measure_batch,
    throughput_vs_batch_size,
)
from repro.traffic.patterns import ReverseTornado, Tornado, UniformRandom


class TestMeasureBatch:
    def test_returns_sane_point(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        point = measure_batch(
            tiny_machine, tiny_routes, pattern, batch_size=8,
            cores_per_chip=2, arbitration="rr",
        )
        assert point.pattern == "uniform"
        assert point.arbitration == "rr"
        assert 0 < point.normalized_throughput <= 1.5
        assert point.completion_cycles > 0

    def test_iw_defaults_weights_to_pattern(self, tiny_machine, tiny_routes):
        pattern = Tornado((2, 2, 2))
        point = measure_batch(
            tiny_machine, tiny_routes, pattern, batch_size=8,
            cores_per_chip=2, arbitration="iw",
        )
        assert point.arbitration == "iw"

    def test_label_override(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        point = measure_batch(
            tiny_machine, tiny_routes, pattern, batch_size=4,
            cores_per_chip=2, arbitration="rr", label="none",
        )
        assert point.arbitration == "none"


class TestSweeps:
    def test_batch_size_sweep_structure(self, tiny_machine, tiny_routes):
        pattern = UniformRandom((2, 2, 2))
        points = throughput_vs_batch_size(
            tiny_machine, tiny_routes, [pattern], batch_sizes=(4, 8),
            cores_per_chip=2,
        )
        assert len(points) == 2 * 2  # sizes x (rr, iw)
        assert {p.arbitration for p in points} == {"rr", "iw"}
        assert {p.batch_size for p in points} == {4, 8}

    def test_blend_sweep_structure(self, tiny_machine, tiny_routes):
        points = blend_sweep(
            tiny_machine, tiny_routes,
            Tornado((2, 2, 2)), ReverseTornado((2, 2, 2)),
            fractions=(1.0, 0.0), batch_size=6, cores_per_chip=2,
        )
        assert len(points) == 2 * 4
        labels = {p.arbitration for p in points}
        assert labels == {"none", "forward", "reverse", "both"}

    def test_blend_sweep_pattern_names_carry_fraction(
        self, tiny_machine, tiny_routes
    ):
        points = blend_sweep(
            tiny_machine, tiny_routes,
            Tornado((2, 2, 2)), ReverseTornado((2, 2, 2)),
            fractions=(0.5,), batch_size=4, cores_per_chip=2,
        )
        assert all(p.pattern.startswith("0.50") for p in points)
