"""Bitwise reproducibility of identically-seeded simulations.

With exact fixed-point channel timing, a simulation's result is a pure
function of (machine config, workload spec, arbitration, seed): every
counter, latency, and busy-tick tally of two identically-seeded runs
must be *equal*, not merely close. This is what makes the parallel sweep
runner (:mod:`repro.sim.sweep`) sound -- a worker process re-running a
point reproduces the serial loop's result exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.simulator import run_batch
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import Blend, Tornado, UniformRandom

_CACHE = {}


def setup_for(shape):
    if shape not in _CACHE:
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=2))
        _CACHE[shape] = (machine, RouteComputer(machine))
    return _CACHE[shape]


def make_pattern(shape, kind):
    if kind == "uniform":
        return UniformRandom(shape)
    if kind == "tornado":
        return Tornado(shape)
    return Blend([UniformRandom(shape), Tornado(shape)], [0.5, 0.5])


@st.composite
def simulation_point(draw):
    shape = draw(st.sampled_from([(2, 2, 2), (3, 2, 2)]))
    pattern = draw(st.sampled_from(["uniform", "tornado", "blend"]))
    arbitration = draw(st.sampled_from(["rr", "iw"]))
    batch = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    size = draw(st.sampled_from([1, 2]))
    return shape, pattern, arbitration, batch, seed, size


class TestBitwiseReproducibility:
    @given(simulation_point())
    @settings(max_examples=15)
    def test_identically_seeded_runs_are_identical(self, case):
        shape, kind, arbitration, batch, seed, size = case
        machine, routes = setup_for(shape)
        pattern = make_pattern(shape, kind)
        spec = BatchSpec(
            pattern, batch, cores_per_chip=2, size_flits=size, seed=seed
        )
        runs = [
            run_batch(
                machine,
                routes,
                spec,
                arbitration=arbitration,
                weight_patterns=[pattern] if arbitration == "iw" else None,
                keep_packet_latencies=True,
            )
            for _ in range(2)
        ]
        # Dataclass equality compares every field: injection/delivery
        # counts, per-source and per-pattern tallies, per-channel flit
        # and busy-tick maps, latency sums, and the full per-packet
        # latency list.
        assert runs[0] == runs[1]
        assert runs[0].delivered == batch * 2 * machine.config.num_chips
