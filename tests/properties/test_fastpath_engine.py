"""The SoA fast path is bitwise-identical to the scalar engine.

The fast path's contract (:mod:`repro.sim.fastpath`) is *bit-exactness*:
a fast-path engine must produce the same statistics -- including dict
key-insertion order, which is checkpoint-observable -- and the same
serialized checkpoint bytes as the scalar engine it mirrors, for every
configuration, arbitration policy, and traffic pattern. These properties
drive both engines over Hypothesis-chosen workloads and compare the full
serialized state, so any divergence (a reordered stats key, an off-by-one
pointer mirror, a mis-sequenced wheel event) fails loudly.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.arbiters.round_robin import FixedPriorityArbiter
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.checkpoint import dumps, restore_engine, snapshot_engine
from repro.sim.simulator import build_batch_engine
from repro.sim.trace import JsonlTraceWriter
from repro.traffic.batch import BatchSpec
from repro.traffic.demand import (
    DemandMatrix,
    DemandMatrixPattern,
    DemandSchedule,
    DemandSpec,
    build_demand_engine,
)
from repro.traffic.patterns import BitComplement, Tornado, UniformRandom
from repro.traffic.replay import build_replay_engine, load_replay

_CACHE = {}

PATTERNS = {
    "uniform": UniformRandom,
    "tornado": Tornado,
    "bitcomp": BitComplement,
    # A demand matrix viewed as a pattern: closed-loop demand through the
    # ordinary batch machinery must hold the same bit-exactness contract.
    "demand": lambda shape: DemandMatrixPattern(
        DemandMatrix.hotspot(
            shape, rate=0.5, hotspots=1, hot_fraction=0.6, seed=9
        )
    ),
}


def setup_for(shape, eps):
    if (shape, eps) not in _CACHE:
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=eps))
        _CACHE[(shape, eps)] = (machine, RouteComputer(machine))
    return _CACHE[(shape, eps)]


def build_engine(point, fast):
    shape, eps, policy, pattern, batch, seed = point
    machine, routes = setup_for(shape, eps)
    spec = BatchSpec(
        PATTERNS[pattern](shape),
        packets_per_source=batch,
        cores_per_chip=min(2, eps),
        seed=seed,
    )
    kwargs = {}
    if policy == "iw":
        kwargs["weight_patterns"] = [PATTERNS[pattern](shape)]
    engine = build_batch_engine(
        machine,
        routes,
        spec,
        arbitration=policy if policy != "fixed" else "rr",
        use_fastpath=fast,
        **kwargs,
    )
    if policy == "fixed":
        # The builder doesn't expose fixed-priority; swap the arbiters in
        # before the first cycle classifies them.
        for oc, arb in list(engine.arbiters.items()):
            engine.arbiters[oc] = FixedPriorityArbiter(len(arb.grants))
        for ic, arb in enumerate(engine.vc_arbiters):
            if arb is not None:
                engine.vc_arbiters[ic] = FixedPriorityArbiter(len(arb.grants))
    return engine


def stats_blob(engine):
    return json.dumps(engine.stats.asdict(), sort_keys=False, default=str)


@st.composite
def workload(draw):
    shape, eps = draw(st.sampled_from([((2, 2, 2), 2), ((3, 2, 2), 1)]))
    policy = draw(st.sampled_from(["rr", "age", "iw", "fixed"]))
    pattern = draw(
        st.sampled_from(["uniform", "tornado", "bitcomp", "demand"])
    )
    batch = draw(st.integers(min_value=1, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return shape, eps, policy, pattern, batch, seed


class TestFastScalarEquivalence:
    @given(workload())
    @settings(max_examples=20, deadline=None)
    def test_stats_and_checkpoint_bitwise_equal(self, point):
        scalar = build_engine(point, fast=False)
        fast = build_engine(point, fast=True)
        assert fast._fastpath is not None
        scalar.run(max_cycles=100_000)
        fast.run(max_cycles=100_000)
        # The fast path must actually have run (not silently bailed out).
        assert fast._fastpath.enabled and not fast._fastpath.stale
        assert stats_blob(fast) == stats_blob(scalar)
        assert dumps(snapshot_engine(fast)) == dumps(snapshot_engine(scalar))

    @given(workload(), st.integers(min_value=1, max_value=64))
    @settings(max_examples=10, deadline=None)
    def test_run_for_chunking_is_invisible(self, point, chunk):
        scalar = build_engine(point, fast=False)
        scalar.run(max_cycles=100_000)
        oracle = dumps(snapshot_engine(scalar))

        fast = build_engine(point, fast=True)
        while fast._queued or fast._in_network or fast._events.pending:
            fast.run_for(chunk)
        fast.stats.end_cycle = fast.cycle
        assert fast.cycle == scalar.cycle
        assert dumps(snapshot_engine(fast)) == oracle


class TestCrossPathRestore:
    @given(workload(), st.integers(min_value=1, max_value=80))
    @settings(max_examples=10, deadline=None)
    def test_checkpoint_restores_onto_either_path(self, point, split):
        scalar = build_engine(point, fast=False)
        scalar.run(max_cycles=100_000)
        oracle = dumps(snapshot_engine(scalar))

        # A mid-run checkpoint taken from the fast engine equals the
        # scalar engine's at the same cycle...
        fast = build_engine(point, fast=True)
        mid = build_engine(point, fast=False)
        fast.run_for(split)
        mid.run_for(split)
        snap = snapshot_engine(fast)
        assert dumps(snap) == dumps(snapshot_engine(mid))

        # ...and resuming it on either path lands on the oracle.
        for resume_fast in (False, True):
            resumed = restore_engine(snap, use_fastpath=resume_fast)
            resumed.run(max_cycles=100_000)
            assert dumps(snapshot_engine(resumed)) == oracle, (
                f"resume with use_fastpath={resume_fast} diverged"
            )


@st.composite
def demand_case(draw):
    shape, eps = draw(st.sampled_from([((2, 2, 2), 2), ((3, 2, 2), 1)]))
    mode = draw(st.sampled_from(["open", "closed"]))
    injection = draw(st.sampled_from(["bernoulli", "paced"]))
    epochs = draw(st.integers(min_value=1, max_value=3))
    rate = draw(st.sampled_from([0.1, 0.3, 0.6]))
    mseed = draw(st.integers(min_value=0, max_value=100))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    policy = draw(st.sampled_from(["rr", "age", "iw"]))
    return shape, eps, mode, injection, epochs, rate, mseed, seed, policy


def build_demand(point, fast, trace=None):
    shape, eps, mode, injection, epochs, rate, mseed, seed, policy = point
    machine, routes = setup_for(shape, eps)
    matrices = [
        DemandMatrix.hotspot(
            shape, rate=rate, hotspots=1, hot_fraction=0.6, seed=mseed + k
        )
        for k in range(epochs)
    ]
    spec = DemandSpec(
        demand=DemandSchedule.from_matrices(matrices, 24),
        cores_per_chip=min(2, eps),
        mode=mode,
        duration_cycles=24 * epochs if mode == "open" else 0,
        packets_scale=8.0,
        injection=injection,
        seed=seed,
    )
    return build_demand_engine(
        machine,
        routes,
        spec,
        arbitration=policy,
        use_fastpath=fast,
        trace=trace,
    )


class TestWorkloadFastScalarEquivalence:
    """Demand-matrix and trace-replay workloads hold the same bit-exact
    fast==scalar contract as the batch workloads above."""

    @given(demand_case())
    @settings(max_examples=10, deadline=None)
    def test_demand_fast_equals_scalar(self, point):
        scalar = build_demand(point, fast=False)
        fast = build_demand(point, fast=True)
        assert fast._fastpath is not None
        scalar.run(max_cycles=100_000)
        fast.run(max_cycles=100_000)
        assert fast._fastpath.enabled and not fast._fastpath.stale
        assert stats_blob(fast) == stats_blob(scalar)
        assert dumps(snapshot_engine(fast)) == dumps(snapshot_engine(scalar))

    @given(demand_case())
    @settings(max_examples=10, deadline=None)
    def test_replay_fast_equals_scalar(self, point):
        shape, eps = point[0], point[1]
        policy = point[8]
        machine, _routes = setup_for(shape, eps)
        stream = io.StringIO()
        writer = JsonlTraceWriter(
            stream,
            meta={
                "shape": list(shape),
                "endpoints": eps,
                "tpc": machine.ticks_per_cycle,
                "arb": policy,
            },
        )
        source = build_demand(point, fast=False, trace=writer)
        source.run(max_cycles=100_000)
        writer.flush()
        lines = stream.getvalue().splitlines()

        # Reload per engine: engines mutate the enqueued Packet objects.
        weights = (
            [PATTERNS["demand"](shape)] if policy == "iw" else None
        )
        engines = []
        for fast in (False, True):
            engine = build_replay_engine(
                machine,
                load_replay(lines),
                arbitration=policy,
                weight_patterns=weights,
                use_fastpath=fast,
            )
            engine.run(max_cycles=100_000)
            engines.append(engine)
        scalar, fast_engine = engines
        assert fast_engine._fastpath is not None
        assert (
            fast_engine._fastpath.enabled and not fast_engine._fastpath.stale
        )
        assert stats_blob(fast_engine) == stats_blob(scalar)
        assert dumps(snapshot_engine(fast_engine)) == dumps(
            snapshot_engine(scalar)
        )
