"""Property tests pinning the timing-wheel scheduler's contracts.

Random small configurations -- shape, load, faults on/off, tracing
on/off -- exercising the invariants the wheel must preserve over the
heap it replaced:

* trace events are emitted in chronological order (non-decreasing
  cycle; within a cycle, emission order is the documented causal order);
* credits are conserved: a drained healthy run leaves zero credits
  outstanding on every (channel, VC);
* scheduling is pause-resistant: ``run_for(n)`` then ``run_for(m)``
  is bitwise identical to ``run_for(n + m)``.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import all_coords
from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.faults import FaultPolicy, FaultRuntime, FaultSet, FaultSpec
from repro.sim.engine import Engine
from repro.sim.packet import Packet
from repro.sim.simulator import run_batch
from repro.sim.trace import ListSink
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import UniformRandom

_CACHE = {}


def setup_for(shape):
    if shape not in _CACHE:
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=2))
        _CACHE[shape] = (machine, RouteComputer(machine))
    return _CACHE[shape]


@st.composite
def scheduler_case(draw):
    shape = draw(st.sampled_from([(2, 2, 1), (2, 2, 2), (3, 2, 1)]))
    batch = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    tracing = draw(st.booleans())
    faulted = draw(st.booleans())
    fault_pick = draw(st.integers(min_value=0, max_value=2**16))
    down_cycle = draw(st.integers(min_value=1, max_value=40))
    policy = draw(st.sampled_from(["drop", "reroute"]))
    return shape, batch, seed, tracing, faulted, fault_pick, down_cycle, policy


def run_case(case):
    shape, batch, seed, tracing, faulted, fault_pick, down_cycle, policy = case
    machine, routes = setup_for(shape)
    sink = ListSink() if tracing else None
    spec = BatchSpec(
        UniformRandom(shape), batch, cores_per_chip=2, seed=seed
    )
    runtime = None
    if faulted:
        torus = [
            c.cid for c in machine.channels if c.kind == ChannelKind.TORUS
        ]
        cid = torus[fault_pick % len(torus)]
        fault_set = FaultSet(
            specs=(
                FaultSpec(kind="link", channel=cid, down_cycle=down_cycle),
            ),
            shape=shape,
        )
        runtime = FaultRuntime(
            machine, fault_set, policy=FaultPolicy(mode=policy)
        )
    stats = run_batch(
        machine,
        runtime.route_computer if runtime else routes,
        spec,
        trace=sink,
        faults=runtime,
        max_cycles=10_000_000,
    )
    return machine, stats, sink


@st.composite
def split_case(draw):
    shape = draw(st.sampled_from([(2, 2, 1), (2, 2, 2)]))
    seed = draw(st.integers(min_value=0, max_value=9999))
    count = draw(st.integers(min_value=4, max_value=40))
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=1, max_value=300))
    return shape, seed, count, n, m


def fill_engine(machine, routes, seed, count, trace):
    rng = random.Random(seed)
    chips = list(all_coords(machine.config.shape))
    engine = Engine(machine, keep_packet_latencies=True, trace=trace)
    per_source_release = {}
    for pid in range(count):
        src_chip = rng.choice(chips)
        dst_chip = rng.choice(chips)
        src = machine.ep_id[(src_chip, rng.randrange(2))]
        dst = machine.ep_id[(dst_chip, rng.randrange(2))]
        if src == dst:
            continue
        choice = routes.random_choice(rng, src_chip, dst_chip)
        route = routes.compute(src, dst, choice)
        release = per_source_release.get(src, 0) + rng.randrange(4)
        per_source_release[src] = release
        engine.enqueue(Packet(pid, route, release_cycle=release))
    return engine


class TestSchedulerInvariants:
    @given(scheduler_case())
    @settings(max_examples=25)
    def test_trace_chronological_and_credits_conserved(self, case):
        machine, stats, sink = run_case(case)
        faulted = case[4]
        generated = case[1] * 2 * machine.config.num_chips
        if faulted:
            # Every generated packet has exactly one terminal outcome.
            assert stats.delivered + stats.dropped == generated
        else:
            assert stats.delivered == generated
        if sink is not None:
            cycles = [event.cycle for event in sink.events]
            assert cycles == sorted(cycles)
        if not faulted:
            assert stats.injected == stats.delivered

    @given(split_case())
    @settings(max_examples=20)
    def test_drained_run_conserves_credits(self, case):
        shape, seed, count, _n, _m = case
        machine, routes = setup_for(shape)
        engine = fill_engine(machine, routes, seed, count, None)
        stats = engine.run()
        assert stats.delivered == stats.injected
        assert engine.buffered_packets() == 0
        for channel in machine.channels:
            for vc in range(machine.vcs_for_channel(channel)):
                assert engine.credits_outstanding(channel.cid, vc) == 0


class TestSplitRunEquivalence:
    @given(split_case())
    @settings(max_examples=20)
    def test_run_for_split_is_bitwise_identical(self, case):
        shape, seed, count, n, m = case
        machine, routes = setup_for(shape)
        sink_a, sink_b = ListSink(), ListSink()
        split = fill_engine(machine, routes, seed, count, sink_a)
        single = fill_engine(machine, routes, seed, count, sink_b)
        split.run_for(n)
        split.run_for(m)
        single.run_for(n + m)
        assert split.cycle == single.cycle
        assert split.stats == single.stats
        assert sink_a.events == sink_b.events
        assert split.buffered_packets() == single.buffered_packets()
