"""Bitwise resume-equivalence of checkpointed simulations.

The checkpoint contract (:mod:`repro.sim.checkpoint`): for any workload
and any checkpoint cycle, ``run(n) -> save -> restore -> run(m)`` is
byte-identical to the uninterrupted ``run(n + m)`` -- the JSONL trace
bytes and the serialized stats dict, not merely the summary numbers.
Hypothesis drives the workload (pattern, arbitration policy, seed,
healthy or faulted machine) and, crucially, the checkpoint cycle: the
split point is drawn as a fraction of the uninterrupted run's length, so
checkpoints land in warm-up, saturation, and drain phases alike.
"""

import io
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.faults import FaultPolicy, FaultRuntime, FaultSet, FaultSpec
from repro.sim.checkpoint import dumps, loads, restore_engine, snapshot_engine
from repro.sim.simulator import build_batch_engine
from repro.sim.trace import JsonlTraceWriter
from repro.traffic.batch import BatchSpec
from repro.traffic.demand import (
    DemandMatrix,
    DemandSchedule,
    DemandSpec,
    build_demand_engine,
)
from repro.traffic.patterns import Tornado, UniformRandom

SHAPE = (2, 2, 2)

_MACHINE_CACHE = {}


def shared_machine():
    # One elaborated machine per process: engines never mutate it.
    if "m" not in _MACHINE_CACHE:
        machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=2))
        _MACHINE_CACHE["m"] = (machine, RouteComputer(machine))
    return _MACHINE_CACHE["m"]


def build(pattern_kind, arbitration, seed, batch, faulted, policy, writer):
    machine, healthy_routes = shared_machine()
    pattern = (
        UniformRandom(SHAPE) if pattern_kind == "uniform" else Tornado(SHAPE)
    )
    runtime = None
    routes = healthy_routes
    if faulted:
        fault_set = FaultSet(
            specs=(
                FaultSpec(kind="link", channel=640, down_cycle=0, up_cycle=45),
                FaultSpec(kind="link", channel=656, down_cycle=12, up_cycle=None),
            ),
            shape=SHAPE,
        )
        runtime = FaultRuntime(
            machine,
            fault_set,
            policy=FaultPolicy(mode=policy, max_retries=3),
        )
        routes = runtime.route_computer
    spec = BatchSpec(
        pattern, packets_per_source=batch, cores_per_chip=2, seed=seed
    )
    return build_batch_engine(
        machine,
        routes,
        spec,
        arbitration=arbitration,
        weight_patterns=[pattern] if arbitration == "iw" else None,
        faults=runtime,
        trace=writer,
    )


def build_demand_case(seed, mseed, injection, arbitration, writer):
    # Three hotspot epochs with shifting hot nodes: any split past cycle
    # 20 has at least one epoch boundary behind it and (before cycle 40)
    # one still ahead in the pre-generated schedule.
    machine, routes = shared_machine()
    matrices = [
        DemandMatrix.hotspot(
            SHAPE, rate=0.35, hotspots=1, hot_fraction=0.6, seed=mseed + k
        )
        for k in range(3)
    ]
    spec = DemandSpec(
        demand=DemandSchedule.from_matrices(matrices, 20),
        cores_per_chip=2,
        mode="open",
        duration_cycles=60,
        injection=injection,
        seed=seed,
    )
    return build_demand_engine(
        machine, routes, spec, arbitration=arbitration, trace=writer
    )


def run_uninterrupted(params, build_fn=build):
    stream = io.StringIO()
    writer = JsonlTraceWriter(stream, meta={"run": "prop"})
    engine = build_fn(*params, writer)
    stats = engine.run()
    writer.flush()
    return stream.getvalue(), json.dumps(stats.asdict())


def run_split(params, split_cycle, build_fn=build):
    # Phase 1: run to the checkpoint cycle and snapshot through the full
    # canonical text round trip.
    stream = io.StringIO()
    writer = JsonlTraceWriter(stream, meta={"run": "prop"})
    engine = build_fn(*params, writer)
    engine.run_for(split_cycle)
    writer.flush()
    data = loads(dumps(snapshot_engine(engine)))
    head = stream.getvalue()
    assert len(head.encode("utf-8")) == data["trace"]["bytes_written"]
    # Phase 2: restore into a fresh engine ("new process") with a
    # header-free resumed writer and run to completion.
    tail_stream = io.StringIO()
    resumed = JsonlTraceWriter(
        tail_stream,
        header=False,
        resume_counts=(
            data["trace"]["events_written"],
            data["trace"]["bytes_written"],
        ),
    )
    restored = restore_engine(data, trace=resumed)
    stats = restored.run()
    resumed.flush()
    return head + tail_stream.getvalue(), json.dumps(stats.asdict())


@st.composite
def checkpoint_case(draw):
    pattern = draw(st.sampled_from(["uniform", "tornado"]))
    arbitration = draw(st.sampled_from(["rr", "age", "iw"]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    batch = draw(st.integers(min_value=2, max_value=10))
    faulted = draw(st.booleans())
    policy = draw(st.sampled_from(["reroute", "retry", "drop"]))
    split_fraction = draw(st.floats(min_value=0.05, max_value=0.95))
    return (pattern, arbitration, seed, batch, faulted, policy), split_fraction


class TestResumeEquivalence:
    @given(checkpoint_case())
    @settings(max_examples=20, deadline=None)
    def test_checkpoint_resume_is_bitwise(self, case):
        params, split_fraction = case
        full_trace, full_stats = run_uninterrupted(params)
        end_cycle = json.loads(full_stats)["end_cycle"]
        # At least one cycle before the end so the resumed engine has
        # real work left; at least cycle 1 so phase 1 does something.
        split_cycle = min(
            max(1, int(split_fraction * end_cycle)), end_cycle - 1
        )
        split_trace, split_stats = run_split(params, split_cycle)
        assert split_trace == full_trace
        assert split_stats == full_stats

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from(["reroute", "retry"]),
        st.integers(min_value=5, max_value=40),
    )
    @settings(max_examples=10, deadline=None)
    def test_faulted_split_with_retries_in_flight(self, seed, policy, split):
        # Deterministic faulted workload, checkpointed inside the outage
        # window where retries/reroutes are live in the wheel.
        params = ("uniform", "rr", seed, 8, True, policy)
        full_trace, full_stats = run_uninterrupted(params)
        end_cycle = json.loads(full_stats)["end_cycle"]
        split_cycle = min(split, end_cycle - 1)
        split_trace, split_stats = run_split(params, split_cycle)
        assert split_trace == full_trace
        assert split_stats == full_stats

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_double_split_is_bitwise(self, seed):
        # Two checkpoints in one run: save at n, resume, save again at
        # n + k from the *restored* engine, resume again.
        params = ("uniform", "iw", seed, 6, False, "reroute")
        full_trace, full_stats = run_uninterrupted(params)
        end_cycle = json.loads(full_stats)["end_cycle"]
        first = max(1, end_cycle // 3)
        second = max(first + 1, 2 * end_cycle // 3)

        stream = io.StringIO()
        writer = JsonlTraceWriter(stream, meta={"run": "prop"})
        engine = build(*params, writer)
        engine.run_for(first)
        writer.flush()
        data = loads(dumps(snapshot_engine(engine)))
        text = stream.getvalue()

        mid_stream = io.StringIO()
        mid_writer = JsonlTraceWriter(
            mid_stream,
            header=False,
            resume_counts=(
                data["trace"]["events_written"],
                data["trace"]["bytes_written"],
            ),
        )
        restored = restore_engine(data, trace=mid_writer)
        restored.run_for(second - first)
        mid_writer.flush()
        data2 = loads(dumps(snapshot_engine(restored)))
        text += mid_stream.getvalue()

        tail_stream = io.StringIO()
        tail_writer = JsonlTraceWriter(
            tail_stream,
            header=False,
            resume_counts=(
                data2["trace"]["events_written"],
                data2["trace"]["bytes_written"],
            ),
        )
        final = restore_engine(data2, trace=tail_writer)
        stats = final.run()
        tail_writer.flush()
        text += tail_stream.getvalue()

        assert text == full_trace
        assert json.dumps(stats.asdict()) == full_stats


class TestDemandResumeEquivalence:
    """Evolving demand-matrix workloads hold the same bitwise resume
    contract: the pre-generated schedule lives entirely in the
    checkpointed source queues, so no extra workload state is needed."""

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=50),
        st.sampled_from(["bernoulli", "paced"]),
        st.sampled_from(["rr", "iw"]),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=10, deadline=None)
    def test_evolving_demand_split_is_bitwise(
        self, seed, mseed, injection, arbitration, frac
    ):
        params = (seed, mseed, injection, arbitration)
        full_trace, full_stats = run_uninterrupted(
            params, build_fn=build_demand_case
        )
        end_cycle = json.loads(full_stats)["end_cycle"]
        split_cycle = min(max(1, int(frac * end_cycle)), end_cycle - 1)
        split_trace, split_stats = run_split(
            params, split_cycle, build_fn=build_demand_case
        )
        assert split_trace == full_trace
        assert split_stats == full_stats

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_split_inside_second_epoch(self, seed):
        # Pin the checkpoint inside the middle epoch (cycles 20-39): the
        # resume then crosses the remaining epoch boundary at cycle 40,
        # the exact hand-off the schedule resolution must preserve.
        params = (seed, 7, "bernoulli", "rr")
        full_trace, full_stats = run_uninterrupted(
            params, build_fn=build_demand_case
        )
        end_cycle = json.loads(full_stats)["end_cycle"]
        split_cycle = min(25, end_cycle - 1)
        split_trace, split_stats = run_split(
            params, split_cycle, build_fn=build_demand_case
        )
        assert split_trace == full_trace
        assert split_stats == full_stats
