"""Topology-conformance properties, over every registered topology.

These are the invariants a :class:`~repro.core.topology.Topology`
implementation must uphold to plug into the engine, in property form:

* routes are valid and minimal in inter-node hops;
* each ring dimension's dateline is crossed at most once per route, and
  a line dimension's (degenerate) dateline is *never* crossed -- the
  mechanical form of the mesh claim that the escape VC is unreachable
  via rule 1;
* credits, buffers, and delivery counts conserve on random workloads;
* identical runs are bitwise identical (full serialized engine state).

The suite draws its cases from ``topology_strategies``; a topology added
to the registry without a shapes entry there fails the coverage pin
below, so future topologies inherit every property here for free.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import all_coords
from repro.core.machine import ChannelKind
from repro.core.routing import validate_route
from repro.core.topology import TOPOLOGY_NAMES
from repro.sim.checkpoint import dumps, snapshot_engine
from repro.sim.engine import Engine
from repro.sim.packet import Packet
from repro.sim.simulator import build_batch_engine
from repro.traffic.batch import BatchSpec
from repro.traffic.patterns import UniformRandom

from .topology_strategies import (
    SUITE_SHAPES,
    TOPOLOGY_CASES,
    endpoint_pair,
    machine_for,
    topology_cases,
)


def test_every_registered_topology_is_in_the_suite():
    """Adding a topology without suite shapes is a hard failure."""
    assert set(SUITE_SHAPES) == set(TOPOLOGY_NAMES)
    for name in TOPOLOGY_NAMES:
        assert SUITE_SHAPES[name], f"no suite shapes for topology {name!r}"


def _random_route(machine, routes, case):
    _name, _shape, _scheme, src_chip, dst_chip, src_ep, dst_ep, seed = case
    src = machine.ep_id[(src_chip, src_ep)]
    dst = machine.ep_id[(dst_chip, dst_ep)]
    rng = random.Random(seed)
    choice = routes.random_choice(rng, src_chip, dst_chip)
    return routes.compute(src, dst, choice)


class TestRouteProperties:
    @given(endpoint_pair(schemes=("anton", "baseline")))
    def test_routes_valid_and_minimal(self, case):
        name, shape, scheme = case[0], case[1], case[2]
        machine, routes = machine_for(name, shape, scheme)
        route = _random_route(machine, routes, case)
        validate_route(machine, route)
        assert route.internode_hops == machine.topology.hops(case[3], case[4])

    @given(endpoint_pair())
    def test_dateline_crossed_at_most_once_and_never_on_lines(self, case):
        name, shape = case[0], case[1]
        machine, routes = machine_for(name, shape)
        topology = machine.topology
        route = _random_route(machine, routes, case)
        crossings = [0, 0, 0]
        for channel_id, _vc in route.hops:
            channel = machine.channels[channel_id]
            if channel.kind != ChannelKind.TORUS:
                continue
            src_comp = machine.components[channel.src]
            dst_comp = machine.components[channel.dst]
            direction, _slice = src_comp.detail
            dim = direction.dim
            if topology.crossing_step(
                dim, src_comp.chip[dim], dst_comp.chip[dim]
            ):
                crossings[dim] += 1
        for dim in range(3):
            if topology.wraps(dim):
                assert crossings[dim] <= 1
            else:
                # The degenerate dateline: a line is never wrapped, so
                # rule-1 VC promotion is unreachable by construction.
                assert crossings[dim] == 0


@st.composite
def conservation_case(draw):
    name, shape = draw(topology_cases)
    seed = draw(st.integers(min_value=0, max_value=9999))
    count = draw(st.integers(min_value=1, max_value=40))
    size = draw(st.sampled_from([1, 2]))
    return name, shape, seed, count, size


class TestConservation:
    @given(conservation_case())
    @settings(max_examples=25)
    def test_credits_and_buffers_conserve(self, case):
        name, shape, seed, count, size = case
        machine, routes = machine_for(name, shape)
        rng = random.Random(seed)
        chips = list(all_coords(machine.config.shape))
        engine = Engine(machine)
        per_source_release = {}
        for pid in range(count):
            src_chip = rng.choice(chips)
            dst_chip = rng.choice(chips)
            src = machine.ep_id[(src_chip, rng.randrange(2))]
            dst = machine.ep_id[(dst_chip, rng.randrange(2))]
            if src == dst:
                continue
            choice = routes.random_choice(rng, src_chip, dst_chip)
            route = routes.compute(src, dst, choice)
            release = per_source_release.get(src, 0) + rng.randrange(3)
            per_source_release[src] = release
            engine.enqueue(
                Packet(pid, route, size_flits=size, release_cycle=release)
            )
        stats = engine.run()
        assert stats.delivered == stats.injected
        assert engine.buffered_packets() == 0
        for channel in machine.channels:
            for vc in range(machine.vcs_for_channel(channel)):
                assert engine.credits_outstanding(channel.cid, vc) == 0


@st.composite
def batch_case(draw):
    name, shape = draw(topology_cases)
    seed = draw(st.integers(min_value=0, max_value=999))
    batch = draw(st.integers(min_value=1, max_value=4))
    arbitration = draw(st.sampled_from(["rr", "age"]))
    return name, shape, seed, batch, arbitration


class TestBitwiseDeterminism:
    @given(batch_case())
    @settings(max_examples=15)
    def test_identical_runs_are_bitwise_identical(self, case):
        name, shape, seed, batch, arbitration = case
        machine, routes = machine_for(name, shape)
        pattern = UniformRandom(machine.config.shape)
        spec = BatchSpec(
            pattern, packets_per_source=batch, cores_per_chip=2, seed=seed
        )

        def run_once():
            engine = build_batch_engine(
                machine, routes, spec, arbitration=arbitration
            )
            engine.run()
            return dumps(snapshot_engine(engine))

        assert run_once() == run_once()
