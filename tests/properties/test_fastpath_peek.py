"""The vectorized peek helpers equal the scalar arbiters' ``peek``.

The SoA fast path (:mod:`repro.sim.fastpath`) never calls the arbiter
objects on its hot path for RR / age / fixed-priority policies; it
recomputes their grants from mirrored pointer/age arrays with the
``*_peek_vec`` helpers. Bit-exactness of the whole fast path therefore
rests on these helpers returning *exactly* what the corresponding
scalar ``peek`` would have, for every pointer value and request mask --
which is what this module pins down.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.arbiters.age_based import AgeBasedArbiter
from repro.arbiters.base import SimpleRequest
from repro.arbiters.inverse_weighted import InverseWeightedArbiter
from repro.arbiters.round_robin import FixedPriorityArbiter, RoundRobinArbiter
from repro.sim.fastpath import (
    age_peek_vec,
    fixed_peek_vec,
    iw_peek_vec,
    rr_peek_vec,
)


def as_requests(mask, ages=None):
    """Boolean mask -> the ``Optional[Request]`` list the arbiters take."""
    if ages is None:
        ages = [0] * len(mask)
    return [
        SimpleRequest(inject_cycle=age) if present else None
        for present, age in zip(mask, ages)
    ]


@st.composite
def masked_case(draw, with_ages=False):
    k = draw(st.integers(min_value=1, max_value=12))
    mask = draw(st.lists(st.booleans(), min_size=k, max_size=k))
    pointer = draw(st.integers(min_value=0, max_value=k - 1))
    if not with_ages:
        return k, pointer, mask
    ages = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=k, max_size=k
        )
    )
    return k, pointer, mask, ages


class TestRoundRobinPeek:
    @given(masked_case())
    def test_matches_scalar(self, case):
        k, pointer, mask = case
        arb = RoundRobinArbiter(k)
        arb._pointer = pointer
        assert rr_peek_vec(pointer, mask) == arb.peek(as_requests(mask))

    @given(masked_case())
    def test_after_commit(self, case):
        """Pointer values produced by real commits agree too."""
        k, pointer, mask = case
        arb = RoundRobinArbiter(k)
        arb._pointer = pointer
        winner = arb.arbitrate(as_requests(mask))
        if winner is not None:
            assert arb._pointer == winner
        assert rr_peek_vec(arb._pointer, mask) == arb.peek(as_requests(mask))


class TestAgeBasedPeek:
    @given(masked_case(with_ages=True))
    def test_matches_scalar(self, case):
        k, pointer, mask, ages = case
        arb = AgeBasedArbiter(k)
        arb._pointer = pointer
        assert age_peek_vec(pointer, ages, mask) == arb.peek(
            as_requests(mask, ages)
        )

    @given(masked_case(with_ages=True))
    def test_ties_break_by_rr_rank(self, case):
        """Equal ages reduce the policy to plain round-robin."""
        k, pointer, mask, _ = case
        flat = [7] * k
        arb = AgeBasedArbiter(k)
        arb._pointer = pointer
        assert age_peek_vec(pointer, flat, mask) == rr_peek_vec(pointer, mask)
        assert age_peek_vec(pointer, flat, mask) == arb.peek(
            as_requests(mask, flat)
        )


class TestFixedPriorityPeek:
    @given(masked_case())
    def test_matches_scalar(self, case):
        k, _, mask = case
        arb = FixedPriorityArbiter(k)
        assert fixed_peek_vec(mask) == arb.peek(as_requests(mask))


@st.composite
def iw_case(draw):
    k = draw(st.integers(min_value=1, max_value=10))
    mask = draw(st.lists(st.booleans(), min_size=k, max_size=k))
    pointer = draw(st.integers(min_value=0, max_value=k - 1))
    weight_bits = draw(st.integers(min_value=1, max_value=8))
    # Accumulators occupy weight_bits + 1 bits.
    accumulators = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << (weight_bits + 1)) - 1),
            min_size=k,
            max_size=k,
        )
    )
    return k, pointer, weight_bits, accumulators, mask


class TestInverseWeightedPeek:
    @given(iw_case())
    def test_matches_grant_fast(self, case):
        k, pointer, weight_bits, accumulators, mask = case
        arb = InverseWeightedArbiter([[1]] * k, weight_bits=weight_bits)
        arb._pointer = pointer
        arb.bank.accumulators = list(accumulators)
        window = arb.bank.window
        assert iw_peek_vec(pointer, accumulators, window, mask) == arb.peek(
            as_requests(mask)
        )

    @given(iw_case())
    def test_matches_bit_exact_model(self, case):
        """And therefore also the Figure 8 bit-level model."""
        k, pointer, weight_bits, accumulators, mask = case
        arb = InverseWeightedArbiter(
            [[1]] * k, weight_bits=weight_bits, bit_exact=True
        )
        arb._pointer = pointer
        arb.bank.accumulators = list(accumulators)
        window = arb.bank.window
        assert iw_peek_vec(pointer, accumulators, window, mask) == arb.peek(
            as_requests(mask)
        )


class TestEmptyMask:
    @given(st.integers(min_value=1, max_value=8))
    def test_all_return_none(self, k):
        mask = [False] * k
        assert rr_peek_vec(0, mask) is None
        assert age_peek_vec(0, [0] * k, mask) is None
        assert fixed_peek_vec(mask) is None
        assert iw_peek_vec(0, [0] * k, 4, mask) is None
