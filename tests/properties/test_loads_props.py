"""Property-based tests for the analytic load computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import ChannelKind, Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.traffic.loads import compute_loads
from repro.traffic.patterns import (
    NHopNeighbor,
    ReverseTornado,
    Tornado,
    UniformRandom,
)

_CACHE = {}


def setup_for(shape):
    if shape not in _CACHE:
        machine = Machine(MachineConfig(shape=shape, endpoints_per_chip=2))
        _CACHE[shape] = (machine, RouteComputer(machine))
    return _CACHE[shape]


@st.composite
def load_case(draw):
    shape = draw(st.sampled_from([(2, 2, 2), (3, 2, 2), (4, 2, 1)]))
    pattern_kind = draw(st.sampled_from(["uniform", "1hop", "tornado", "reverse"]))
    cores = draw(st.integers(min_value=1, max_value=2))
    mode = draw(st.sampled_from(["same_index", "uniform"]))
    return shape, pattern_kind, cores, mode


def make_pattern(kind, shape):
    if kind == "uniform":
        return UniformRandom(shape)
    if kind == "1hop":
        return NHopNeighbor(shape, 1)
    if kind == "tornado":
        return Tornado(shape)
    return ReverseTornado(shape)


class TestLoadInvariants:
    @given(load_case())
    @settings(max_examples=20)
    def test_flow_conservation(self, case):
        shape, kind, cores, mode = case
        machine, routes = setup_for(shape)
        pattern = make_pattern(kind, shape)
        table = compute_loads(machine, routes, pattern, cores, mode)
        # Every source injects one packet per round.
        injected = sum(
            load
            for cid, load in table.channel_load.items()
            if machine.channels[cid].kind == ChannelKind.EP_TO_ROUTER
        )
        ejected = sum(
            load
            for cid, load in table.channel_load.items()
            if machine.channels[cid].kind == ChannelKind.ROUTER_TO_EP
        )
        active = cores * machine.config.num_chips
        assert injected == pytest.approx(active)
        assert ejected == pytest.approx(active)

    @given(load_case())
    @settings(max_examples=20)
    def test_arbiter_and_vc_loads_consistent(self, case):
        shape, kind, cores, mode = case
        machine, routes = setup_for(shape)
        pattern = make_pattern(kind, shape)
        table = compute_loads(machine, routes, pattern, cores, mode)
        for oc, per_input in table.arbiter_load.items():
            assert sum(per_input) == pytest.approx(table.channel_load[oc])
        for cid, per_vc in table.vc_load.items():
            assert sum(per_vc) == pytest.approx(table.channel_load[cid])

    @given(load_case())
    @settings(max_examples=10)
    def test_symmetry_path_exact(self, case):
        shape, kind, cores, mode = case
        machine, routes = setup_for(shape)
        pattern = make_pattern(kind, shape)
        if not pattern.node_symmetric:
            return
        fast = compute_loads(machine, routes, pattern, cores, mode, use_symmetry=True)
        slow = compute_loads(machine, routes, pattern, cores, mode, use_symmetry=False)
        keys = set(fast.channel_load) | set(slow.channel_load)
        for key in keys:
            assert fast.channel_load.get(key, 0.0) == pytest.approx(
                slow.channel_load.get(key, 0.0)
            )

    @given(load_case())
    @settings(max_examples=15)
    def test_loads_nonnegative_and_mean_hops_consistent(self, case):
        shape, kind, cores, mode = case
        machine, routes = setup_for(shape)
        pattern = make_pattern(kind, shape)
        table = compute_loads(machine, routes, pattern, cores, mode)
        assert all(load >= 0 for load in table.channel_load.values())
        torus_total = sum(
            load
            for cid, load in table.channel_load.items()
            if machine.channels[cid].kind == ChannelKind.TORUS
        )
        active = cores * machine.config.num_chips
        assert torus_total == pytest.approx(active * pattern.mean_hops())
