"""Property-based tests for the arbiter hardware models."""

from hypothesis import given
from hypothesis import strategies as st

from repro.arbiters.accumulator import AccumulatorBank
from repro.arbiters.base import SimpleRequest
from repro.arbiters.inverse_weighted import InverseWeightedArbiter
from repro.arbiters.priority_arb import (
    behavioral_grant,
    grant_index,
    priority_arb_bits,
    thermometer,
)


@st.composite
def arb_case(draw):
    k = draw(st.integers(min_value=1, max_value=8))
    levels = draw(st.integers(min_value=1, max_value=4))
    req = draw(st.integers(min_value=0, max_value=(1 << k) - 1))
    pri = draw(
        st.lists(
            st.integers(min_value=0, max_value=levels - 1),
            min_size=k,
            max_size=k,
        )
    )
    pointer = draw(st.integers(min_value=0, max_value=k))
    return k, levels, req, pri, thermometer(pointer, k)


class TestPriorityArbiter:
    @given(arb_case())
    def test_bit_model_matches_behavioral(self, case):
        k, levels, req, pri, rr = case
        bits = priority_arb_bits(req, pri, rr, k, levels)
        assert grant_index(bits) == behavioral_grant(req, pri, rr, k, levels)

    @given(arb_case())
    def test_grant_subset_of_requests(self, case):
        k, levels, req, pri, rr = case
        grant = priority_arb_bits(req, pri, rr, k, levels)
        assert grant & ~req == 0

    @given(arb_case())
    def test_grant_one_hot_when_requesting(self, case):
        k, levels, req, pri, rr = case
        grant = priority_arb_bits(req, pri, rr, k, levels)
        if req:
            assert grant != 0
            assert grant & (grant - 1) == 0
        else:
            assert grant == 0


@st.composite
def bank_trace(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    patterns = draw(st.integers(min_value=1, max_value=3))
    bits = draw(st.integers(min_value=2, max_value=7))
    weights = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=(1 << bits) - 1),
                min_size=patterns,
                max_size=patterns,
            ),
            min_size=k,
            max_size=k,
        )
    )
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=k - 1),
                st.integers(min_value=0, max_value=patterns - 1),
            ),
            max_size=200,
        )
    )
    return weights, bits, steps


class TestAccumulatorInvariants:
    @given(bank_trace())
    def test_values_always_within_window(self, trace):
        weights, bits, steps = trace
        bank = AccumulatorBank(weights, bits)
        for granted, pattern in steps:
            bank.update(granted, pattern)
            bank.check_invariant()

    @given(bank_trace())
    def test_priority_bit_is_msb(self, trace):
        weights, bits, steps = trace
        bank = AccumulatorBank(weights, bits)
        for granted, pattern in steps:
            bank.update(granted, pattern)
            for i, value in enumerate(bank.accumulators):
                assert bank.priority(i) == (value < (1 << bits))


@st.composite
def iw_trace(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    patterns = draw(st.integers(min_value=1, max_value=2))
    weights = draw(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=31),
                min_size=patterns,
                max_size=patterns,
            ),
            min_size=k,
            max_size=k,
        )
    )
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << k) - 1),
                st.integers(min_value=0, max_value=patterns - 1),
            ),
            max_size=150,
        )
    )
    return k, weights, steps


class TestInverseWeightedEquivalence:
    @given(iw_trace())
    def test_fast_equals_bit_exact(self, trace):
        k, weights, steps = trace
        fast = InverseWeightedArbiter(weights, weight_bits=5, bit_exact=False)
        slow = InverseWeightedArbiter(weights, weight_bits=5, bit_exact=True)
        for req_mask, pattern in steps:
            requests = [
                SimpleRequest(pattern=pattern) if (req_mask >> i) & 1 else None
                for i in range(k)
            ]
            assert fast.arbitrate(list(requests)) == slow.arbitrate(list(requests))
            assert fast.accumulators == slow.accumulators

    @given(iw_trace())
    def test_grants_only_requesters(self, trace):
        k, weights, steps = trace
        arbiter = InverseWeightedArbiter(weights, weight_bits=5)
        for req_mask, pattern in steps:
            requests = [
                SimpleRequest(pattern=pattern) if (req_mask >> i) & 1 else None
                for i in range(k)
            ]
            granted = arbiter.arbitrate(requests)
            if req_mask:
                assert granted is not None
                assert (req_mask >> granted) & 1
            else:
                assert granted is None
