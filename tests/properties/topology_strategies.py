"""Shared Hypothesis strategies parameterized over every Topology.

One strategy module feeds the whole conformance layer: a registered
topology is sampled together with a representative shape set, a cached
machine/route-computer pair, and random endpoint pairs on it. Adding a
topology to :data:`repro.core.topology.TOPOLOGIES` without adding its
shapes to :data:`SUITE_SHAPES` fails the coverage pin in
``test_topology_properties.py`` -- future topologies inherit the suite
for free, and cannot silently opt out of it.
"""

from hypothesis import strategies as st

from repro.core.geometry import all_coords
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.core.topology import TOPOLOGY_NAMES

#: Shapes the property suite samples per registered topology. Every
#: name in :data:`TOPOLOGY_NAMES` must appear here (pinned by
#: ``test_every_registered_topology_is_in_the_suite``). Shapes mix odd
#: and even radices so both the unique-minimal and the half-way-tie
#: delta branches are exercised where the topology has them.
SUITE_SHAPES = {
    "torus": ((2, 2, 2), (3, 2, 2), (4, 2, 1)),
    "mesh": ((3, 3), (4, 2), (2, 2)),
    "chiplet": ((2, 2), (3, 2)),
}

#: Every (topology name, shape) pair the suite covers, in registry order.
TOPOLOGY_CASES = tuple(
    (name, shape)
    for name in TOPOLOGY_NAMES
    for shape in SUITE_SHAPES.get(name, ())
)

_CACHE = {}


def machine_for(topology, shape, scheme="anton"):
    """A cached (machine, route computer) pair for one suite case."""
    key = (topology, shape, scheme)
    if key not in _CACHE:
        machine = Machine(
            MachineConfig(
                shape=shape,
                endpoints_per_chip=2,
                vc_scheme=scheme,
                topology=topology,
            )
        )
        _CACHE[key] = (machine, RouteComputer(machine))
    return _CACHE[key]


topology_cases = st.sampled_from(TOPOLOGY_CASES)


@st.composite
def endpoint_pair(draw, schemes=("anton",)):
    """A random (src, dst) endpoint pair on a random suite topology.

    Returns ``(name, shape, scheme, src_chip, dst_chip, src_ep, dst_ep,
    seed)``; src and dst chips may coincide (endpoints still differ), so
    pure on-chip routes are covered too.
    """
    name, shape = draw(topology_cases)
    scheme = draw(st.sampled_from(schemes))
    machine, _ = machine_for(name, shape, scheme)
    chips = sorted(all_coords(machine.config.shape))
    src_chip = draw(st.sampled_from(chips))
    dst_chip = draw(st.sampled_from(chips))
    src_ep = draw(st.integers(min_value=0, max_value=1))
    dst_ep = draw(st.integers(min_value=0, max_value=1))
    if src_chip == dst_chip and src_ep == dst_ep:
        dst_ep = 1 - dst_ep
    seed = draw(st.integers(min_value=0, max_value=9999))
    return name, shape, scheme, src_chip, dst_chip, src_ep, dst_ep, seed
