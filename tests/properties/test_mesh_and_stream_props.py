"""Property-based tests for mesh routing and energy flit streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import MESH_DIRECTIONS
from repro.core.onchip import mesh_route, mesh_route_coords
from repro.models.energy import make_stream, max_activation_rate, stream_statistics

mesh_coord = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
)
orders = st.permutations(MESH_DIRECTIONS)


class TestMeshRouting:
    @given(mesh_coord, mesh_coord, orders)
    def test_minimal(self, src, dst, order):
        route = mesh_route(src, dst, tuple(order))
        assert len(route) == abs(dst[0] - src[0]) + abs(dst[1] - src[1])

    @given(mesh_coord, mesh_coord, orders)
    def test_reaches_destination(self, src, dst, order):
        coords = mesh_route_coords(src, dst, tuple(order))
        end = coords[-1] if coords else src
        assert end == dst

    @given(mesh_coord, mesh_coord, orders)
    def test_direction_sequence_monotone(self, src, dst, order):
        order = tuple(order)
        route = mesh_route(src, dst, order)
        indices = [order.index(step) for step in route]
        assert indices == sorted(indices)

    @given(mesh_coord, mesh_coord, orders)
    def test_stays_on_mesh(self, src, dst, order):
        for u, v in mesh_route_coords(src, dst, tuple(order)):
            assert 0 <= u <= 3 and 0 <= v <= 3


class TestEnergyStreams:
    @given(
        st.sampled_from(["zeros", "ones", "random"]),
        st.floats(min_value=0.02, max_value=1.0),
        st.integers(min_value=0, max_value=100),
    )
    def test_measured_rate_close_to_requested(self, pattern, rate, seed):
        stream = make_stream(pattern, rate, 4000, seed=seed)
        stats = stream_statistics(stream)
        assert abs(stats.injection_rate - rate) < 0.02

    @given(
        st.floats(min_value=0.02, max_value=0.99),
        st.integers(min_value=0, max_value=50),
    )
    def test_activation_maximal_by_default(self, rate, seed):
        stream = make_stream("ones", rate, 4000, seed=seed)
        stats = stream_statistics(stream)
        expected = max_activation_rate(stats.injection_rate)
        assert stats.activation_rate <= expected + 0.01
        assert stats.activation_rate >= expected - 0.05

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_stream_length_exact(self, rate):
        stream = make_stream("zeros", rate, 1234)
        assert len(stream) == 1234
