"""Property tests for the deterministic streaming quantile estimator."""

import json
import math

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import StreamingQuantile

samples_st = st.lists(
    st.integers(min_value=0, max_value=100_000), min_size=1, max_size=300
)
quantile_st = st.floats(
    min_value=0.01, max_value=1.0, allow_nan=False, allow_infinity=False
)


def nearest_rank(samples, q):
    ordered = sorted(samples)
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


@given(samples=st.lists(st.integers(min_value=0, max_value=500),
                        min_size=1, max_size=300),
       q=quantile_st)
def test_exact_while_uncompacted(samples, q):
    """With values spanning fewer than max_bins distinct integers the bin
    width stays 1 and the estimator IS the nearest-rank order statistic."""
    est = StreamingQuantile()
    est.add_many(samples)
    assert est.width == 1
    assert est.quantile(q) == nearest_rank(samples, q)


@given(samples=samples_st, qs=st.tuples(quantile_st, quantile_st))
def test_monotone_in_rank(samples, qs):
    est = StreamingQuantile(max_bins=32)
    est.add_many(samples)
    lo, hi = sorted(qs)
    assert est.quantile(lo) <= est.quantile(hi)


@given(samples=samples_st, q=quantile_st)
def test_estimate_bounded_by_true_value(samples, q):
    """Even after compaction the estimate (a bin's lower edge) never
    exceeds the true order statistic, and lands within one bin width."""
    est = StreamingQuantile(max_bins=16)
    est.add_many(samples)
    exact = nearest_rank(samples, q)
    approx = est.quantile(q)
    assert approx <= exact < approx + est.width


@given(samples=samples_st,
       split=st.integers(min_value=0, max_value=300),
       data=st.data())
def test_deterministic_across_chunk_splits(samples, split, data):
    """Feeding the same multiset in any chunking or order yields an
    identical final state -- the determinism the golden traces rely on."""
    split = min(split, len(samples))
    chunked = StreamingQuantile(max_bins=16)
    chunked.add_many(samples[:split])
    chunked.add_many(samples[split:])

    shuffled = data.draw(st.permutations(samples))
    reordered = StreamingQuantile(max_bins=16)
    for value in shuffled:
        reordered.add(value)

    assert chunked == reordered
    assert chunked.quantiles() == reordered.quantiles()


@given(samples=samples_st, split=st.integers(min_value=0, max_value=300))
def test_merge_equals_single_stream(samples, split):
    split = min(split, len(samples))
    left, right = StreamingQuantile(max_bins=16), StreamingQuantile(max_bins=16)
    left.add_many(samples[:split])
    right.add_many(samples[split:])
    left.merge(right)

    single = StreamingQuantile(max_bins=16)
    single.add_many(samples)
    assert left == single


@given(samples=samples_st)
def test_count_and_extremes_preserved(samples):
    est = StreamingQuantile(max_bins=16)
    est.add_many(samples)
    assert est.count == len(samples)
    # p~0 and p=1.0 bracket the data to within one bin width.
    assert est.quantile(1.0) <= max(samples) < est.quantile(1.0) + est.width
    low = est.quantile(1.0 / len(samples))
    assert low <= min(samples) < low + est.width


@given(samples=samples_st)
def test_state_round_trip_property(samples):
    est = StreamingQuantile(max_bins=16)
    est.add_many(samples)
    via_json = StreamingQuantile.from_state(
        json.loads(json.dumps(est.state()))
    )
    assert via_json == est
