"""Property-based tests for torus coordinate arithmetic."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import (
    crosses_dateline,
    dateline_hop_index,
    minimal_deltas,
    ring_path,
    torus_delta,
)

radix = st.integers(min_value=1, max_value=16)


@st.composite
def ring_pair(draw):
    k = draw(radix)
    src = draw(st.integers(min_value=0, max_value=k - 1))
    dst = draw(st.integers(min_value=0, max_value=k - 1))
    return src, dst, k


class TestTorusDelta:
    @given(ring_pair())
    def test_reaches_destination(self, pair):
        src, dst, k = pair
        delta = torus_delta(src, dst, k)
        assert (src + delta) % k == dst

    @given(ring_pair())
    def test_is_minimal(self, pair):
        src, dst, k = pair
        delta = torus_delta(src, dst, k)
        distance = min((dst - src) % k, (src - dst) % k)
        assert abs(delta) == distance

    @given(ring_pair())
    def test_in_minimal_set(self, pair):
        src, dst, k = pair
        assert torus_delta(src, dst, k) in minimal_deltas(src, dst, k)


class TestMinimalDeltas:
    @given(ring_pair())
    def test_all_reach_and_are_minimal(self, pair):
        src, dst, k = pair
        options = minimal_deltas(src, dst, k)
        distance = min((dst - src) % k, (src - dst) % k)
        for delta in options:
            assert (src + delta) % k == dst
            assert abs(delta) == distance

    @given(ring_pair())
    def test_tie_only_at_half_of_even(self, pair):
        src, dst, k = pair
        options = minimal_deltas(src, dst, k)
        if len(options) == 2:
            assert k % 2 == 0
            assert (dst - src) % k == k // 2


class TestRingPath:
    @given(ring_pair())
    def test_path_length_and_endpoint(self, pair):
        src, dst, k = pair
        for delta in minimal_deltas(src, dst, k):
            path = list(ring_path(src, delta, k))
            assert len(path) == abs(delta)
            if path:
                assert path[-1] == dst


class TestDateline:
    @given(ring_pair())
    def test_crossing_iff_hop_index_found(self, pair):
        src, dst, k = pair
        for delta in minimal_deltas(src, dst, k):
            crossed = crosses_dateline(src, delta, k)
            index = dateline_hop_index(src, delta, k)
            assert crossed == (index >= 0)
            if crossed:
                assert 0 <= index < abs(delta)

    @given(ring_pair())
    def test_minimal_route_crosses_at_most_once(self, pair):
        src, dst, k = pair
        for delta in minimal_deltas(src, dst, k):
            crossings = 0
            cur = src
            step = 1 if delta >= 0 else -1
            for _ in range(abs(delta)):
                nxt = (cur + step) % k
                if (cur == k - 1 and nxt == 0) or (cur == 0 and nxt == k - 1):
                    crossings += 1
                cur = nxt
            assert crossings <= 1

    @given(ring_pair())
    def test_opposite_directions_cross_consistently(self, pair):
        src, dst, k = pair
        # A + crossing from src to dst implies a - crossing from dst to
        # src (the dateline sits between the same two nodes both ways).
        options = minimal_deltas(src, dst, k)
        for delta in options:
            if crosses_dateline(src, delta, k):
                assert crosses_dateline(dst, -delta, k)
