"""Property-based tests for the simulation engine.

Random small workloads over random machines: every packet is delivered,
all credits return, buffers drain, and accounting balances.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.engine import Engine
from repro.sim.packet import Packet

_CACHE = {}


def setup_for(shape, scheme):
    key = (shape, scheme)
    if key not in _CACHE:
        machine = Machine(
            MachineConfig(
                shape=shape,
                endpoints_per_chip=2,
                vc_scheme=scheme,
                torus_latency=3,
                torus_buffer_flits=8,
            )
        )
        _CACHE[key] = (machine, RouteComputer(machine))
    return _CACHE[key]


@st.composite
def workload(draw):
    shape = draw(st.sampled_from([(2, 2, 2), (3, 2, 2), (4, 2, 1)]))
    scheme = draw(st.sampled_from(["anton", "baseline"]))
    seed = draw(st.integers(min_value=0, max_value=9999))
    count = draw(st.integers(min_value=1, max_value=60))
    size = draw(st.sampled_from([1, 2]))
    return shape, scheme, seed, count, size


class TestEngineConservation:
    @given(workload())
    @settings(max_examples=25)
    def test_everything_delivered_and_drained(self, case):
        shape, scheme, seed, count, size = case
        machine, routes = setup_for(shape, scheme)
        rng = random.Random(seed)
        from repro.core.geometry import all_coords

        chips = list(all_coords(shape))
        engine = Engine(machine)
        release = 0
        per_source_release = {}
        for pid in range(count):
            src_chip = rng.choice(chips)
            dst_chip = rng.choice(chips)
            src = machine.ep_id[(src_chip, rng.randrange(2))]
            dst = machine.ep_id[(dst_chip, rng.randrange(2))]
            if src == dst:
                continue
            choice = routes.random_choice(rng, src_chip, dst_chip)
            route = routes.compute(src, dst, choice)
            release = per_source_release.get(src, 0) + rng.randrange(3)
            per_source_release[src] = release
            engine.enqueue(
                Packet(pid, route, size_flits=size, release_cycle=release)
            )
        stats = engine.run()
        assert stats.delivered == stats.injected
        assert engine.buffered_packets() == 0
        for channel in machine.channels:
            for vc in range(machine.vcs_for_channel(channel)):
                assert engine.credits_outstanding(channel.cid, vc) == 0

    @given(workload())
    @settings(max_examples=15)
    def test_flit_accounting_balances(self, case):
        shape, scheme, seed, count, size = case
        machine, routes = setup_for(shape, scheme)
        rng = random.Random(seed)
        from repro.core.geometry import all_coords

        chips = list(all_coords(shape))
        engine = Engine(machine)
        expected_flits = 0
        for pid in range(count):
            src_chip = rng.choice(chips)
            dst_chip = rng.choice(chips)
            src = machine.ep_id[(src_chip, 0)]
            dst = machine.ep_id[(dst_chip, 1)]
            if src == dst:
                continue
            choice = routes.random_choice(rng, src_chip, dst_chip)
            route = routes.compute(src, dst, choice)
            engine.enqueue(Packet(pid, route, size_flits=size))
            expected_flits += size * len(route.hops)
        stats = engine.run()
        assert sum(stats.channel_flits.values()) == expected_flits
