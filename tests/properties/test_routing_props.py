"""Property-based tests for route construction."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import all_coords, torus_hops
from repro.core.machine import ChannelGroup, Machine, MachineConfig
from repro.core.routing import ALL_DIM_ORDERS, RouteChoice, RouteComputer, validate_route

_MACHINES = {}


def machine_for(shape, scheme="anton"):
    key = (shape, scheme)
    if key not in _MACHINES:
        _MACHINES[key] = Machine(
            MachineConfig(shape=shape, endpoints_per_chip=2, vc_scheme=scheme)
        )
    return _MACHINES[key]


_ROUTERS = {}


def routes_for(shape, scheme="anton"):
    key = (shape, scheme)
    if key not in _ROUTERS:
        _ROUTERS[key] = RouteComputer(machine_for(shape, scheme))
    return _ROUTERS[key]


shapes = st.sampled_from([(2, 2, 2), (3, 3, 3), (4, 2, 3), (5, 2, 2), (4, 4, 1)])


@st.composite
def route_case(draw):
    shape = draw(shapes)
    coords = list(all_coords(shape))
    src_chip = draw(st.sampled_from(coords))
    dst_chip = draw(st.sampled_from(coords))
    src_ep = draw(st.integers(min_value=0, max_value=1))
    dst_ep = draw(st.integers(min_value=0, max_value=1))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    scheme = draw(st.sampled_from(["anton", "baseline"]))
    return shape, src_chip, dst_chip, src_ep, dst_ep, seed, scheme


class TestRouteProperties:
    @given(route_case())
    def test_random_routes_are_valid(self, case):
        shape, src_chip, dst_chip, src_ep, dst_ep, seed, scheme = case
        machine = machine_for(shape, scheme)
        routes = routes_for(shape, scheme)
        src = machine.ep_id[(src_chip, src_ep)]
        dst = machine.ep_id[(dst_chip, dst_ep)]
        if src == dst:
            return
        rng = random.Random(seed)
        choice = routes.random_choice(rng, src_chip, dst_chip)
        route = routes.compute(src, dst, choice)
        validate_route(machine, route)

    @given(route_case())
    def test_internode_hops_minimal(self, case):
        shape, src_chip, dst_chip, src_ep, dst_ep, seed, scheme = case
        machine = machine_for(shape, scheme)
        routes = routes_for(shape, scheme)
        src = machine.ep_id[(src_chip, src_ep)]
        dst = machine.ep_id[(dst_chip, dst_ep)]
        if src == dst:
            return
        rng = random.Random(seed)
        choice = routes.random_choice(rng, src_chip, dst_chip)
        route = routes.compute(src, dst, choice)
        assert route.internode_hops == torus_hops(src_chip, dst_chip, shape)

    @given(route_case())
    def test_vc_bounds_per_scheme(self, case):
        shape, src_chip, dst_chip, src_ep, dst_ep, seed, scheme = case
        machine = machine_for(shape, scheme)
        routes = routes_for(shape, scheme)
        src = machine.ep_id[(src_chip, src_ep)]
        dst = machine.ep_id[(dst_chip, dst_ep)]
        if src == dst:
            return
        rng = random.Random(seed)
        choice = routes.random_choice(rng, src_chip, dst_chip)
        route = routes.compute(src, dst, choice)
        t_limit = 4 if scheme == "anton" else 6
        for channel_id, vc in route.hops:
            group = machine.channels[channel_id].group
            if group == ChannelGroup.T:
                assert vc < t_limit
            elif group == ChannelGroup.M:
                assert vc < 4

    @given(route_case())
    def test_deterministic_for_fixed_choice(self, case):
        shape, src_chip, dst_chip, src_ep, dst_ep, seed, scheme = case
        machine = machine_for(shape, scheme)
        routes = routes_for(shape, scheme)
        src = machine.ep_id[(src_chip, src_ep)]
        dst = machine.ep_id[(dst_chip, dst_ep)]
        if src == dst:
            return
        for dim_order in ALL_DIM_ORDERS[:2]:
            choice = RouteChoice(dim_order=dim_order)
            assert routes.compute(src, dst, choice).hops == routes.compute(
                src, dst, choice
            ).hops

    @given(route_case())
    def test_all_choices_give_valid_routes(self, case):
        shape, src_chip, dst_chip, src_ep, dst_ep, _seed, scheme = case
        machine = machine_for(shape, scheme)
        routes = routes_for(shape, scheme)
        src = machine.ep_id[(src_chip, src_ep)]
        dst = machine.ep_id[(dst_chip, dst_ep)]
        if src == dst:
            return
        total = 0.0
        for choice, prob in routes.all_choices(src_chip, dst_chip):
            validate_route(machine, routes.compute(src, dst, choice))
            total += prob
        assert abs(total - 1.0) < 1e-9
