"""Tests for table-based multicast (Section 2.3, Figure 3)."""

import pytest

from repro.core.geometry import Dim
from repro.core.multicast import (
    build_tree,
    channel_loads,
    directional_loads,
    edge_direction,
    endpoint_fanout_savings,
    figure3_example,
    max_channel_load,
    max_directional_load,
    multicast_savings,
    unicast_hops,
    verify_unicast_paths,
)


SHAPE = (8, 8, 8)


class TestTreeConstruction:
    def test_single_destination_is_unicast(self):
        tree = build_tree(SHAPE, (0, 0, 0), [(2, 0, 0)])
        assert tree.torus_hops == 2
        assert multicast_savings(tree, SHAPE) == 0

    def test_shared_prefix_saves_hops(self):
        # Two destinations sharing an X prefix: the prefix is paid once.
        tree = build_tree(SHAPE, (0, 0, 0), [(2, 1, 0), (2, 7, 0)])
        assert unicast_hops(SHAPE, (0, 0, 0), tree.destinations) == 6
        assert tree.torus_hops == 4
        assert multicast_savings(tree, SHAPE) == 2

    def test_wraparound_edges(self):
        tree = build_tree(SHAPE, (7, 0, 0), [(1, 0, 0)])
        assert ((7, 0, 0), (0, 0, 0)) in tree.edges

    def test_empty_destinations_rejected(self):
        with pytest.raises(ValueError):
            build_tree(SHAPE, (0, 0, 0), [])

    def test_bad_dim_order_rejected(self):
        with pytest.raises(ValueError):
            build_tree(SHAPE, (0, 0, 0), [(1, 0, 0)], (Dim.X, Dim.X, Dim.Y))

    def test_different_orders_different_trees(self):
        dests = [(1, 1, 0), (2, 2, 0)]
        xy = build_tree(SHAPE, (0, 0, 0), dests, (Dim.X, Dim.Y, Dim.Z))
        yx = build_tree(SHAPE, (0, 0, 0), dests, (Dim.Y, Dim.X, Dim.Z))
        assert xy.edges != yx.edges


class TestUnicastPathValidity:
    def test_all_paths_minimal_and_in_tree(self):
        dests = [(1, 1, 0), (2, 2, 0), (7, 1, 1), (0, 2, 7)]
        for order in ((Dim.X, Dim.Y, Dim.Z), (Dim.Z, Dim.Y, Dim.X)):
            tree = build_tree(SHAPE, (0, 0, 0), dests, order)
            verify_unicast_paths(tree, SHAPE)

    def test_path_to_non_destination_rejected(self):
        tree = build_tree(SHAPE, (0, 0, 0), [(1, 0, 0)])
        with pytest.raises(ValueError):
            tree.path_to((5, 5, 5), SHAPE)


class TestFigure3:
    def test_savings_substantial(self):
        shape = (8, 8, 1)
        tree_xy, tree_yx, dests = figure3_example(shape)
        assert multicast_savings(tree_xy, shape) == 14
        assert multicast_savings(tree_yx, shape) == 14

    def test_trees_are_valid_unicast_bundles(self):
        shape = (8, 8, 1)
        tree_xy, tree_yx, _dests = figure3_example(shape)
        verify_unicast_paths(tree_xy, shape)
        verify_unicast_paths(tree_yx, shape)

    def test_alternation_balances_directional_load(self):
        shape = (8, 8, 1)
        tree_xy, tree_yx, _dests = figure3_example(shape)
        single = max_directional_load(
            directional_loads([tree_xy], [1.0], shape)
        )
        alternating = max_directional_load(
            directional_loads([tree_xy, tree_yx], [0.5, 0.5], shape)
        )
        assert alternating < single

    def test_endpoint_fanout_multiplies_savings(self):
        shape = (8, 8, 1)
        tree_xy, _t, _d = figure3_example(shape)
        one = endpoint_fanout_savings(tree_xy, shape, 1)
        three = endpoint_fanout_savings(tree_xy, shape, 3)
        assert one == multicast_savings(tree_xy, shape)
        assert three > 2 * one

    def test_fanout_validation(self):
        shape = (8, 8, 1)
        tree_xy, _t, _d = figure3_example(shape)
        with pytest.raises(ValueError):
            endpoint_fanout_savings(tree_xy, shape, 0)


class TestLoads:
    def test_channel_loads_weights_must_align(self):
        tree = build_tree(SHAPE, (0, 0, 0), [(1, 0, 0)])
        with pytest.raises(ValueError):
            channel_loads([tree], [0.5, 0.5], SHAPE)

    def test_channel_loads_weights_sum(self):
        tree = build_tree(SHAPE, (0, 0, 0), [(1, 0, 0)])
        with pytest.raises(ValueError):
            channel_loads([tree], [0.5], SHAPE)

    def test_single_tree_unit_loads(self):
        tree = build_tree(SHAPE, (0, 0, 0), [(2, 0, 0), (0, 2, 0)])
        loads = channel_loads([tree], [1.0], SHAPE)
        assert max_channel_load(loads) == 1.0
        assert len(loads) == tree.torus_hops

    def test_edge_direction(self):
        from repro.core.geometry import XP, YM

        assert edge_direction(((0, 0, 0), (1, 0, 0)), SHAPE) == XP
        assert edge_direction(((0, 0, 0), (0, 7, 0)), SHAPE) == YM

    def test_edge_direction_rejects_self(self):
        with pytest.raises(ValueError):
            edge_direction(((0, 0, 0), (0, 0, 0)), SHAPE)
