"""Tests for whole-machine elaboration."""

import pytest

from repro.core import params
from repro.core.geometry import Dim, TorusDirection, XP, XM, YP
from repro.core.machine import (
    Channel,
    ChannelGroup,
    ChannelKind,
    ComponentKind,
    Machine,
    MachineConfig,
    group_of,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        config = MachineConfig()
        assert config.shape == (4, 4, 4)

    def test_bad_scheme(self):
        with pytest.raises(ValueError):
            MachineConfig(vc_scheme="wormhole")

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            MachineConfig(shape=(17, 4, 4))

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            MachineConfig(mesh_latency=0)

    def test_bad_classes(self):
        with pytest.raises(ValueError):
            MachineConfig(num_classes=3)

    def test_bad_cycles_per_flit(self):
        with pytest.raises(ValueError):
            MachineConfig(torus_cycles_per_flit=0.0)

    def test_vc_counts_by_scheme(self):
        anton = MachineConfig(vc_scheme="anton")
        baseline = MachineConfig(vc_scheme="baseline")
        assert anton.vcs_per_class_t == 4
        assert anton.vcs_per_class_m == 4
        assert baseline.vcs_per_class_t == 6
        assert baseline.vcs_per_class_m == 4

    def test_num_chips(self):
        assert MachineConfig(shape=(2, 3, 4)).num_chips == 24


class TestComponentCounts:
    def test_component_totals(self, tiny_machine):
        per_chip = 16 + 12 + 2  # routers + channel adapters + endpoints
        assert len(tiny_machine.components) == 8 * per_chip

    def test_kind_counts(self, tiny_machine):
        routers = sum(1 for _ in tiny_machine.routers())
        adapters = sum(1 for _ in tiny_machine.channel_adapters())
        endpoints = sum(1 for _ in tiny_machine.endpoints())
        assert routers == 8 * 16
        assert adapters == 8 * 12
        assert endpoints == 8 * 2

    def test_lookup_tables_cover_components(self, tiny_machine):
        assert len(tiny_machine.router_id) == 8 * 16
        assert len(tiny_machine.ca_id) == 8 * 12
        assert len(tiny_machine.ep_id) == 8 * 2


class TestChannels:
    def test_channel_between_unique(self, tiny_machine):
        assert len(tiny_machine.channel_between) == len(tiny_machine.channels)

    def test_per_chip_channel_census(self, tiny_machine):
        from collections import Counter

        census = Counter(c.kind for c in tiny_machine.channels)
        chips = 8
        assert census[ChannelKind.MESH] == chips * 48
        assert census[ChannelKind.SKIP] == chips * 4
        assert census[ChannelKind.ROUTER_TO_CA] == chips * 12
        assert census[ChannelKind.CA_TO_ROUTER] == chips * 12
        assert census[ChannelKind.ROUTER_TO_EP] == chips * 2
        assert census[ChannelKind.EP_TO_ROUTER] == chips * 2
        assert census[ChannelKind.TORUS] == chips * 12

    def test_torus_channel_endpoints(self, tiny_machine):
        chip = (0, 0, 0)
        src = tiny_machine.ca_id[(chip, XP, 0)]
        dst = tiny_machine.ca_id[((1, 0, 0), XM, 0)]
        channel = tiny_machine.channel(src, dst)
        assert channel.kind == ChannelKind.TORUS

    def test_torus_bandwidth_derating(self, tiny_machine):
        for channel in tiny_machine.channels:
            if channel.kind == ChannelKind.TORUS:
                assert channel.cycles_per_flit == pytest.approx(288.0 / 89.6)
            else:
                assert channel.cycles_per_flit == 1.0

    def test_radix_one_dimension_has_no_channels(self):
        machine = Machine(MachineConfig(shape=(4, 1, 1), endpoints_per_chip=1))
        for channel in machine.channels:
            if channel.kind != ChannelKind.TORUS:
                continue
            direction, _slice = machine.components[channel.src].detail
            assert direction.dim == Dim.X

    def test_radix_two_has_both_direction_links(self):
        machine = Machine(MachineConfig(shape=(2, 1, 1), endpoints_per_chip=1))
        torus = [c for c in machine.channels if c.kind == ChannelKind.TORUS]
        # 2 chips x 1 dim x 2 directions x 2 slices = 8 directed channels.
        assert len(torus) == 8


class TestGroups:
    def test_group_mapping(self):
        assert group_of(ChannelKind.MESH) == ChannelGroup.M
        assert group_of(ChannelKind.SKIP) == ChannelGroup.T
        assert group_of(ChannelKind.TORUS) == ChannelGroup.T
        assert group_of(ChannelKind.ROUTER_TO_CA) == ChannelGroup.T
        assert group_of(ChannelKind.CA_TO_ROUTER) == ChannelGroup.T
        assert group_of(ChannelKind.ROUTER_TO_EP) == ChannelGroup.E
        assert group_of(ChannelKind.EP_TO_ROUTER) == ChannelGroup.E

    def test_vcs_for_channel_by_group(self, tiny_machine):
        for channel in tiny_machine.channels:
            vcs = tiny_machine.vcs_for_channel(channel)
            if channel.group == ChannelGroup.E:
                assert vcs == 1
            else:
                assert vcs == 4

    def test_baseline_t_group_vcs(self):
        machine = Machine(
            MachineConfig(shape=(2, 2, 2), endpoints_per_chip=1, vc_scheme="baseline")
        )
        for channel in machine.channels:
            vcs = machine.vcs_for_channel(channel)
            if channel.group == ChannelGroup.T:
                assert vcs == 6
            elif channel.group == ChannelGroup.M:
                assert vcs == 4


class TestInputIndexing:
    def test_input_index_consistent(self, tiny_machine):
        for channel in tiny_machine.channels:
            index = tiny_machine.input_index[channel.cid]
            assert tiny_machine.component_inputs[channel.dst][index] == channel.cid

    def test_outputs_reference_sources(self, tiny_machine):
        for comp_id, outputs in enumerate(tiny_machine.component_outputs):
            for channel_id in outputs:
                assert tiny_machine.channels[channel_id].src == comp_id

    def test_router_input_counts(self, tiny_machine):
        # A corner router with a skip channel and an adapter: 2 mesh + 1
        # skip + 1 CA = 4 inputs (endpoints may add more).
        router = tiny_machine.router_id[((0, 0, 0), (0, 0))]
        inputs = tiny_machine.component_inputs[router]
        assert len(inputs) >= 4

    def test_input_order_translation_invariant(self, tiny_machine):
        """Every chip's components see their input channels in the same
        relative (kind) order -- the property the symmetric load
        computation relies on."""
        def signature(chip):
            router = tiny_machine.router_id[(chip, (0, 0))]
            return [
                tiny_machine.channels[c].kind
                for c in tiny_machine.component_inputs[router]
            ]

        base = signature((0, 0, 0))
        for chip in ((1, 0, 0), (0, 1, 0), (1, 1, 1)):
            assert signature(chip) == base


class TestNeighbor:
    def test_wraps(self, tiny_machine):
        assert tiny_machine.neighbor((1, 0, 0), XP) == (0, 0, 0)
        assert tiny_machine.neighbor((0, 0, 0), XM) == (1, 0, 0)

    def test_y_direction(self, tiny_machine):
        assert tiny_machine.neighbor((0, 0, 0), YP) == (0, 1, 0)


class TestDescribe:
    def test_describe_mentions_shape(self, tiny_machine):
        text = tiny_machine.describe()
        assert "2x2x2" in text
        assert "8 chips" in text

    def test_floorplan_mismatch_rejected(self):
        from repro.core.chip import default_floorplan

        with pytest.raises(ValueError):
            Machine(
                MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2),
                floorplan=default_floorplan(num_endpoints=4),
            )

    def test_buffer_depth_for_channel(self, tiny_machine):
        config = tiny_machine.config
        for channel in tiny_machine.channels:
            depth = tiny_machine.buffer_depth_for_channel(channel)
            if channel.kind == ChannelKind.TORUS:
                assert depth == config.torus_buffer_flits
            else:
                assert depth == config.onchip_buffer_flits
