"""Tests for the published constants of Section 2.2 / Section 4."""

import pytest

from repro.core import params


class TestTorusChannels:
    def test_raw_channel_bandwidth(self):
        # 8 SerDes x 14 Gb/s = 112 Gb/s per direction.
        assert params.TORUS_CHANNEL_RAW_GBPS == pytest.approx(112.0)

    def test_effective_below_raw(self):
        assert params.TORUS_CHANNEL_EFFECTIVE_GBPS < params.TORUS_CHANNEL_RAW_GBPS

    def test_channels_per_asic(self):
        # Two slices to each of six neighbors.
        assert params.TORUS_CHANNELS_PER_ASIC == 12

    def test_effective_io_per_asic(self):
        # Paper: 2.15 Tb/s of effective I/O bandwidth per ASIC.
        assert params.ASIC_EFFECTIVE_IO_TBPS == pytest.approx(2.15, abs=0.01)


class TestMesh:
    def test_mesh_channel_bandwidth(self):
        # 192 bits x 1.5 GHz = 288 Gb/s.
        assert params.MESH_CHANNEL_GBPS == pytest.approx(288.0)

    def test_cycle_time(self):
        assert params.CYCLE_NS == pytest.approx(1.0 / 1.5)

    def test_mesh_radix(self):
        assert params.MESH_RADIX == 4


class TestPackets:
    def test_typical_packet_fits_one_flit(self):
        # The common-case 24-byte packet crosses a mesh channel per cycle.
        assert params.TYPICAL_PACKET_BYTES == params.FLIT_BYTES == 24

    def test_max_packet_two_flits(self):
        assert params.MAX_PACKET_BYTES == 48
        assert params.MAX_PACKET_FLITS == 2


class TestVcCounts:
    def test_total_vcs(self):
        # Eight VCs in routers/channel adapters: 2 classes x 4.
        assert params.TOTAL_VCS_ANTON == 8

    def test_baseline_needs_more_t_vcs(self):
        assert params.VCS_PER_CLASS_BASELINE_T == 6
        assert params.VCS_PER_CLASS_ANTON == 4


class TestComponentCounts:
    def test_table1_counts(self):
        assert params.ROUTERS_PER_ASIC == 16
        assert params.ENDPOINTS_PER_ASIC == 23
        assert params.CHANNEL_ADAPTERS_PER_ASIC == 12


class TestBandwidthBudget:
    def test_mesh_absorbs_two_torus_channels(self):
        # The Section 2.4 conclusion: a mesh channel carries twice the
        # effective torus bandwidth with room to spare.
        budget = params.BandwidthBudget()
        assert budget.torus_channels_per_mesh_channel > 2.0
        assert budget.headroom_after_two_torus_channels_gbps > 100.0

    def test_headroom_formula(self):
        budget = params.BandwidthBudget()
        assert budget.headroom_after_two_torus_channels_gbps == pytest.approx(
            288.0 - 2 * 89.6
        )
