"""Tests for direction-order on-chip routing."""

import itertools

import pytest

from repro.core.geometry import MESH_DIRECTIONS, MeshDirection
from repro.core.onchip import (
    ANTON_DIRECTION_ORDER,
    all_direction_orders,
    direction_order_name,
    mesh_route,
    mesh_route_coords,
    mesh_route_links,
    turn_pairs,
    validate_direction_order,
)


class TestValidation:
    def test_anton_order_valid(self):
        assert validate_direction_order(ANTON_DIRECTION_ORDER) == (
            MeshDirection.VM,
            MeshDirection.UP,
            MeshDirection.UM,
            MeshDirection.VP,
        )

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            validate_direction_order(
                (MeshDirection.UP, MeshDirection.UP, MeshDirection.VM, MeshDirection.VP)
            )

    def test_short_rejected(self):
        with pytest.raises(ValueError):
            validate_direction_order((MeshDirection.UP, MeshDirection.UM))

    def test_twenty_four_orders(self):
        assert len(list(all_direction_orders())) == 24


class TestMeshRoute:
    def test_same_node_empty(self):
        assert mesh_route((1, 2), (1, 2)) == []

    def test_minimal_length(self):
        for order in all_direction_orders():
            for src in itertools.product(range(4), repeat=2):
                for dst in itertools.product(range(4), repeat=2):
                    route = mesh_route(src, dst, order)
                    manhattan = abs(dst[0] - src[0]) + abs(dst[1] - src[1])
                    assert len(route) == manhattan

    def test_route_reaches_destination(self):
        for order in all_direction_orders():
            coords = mesh_route_coords((0, 0), (3, 2), order)
            assert coords[-1] == (3, 2)

    def test_direction_order_respected(self):
        # Once the route moves past a direction in the order, it never
        # returns to an earlier one.
        for order in all_direction_orders():
            route = mesh_route((3, 3), (0, 0), order)
            positions = [order.index(step) for step in route]
            assert positions == sorted(positions)

    def test_anton_order_example(self):
        # From (0,0) to (3,3) with V-,U+,U-,V+: U+ hops then V+ hops.
        route = mesh_route((0, 0), (3, 3), ANTON_DIRECTION_ORDER)
        assert route == [MeshDirection.UP] * 3 + [MeshDirection.VP] * 3

    def test_anton_order_v_minus_first(self):
        route = mesh_route((0, 3), (3, 0), ANTON_DIRECTION_ORDER)
        assert route == [MeshDirection.VM] * 3 + [MeshDirection.UP] * 3

    def test_links_match_coords(self):
        links = mesh_route_links((0, 0), (2, 1))
        assert links[0][0] == (0, 0)
        assert links[-1][1] == (2, 1)
        for (a, b), (c, _d) in zip(links, links[1:]):
            assert b == c


class TestTurnPairs:
    def test_six_turn_pairs(self):
        assert len(turn_pairs(ANTON_DIRECTION_ORDER)) == 6

    def test_turns_are_forward_only(self):
        order = ANTON_DIRECTION_ORDER
        for earlier, later in turn_pairs(order):
            assert order.index(earlier) < order.index(later)

    def test_turn_relation_acyclic(self):
        # The permitted-turn relation must form a DAG (this is why a
        # single VC suffices inside the mesh).
        import networkx as nx

        for order in all_direction_orders():
            graph = nx.DiGraph(turn_pairs(order))
            assert nx.is_directed_acyclic_graph(graph)


class TestNaming:
    def test_name_roundtrip(self):
        assert direction_order_name(ANTON_DIRECTION_ORDER) == "V-,U+,U-,V+"
