"""Tests for torus/mesh coordinate arithmetic."""

import pytest

from repro.core.geometry import (
    Dim,
    MESH_DIRECTIONS,
    MeshDirection,
    TORUS_DIRECTIONS,
    TorusDirection,
    all_coords,
    crosses_dateline,
    dateline_hop_index,
    minimal_deltas,
    ring_path,
    torus_delta,
    torus_hops,
    validate_shape,
    wrap,
)


class TestTorusDirection:
    def test_six_directions(self):
        assert len(TORUS_DIRECTIONS) == 6
        assert len({str(d) for d in TORUS_DIRECTIONS}) == 6

    def test_opposite(self):
        for direction in TORUS_DIRECTIONS:
            assert direction.opposite.dim == direction.dim
            assert direction.opposite.sign == -direction.sign
            assert direction.opposite.opposite == direction

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            TorusDirection(Dim.X, 2)

    def test_str(self):
        assert str(TorusDirection(Dim.Y, -1)) == "Y-"


class TestMeshDirection:
    def test_four_directions(self):
        assert len(MESH_DIRECTIONS) == 4

    def test_deltas(self):
        assert MeshDirection.UP.delta == (1, 0)
        assert MeshDirection.UM.delta == (-1, 0)
        assert MeshDirection.VP.delta == (0, 1)
        assert MeshDirection.VM.delta == (0, -1)


class TestTorusDelta:
    def test_short_way(self):
        assert torus_delta(0, 1, 8) == 1
        assert torus_delta(0, 7, 8) == -1

    def test_half_way_tie_prefers_positive(self):
        assert torus_delta(0, 4, 8) == 4

    def test_odd_radix_never_ties(self):
        for src in range(5):
            for dst in range(5):
                assert abs(torus_delta(src, dst, 5)) <= 2

    def test_zero(self):
        assert torus_delta(3, 3, 8) == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            torus_delta(8, 0, 8)

    def test_minimality(self):
        for radix in (2, 3, 4, 5, 8):
            for src in range(radix):
                for dst in range(radix):
                    delta = torus_delta(src, dst, radix)
                    assert (src + delta) % radix == dst
                    assert abs(delta) <= radix // 2


class TestMinimalDeltas:
    def test_unique_when_not_half(self):
        assert minimal_deltas(0, 1, 8) == (1,)
        assert minimal_deltas(0, 7, 8) == (-1,)

    def test_two_options_at_half_even(self):
        assert set(minimal_deltas(0, 4, 8)) == {4, -4}

    def test_zero(self):
        assert minimal_deltas(2, 2, 8) == (0,)

    def test_radix_two(self):
        assert set(minimal_deltas(0, 1, 2)) == {1, -1}

    def test_all_minimal(self):
        for radix in (2, 4, 6):
            for src in range(radix):
                for dst in range(radix):
                    for delta in minimal_deltas(src, dst, radix):
                        assert (src + delta) % radix == dst
                        assert abs(delta) <= radix // 2


class TestRingPath:
    def test_positive(self):
        assert list(ring_path(6, 3, 8)) == [7, 0, 1]

    def test_negative(self):
        assert list(ring_path(1, -3, 8)) == [0, 7, 6]

    def test_empty(self):
        assert list(ring_path(5, 0, 8)) == []


class TestDateline:
    def test_positive_crossing(self):
        # Moving + through the 7 -> 0 boundary crosses.
        assert crosses_dateline(6, 3, 8)
        assert not crosses_dateline(0, 3, 8)

    def test_negative_crossing(self):
        # Moving - through the 0 -> 7 boundary crosses.
        assert crosses_dateline(1, -3, 8)
        assert not crosses_dateline(5, -3, 8)

    def test_hop_index(self):
        assert dateline_hop_index(6, 3, 8) == 1
        assert dateline_hop_index(7, 1, 8) == 0
        assert dateline_hop_index(0, 3, 8) == -1

    def test_minimal_route_crosses_at_most_once(self):
        for radix in (2, 3, 4, 8):
            for src in range(radix):
                for dst in range(radix):
                    for delta in minimal_deltas(src, dst, radix):
                        crossings = 0
                        cur = src
                        step = 1 if delta >= 0 else -1
                        for _ in range(abs(delta)):
                            nxt = (cur + step) % radix
                            if {cur, nxt} == {0, radix - 1} and abs(cur - nxt) == radix - 1:
                                crossings += 1
                            cur = nxt
                        assert crossings <= 1


class TestShape:
    def test_validate(self):
        assert validate_shape((4, 4, 4)) == (4, 4, 4)

    def test_max_radix(self):
        with pytest.raises(ValueError):
            validate_shape((17, 4, 4))

    def test_min_radix(self):
        with pytest.raises(ValueError):
            validate_shape((0, 4, 4))

    def test_dimension_count(self):
        with pytest.raises(ValueError):
            validate_shape((4, 4))

    def test_all_coords_count(self):
        assert len(list(all_coords((2, 3, 4)))) == 24

    def test_wrap(self):
        assert wrap(-1, 8) == 7
        assert wrap(8, 8) == 0


class TestTorusHops:
    def test_symmetric(self):
        shape = (4, 4, 4)
        assert torus_hops((0, 0, 0), (1, 2, 3), shape) == torus_hops(
            (1, 2, 3), (0, 0, 0), shape
        )

    def test_wraparound_shorter(self):
        assert torus_hops((0, 0, 0), (7, 0, 0), (8, 8, 8)) == 1

    def test_max_distance(self):
        assert torus_hops((0, 0, 0), (4, 4, 4), (8, 8, 8)) == 12
