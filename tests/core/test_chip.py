"""Tests for the reconstructed Figure 1 chip floorplan."""

import pytest

from repro.core import params
from repro.core.chip import ChipFloorplan, default_floorplan
from repro.core.geometry import Dim, TorusDirection, XP, XM, YP, YM, ZP, ZM


@pytest.fixture(scope="module")
def plan():
    return default_floorplan()


class TestPaperPinnedPlacements:
    """Placements the paper's text fixes explicitly."""

    def test_y0_pair_shares_router_02(self, plan):
        # "Y0+ -> R_{0,2} -> Y0-": both directions at one router.
        assert plan.channel_adapter_router[(YP, 0)] == (0, 2)
        assert plan.channel_adapter_router[(YM, 0)] == (0, 2)

    def test_x1_split_across_edges(self, plan):
        # "X1- -> R_{3,0} --skip--> R_{0,0} -> X1+".
        assert plan.channel_adapter_router[(XM, 1)] == (3, 0)
        assert plan.channel_adapter_router[(XP, 1)] == (0, 0)

    def test_skip_connects_x1_routers(self, plan):
        assert plan.skip_for((3, 0), (0, 0))

    def test_skip_connects_x0_routers(self, plan):
        x0p = plan.channel_adapter_router[(XP, 0)]
        x0m = plan.channel_adapter_router[(XM, 0)]
        assert plan.skip_for(x0p, x0m)


class TestStructuralConstraints:
    def test_yz_pairs_single_router(self, plan):
        # Y and Z through traffic must traverse only one router.
        for dim in (Dim.Y, Dim.Z):
            for slice_index in range(params.NUM_SLICES):
                plus = plan.channel_adapter_router[(TorusDirection(dim, 1), slice_index)]
                minus = plan.channel_adapter_router[(TorusDirection(dim, -1), slice_index)]
                assert plus == minus

    def test_same_slice_yz_same_edge(self, plan):
        # "Y and Z channels associated with the same torus slice are
        # placed on the same side of the ASIC."
        for slice_index in range(params.NUM_SLICES):
            y_edge = plan.channel_adapter_router[(YP, slice_index)][0]
            z_edge = plan.channel_adapter_router[(ZP, slice_index)][0]
            assert y_edge == z_edge

    def test_io_on_two_opposite_edges(self, plan):
        edges = {coord[0] for coord in plan.channel_adapter_router.values()}
        assert edges == {0, params.MESH_RADIX - 1}

    def test_x_directions_on_opposite_edges(self, plan):
        for slice_index in range(params.NUM_SLICES):
            plus = plan.channel_adapter_router[(XP, slice_index)][0]
            minus = plan.channel_adapter_router[(XM, slice_index)][0]
            assert {plus, minus} == {0, params.MESH_RADIX - 1}

    def test_twelve_channel_adapters(self, plan):
        assert plan.num_channel_adapters == 12

    def test_two_skip_channels_one_per_slice(self, plan):
        assert len(plan.skip_channels) == 2
        assert {s.slice_index for s in plan.skip_channels} == {0, 1}

    def test_skip_channels_skip_two_routers(self, plan):
        for skip in plan.skip_channels:
            (u1, v1), (u2, v2) = skip.ends
            assert v1 == v2
            assert abs(u1 - u2) == params.MESH_RADIX - 1


class TestPortBudget:
    def test_no_router_over_six_ports(self, plan):
        for coord, used in plan.ports_used().items():
            assert used <= ChipFloorplan.ROUTER_PORTS, coord

    def test_default_endpoint_count(self, plan):
        assert plan.num_endpoints == params.ENDPOINTS_PER_ASIC == 23

    def test_mesh_link_count(self, plan):
        # 4x4 mesh: 2 * 4 * 3 = 24 bidirectional links.
        assert len(plan.mesh_links()) == 24

    def test_validate_passes(self, plan):
        plan.validate()


class TestEndpointPlacement:
    def test_first_sixteen_cover_all_routers(self, plan):
        # The measurement setup uses one core per router; the first 16
        # endpoints must land on 16 distinct routers.
        assert len(set(plan.endpoint_router[:16])) == 16

    def test_reduced_endpoint_count(self):
        plan = default_floorplan(num_endpoints=4)
        assert plan.num_endpoints == 4
        plan.validate()

    def test_too_many_endpoints_rejected(self):
        with pytest.raises(ValueError):
            default_floorplan(num_endpoints=64)

    def test_maximum_placeable_endpoints(self):
        # 96 router ports minus 48 mesh ends, 4 skip ends, 12 adapters
        # leaves 32 free ports.
        plan = default_floorplan(num_endpoints=32)
        plan.validate()
        with pytest.raises(ValueError):
            default_floorplan(num_endpoints=33)


class TestValidation:
    def test_wrong_mesh_radix_rejected(self):
        with pytest.raises(ValueError):
            default_floorplan(mesh_radix=3)

    def test_bad_adapter_position_rejected(self, plan):
        broken = ChipFloorplan(
            mesh_radix=plan.mesh_radix,
            channel_adapter_router={(XP, 0): (7, 0)},
            skip_channels=(),
            endpoint_router=(),
        )
        with pytest.raises(ValueError):
            broken.validate()

    def test_diagonal_skip_rejected(self, plan):
        from repro.core.chip import SkipChannel

        broken = ChipFloorplan(
            mesh_radix=plan.mesh_radix,
            channel_adapter_router={},
            skip_channels=(SkipChannel(ends=((0, 0), (3, 1)), slice_index=0),),
            endpoint_router=(),
        )
        with pytest.raises(ValueError):
            broken.validate()
