"""Tests for the Section 2.4 routing-algorithm search (Figure 4)."""

import pytest

from repro.core.chip import default_floorplan
from repro.core.geometry import TORUS_DIRECTIONS, XP, XM, YP, YM, ZP, ZM
from repro.core.onchip import ANTON_DIRECTION_ORDER, direction_order_name
from repro.core.route_search import (
    PAPER_WORST_CASE,
    all_permutations,
    demand_route,
    format_permutation,
    max_mesh_load,
    permutation_mesh_loads,
    search_direction_orders,
)


@pytest.fixture(scope="module")
def plan():
    return default_floorplan()


@pytest.fixture(scope="module")
def search():
    return search_direction_orders()


class TestDemandRoutes:
    def test_x_through_uses_skip(self, plan):
        # Traffic entering the X- channel and leaving X+ is X+ through
        # traffic: it must ride the skip channel, loading no mesh links.
        for slice_index in (0, 1):
            route = demand_route(plan, XM, XP, slice_index)
            assert route.uses_skip
            assert route.mesh_links == ()

    def test_x_reverse_through_uses_skip(self, plan):
        route = demand_route(plan, XP, XM, 1)
        assert route.uses_skip

    def test_yz_turn_same_router_is_free(self, plan):
        # Y+ -> Y- share a router: a reversal costs no mesh hops.
        route = demand_route(plan, YP, YM, 0)
        assert route.mesh_links == ()
        assert not route.uses_skip

    def test_y_to_z_short(self, plan):
        # Same-slice Y and Z adapters are adjacent on one edge: the turn
        # costs a single mesh hop (the packaging optimization).
        route = demand_route(plan, YP, ZP, 0)
        assert len(route.mesh_links) == 1

    def test_no_skip_ablation_routes_over_mesh(self, plan):
        route = demand_route(plan, XM, XP, 1, use_skip=False)
        assert not route.uses_skip
        assert len(route.mesh_links) == 3  # u=3 to u=0 along the row


class TestWorstCase:
    def test_paper_permutation_is_valid(self):
        assert sorted(PAPER_WORST_CASE) == sorted(TORUS_DIRECTIONS)

    def test_paper_permutation_mapping(self):
        mapping = dict(zip(TORUS_DIRECTIONS, PAPER_WORST_CASE))
        assert mapping[XP] == ZM
        assert mapping[XM] == XP
        assert mapping[YP] == YM
        assert mapping[YM] == ZP
        assert mapping[ZP] == XM
        assert mapping[ZM] == YP

    def test_worst_case_load_is_two(self, plan):
        # Figure 4: the heaviest mesh channel carries two torus channels.
        assert max_mesh_load(plan, PAPER_WORST_CASE, ANTON_DIRECTION_ORDER) == 2.0

    def test_loads_cover_both_slices(self, plan):
        loads = permutation_mesh_loads(plan, PAPER_WORST_CASE)
        slices = {key[0] for key in loads}
        assert slices == {0, 1}


class TestSearch:
    def test_all_orders_evaluated(self, search):
        assert len(search.per_order) == 24

    def test_minimal_worst_case_is_two(self, search):
        assert search.best.worst_load == 2.0

    def test_anton_order_in_optimal_class(self, search):
        names = [result.name for result in search.best_orders]
        assert direction_order_name(ANTON_DIRECTION_ORDER) in names

    def test_optimal_class_strictly_better(self, search):
        # The twelve optimal orders hit the worst case on strictly fewer
        # permutations than the other twelve.
        best = search.best.rank_key
        others = [r for r in search.per_order if r.rank_key != best]
        assert others
        for result in others:
            assert result.num_worst > search.best.num_worst or (
                result.mean_max_load > search.best.mean_max_load
            )

    def test_paper_permutation_is_common_worst_case(self, search):
        assert PAPER_WORST_CASE in search.common_worst_permutations()

    def test_result_for_lookup(self, search):
        result = search.result_for(ANTON_DIRECTION_ORDER)
        assert result.worst_load == 2.0

    def test_result_for_unknown(self, search):
        with pytest.raises(KeyError):
            search.result_for(tuple(reversed(ANTON_DIRECTION_ORDER))[:2] * 2)


class TestEnumeration:
    def test_permutation_count(self):
        assert len(list(all_permutations())) == 720

    def test_identity_permutation_loads_nothing_much(self, plan):
        # Hairpin demands enter and exit the same adapter: zero mesh load.
        identity = tuple(TORUS_DIRECTIONS)
        assert max_mesh_load(plan, identity) == 0.0

    def test_format_permutation(self):
        text = format_permutation(PAPER_WORST_CASE)
        assert "X+" in text and "Z-" in text
        assert text.count("\n") == 1
