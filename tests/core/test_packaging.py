"""Tests for the Figure 2 packaging model."""

import pytest

from repro.core.packaging import (
    BACKPLANES_PER_RACK,
    Packaging,
    supported_machine_sizes,
)


class TestFiveTwelveNodeMachine:
    """The Figure 2 reference configuration: 8x8x8 = 512 nodes."""

    @pytest.fixture(scope="class")
    def pkg(self):
        return Packaging((8, 8, 8))

    def test_counts(self, pkg):
        assert pkg.num_chips == 512
        assert pkg.num_backplanes == 32
        assert pkg.num_racks == 4

    def test_backplane_labeling(self, pkg):
        # Backplanes are labeled by the lexicographically smallest chip.
        assert pkg.backplane_of((0, 0, 0)) == (0, 0, 0)
        assert pkg.backplane_of((3, 3, 0)) == (0, 0, 0)
        assert pkg.backplane_of((4, 0, 0)) == (4, 0, 0)
        assert pkg.backplane_of((7, 7, 7)) == (4, 4, 7)

    def test_backplane_holds_sixteen(self, pkg):
        from collections import Counter
        from repro.core.geometry import all_coords

        census = Counter(pkg.backplane_of(chip) for chip in all_coords((8, 8, 8)))
        assert set(census.values()) == {16}

    def test_rack_holds_eight_backplanes(self, pkg):
        from repro.core.geometry import all_coords

        backplanes_by_rack = {}
        for chip in all_coords((8, 8, 8)):
            backplanes_by_rack.setdefault(pkg.rack_of(chip), set()).add(
                pkg.backplane_of(chip)
            )
        assert all(
            len(planes) == BACKPLANES_PER_RACK
            for planes in backplanes_by_rack.values()
        )


class TestLinkClassification:
    @pytest.fixture(scope="class")
    def pkg(self):
        return Packaging((8, 8, 8))

    def test_intra_backplane(self, pkg):
        assert pkg.classify_link((0, 0, 0), (1, 0, 0)) == "backplane"

    def test_z_neighbors_leave_backplane(self, pkg):
        # Backplanes are 4x4x1: z-links are always cabled.
        assert pkg.classify_link((0, 0, 0), (0, 0, 1)) == "intra-rack cable"

    def test_inter_rack(self, pkg):
        assert pkg.classify_link((3, 0, 0), (4, 0, 0)) == "inter-rack cable"

    def test_lengths_ordered(self, pkg):
        short = pkg.link_length_cm((0, 0, 0), (1, 0, 0))
        medium = pkg.link_length_cm((0, 0, 0), (0, 0, 1))
        long = pkg.link_length_cm((3, 0, 0), (4, 0, 0))
        assert short < medium < long

    def test_flight_times_positive(self, pkg):
        assert pkg.link_flight_ns((0, 0, 0), (1, 0, 0)) > 0

    def test_link_census_totals(self, pkg):
        census = pkg.link_census()
        # 8x8x8 torus: 3 x 512 bidirectional links per slice-pair group.
        assert sum(census.values()) == 3 * 512
        assert census["backplane"] == 768


class TestSmallMachines:
    def test_minimum_machine(self):
        pkg = Packaging((4, 4, 1))
        assert pkg.num_chips == 16
        assert pkg.num_backplanes == 1
        assert pkg.num_racks == 1
        # Every link stays in the backplane except the z wrap (radix 1:
        # no z links at all).
        assert set(pkg.link_census()) == {"backplane"}

    def test_radix_two_z(self):
        pkg = Packaging((4, 4, 2))
        census = pkg.link_census()
        assert "intra-rack cable" in census

    def test_summary_mentions_counts(self):
        text = Packaging((8, 8, 8)).summary()
        assert "512 nodecards" in text
        assert "32 backplanes" in text


class TestSupportedSizes:
    def test_min_and_max_supported(self):
        sizes = set(supported_machine_sizes())
        assert (4, 4, 1) in sizes
        assert (16, 16, 16) in sizes

    def test_chip_count_range(self):
        counts = sorted(s[0] * s[1] * s[2] for s in supported_machine_sizes())
        assert counts[0] == 16
        assert counts[-1] == 4096

    def test_all_sizes_constructible(self):
        for shape in list(supported_machine_sizes())[:8]:
            Packaging(shape)
