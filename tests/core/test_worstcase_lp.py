"""Tests for the LP formulation of worst-case switching demands."""

import numpy as np
import pytest

from repro.core.onchip import all_direction_orders, ANTON_DIRECTION_ORDER
from repro.core.route_search import all_permutations, max_mesh_load
from repro.core.chip import default_floorplan
from repro.core.worstcase_lp import max_channel_load_lp, worst_case_lp


class TestLpAgainstEnumeration:
    def test_anton_order_matches(self):
        result = worst_case_lp(order=ANTON_DIRECTION_ORDER)
        assert result.worst_load == pytest.approx(2.0)

    @pytest.mark.parametrize("order_index", [0, 7, 13, 23])
    def test_sampled_orders_match_enumeration(self, order_index):
        order = list(all_direction_orders())[order_index]
        plan = default_floorplan()
        enumerated = max(
            max_mesh_load(plan, p, order) for p in all_permutations()
        )
        lp = worst_case_lp(plan, order)
        assert lp.worst_load == pytest.approx(enumerated)


class TestLpStructure:
    def test_optimal_demand_is_doubly_substochastic(self):
        result = worst_case_lp()
        demand = result.demand
        assert np.all(demand >= -1e-9)
        assert np.all(demand.sum(axis=0) <= 1 + 1e-9)
        assert np.all(demand.sum(axis=1) <= 1 + 1e-9)

    def test_single_channel_lp(self):
        # A channel used by demands (0 -> 1) and (2 -> 3): both can be
        # saturated simultaneously (disjoint rows/columns): load 2.
        usage = np.zeros((6, 6))
        usage[0, 1] = 1.0
        usage[2, 3] = 1.0
        load, demand = max_channel_load_lp(usage)
        assert load == pytest.approx(2.0)

    def test_conflicting_demands_limited_by_row_sum(self):
        # Demands sharing a source row cannot exceed 1 in total.
        usage = np.zeros((6, 6))
        usage[0, 1] = 1.0
        usage[0, 2] = 1.0
        load, _demand = max_channel_load_lp(usage)
        assert load == pytest.approx(1.0)

    def test_worst_channel_identified(self):
        result = worst_case_lp()
        slice_index, src, dst = result.worst_channel
        assert slice_index in (0, 1)
        assert src != dst
