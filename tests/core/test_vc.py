"""Tests for the VC allocation state machines (Section 2.5)."""

import pytest

from repro.core.vc import (
    AntonVcAllocator,
    BaselineVcAllocator,
    UnsafeSingleVcAllocator,
    make_allocator,
    vcs_required,
)


class TestAntonAllocator:
    def test_starts_at_zero(self):
        alloc = AntonVcAllocator()
        assert alloc.t_vc() == 0
        assert alloc.m_vc() == 0

    def test_dateline_promotes_mid_dimension(self):
        alloc = AntonVcAllocator()
        alloc.start_dimension()
        assert alloc.t_vc() == 0
        alloc.cross_dateline()
        # The crossing channel itself uses the promoted VC.
        assert alloc.t_vc() == 1
        alloc.finish_dimension()
        # Already promoted: finishing does not promote again.
        assert alloc.m_vc() == 1

    def test_finish_without_dateline_promotes(self):
        alloc = AntonVcAllocator()
        alloc.start_dimension()
        alloc.finish_dimension()
        assert alloc.m_vc() == 1

    def test_exactly_one_promotion_per_dimension(self):
        for crossings in ((False, False, False), (True, True, True), (True, False, True)):
            alloc = AntonVcAllocator()
            for crossed in crossings:
                alloc.start_dimension()
                if crossed:
                    alloc.cross_dateline()
                alloc.finish_dimension()
            assert alloc.m_vc() == 3

    def test_max_vc_is_num_dims(self):
        alloc = AntonVcAllocator()
        for _ in range(3):
            alloc.start_dimension()
            alloc.cross_dateline()
            alloc.finish_dimension()
        assert alloc.t_vc() == 3
        assert alloc.m_vc() == 3

    def test_double_dateline_rejected(self):
        alloc = AntonVcAllocator()
        alloc.start_dimension()
        alloc.cross_dateline()
        with pytest.raises(AssertionError):
            alloc.cross_dateline()

    def test_vc_counts(self):
        assert AntonVcAllocator.T_VCS == 4
        assert AntonVcAllocator.M_VCS == 4


class TestBaselineAllocator:
    def test_t_vc_formula(self):
        alloc = BaselineVcAllocator()
        alloc.start_dimension()
        assert alloc.t_vc() == 0
        alloc.cross_dateline()
        assert alloc.t_vc() == 1
        alloc.finish_dimension()
        alloc.start_dimension()
        assert alloc.t_vc() == 2
        alloc.cross_dateline()
        assert alloc.t_vc() == 3
        alloc.finish_dimension()
        alloc.start_dimension()
        assert alloc.t_vc() == 4
        alloc.cross_dateline()
        assert alloc.t_vc() == 5

    def test_m_vc_counts_completed_dimensions(self):
        alloc = BaselineVcAllocator()
        assert alloc.m_vc() == 0
        for expected in (1, 2, 3):
            alloc.start_dimension()
            alloc.finish_dimension()
            assert alloc.m_vc() == expected

    def test_uses_six_t_vcs(self):
        assert BaselineVcAllocator.T_VCS == 6

    def test_double_dateline_rejected(self):
        alloc = BaselineVcAllocator()
        alloc.start_dimension()
        alloc.cross_dateline()
        with pytest.raises(AssertionError):
            alloc.cross_dateline()

    def test_too_many_dimensions_rejected(self):
        alloc = BaselineVcAllocator()
        for _ in range(3):
            alloc.start_dimension()
            alloc.finish_dimension()
        with pytest.raises(AssertionError):
            alloc.finish_dimension()


class TestUnsafeAllocator:
    def test_always_zero(self):
        alloc = UnsafeSingleVcAllocator()
        alloc.start_dimension()
        alloc.cross_dateline()
        alloc.finish_dimension()
        assert alloc.t_vc() == 0
        assert alloc.m_vc() == 0


class TestFactory:
    def test_known_schemes(self):
        assert isinstance(make_allocator("anton"), AntonVcAllocator)
        assert isinstance(make_allocator("baseline"), BaselineVcAllocator)
        assert isinstance(make_allocator("unsafe-single"), UnsafeSingleVcAllocator)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_allocator("escape")


class TestVcsRequired:
    def test_paper_headline_claim(self):
        # n + 1 versus 2n: one-third fewer VCs for the 3D torus.
        anton = vcs_required("anton", 3)
        baseline = vcs_required("baseline", 3)
        assert anton["t"] == 4
        assert baseline["t"] == 6
        assert (baseline["t"] - anton["t"]) / baseline["t"] == pytest.approx(1 / 3)

    def test_generalizes_to_any_dimension(self):
        for dims in (1, 2, 3, 4, 6):
            anton = vcs_required("anton", dims)
            baseline = vcs_required("baseline", dims)
            assert anton["t"] == dims + 1
            assert baseline["t"] == 2 * dims
            if dims > 1:
                assert anton["t"] < baseline["t"]

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            vcs_required("other", 3)
