"""Tests for full route construction (inter-node + on-chip + VCs)."""

import pytest

from repro.core.geometry import Dim, XP, XM, YP, YM, ZP
from repro.core.machine import ChannelGroup, ChannelKind, Machine, MachineConfig
from repro.core.routing import (
    ALL_DIM_ORDERS,
    RouteChoice,
    RouteComputer,
    validate_route,
)


class TestRouteChoice:
    def test_default_valid(self):
        RouteChoice()

    def test_bad_dim_order(self):
        with pytest.raises(ValueError):
            RouteChoice(dim_order=(Dim.X, Dim.X, Dim.Y))

    def test_bad_slice(self):
        with pytest.raises(ValueError):
            RouteChoice(slice_index=2)

    def test_six_dim_orders(self):
        assert len(ALL_DIM_ORDERS) == 6


class TestPaperExampleRoutes:
    """The two through-route examples of Section 2.4."""

    def test_y_through_single_router(self, small_machine, small_routes):
        # A packet traveling Y- through an intermediate chip must visit
        # exactly one router there: Y0+ -> R(0,2) -> Y0-.
        src = small_machine.ep_id[((0, 2, 0), 0)]
        dst = small_machine.ep_id[((0, 0, 0), 0)]
        choice = RouteChoice(
            dim_order=(Dim.Y, Dim.X, Dim.Z), slice_index=0, deltas=(0, -2, 0)
        )
        route = small_routes.compute(src, dst, choice)
        mid_chip = (0, 1, 0)
        routers_visited = set()
        for channel_id, _vc in route.hops:
            channel = small_machine.channels[channel_id]
            for comp_id in (channel.src, channel.dst):
                comp = small_machine.components[comp_id]
                if comp.chip == mid_chip and comp.kind.name == "ROUTER":
                    routers_visited.add(comp_id)
        assert len(routers_visited) == 1
        router = small_machine.components[routers_visited.pop()]
        assert router.detail == (0, 2)  # the paper's R_{0,2}

    def test_x_through_uses_skip_channel(self, small_machine, small_routes):
        # X+ through traffic on slice 1: X1- -> R(3,0) -> skip -> R(0,0) -> X1+.
        src = small_machine.ep_id[((0, 0, 0), 0)]
        dst = small_machine.ep_id[((2, 0, 0), 0)]
        choice = RouteChoice(dim_order=(Dim.X, Dim.Y, Dim.Z), slice_index=1)
        route = small_routes.compute(src, dst, choice)
        skip_hops = [
            (channel_id, vc)
            for channel_id, vc in route.hops
            if small_machine.channels[channel_id].kind == ChannelKind.SKIP
        ]
        assert len(skip_hops) == 1
        skip = small_machine.channels[skip_hops[0][0]]
        assert small_machine.components[skip.src].chip == (1, 0, 0)
        assert small_machine.components[skip.src].detail == (3, 0)
        assert small_machine.components[skip.dst].detail == (0, 0)


class TestRouteStructure:
    def test_starts_and_ends_at_endpoints(self, tiny_machine, tiny_routes):
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 1, 1), 1)]
        route = tiny_routes.compute(src, dst, RouteChoice())
        validate_route(tiny_machine, route)

    def test_internode_hops_match_distance(self, odd_machine, odd_routes):
        from repro.core.geometry import all_coords, torus_hops

        src = odd_machine.ep_id[((0, 0, 0), 0)]
        for dst_chip in all_coords((3, 3, 3)):
            dst = odd_machine.ep_id[(dst_chip, 0)]
            if dst == src:
                continue
            route = odd_routes.compute(src, dst, RouteChoice())
            assert route.internode_hops == torus_hops(
                (0, 0, 0), dst_chip, (3, 3, 3)
            )

    def test_same_chip_route_stays_on_chip(self, tiny_machine, tiny_routes):
        src = tiny_machine.ep_id[((1, 0, 1), 0)]
        dst = tiny_machine.ep_id[((1, 0, 1), 1)]
        route = tiny_routes.compute(src, dst, RouteChoice())
        assert route.internode_hops == 0
        for channel_id, _vc in route.hops:
            channel = tiny_machine.channels[channel_id]
            assert tiny_machine.components[channel.src].chip == (1, 0, 1)
            assert channel.kind in (
                ChannelKind.MESH,
                ChannelKind.EP_TO_ROUTER,
                ChannelKind.ROUTER_TO_EP,
            )

    def test_same_chip_route_uses_vc_zero(self, tiny_machine, tiny_routes):
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((0, 0, 0), 1)]
        route = tiny_routes.compute(src, dst, RouteChoice())
        for _channel_id, vc in route.hops:
            assert vc == 0

    def test_slice_pinning(self, small_machine, small_routes):
        # All torus hops of one packet use the chosen slice.
        src = small_machine.ep_id[((0, 0, 0), 0)]
        dst = small_machine.ep_id[((2, 3, 1), 0)]
        for slice_index in (0, 1):
            route = small_routes.compute(
                src, dst, RouteChoice(slice_index=slice_index)
            )
            for channel_id, _vc in route.hops:
                channel = small_machine.channels[channel_id]
                if channel.kind == ChannelKind.TORUS:
                    _direction, used_slice = small_machine.components[
                        channel.src
                    ].detail
                    assert used_slice == slice_index

    def test_dimension_order_respected(self, small_machine, small_routes):
        src = small_machine.ep_id[((0, 0, 0), 0)]
        dst = small_machine.ep_id[((1, 1, 1), 0)]
        for dim_order in ALL_DIM_ORDERS:
            route = small_routes.compute(src, dst, RouteChoice(dim_order=dim_order))
            dims_in_route = []
            for channel_id, _vc in route.hops:
                channel = small_machine.channels[channel_id]
                if channel.kind == ChannelKind.TORUS:
                    direction, _s = small_machine.components[channel.src].detail
                    if not dims_in_route or dims_in_route[-1] != direction.dim:
                        dims_in_route.append(direction.dim)
            expected = [d for d in dim_order]
            assert dims_in_route == expected


class TestVcAssignment:
    def test_vc_promotion_on_dateline(self, small_machine, small_routes):
        # Traveling X- from x=0 crosses the dateline immediately: the
        # crossing torus channel and everything after use VC >= 1.
        src = small_machine.ep_id[((0, 0, 0), 0)]
        dst = small_machine.ep_id[((3, 0, 0), 0)]
        route = small_routes.compute(
            src, dst, RouteChoice(deltas=(-1, 0, 0))
        )
        torus_vcs = [
            vc
            for channel_id, vc in route.hops
            if small_machine.channels[channel_id].kind == ChannelKind.TORUS
        ]
        assert torus_vcs == [1]

    def test_no_dateline_no_promotion_until_turn(self, small_machine, small_routes):
        src = small_machine.ep_id[((0, 0, 0), 0)]
        dst = small_machine.ep_id[((1, 0, 0), 0)]
        route = small_routes.compute(src, dst, RouteChoice(deltas=(1, 0, 0)))
        torus_vcs = [
            vc
            for channel_id, vc in route.hops
            if small_machine.channels[channel_id].kind == ChannelKind.TORUS
        ]
        assert torus_vcs == [0]
        # Final mesh hops (after the dimension finished) are promoted.
        final_mesh_vcs = [
            vc
            for channel_id, vc in route.hops
            if small_machine.channels[channel_id].kind == ChannelKind.MESH
        ]
        if final_mesh_vcs:
            assert final_mesh_vcs[-1] == 1

    def test_vc_never_exceeds_three(self, small_machine, small_routes):
        import random

        rng = random.Random(11)
        for _ in range(100):
            src_chip = tuple(rng.randrange(4) for _ in range(3))
            dst_chip = tuple(rng.randrange(4) for _ in range(3))
            src = small_machine.ep_id[(src_chip, rng.randrange(4))]
            dst = small_machine.ep_id[(dst_chip, rng.randrange(4))]
            if src == dst:
                continue
            choice = small_routes.random_choice(rng, src_chip, dst_chip)
            route = small_routes.compute(src, dst, choice)
            for channel_id, vc in route.hops:
                channel = small_machine.channels[channel_id]
                if channel.group != ChannelGroup.E:
                    assert 0 <= vc <= 3

    def test_baseline_scheme_uses_six_t_vcs(self):
        machine = Machine(
            MachineConfig(shape=(3, 3, 3), endpoints_per_chip=1, vc_scheme="baseline")
        )
        routes = RouteComputer(machine)
        src = machine.ep_id[((0, 0, 0), 0)]
        dst = machine.ep_id[((2, 2, 2), 0)]
        # Travel 3 dims, crossing the dateline in each: deltas of -1 from 0.
        route = routes.compute(src, dst, RouteChoice(deltas=(-1, -1, -1)))
        torus_vcs = [
            vc
            for channel_id, vc in route.hops
            if machine.channels[channel_id].kind == ChannelKind.TORUS
        ]
        assert torus_vcs == [1, 3, 5]


class TestChoices:
    def test_all_choices_probabilities_sum_to_one(self, small_machine, small_routes):
        total = sum(
            prob for _c, prob in small_routes.all_choices((0, 0, 0), (2, 1, 3))
        )
        assert total == pytest.approx(1.0)

    def test_tie_breaks_enumerated(self, small_machine, small_routes):
        # Distance 2 on a radix-4 ring is half way: two minimal options
        # per tied dimension.
        choices = list(small_routes.all_choices((0, 0, 0), (2, 0, 0)))
        assert len(choices) == 6 * 2 * 2  # orders x slices x X tie

    def test_random_choice_minimal(self, small_machine, small_routes):
        import random

        rng = random.Random(3)
        for _ in range(50):
            choice = small_routes.random_choice(rng, (0, 0, 0), (2, 3, 1))
            assert choice.deltas[0] in (2, -2)
            assert choice.deltas[1] == -1
            assert choice.deltas[2] == 1

    def test_non_minimal_delta_rejected(self, small_machine, small_routes):
        src = small_machine.ep_id[((0, 0, 0), 0)]
        dst = small_machine.ep_id[((1, 0, 0), 0)]
        with pytest.raises(ValueError):
            small_routes.compute(src, dst, RouteChoice(deltas=(-3, 0, 0)))


class TestCaching:
    def test_same_choice_returns_same_object(self, tiny_machine, tiny_routes):
        src = tiny_machine.ep_id[((0, 0, 0), 0)]
        dst = tiny_machine.ep_id[((1, 0, 0), 0)]
        choice = RouteChoice()
        route_a = tiny_routes.compute(src, dst, choice)
        route_b = tiny_routes.compute(src, dst, choice)
        assert route_a is route_b

    def test_non_endpoint_rejected(self, tiny_machine, tiny_routes):
        router = tiny_machine.router_id[((0, 0, 0), (0, 0))]
        endpoint = tiny_machine.ep_id[((0, 0, 0), 0)]
        with pytest.raises(ValueError):
            tiny_routes.compute(router, endpoint, RouteChoice())
