"""Tests for the Topology interface, registry, and its consumers' pins."""

import pytest

from repro.core import params
from repro.core.geometry import (
    TORUS_DIRECTIONS,
    TorusDirection,
    crosses_dateline,
    minimal_deltas,
    ring_deltas,
    torus_delta,
)
from repro.core.machine import Machine, MachineConfig
from repro.core.topology import (
    ChipletTopology,
    Mesh2DTopology,
    TOPOLOGIES,
    TOPOLOGY_NAMES,
    TorusTopology,
    make_topology,
)
from repro.faults.model import FaultSet, sample_link_faults


class TestRegistry:
    def test_registered_names(self):
        assert TOPOLOGY_NAMES == ("torus", "mesh", "chiplet")
        for name, cls in TOPOLOGIES.items():
            assert cls.name == name

    def test_make_topology(self):
        assert isinstance(make_topology("torus", (2, 2, 2)), TorusTopology)
        assert isinstance(make_topology("mesh", (3, 3)), Mesh2DTopology)
        assert isinstance(make_topology("chiplet", (2, 2)), ChipletTopology)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology 'ring'"):
            make_topology("ring", (4, 4))

    def test_cli_choices_match_registry(self):
        # The CLI mirrors the registry in a literal tuple (argparse
        # choices must be static); this pin keeps the two in sync.
        from repro.cli import TOPOLOGY_CHOICES

        assert tuple(TOPOLOGY_CHOICES) == TOPOLOGY_NAMES

    def test_equality_and_hash(self):
        assert make_topology("mesh", (3, 3)) == make_topology("mesh", (3, 3, 1))
        assert make_topology("mesh", (2, 2)) != make_topology("chiplet", (2, 2))
        assert hash(make_topology("torus", (2, 2, 2))) == hash(
            TorusTopology((2, 2, 2))
        )


class TestShapeNormalization:
    def test_2d_shapes_pad_to_coord3(self):
        assert Mesh2DTopology((4, 2)).shape == (4, 2, 1)
        assert ChipletTopology((3, 2)).shape == (3, 2, 1)
        assert TorusTopology((2, 3, 4)).shape == (2, 3, 4)

    def test_3_tuple_with_degenerate_pad_accepted(self):
        assert Mesh2DTopology((4, 2, 1)).shape == (4, 2, 1)

    def test_3_tuple_with_real_third_axis_rejected(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            Mesh2DTopology((4, 2, 2))

    def test_torus_requires_three_axes(self):
        with pytest.raises(ValueError, match="3 dimension"):
            TorusTopology((4, 4))

    def test_interposer_radix_cap(self):
        assert ChipletTopology((4, 4)).shape == (4, 4, 1)
        with pytest.raises(ValueError, match="radix"):
            ChipletTopology((5, 2))
        # The same radix is fine on the (uncapped) standalone mesh.
        assert Mesh2DTopology((5, 2)).shape == (5, 2, 1)

    def test_shape_str_drops_pad(self):
        assert Mesh2DTopology((4, 2)).shape_str() == "4x2"
        assert TorusTopology((2, 2, 2)).shape_str() == "2x2x2"
        assert ChipletTopology((2, 2)).describe() == "chiplet 2x2"


class TestDimensionSemantics:
    def test_torus_delegates_to_geometry(self):
        topo = TorusTopology((4, 3, 2))
        for dim, radix in enumerate(topo.shape):
            assert topo.wraps(dim)
            for src in range(radix):
                for dst in range(radix):
                    assert topo.minimal_deltas(src, dst, dim) == minimal_deltas(
                        src, dst, radix
                    )
                    assert topo.monotone_deltas(src, dst, dim) == ring_deltas(
                        src, dst, radix
                    )
                    assert topo.delta(src, dst, dim) == torus_delta(
                        src, dst, radix
                    )
                    delta = topo.delta(src, dst, dim)
                    assert topo.crosses_dateline(
                        dim, src, delta
                    ) == crosses_dateline(src, delta, radix)

    def test_line_deltas_unique_and_monotone(self):
        topo = Mesh2DTopology((4, 3))
        for dim, radix in enumerate((4, 3)):
            assert not topo.wraps(dim)
            for src in range(radix):
                for dst in range(radix):
                    # A line has exactly one way: monotone == minimal.
                    assert topo.minimal_deltas(src, dst, dim) == (dst - src,)
                    assert topo.monotone_deltas(src, dst, dim) == (dst - src,)
                    assert not topo.crosses_dateline(dim, src, dst - src)

    def test_line_edges_have_no_neighbor(self):
        topo = Mesh2DTopology((3, 2))
        x_neg = next(d for d in TORUS_DIRECTIONS if d.dim == 0 and d.sign < 0)
        x_pos = next(d for d in TORUS_DIRECTIONS if d.dim == 0 and d.sign > 0)
        assert topo.neighbor((0, 0, 0), x_neg) is None
        assert not topo.has_link((0, 0, 0), x_neg)
        assert topo.neighbor((0, 0, 0), x_pos) == (1, 0, 0)
        assert topo.neighbor((2, 1, 0), x_pos) is None
        # The same coordinates on a torus wrap instead.
        torus = TorusTopology((3, 2, 1))
        assert torus.neighbor((0, 0, 0), x_neg) == (2, 0, 0)

    def test_active_directions_exclude_degenerate_dims(self):
        mesh = Mesh2DTopology((3, 3))
        assert all(d.dim < 2 for d in mesh.active_directions())
        assert len(mesh.active_directions()) == 4
        assert TorusTopology((2, 2, 2)).active_directions() == TORUS_DIRECTIONS

    def test_hops(self):
        mesh = Mesh2DTopology((4, 4))
        assert mesh.hops((0, 0, 0), (3, 3, 0)) == 6  # no wrap shortcut
        torus = TorusTopology((4, 4, 1))
        assert torus.hops((0, 0, 0), (3, 3, 0)) == 2  # wraps both dims

    def test_translation_invariance(self):
        assert TorusTopology((2, 2, 2)).translation_invariant
        assert not Mesh2DTopology((3, 3)).translation_invariant
        assert not ChipletTopology((2, 2)).translation_invariant


class TestChannelParameters:
    def test_torus_channels_use_config_parameters(self):
        cfg = MachineConfig(shape=(2, 2, 2))
        topo = cfg.make_topology()
        assert topo.internode_latency(cfg) == cfg.torus_latency
        assert topo.internode_cycles_per_flit(cfg) == cfg.torus_cycles_per_flit

    def test_interposer_is_shorter_and_wider_than_cables(self):
        cfg = MachineConfig(shape=(2, 2), topology="chiplet")
        topo = cfg.make_topology()
        assert topo.internode_latency(cfg) < cfg.torus_latency
        assert (
            topo.internode_cycles_per_flit(cfg) < cfg.torus_cycles_per_flit
        )

    def test_chiplet_machine_channel_parameters(self):
        machine = Machine(MachineConfig(shape=(2, 2), topology="chiplet"))
        from repro.core.machine import ChannelKind

        internode = [
            c for c in machine.channels if c.kind == ChannelKind.TORUS
        ]
        assert internode
        for channel in internode:
            assert channel.latency == ChipletTopology.INTERPOSER_LATENCY
            assert (
                channel.cycles_per_flit
                == ChipletTopology.INTERPOSER_CYCLES_PER_FLIT
            )
        # Exact rational tick arithmetic: lcm denominator is 2, not 14.
        assert machine.ticks_per_cycle == 2


class TestMachineConfigIntegration:
    def test_default_topology_is_torus(self):
        cfg = MachineConfig(shape=(2, 2, 2))
        assert cfg.topology == "torus"
        assert isinstance(cfg.make_topology(), TorusTopology)

    def test_2d_config_shape_normalized(self):
        cfg = MachineConfig(shape=(4, 2), topology="mesh")
        assert cfg.shape == (4, 2, 1)

    def test_mesh_machine_has_no_wrap_links(self):
        machine = Machine(
            MachineConfig(shape=(3, 3), topology="mesh", endpoints_per_chip=1)
        )
        x_neg = next(d for d in TORUS_DIRECTIONS if d.dim == 0 and d.sign < 0)
        assert machine.neighbor((0, 0, 0), x_neg) is None
        # 2 dims x 2 radix-3 lines x (3-1) hops x 3 columns... count edges:
        # a KxK mesh has 2*K*(K-1) bidirectional = 4*K*(K-1) directed node
        # links, times NUM_SLICES channel slices.
        from repro.core import params as p
        from repro.core.machine import ChannelKind

        internode = [
            c for c in machine.channels if c.kind == ChannelKind.TORUS
        ]
        assert len(internode) == 4 * 3 * (3 - 1) * p.NUM_SLICES

    def test_describe_names_topology(self):
        mesh = Machine(
            MachineConfig(shape=(3, 3), topology="mesh", endpoints_per_chip=1)
        )
        assert "mesh 3x3" in mesh.describe()
        torus = Machine(
            MachineConfig(shape=(2, 2, 2), endpoints_per_chip=1)
        )
        assert "torus" not in torus.describe()  # legacy wording unchanged
        assert "2x2x2" in torus.describe()

    def test_unknown_topology_rejected_at_config(self):
        with pytest.raises(ValueError, match="unknown topology"):
            MachineConfig(shape=(2, 2, 2), topology="hypercube")


class TestFaultSetTopologyBinding:
    def test_sampler_records_topology(self):
        machine = Machine(
            MachineConfig(shape=(3, 3), topology="mesh", endpoints_per_chip=1)
        )
        fault_set = sample_link_faults(machine, k=2, seed=7)
        assert fault_set.topology == "mesh"
        fault_set.validate(machine)

    def test_json_roundtrip_preserves_topology(self):
        machine = Machine(
            MachineConfig(shape=(2, 2), topology="chiplet", endpoints_per_chip=1)
        )
        fault_set = sample_link_faults(machine, k=1, seed=3)
        restored = FaultSet.from_json(fault_set.to_json())
        assert restored.topology == "chiplet"
        assert restored == fault_set

    def test_torus_json_has_no_topology_key(self):
        # Byte-compatibility: torus fault files serialize exactly as
        # before the topology field existed.
        machine = Machine(MachineConfig(shape=(2, 2, 2), endpoints_per_chip=1))
        fault_set = sample_link_faults(machine, k=1, seed=3)
        assert '"topology"' not in fault_set.to_json()
        assert FaultSet.from_json(fault_set.to_json()).topology == "torus"

    def test_cross_topology_fault_set_rejected(self):
        mesh = Machine(
            MachineConfig(shape=(3, 3), topology="mesh", endpoints_per_chip=1)
        )
        torus = Machine(
            MachineConfig(shape=(3, 3, 1), endpoints_per_chip=1)
        )
        fault_set = sample_link_faults(torus, k=1, seed=5)
        with pytest.raises(ValueError, match="drawn for topology 'torus'"):
            fault_set.validate(mesh)
