"""Tests for in-network reductions."""

import pytest

from repro.core.geometry import Dim, all_coords
from repro.core.reduction import (
    ReductionTree,
    bandwidth_saving,
    build_reduction_tree,
    endpoint_reduction_cycles,
    evaluate,
)

SHAPE = (8, 8, 8)


def plane_sources(root=(4, 4, 4), radius=2):
    return [
        ((root[0] + dx) % 8, (root[1] + dy) % 8, root[2])
        for dx in range(-radius, radius + 1)
        for dy in range(-radius, radius + 1)
        if (dx, dy) != (0, 0)
    ]


class TestTreeConstruction:
    def test_edges_flow_to_root(self):
        tree = build_reduction_tree(SHAPE, (0, 0, 0), [(2, 0, 0), (0, 2, 0)])
        parents = {child: parent for child, parent in tree.edges}
        for source in tree.sources:
            node = source
            for _ in range(10):
                if node == tree.root:
                    break
                node = parents[node]
            assert node == tree.root

    def test_leaf_paths_minimal(self):
        sources = plane_sources()
        tree = build_reduction_tree(SHAPE, (4, 4, 4), sources)
        parents = {child: parent for child, parent in tree.edges}
        from repro.core.geometry import torus_hops

        for source in sources:
            hops = 0
            node = source
            while node != tree.root:
                node = parents[node]
                hops += 1
            assert hops == torus_hops(source, tree.root, SHAPE)

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            build_reduction_tree(SHAPE, (0, 0, 0), [])

    def test_root_in_sources_rejected(self):
        with pytest.raises(ValueError):
            build_reduction_tree(SHAPE, (0, 0, 0), [(0, 0, 0)])

    def test_combining_chips_exist_for_fanin(self):
        tree = build_reduction_tree(
            SHAPE, (0, 0, 0), [(1, 1, 0), (1, 7, 0), (7, 1, 0)]
        )
        assert tree.combining_chips()

    def test_depth_is_max_distance(self):
        tree = build_reduction_tree(SHAPE, (0, 0, 0), plane_sources((0, 0, 0)))
        assert tree.depth() == 4  # radius 2 in two dimensions


class TestBandwidth:
    def test_saving_positive_for_shared_paths(self):
        tree = build_reduction_tree(SHAPE, (4, 4, 4), plane_sources())
        assert bandwidth_saving(tree, SHAPE) > 0

    def test_single_source_saves_nothing(self):
        tree = build_reduction_tree(SHAPE, (0, 0, 0), [(3, 0, 0)])
        assert bandwidth_saving(tree, SHAPE) == 0

    def test_tree_matches_multicast_cost(self):
        # A reduction uses exactly as much bandwidth as the multicast of
        # the result back out would.
        from repro.core.multicast import build_tree

        sources = plane_sources()
        reduction = build_reduction_tree(SHAPE, (4, 4, 4), sources)
        multicast = build_tree(
            SHAPE, (4, 4, 4), sources, (Dim.Z, Dim.Y, Dim.X)
        )
        assert reduction.torus_hops == multicast.torus_hops


class TestEvaluation:
    def test_sum_correct(self):
        sources = plane_sources()
        tree = build_reduction_tree(SHAPE, (4, 4, 4), sources)
        contributions = {s: float(i + 1) for i, s in enumerate(sources)}
        outcome = evaluate(tree, contributions, "sum")
        assert outcome.value == pytest.approx(sum(contributions.values()))

    def test_min_max_correct(self):
        sources = plane_sources()
        tree = build_reduction_tree(SHAPE, (4, 4, 4), sources)
        contributions = {s: float(hash(s) % 97) for s in sources}
        assert evaluate(tree, contributions, "min").value == min(
            contributions.values()
        )
        assert evaluate(tree, contributions, "max").value == max(
            contributions.values()
        )

    def test_combines_count(self):
        # N contributions need exactly N - 1 combining operations.
        sources = plane_sources()
        tree = build_reduction_tree(SHAPE, (4, 4, 4), sources)
        contributions = {s: 1.0 for s in sources}
        outcome = evaluate(tree, contributions, "sum")
        assert outcome.combines == len(sources) - 1

    def test_unknown_operator(self):
        tree = build_reduction_tree(SHAPE, (0, 0, 0), [(1, 0, 0)])
        with pytest.raises(ValueError):
            evaluate(tree, {(1, 0, 0): 1.0}, "xor")

    def test_contributions_must_match_sources(self):
        tree = build_reduction_tree(SHAPE, (0, 0, 0), [(1, 0, 0)])
        with pytest.raises(ValueError):
            evaluate(tree, {(2, 0, 0): 1.0}, "sum")


class TestLatencyAdvantage:
    def test_in_network_beats_endpoint_reduction(self):
        # Parallel combining in the tree beats serializing all
        # contributions through the root's ejection port.
        sources = plane_sources()
        tree = build_reduction_tree(SHAPE, (4, 4, 4), sources)
        contributions = {s: 1.0 for s in sources}
        in_network = evaluate(tree, contributions, "sum").completion_cycles
        endpoint = endpoint_reduction_cycles(tree, SHAPE)
        assert in_network < endpoint

    def test_advantage_grows_with_fanin(self):
        small = plane_sources(radius=1)
        large = plane_sources(radius=2)

        def ratio(sources):
            tree = build_reduction_tree(SHAPE, (4, 4, 4), sources)
            contributions = {s: 1.0 for s in sources}
            in_network = evaluate(tree, contributions).completion_cycles
            return endpoint_reduction_cycles(tree, SHAPE) / in_network

        assert ratio(large) > ratio(small)

    def test_machine_wide_allreduce_shape(self):
        # Reduce over every node of a 4x4x4 machine to one root.
        shape = (4, 4, 4)
        sources = [c for c in all_coords(shape) if c != (0, 0, 0)]
        tree = build_reduction_tree(shape, (0, 0, 0), sources)
        contributions = {s: 1.0 for s in sources}
        outcome = evaluate(tree, contributions, "sum")
        assert outcome.value == len(sources)
        assert bandwidth_saving(tree, shape) > 0
