"""Tests for the dependency-graph deadlock checker (Section 2.5).

These are the mechanical verification of the paper's central
deadlock-freedom claims: the promotion scheme is acyclic with 4 VCs, the
baseline with 6, and a single VC without datelines is cyclic.
"""

import pytest

from repro.core import deadlock
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer


def _analyze(shape, scheme, endpoints=1):
    machine = Machine(
        MachineConfig(shape=shape, endpoints_per_chip=endpoints, vc_scheme=scheme)
    )
    return deadlock.analyze(machine, RouteComputer(machine)), machine


class TestAntonScheme:
    def test_odd_radix_deadlock_free(self):
        report, _m = _analyze((3, 3, 3), "anton")
        assert report.deadlock_free
        assert report.cycle is None

    def test_even_radix_deadlock_free(self):
        # Even radix exercises the half-way tie-breaks (both minimal
        # directions enumerated).
        report, _m = _analyze((4, 2, 2), "anton")
        assert report.deadlock_free

    def test_mixed_radix_deadlock_free(self):
        report, _m = _analyze((4, 3, 2), "anton")
        assert report.deadlock_free

    def test_uses_exactly_four_vcs(self):
        report, _m = _analyze((3, 3, 3), "anton")
        assert report.t_vcs_used == {0, 1, 2, 3}
        assert report.m_vcs_used == {0, 1, 2, 3}

    def test_multiple_endpoints_per_chip(self):
        report, _m = _analyze((2, 2, 2), "anton", endpoints=3)
        assert report.deadlock_free

    def test_degenerate_dimensions(self):
        # Radix-1 and radix-2 dimensions are structural corner cases.
        for shape in ((4, 1, 1), (2, 2, 1), (3, 1, 2)):
            report, _m = _analyze(shape, "anton")
            assert report.deadlock_free, shape


class TestBaselineScheme:
    def test_deadlock_free(self):
        report, _m = _analyze((3, 3, 3), "baseline")
        assert report.deadlock_free

    def test_uses_six_t_vcs(self):
        report, _m = _analyze((3, 3, 3), "baseline")
        assert report.t_vcs_used == {0, 1, 2, 3, 4, 5}

    def test_anton_uses_one_third_fewer_t_vcs(self):
        anton, _m = _analyze((3, 3, 3), "anton")
        baseline, _m2 = _analyze((3, 3, 3), "baseline")
        saved = len(baseline.t_vcs_used) - len(anton.t_vcs_used)
        assert saved / len(baseline.t_vcs_used) == pytest.approx(1 / 3)


class TestUnsafeScheme:
    def test_single_vc_is_cyclic(self):
        # Rings of radix >= 3 with one VC form dependency cycles.
        report, machine = _analyze((4, 2, 2), "unsafe-single")
        assert not report.deadlock_free
        assert report.cycle

    def test_cycle_is_reportable(self):
        report, machine = _analyze((4, 2, 2), "unsafe-single")
        text = deadlock.describe_cycle(machine, report.cycle)
        assert "=>" in text

    def test_cycle_edges_exist_in_graph(self):
        report, machine = _analyze((4, 1, 1), "unsafe-single")
        assert not report.deadlock_free


class TestGraphConstruction:
    def test_endpoint_links_excluded(self, tiny_machine, tiny_routes):
        from repro.core.machine import ChannelGroup

        graph, _routes = deadlock.build_dependency_graph(
            tiny_machine, tiny_routes, endpoints_per_chip=1
        )
        for channel_id, _vc in graph.nodes:
            assert tiny_machine.channels[channel_id].group != ChannelGroup.E

    def test_route_count_matches_enumeration(self, tiny_machine, tiny_routes):
        routes = list(
            deadlock.enumerate_routes(tiny_machine, tiny_routes, endpoints_per_chip=1)
        )
        _graph, counted = deadlock.build_dependency_graph(
            tiny_machine, tiny_routes, endpoints_per_chip=1
        )
        assert counted == len(routes)

    def test_nodes_and_edges_positive(self, tiny_machine, tiny_routes):
        report = deadlock.analyze(tiny_machine, tiny_routes, endpoints_per_chip=1)
        assert report.nodes > 0
        assert report.edges > 0
        assert report.routes > 0
