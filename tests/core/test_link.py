"""Tests for the torus link layer (framing + go-back-N)."""

import pytest

from repro.core import params
from repro.core.link import (
    FrameFormat,
    GoBackNLink,
    effective_bandwidth_sweep,
)


class TestFrameFormat:
    def test_derives_published_effective_bandwidth(self):
        # 112 Gb/s raw x 0.8 framing efficiency = 89.6 Gb/s effective.
        fmt = FrameFormat()
        assert fmt.efficiency == pytest.approx(0.8)
        assert fmt.effective_gbps() == pytest.approx(
            params.TORUS_CHANNEL_EFFECTIVE_GBPS
        )

    def test_frame_bits_sum(self):
        fmt = FrameFormat()
        assert fmt.frame_bits == 240 + 36 + 8 + 16

    def test_sequence_space_bounds_window(self):
        assert FrameFormat().max_window == 255


class TestGoBackN:
    def test_error_free_near_unity_goodput(self):
        link = GoBackNLink(frame_error_rate=0.0)
        result = link.run(1000)
        assert result.retransmissions == 0
        assert result.frames_sent == 1000
        assert result.goodput > 0.95

    def test_reliable_delivery_under_errors(self):
        # Every frame is eventually delivered in order, whatever the FER.
        link = GoBackNLink(frame_error_rate=0.2, seed=3)
        result = link.run(300)
        assert result.frames_delivered == 300
        assert len(result.latencies) == 300

    def test_errors_cost_retransmissions(self):
        clean = GoBackNLink(frame_error_rate=0.0).run(500)
        lossy = GoBackNLink(frame_error_rate=0.02, seed=1).run(500)
        assert lossy.retransmissions > 0
        assert lossy.goodput < clean.goodput

    def test_goodput_monotone_in_error_rate(self):
        sweep = effective_bandwidth_sweep(
            (0.0, 0.005, 0.02, 0.08), num_frames=800, seed=2
        )
        goodputs = [outcome.goodput for _rate, _bw, outcome in sweep]
        assert all(a >= b for a, b in zip(goodputs, goodputs[1:]))

    def test_latency_tail_grows_with_errors(self):
        clean = GoBackNLink(frame_error_rate=0.0).run(400)
        lossy = GoBackNLink(frame_error_rate=0.02, seed=4).run(400)
        assert lossy.max_latency > clean.max_latency
        assert lossy.mean_latency > clean.mean_latency

    def test_window_one_is_stop_and_wait(self):
        link = GoBackNLink(window=1, rtt_slots=8)
        result = link.run(50)
        # Stop-and-wait: about one frame per RTT.
        assert result.total_slots >= 50 * 8 * 0.8

    def test_bigger_window_faster(self):
        narrow = GoBackNLink(window=2, rtt_slots=16).run(300)
        wide = GoBackNLink(window=32, rtt_slots=16).run(300)
        assert wide.total_slots < narrow.total_slots

    def test_validation(self):
        with pytest.raises(ValueError):
            GoBackNLink(window=0)
        with pytest.raises(ValueError):
            GoBackNLink(rtt_slots=0)
        with pytest.raises(ValueError):
            GoBackNLink(frame_error_rate=1.0)
        with pytest.raises(ValueError):
            GoBackNLink(window=1000)
        with pytest.raises(ValueError):
            GoBackNLink().run(0)

    def test_deterministic_given_seed(self):
        a = GoBackNLink(frame_error_rate=0.05, seed=9).run(200)
        b = GoBackNLink(frame_error_rate=0.05, seed=9).run(200)
        assert a.total_slots == b.total_slots
        assert a.retransmissions == b.retransmissions
