"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` on this offline machine falls back
to the legacy code path (`--no-use-pep517`), which requires a setup.py.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
