"""Section 3.4 / Figure 7: the prioritized-arbiter optimization.

Quantifies the claim that merging the mutually exclusive middle request
vectors reduces the fixed-priority arbiter count from 2P to P + 1 --
approaching a 50% saving for large P -- and that the gate-level cost of
the optimized arbiter stays below the conventional design.
"""

import pytest

from repro.analysis.report import format_table
from repro.arbiters.cost import (
    ArbiterCost,
    anton2_router_arbiter_cost,
    fixed_priority_arbiters_conventional,
    fixed_priority_arbiters_optimized,
    reduction_fraction,
)


def run_sweep():
    rows = []
    for levels in (1, 2, 3, 4, 8, 16):
        cost = ArbiterCost(num_inputs=6, num_levels=levels, weight_bits=5, num_patterns=2)
        rows.append(
            (
                levels,
                fixed_priority_arbiters_conventional(levels),
                fixed_priority_arbiters_optimized(levels),
                reduction_fraction(levels),
                cost.priority_arbiter_gates,
                cost.conventional_priority_arbiter_gates,
            )
        )
    return rows


def test_sec34_arbiter_cost(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    for levels, conventional, optimized, fraction, opt_gates, conv_gates in rows:
        assert conventional == 2 * levels
        assert optimized == levels + 1
        assert opt_gates < conv_gates
    # The P = 2 case used by the inverse-weighted arbiter: 4 -> 3.
    assert rows[1][1] == 4 and rows[1][2] == 3
    assert reduction_fraction(64) > 0.48  # approaches one half
    anton = anton2_router_arbiter_cost()
    assert anton.accumulator_fraction == pytest.approx(0.75, abs=0.05)

    table_rows = [
        [
            levels,
            conventional,
            optimized,
            f"{fraction * 100:.0f}%",
            round(opt_gates),
            round(conv_gates),
        ]
        for levels, conventional, optimized, fraction, opt_gates, conv_gates in rows
    ]
    text = "\n".join(
        [
            "Section 3.4 / Figure 7 -- optimized prioritized arbiter cost",
            "(k = 6 inputs, the Anton 2 router port count)",
            "",
            format_table(
                [
                    "P levels",
                    "fixed-pri arbiters (conv 2P)",
                    "(optimized P+1)",
                    "saving",
                    "gates (optimized)",
                    "gates (conventional)",
                ],
                table_rows,
            ),
            "",
            f"Anton 2 arbiter (P=2, M=5, N=2): {anton.total_gates:.0f} gate "
            f"equivalents, {anton.accumulator_fraction * 100:.0f}% in "
            "accumulators/weights/update (paper: ~3/4)",
        ]
    )
    report("sec34_arbiter_cost", text)
