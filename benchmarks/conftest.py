"""Shared benchmark fixtures.

Each benchmark regenerates one table or figure of the paper. Rendered
results are printed (visible with ``pytest -s``) and also persisted to
``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the complete reproduction on disk.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


@pytest.fixture()
def report():
    """Returns a writer: ``report(name, text)`` prints and persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write
