"""Section 2.5: the VC promotion algorithm versus the 2n baseline.

Mechanically verifies the deadlock-freedom claims on several torus shapes
(odd, even, and mixed radix -- even radix exercises the half-way route
tie-breaks) and quantifies the cost difference:

* both the Anton promotion scheme (4 VCs per class) and the baseline
  (6 T-group VCs per class) have acyclic (channel, VC) dependency graphs;
* the single-VC negative control is cyclic (and, separately, the engine
  tests show it actually wedges in simulation);
* the promotion scheme cuts T-group VCs by one-third, shrinking the
  dominant queue area accordingly.
"""

import pytest

from repro.analysis.report import format_table
from repro.core import deadlock
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.core.vc import vcs_required
from repro.models.area import AreaConfig, AreaModel, queue_area_saving

SHAPES = ((3, 3, 3), (4, 2, 2), (4, 3, 2))


def run_analysis():
    results = {}
    for scheme in ("anton", "baseline", "unsafe-single"):
        for shape in SHAPES if scheme != "unsafe-single" else SHAPES[:1]:
            machine = Machine(
                MachineConfig(shape=shape, endpoints_per_chip=1, vc_scheme=scheme)
            )
            routes = RouteComputer(machine)
            results[(scheme, shape)] = deadlock.analyze(machine, routes)
    return results


def test_sec25_vc_ablation(benchmark, report):
    results = benchmark.pedantic(run_analysis, rounds=1, iterations=1)

    rows = []
    for (scheme, shape), analysis in results.items():
        rows.append(
            [
                scheme,
                "x".join(str(k) for k in shape),
                len(analysis.t_vcs_used),
                len(analysis.m_vcs_used),
                "yes" if analysis.deadlock_free else "NO",
                analysis.routes,
            ]
        )
        if scheme == "unsafe-single":
            assert not analysis.deadlock_free
        else:
            assert analysis.deadlock_free
        if scheme == "anton":
            assert analysis.t_vcs_used == {0, 1, 2, 3}
        if scheme == "baseline":
            assert analysis.t_vcs_used == {0, 1, 2, 3, 4, 5}

    # The headline claim: n + 1 vs 2n VCs, a one-third reduction for 3D.
    anton = vcs_required("anton", 3)
    baseline = vcs_required("baseline", 3)
    assert anton["t"] == 4 and baseline["t"] == 6
    assert queue_area_saving(3) == pytest.approx(1 / 3)

    # The area consequence: T-group queue storage grows 1.5x without it.
    anton_area = AreaModel(AreaConfig(vc_scheme="anton"))
    baseline_area = AreaModel(AreaConfig(vc_scheme="baseline"))
    queue_ratio = baseline_area.queue_units("Channel") / anton_area.queue_units(
        "Channel"
    )
    assert queue_ratio == pytest.approx(1.5)

    text = "\n".join(
        [
            "Section 2.5 -- VC scheme ablation (dependency-graph verification)",
            "",
            format_table(
                ["scheme", "torus", "T VCs", "M VCs", "deadlock-free", "routes checked"],
                rows,
            ),
            "",
            f"VCs per traffic class, 3D torus: anton {anton['t']} vs baseline "
            f"{baseline['t']}  (paper: one-third reduction)",
            f"T-group queue storage ratio baseline/anton: {queue_ratio:.2f}x",
            f"generalization: any n-D torus needs n+1 VCs (vs 2n): "
            + ", ".join(
                f"n={n}: {vcs_required('anton', n)['t']} vs "
                f"{vcs_required('baseline', n)['t']}"
                for n in (2, 3, 4)
            ),
        ]
    )
    report("sec25_vc_ablation", text)
