"""Figure 4 / Section 2.4: the on-chip routing-algorithm search.

Regenerates the design-space evaluation: all 24 direction-order
algorithms against all 720 permutation switching demands, cross-checked
against the linear-programming formulation. Reproduced claims:

* the minimal worst-case mesh-channel load is exactly two torus channels;
* the paper's chosen order V-, U+, U-, V+ lies in the optimal class;
* permutation (1) is a common worst case for every direction order.
"""

from repro.analysis.report import format_table
from repro.core.onchip import ANTON_DIRECTION_ORDER, direction_order_name
from repro.core.route_search import (
    PAPER_WORST_CASE,
    format_permutation,
    search_direction_orders,
)
from repro.core.worstcase_lp import worst_case_lp


def run_search():
    return search_direction_orders()


def test_fig04_route_search(benchmark, report):
    result = benchmark.pedantic(run_search, rounds=1, iterations=1)

    anton_name = direction_order_name(ANTON_DIRECTION_ORDER)
    best_names = [r.name for r in result.best_orders]
    lp = worst_case_lp(order=ANTON_DIRECTION_ORDER)
    common = result.common_worst_permutations()

    # --- the paper's claims ---
    assert result.best.worst_load == 2.0
    assert anton_name in best_names
    assert PAPER_WORST_CASE in common
    assert lp.worst_load == result.best.worst_load

    rows = [
        [r.name, r.worst_load, r.num_worst, round(r.mean_max_load, 4)]
        for r in sorted(result.per_order, key=lambda r: r.rank_key)
    ]
    text = "\n".join(
        [
            "Figure 4 / Section 2.4 -- direction-order routing search",
            "",
            format_table(
                ["direction order", "worst load", "#worst perms", "mean max"],
                rows,
            ),
            "",
            f"optimal class ({len(best_names)} orders): {', '.join(best_names)}",
            f"paper's V-,U+,U-,V+ in optimal class: {anton_name in best_names}",
            f"LP cross-check of worst-case load: {lp.worst_load:.1f}",
            "",
            "common worst-case permutation (paper's equation (1)):",
            format_permutation(PAPER_WORST_CASE),
            "",
            "paper: best algorithm's heaviest mesh channel carries 2 torus",
            f"channels; measured: {result.best.worst_load:.1f}",
        ]
    )
    report("fig04_route_search", text)
