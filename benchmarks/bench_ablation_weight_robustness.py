"""Ablation (Section 4.1's observation / open problem): how exact must
the arbiter's traffic model be?

The paper programmed a single weight set from *uniform* loads and found
it sufficient for the 2-hop-neighbor pattern too ("the traffic model need
not be exact"), while Figure 10 shows that weights from a *dissimilar*
pattern degrade to round-robin. This ablation quantifies both sides on
one machine:

* 2-hop-neighbor traffic: weights from its own loads vs. weights from
  uniform loads vs. round-robin -- the approximate (uniform) weights
  should recover most of the exact weights' advantage;
* tornado traffic: same three configurations -- the uniform weights are
  a poor model of tornado, so their benefit should shrink markedly.

Runtime: a couple of minutes (the six points are fanned across processes
by ``repro.sim.sweep``; set ``REPRO_SWEEP_WORKERS=1`` for the serial
reference loop).
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.throughput import BatchPoint, run_batch_points
from repro.core.machine import MachineConfig
from repro.sim.sweep import default_workers
from repro.traffic.patterns import NHopNeighbor, Tornado, UniformRandom

SHAPE = (8, 2, 2)
CORES = 4
BATCH = 384


def run_experiment():
    config = MachineConfig(shape=SHAPE, endpoints_per_chip=CORES)
    patterns = {
        "uniform": UniformRandom(SHAPE),
        "2-hop": NHopNeighbor(SHAPE, 2),
        "tornado": Tornado(SHAPE),
    }
    keys = [
        (measured, weights_from)
        for measured in ("2-hop", "tornado")
        for weights_from in ("own", "uniform", "none")
    ]
    points = []
    for measured, weights_from in keys:
        if weights_from == "none":
            arbitration, weight_patterns = "rr", ()
        else:
            source = measured if weights_from == "own" else "uniform"
            arbitration, weight_patterns = "iw", (patterns[source],)
        points.append(
            BatchPoint(
                config=config,
                pattern=patterns[measured],
                batch_size=BATCH,
                cores_per_chip=CORES,
                arbitration=arbitration,
                weight_patterns=weight_patterns,
                seed=9,
            )
        )
    measured_points = run_batch_points(points, max_workers=default_workers())
    return dict(zip(keys, measured_points))


def test_ablation_weight_robustness(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    def throughput(measured, weights):
        return results[(measured, weights)].normalized_throughput

    # Similar patterns: approximate (uniform) weights recover most of the
    # exact weights' advantage over round-robin.
    exact_gain = throughput("2-hop", "own") - throughput("2-hop", "none")
    approx_gain = throughput("2-hop", "uniform") - throughput("2-hop", "none")
    assert exact_gain > 0
    assert approx_gain > 0.6 * exact_gain
    # Dissimilar pattern: exact weights still work...
    assert throughput("tornado", "own") > throughput("tornado", "none") + 0.15
    # ...but the uniform model recovers a smaller fraction of that gain
    # than it does for the similar pattern.
    tornado_exact_gain = throughput("tornado", "own") - throughput(
        "tornado", "none"
    )
    tornado_approx_gain = throughput("tornado", "uniform") - throughput(
        "tornado", "none"
    )
    assert tornado_approx_gain < tornado_exact_gain

    rows = [
        [
            measured,
            weights,
            round(results[(measured, weights)].normalized_throughput, 3),
            round(results[(measured, weights)].finish_spread, 3),
        ]
        for measured in ("2-hop", "tornado")
        for weights in ("own", "uniform", "none")
    ]
    text = "\n".join(
        [
            "Ablation -- weight-model accuracy vs. achieved throughput",
            f"(torus {SHAPE[0]}x{SHAPE[1]}x{SHAPE[2]}, {CORES} cores/chip, "
            f"{BATCH} packets/core)",
            "",
            format_table(
                ["measured pattern", "weights from", "norm. throughput", "spread"],
                rows,
            ),
            "",
            "paper: 'a single set of weights may be sufficient for a large",
            "set of traffic patterns' (uniform weights stabilized 2-hop);",
            "Figure 10 shows weights from a dissimilar pattern do not help.",
        ]
    )
    report("ablation_weight_robustness", text)
