"""Ablation (Section 4.1's observation / open problem): how exact must
the arbiter's traffic model be?

The paper programmed a single weight set from *uniform* loads and found
it sufficient for the 2-hop-neighbor pattern too ("the traffic model need
not be exact"), while Figure 10 shows that weights from a *dissimilar*
pattern degrade to round-robin. This ablation quantifies both sides on
one machine:

* 2-hop-neighbor traffic: weights from its own loads vs. weights from
  uniform loads vs. round-robin -- the approximate (uniform) weights
  should recover most of the exact weights' advantage;
* tornado traffic: same three configurations -- the uniform weights are
  a poor model of tornado, so their benefit should shrink markedly.

Runtime: several minutes.
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.throughput import measure_batch
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.simulator import make_vc_weight_tables, make_weight_tables
from repro.traffic.loads import compute_loads
from repro.traffic.patterns import NHopNeighbor, Tornado, UniformRandom

SHAPE = (8, 2, 2)
CORES = 4
BATCH = 384


def run_experiment():
    machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=CORES))
    routes = RouteComputer(machine)
    patterns = {
        "uniform": UniformRandom(SHAPE),
        "2-hop": NHopNeighbor(SHAPE, 2),
        "tornado": Tornado(SHAPE),
    }
    loads = {
        name: compute_loads(machine, routes, pattern, CORES)
        for name, pattern in patterns.items()
    }
    tables = {}
    for name, pattern in patterns.items():
        tables[name] = (
            make_weight_tables(
                machine, routes, [pattern], CORES, load_tables=[loads[name]]
            ),
            make_vc_weight_tables(
                machine, routes, [pattern], CORES, load_tables=[loads[name]]
            ),
        )

    results = {}
    for measured in ("2-hop", "tornado"):
        pattern = patterns[measured]
        for weights_from in ("own", "uniform", "none"):
            if weights_from == "none":
                point = measure_batch(
                    machine, routes, pattern, BATCH, CORES, "rr",
                    load_table=loads[measured], seed=9,
                )
            else:
                source = measured if weights_from == "own" else "uniform"
                wt, vwt = tables[source]
                point = measure_batch(
                    machine, routes, pattern, BATCH, CORES, "iw",
                    load_table=loads[measured],
                    weight_tables=wt, vc_weight_tables=vwt, seed=9,
                )
            results[(measured, weights_from)] = point
    return results


def test_ablation_weight_robustness(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    def throughput(measured, weights):
        return results[(measured, weights)].normalized_throughput

    # Similar patterns: approximate (uniform) weights recover most of the
    # exact weights' advantage over round-robin.
    exact_gain = throughput("2-hop", "own") - throughput("2-hop", "none")
    approx_gain = throughput("2-hop", "uniform") - throughput("2-hop", "none")
    assert exact_gain > 0
    assert approx_gain > 0.6 * exact_gain
    # Dissimilar pattern: exact weights still work...
    assert throughput("tornado", "own") > throughput("tornado", "none") + 0.15
    # ...but the uniform model recovers a smaller fraction of that gain
    # than it does for the similar pattern.
    tornado_exact_gain = throughput("tornado", "own") - throughput(
        "tornado", "none"
    )
    tornado_approx_gain = throughput("tornado", "uniform") - throughput(
        "tornado", "none"
    )
    assert tornado_approx_gain < tornado_exact_gain

    rows = [
        [
            measured,
            weights,
            round(results[(measured, weights)].normalized_throughput, 3),
            round(results[(measured, weights)].finish_spread, 3),
        ]
        for measured in ("2-hop", "tornado")
        for weights in ("own", "uniform", "none")
    ]
    text = "\n".join(
        [
            "Ablation -- weight-model accuracy vs. achieved throughput",
            f"(torus {SHAPE[0]}x{SHAPE[1]}x{SHAPE[2]}, {CORES} cores/chip, "
            f"{BATCH} packets/core)",
            "",
            format_table(
                ["measured pattern", "weights from", "norm. throughput", "spread"],
                rows,
            ),
            "",
            "paper: 'a single set of weights may be sufficient for a large",
            "set of traffic patterns' (uniform weights stabilized 2-hop);",
            "Figure 10 shows weights from a dissimilar pattern do not help.",
        ]
    )
    report("ablation_weight_robustness", text)
