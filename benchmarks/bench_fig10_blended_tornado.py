"""Figure 10: blending tornado and reverse-tornado traffic.

Runs the paper's pattern-blending experiment on a downscaled machine
(8x2x2 torus: tornado sends every node 3 hops around the radix-8 X
rings). Packets are divided between the two patterns with a varying
fraction, and four arbiter configurations are measured:

* ``none``    -- round-robin arbitration;
* ``forward`` -- one weight set from tornado loads;
* ``reverse`` -- one weight set from reverse-tornado loads;
* ``both``    -- both weight sets, packets labeled with their pattern
                 (the inverse-weighted arbiter's header field).

Reproduced claims (shape):

* round-robin is poor across the whole range;
* a single weight set is good at its own end of the blend and degrades
  toward round-robin at the opposite end;
* two weight sets hold high throughput over the entire range -- without
  the arbiters ever being told the blend ratio.

Runtime: a couple of minutes (points fanned across processes by
``repro.sim.sweep``; set ``REPRO_SWEEP_WORKERS=1`` for the serial
reference loop).
"""

import pytest

from repro.analysis.report import format_series
from repro.analysis.throughput import blend_sweep
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.sweep import default_workers
from repro.traffic.patterns import ReverseTornado, Tornado

SHAPE = (8, 2, 2)
CORES = 4
BATCH = 256
FRACTIONS = (1.0, 0.75, 0.5, 0.25, 0.0)


def run_experiment():
    machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=CORES))
    routes = RouteComputer(machine)
    return blend_sweep(
        machine,
        routes,
        Tornado(SHAPE),
        ReverseTornado(SHAPE),
        fractions=FRACTIONS,
        batch_size=BATCH,
        cores_per_chip=CORES,
        seed=5,
        max_workers=default_workers(),
    )


def test_fig10_blended_tornado(benchmark, report):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    values = {}
    for p in points:
        fraction = float(p.pattern.split()[0])
        values[(p.arbitration, fraction)] = p.normalized_throughput

    # --- the paper's claims ---
    # Two weight sets hold throughput across every blend...
    both = [values[("both", f)] for f in FRACTIONS]
    assert min(both) > 0.7
    assert min(both) > 0.85 * max(both)
    # ...and beat round-robin everywhere.
    for fraction in FRACTIONS:
        assert values[("both", fraction)] > values[("none", fraction)] + 0.1
    # Single-pattern weights work at their own end of the blend...
    assert values[("forward", 1.0)] > values[("none", 1.0)] + 0.1
    assert values[("reverse", 0.0)] > values[("none", 0.0)] + 0.1
    # ...and fall off toward the other end.
    assert values[("forward", 0.0)] < values[("both", 0.0)]
    assert values[("reverse", 1.0)] < values[("both", 1.0)]

    series = {}
    for (label, fraction), value in values.items():
        series.setdefault(label, {})[fraction] = round(value, 3)
    text = "\n".join(
        [
            "Figure 10 -- throughput vs. tornado/reverse-tornado blend",
            f"(torus {SHAPE[0]}x{SHAPE[1]}x{SHAPE[2]}, {CORES} cores/chip, "
            f"{BATCH} packets/core)",
            "",
            format_series(series, x_label="tornado fraction"),
            "",
            "paper (8x8x8, 1024 packets/core): 'Both' holds ~0.85 over the",
            "entire blend range; single weight sets degrade to round-robin",
            "at the opposite end. Shape reproduced at reduced scale.",
        ]
    )
    report("fig10_blended_tornado", text)
