"""Figure 3 / Section 2.3: inter-node multicast bandwidth savings.

Builds the particle-broadcast destination sets, the alternating
dimension-order multicast trees, and the MD workload aggregate. Reproduced
claims:

* multicast saves a double-digit number of torus hops per broadcast
  versus unicasts (the paper's plane example saves 12; our reconstructed
  3x5 plane set saves 14 -- the exact set is not published);
* alternating between the two routes balances the per-direction torus
  load;
* per-node endpoint fan-out multiplies the savings.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.multicast import (
    directional_loads,
    endpoint_fanout_savings,
    figure3_example,
    max_directional_load,
    multicast_savings,
    unicast_hops,
    verify_unicast_paths,
)
from repro.traffic.md import MdMulticastWorkload


def run_experiment():
    shape = (8, 8, 1)
    tree_xy, tree_yx, destinations = figure3_example(shape)
    verify_unicast_paths(tree_xy, shape)
    verify_unicast_paths(tree_yx, shape)
    workload_stats = {
        method: MdMulticastWorkload((8, 8, 8), method=method).aggregate_stats(64)
        for method in ("full-shell", "half-shell")
    }
    return shape, tree_xy, tree_yx, destinations, workload_stats


def test_fig03_multicast_savings(benchmark, report):
    shape, tree_xy, tree_yx, destinations, workload_stats = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    savings = multicast_savings(tree_xy, shape)
    single_peak = max_directional_load(directional_loads([tree_xy], [1.0], shape))
    alternating_peak = max_directional_load(
        directional_loads([tree_xy, tree_yx], [0.5, 0.5], shape)
    )

    # --- the paper's claims ---
    assert savings >= 12  # paper's example saves 12 torus hops
    assert alternating_peak < single_peak
    assert endpoint_fanout_savings(tree_xy, shape, 3) > 3 * savings - savings
    for stats in workload_stats.values():
        assert stats["savings_ratio"] > 0.3
        assert (
            stats["peak_direction_load_alternating"]
            <= stats["peak_direction_load_single"]
        )

    unicast = unicast_hops(shape, tree_xy.source, tree_xy.destinations)
    rows = [
        ["destinations in plane", len(destinations), ""],
        ["unicast torus hops", unicast, ""],
        ["multicast tree hops", tree_xy.torus_hops, ""],
        ["hops saved", savings, "12 in the paper's example"],
        ["peak direction load, one route", single_peak, ""],
        ["peak direction load, alternating", alternating_peak, "balanced"],
        [
            "hops saved with 3 endpoint copies",
            endpoint_fanout_savings(tree_xy, shape, 3),
            "savings multiply",
        ],
    ]
    workload_rows = [
        [
            method,
            round(stats["savings_ratio"] * 100, 1),
            stats["peak_direction_load_single"],
            stats["peak_direction_load_alternating"],
        ]
        for method, stats in workload_stats.items()
    ]
    text = "\n".join(
        [
            "Figure 3 / Section 2.3 -- multicast bandwidth savings",
            "",
            format_table(["quantity", "value", "note"], rows),
            "",
            "MD broadcast workload, 8x8x8 machine, 64 particles/node:",
            format_table(
                ["import region", "% bandwidth saved", "peak (one order)", "peak (alternating)"],
                workload_rows,
            ),
        ]
    )
    report("fig03_multicast_savings", text)
