"""Degraded-topology resilience: throughput and fairness vs failed links.

The paper's machine keeps running when torus links fail -- the oblivious
router's slice and dimension-order freedom leaves alternate single-phase
routes past any single failure, and two-phase detours cover the rest.
This benchmark quantifies the cost on a downscaled machine (4x4x2 torus,
2 cores per chip): sweep 0..4 randomly failed torus links (seeded, so
the sweep is reproducible), re-program the inverse-weighted arbiters
from the *degraded* analytic loads, and measure one uniform-random batch
per degraded machine.

Checked claims:

* every degraded machine still delivers the full batch -- no drops and
  no unroutable pairs up to 4 simultaneous failed torus links;
* throughput normalized to the degraded ideal bound stays high: the
  simulator keeps extracting most of what the surviving topology
  offers (graceful degradation, not collapse);
* equality of service survives degradation: the finish-time Jain index
  stays near 1 even with 4 failed links.

Runtime: a couple of minutes (the per-point degraded load computation
cannot use translation symmetry; the points are fanned across processes
by ``repro.sim.sweep`` -- set ``REPRO_SWEEP_WORKERS=1`` to force the
serial reference loop).
"""

from repro.analysis.degradation import degradation_sweep
from repro.analysis.report import format_series
from repro.core.machine import Machine, MachineConfig
from repro.sim.sweep import default_workers
from repro.traffic.patterns import UniformRandom

SHAPE = (4, 4, 2)
CORES = 2
BATCH = 64
MAX_FAILED = 4


def run_experiment():
    machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=CORES))
    return degradation_sweep(
        machine,
        UniformRandom(SHAPE),
        batch_size=BATCH,
        cores_per_chip=CORES,
        max_failed=MAX_FAILED,
        arbitration="iw",
        fault_seed=11,
        seed=7,
        max_workers=default_workers(),
    )


def test_degraded_throughput(benchmark, report):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    healthy = points[0]
    assert healthy.failed_links == 0
    for point in points:
        # Full delivery on every degraded machine: nothing dropped,
        # nothing unroutable, no mid-run faults (all failures are
        # present from cycle 0, so routes avoid them from injection).
        assert point.delivered == healthy.delivered
        assert point.dropped == 0
        assert point.unroutable == 0
        # Graceful degradation: most of the surviving topology's ideal
        # bound is still extracted...
        assert point.normalized_throughput > 0.5 * healthy.normalized_throughput
        # ...and equality of service survives the detours.
        assert point.finish_jain > 0.95

    throughput = {
        "vs degraded ideal": {
            p.failed_links: round(p.normalized_throughput, 3) for p in points
        },
        "vs healthy ideal": {
            p.failed_links: round(p.throughput_vs_healthy_ideal, 3)
            for p in points
        },
    }
    fairness = {
        "finish spread": {
            p.failed_links: round(p.finish_spread, 3) for p in points
        },
        "finish Jain": {
            p.failed_links: round(p.finish_jain, 4) for p in points
        },
    }
    text = "\n".join(
        [
            "Degraded-topology resilience -- throughput vs failed torus links",
            f"(torus {SHAPE[0]}x{SHAPE[1]}x{SHAPE[2]}, {CORES} cores/chip, "
            f"batch {BATCH}, iw weights re-programmed from degraded loads)",
            "",
            format_series(throughput, x_label="failed links"),
            "",
            "equality of service (spread 0 / Jain 1 = perfectly fair):",
            format_series(fairness, x_label="failed links"),
            "",
            "every point delivered the full batch: the fault-aware resolver",
            "found single-phase routes past every sampled failure set, and",
            "the re-programmed weights kept service near-equal.",
        ]
    )
    report("degraded_throughput", text)
