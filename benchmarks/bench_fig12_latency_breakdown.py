"""Figure 12: decomposition of the minimum inter-node message latency.

Walks the fastest one-hop route through the machine model and itemizes
the calibrated per-component latency model over it. Reproduced claims:

* minimum inter-node one-way latency about 99 ns;
* the network proper accounts for only ~40% of it (endpoint software
  and synchronization dominate);
* the router contributes its four pipeline stages (RC, VA, SA1, SA2).
"""

import pytest

from repro.analysis.report import format_table, side_by_side
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.models.latency import (
    LatencyModel,
    ROUTER_STAGES,
    aggregate_breakdown,
    minimum_internode_route,
    network_fraction,
)


def build():
    machine = Machine(MachineConfig(shape=(8, 4, 4), endpoints_per_chip=2))
    routes = RouteComputer(machine)
    model = LatencyModel()
    route = minimum_internode_route(machine, routes)
    return machine, model, route


def test_fig12_latency_breakdown(benchmark, report):
    machine, model, route = benchmark.pedantic(build, rounds=1, iterations=1)
    items = model.route_breakdown(machine, route)
    merged = aggregate_breakdown(items)
    total = sum(ns for _l, ns in merged)
    fraction = network_fraction(items)

    assert total == pytest.approx(99.0, rel=0.05)
    assert fraction == pytest.approx(0.40, abs=0.07)
    assert route.internode_hops == 1

    rows = [[label, round(ns, 2), f"{100 * ns / total:.1f}%"] for label, ns in merged]
    rows.append(["TOTAL", round(total, 2), "100.0%"])
    text = "\n".join(
        [
            "Figure 12 -- minimum inter-node latency decomposition",
            "",
            format_table(["component", "ns", "share"], rows),
            "",
            f"router pipeline stages modeled: {', '.join(ROUTER_STAGES)} "
            f"({model.router_ns:.2f} ns per router)",
            "",
            side_by_side(
                {"min one-way latency (ns)": 99.0, "network fraction": 0.40},
                {
                    "min one-way latency (ns)": round(total, 1),
                    "network fraction": round(fraction, 2),
                },
                "paper vs. measured",
            ),
        ]
    )
    report("fig12_latency_breakdown", text)
