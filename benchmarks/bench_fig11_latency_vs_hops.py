"""Figure 11: one-way message latency versus inter-node hop count.

Two reproductions:

* the calibrated latency model averaged over endpoint pairs at each hop
  distance, fitted to a line (paper: 80.7 ns + 39.1 ns/hop);
* the cycle-level simulator driving single packets through an idle
  network, checking latency is linear in hops (the figure's shape).
"""

import numpy as np
import pytest

from repro.analysis.report import format_series, side_by_side
from repro.core.geometry import all_coords, torus_hops
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.models.latency import LatencyModel, latency_vs_hops, linear_fit
from repro.sim.simulator import run_single_packet


def run_experiment():
    machine = Machine(MachineConfig(shape=(8, 4, 4), endpoints_per_chip=2))
    routes = RouteComputer(machine)
    model = LatencyModel()
    model_latencies = latency_vs_hops(machine, routes, model, max_pairs_per_distance=8)

    sim_latencies = {}
    src_ep = machine.ep_id[((0, 0, 0), 0)]
    for dst_chip in all_coords(machine.config.shape):
        hops = torus_hops((0, 0, 0), dst_chip, machine.config.shape)
        if hops == 0 or hops in sim_latencies or hops > 8:
            continue
        dst_ep = machine.ep_id[(dst_chip, 0)]
        sim_latencies[hops] = run_single_packet(machine, routes, src_ep, dst_ep)
    return model_latencies, sim_latencies


def test_fig11_latency_vs_hops(benchmark, report):
    model_latencies, sim_latencies = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    intercept, slope = linear_fit(model_latencies)

    # --- the paper's claims ---
    assert slope == pytest.approx(39.1, rel=0.10)
    assert intercept > 50.0
    # Simulated latency is linear in hops: residuals of a line fit stay
    # below half a hop's increment.
    hops = np.array(sorted(sim_latencies))
    cycles = np.array([sim_latencies[h] for h in hops])
    sim_slope, sim_intercept = np.polyfit(hops, cycles, 1)
    residuals = cycles - (sim_slope * hops + sim_intercept)
    assert np.max(np.abs(residuals)) < 0.5 * sim_slope
    assert sim_slope > 0

    series = {
        "model (ns)": {h: round(v, 1) for h, v in model_latencies.items()},
        "simulator (cycles)": dict(sim_latencies),
    }
    text = "\n".join(
        [
            "Figure 11 -- one-way latency vs. inter-node hops",
            "",
            format_series(series, x_label="hops"),
            "",
            f"model fit: {intercept:.1f} ns + {slope:.1f} ns/hop",
            f"simulator fit: {sim_intercept:.1f} + {sim_slope:.1f} cycles/hop",
            "",
            side_by_side(
                {"fixed overhead (ns)": 80.7, "per-hop (ns)": 39.1},
                {
                    "fixed overhead (ns)": round(intercept, 1),
                    "per-hop (ns)": round(slope, 1),
                },
                "paper linear fit vs. measured",
            ),
            "",
            "note: the intercept runs ~13% low because it depends on the",
            "average on-chip path length between endpoints, which depends",
            "on the unpublished endpoint-adapter placement (DESIGN.md S3).",
        ]
    )
    report("fig11_latency_vs_hops", text)
