"""Figure 13: router energy per flit versus injection rate.

Reproduces the measurement methodology end to end: bit-level flit streams
for the three payload patterns (all zeros, all ones, random) at maximal
activation rate, per-hop energy recovered by the 35-hop minus 3-hop route
subtraction, and a least-squares fit recovering the published model

    E = 42.7 + 0.837 h + (34.4 + 0.250 n)(a / r)  pJ.

Reproduced claims: random > ones > zeros ordering, flat energy up to
r = 0.5 followed by a decline (the a/r knee), and coefficient recovery.
"""

import pytest

from repro.analysis.report import format_series, side_by_side
from repro.models.energy import (
    EnergyModel,
    energy_curve,
    fit_model,
    synthesize_measurements,
)

RATES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def run_experiment():
    model = EnergyModel()
    curves = {
        pattern: dict(energy_curve(model, pattern, RATES, seed=3))
        for pattern in ("zeros", "ones", "random")
    }
    measurements = synthesize_measurements(model, rates=RATES, noise_pj=0.4, seed=5)
    fitted = fit_model(measurements)
    return curves, fitted


def test_fig13_router_energy(benchmark, report):
    curves, fitted = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    model = EnergyModel()

    # --- the paper's claims ---
    for rate in RATES:
        assert curves["random"][rate] > curves["ones"][rate] > curves["zeros"][rate]
    # The a/r knee: flat below half rate, falling beyond it.
    assert curves["ones"][0.1] == pytest.approx(curves["ones"][0.5], rel=0.03)
    assert curves["ones"][0.9] < curves["ones"][0.5]
    # Coefficients recovered from noisy synthetic measurements.
    assert fitted.fixed_pj == pytest.approx(model.fixed_pj, abs=2.0)
    assert fitted.per_bitflip_pj == pytest.approx(model.per_bitflip_pj, abs=0.05)
    assert fitted.activation_fixed_pj == pytest.approx(
        model.activation_fixed_pj, abs=3.0
    )
    assert fitted.activation_per_setbit_pj == pytest.approx(
        model.activation_per_setbit_pj, abs=0.05
    )

    series = {
        pattern: {rate: round(curves[pattern][rate], 1) for rate in RATES}
        for pattern in ("zeros", "ones", "random")
    }
    text = "\n".join(
        [
            "Figure 13 -- router energy per flit (pJ) vs. injection rate",
            "(3-hop vs. 35-hop route subtraction; maximal activation rate)",
            "",
            format_series(series, x_label="rate"),
            "",
            side_by_side(
                {
                    "fixed (pJ)": 42.7,
                    "per bit flip (pJ)": 0.837,
                    "activation fixed (pJ)": 34.4,
                    "activation per set bit (pJ)": 0.250,
                },
                {
                    "fixed (pJ)": round(fitted.fixed_pj, 2),
                    "per bit flip (pJ)": round(fitted.per_bitflip_pj, 4),
                    "activation fixed (pJ)": round(fitted.activation_fixed_pj, 2),
                    "activation per set bit (pJ)": round(
                        fitted.activation_per_setbit_pj, 4
                    ),
                },
                "paper model vs. coefficients refit from noisy measurements",
            ),
        ]
    )
    report("fig13_router_energy", text)
