"""Table 2: network area by category and component.

Regenerates the category breakdown from structure. Reproduced claims:

* queues dominate (46.6% of network area) -- and their area tracks the
  VC count, which is why the Section 2.5 VC reduction matters;
* the inverse-weighted arbiters are the smallest category (5.4%), about
  three-quarters of which is accumulator/weight storage and update.
"""

import pytest

from repro.analysis.report import format_table
from repro.models.area import AreaModel, CATEGORIES, COMPONENTS

PAPER = {
    "Queues": (21.2, 2.7, 22.7, 46.6),
    "Reduction": (0.0, 0.0, 9.6, 9.6),
    "Link": (0.0, 0.0, 8.9, 8.9),
    "Configuration": (3.3, 2.5, 2.8, 8.6),
    "Debug": (3.0, 2.5, 2.3, 7.8),
    "Miscellaneous": (4.3, 1.0, 2.0, 7.3),
    "Multicast": (0.0, 3.2, 2.5, 5.7),
    "Arbiters": (5.2, 0.1, 0.2, 5.4),
}


def build_table():
    model = AreaModel()
    return model, model.table2()


def test_table2_area_categories(benchmark, report):
    model, table = benchmark.pedantic(build_table, rounds=1, iterations=1)

    for category, row in PAPER.items():
        for component, expected in zip(COMPONENTS, row[:3]):
            assert table[category][component] == pytest.approx(expected, abs=1.0)
        assert table[category]["Total"] == pytest.approx(row[3], abs=1.0)
    assert model.arbiter_accumulator_fraction() == pytest.approx(0.75, abs=0.05)

    rows = []
    for category in CATEGORIES:
        measured = table[category]
        rows.append(
            [
                category,
                round(measured["Router"], 1),
                round(measured["Endpoint"], 1),
                round(measured["Channel"], 1),
                round(measured["Total"], 1),
                PAPER[category][3],
            ]
        )
    text = "\n".join(
        [
            "Table 2 -- network area by category (% of network area)",
            "",
            format_table(
                ["category", "router", "endpoint", "channel", "total", "paper total"],
                rows,
            ),
            "",
            f"arbiter area in accumulators/weights/update: "
            f"{model.arbiter_accumulator_fraction() * 100:.0f}% (paper: ~75%)",
        ]
    )
    report("table2_area_categories", text)
