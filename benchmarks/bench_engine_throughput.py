"""Engine-throughput microbenchmark: the repo's perf-regression anchor.

Measures the cycle-level engine's raw scheduling throughput -- simulated
cycles per wall-clock second, scheduler events per second, and delivered
packets per second -- on three canonical configurations chosen to pin the
three hot paths:

* ``uniform_4x4x2_sat`` -- uniform random batch at saturation with
  round-robin arbitration: the SA1/SA2 arbitration scan and the
  credit/arrival event path (the acceptance config for engine perf work);
* ``tornado_4x4x1_iw`` -- tornado with inverse-weighted arbitration at
  both stages: the weight-table arbiter path under sustained torus
  serialization;
* ``faulted_4x4x2_reroute`` -- uniform batch with two scheduled mid-run
  link faults under the reroute policy: the fault gates on the hot path
  plus the sweep/re-route machinery;
* ``uniform_8x8x8_sat`` -- the same saturation workload at full Anton 2
  machine scale (512 nodes): the configuration where the vectorized
  fast path's per-cycle wins are largest;
* ``demand_4x4x2_hotspot`` -- an open-loop two-epoch hotspot demand
  matrix: staggered release cycles keep the source queues live across
  the whole run, exercising the wake/injection path the all-at-cycle-0
  batch configs never stress.

The benchmark honours ``REPRO_FASTPATH=1``: the engines it builds then
run the SoA fast path (:mod:`repro.sim.fastpath`) where eligible, the
result JSON carries a top-level ``"fastpath": true`` marker, and
``--check`` compares against the baseline's ``configs_fastpath`` section
instead of ``configs``. The committed ``BENCH_engine.json`` holds both
sections (the fastpath section is merged in by hand from a
``REPRO_FASTPATH=1`` run). The faulted config is unaffected either way:
fault runtimes are scalar-only, so it measures the same path twice.

Because the engine is bit-deterministic, every run of a config simulates
*exactly* the same cycles and events; only the wall time varies. Each
config is run ``--repeat`` times and the fastest run is kept (the usual
microbenchmark convention: minimum wall time has the least scheduler
noise).

Usage::

    python benchmarks/bench_engine_throughput.py --out BENCH_engine.json
    python benchmarks/bench_engine_throughput.py --check BENCH_engine.json

``--check`` re-measures and soft-gates against a committed baseline:
exit status 2 (and a GitHub-annotation-formatted warning) if any config's
cycles/sec *or* events/sec fell more than ``--tolerance`` (default 30%)
below the baseline. CI runs this as a non-blocking perf-smoke job.

``--sharded`` adds a ``configs_sharded`` section measuring
``uniform_8x8x8_sat`` decomposed over the conservative-lookahead shard
runner (:mod:`repro.sim.shard`) at shard counts 1/2/4. Sharded entries
time the steady-state *window phase* (barrier loop through final stats
merge), excluding per-worker setup, and every sharded run is verified
bit-identical to the serial anchor before its rate is reported. The
section records ``cpu_count``: shard workers are OS processes, so the
window phase only speeds up when the host has as many cores as shards.
The gate for this section is structural and soft -- on a >= 4-core host,
4 shards must deliver >= 3x the serial window rate; single-core hosts
(like some CI runners) compare only against their own committed
baseline numbers.

"events" counts scheduler work items: every departure schedules one
arrival and (directly or at delivery) one credit return, so a run
processes ``2 * total_departs`` timing-wheel events, where
``total_departs = sum(channel_flits) / size_flits``. The count is derived
from the (deterministic) run statistics rather than a hot-loop counter,
so measuring it costs nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.engine import Engine
from repro.sim.simulator import arbiter_builder_for, make_vc_weight_tables, make_weight_tables
from repro.sim.stats import SimStats
from repro.traffic.batch import BatchSpec, generate_batch

BENCH_SCHEMA_VERSION = 1

#: Default committed-baseline location (repo root).
DEFAULT_BASELINE = "BENCH_engine.json"


def _uniform_4x4x2_sat() -> Tuple[Callable[[], Engine], List]:
    from repro.traffic.patterns import UniformRandom

    machine = Machine(MachineConfig(shape=(4, 4, 2), endpoints_per_chip=2))
    routes = RouteComputer(machine)
    spec = BatchSpec(
        UniformRandom((4, 4, 2)), packets_per_source=64, cores_per_chip=2, seed=1
    )
    packets = generate_batch(machine, routes, spec)
    return (lambda: Engine(machine)), packets


def _tornado_4x4x1_iw() -> Tuple[Callable[[], Engine], List]:
    from repro.traffic.patterns import Tornado

    machine = Machine(MachineConfig(shape=(4, 4, 1), endpoints_per_chip=2))
    routes = RouteComputer(machine)
    pattern = Tornado((4, 4, 1))
    spec = BatchSpec(pattern, packets_per_source=64, cores_per_chip=2, seed=2)
    packets = generate_batch(machine, routes, spec)
    weight_tables = make_weight_tables(machine, routes, [pattern], 2)
    vc_weight_tables = make_vc_weight_tables(machine, routes, [pattern], 2)
    builder = arbiter_builder_for("iw", weight_tables)
    vc_builder = arbiter_builder_for("iw", vc_weight_tables)
    return (
        lambda: Engine(machine, arbiter_builder=builder, vc_arbiter_builder=vc_builder)
    ), packets


def _faulted_4x4x2_reroute() -> Tuple[Callable[[], Engine], List]:
    from repro.faults import FaultRuntime, FaultSet, FaultSpec
    from repro.faults.model import failable_channels
    from repro.traffic.patterns import UniformRandom

    machine = Machine(MachineConfig(shape=(4, 4, 2), endpoints_per_chip=2))
    torus = failable_channels(machine)
    fault_set = FaultSet(
        specs=(
            FaultSpec(kind="link", channel=torus[3], down_cycle=40),
            FaultSpec(
                kind="link",
                channel=torus[len(torus) // 2],
                down_cycle=80,
                up_cycle=160,
            ),
        ),
        shape=(4, 4, 2),
        note="engine-throughput bench",
    )

    def build() -> Engine:
        # The runtime holds mutable per-run state (the fault-aware route
        # cache), so each repetition gets a fresh one.
        runtime = FaultRuntime(machine, fault_set)
        return Engine(machine, faults=runtime)

    probe = FaultRuntime(machine, fault_set)
    routes = probe.route_computer
    spec = BatchSpec(
        UniformRandom((4, 4, 2)), packets_per_source=48, cores_per_chip=2, seed=3
    )
    packets = generate_batch(machine, routes, spec)
    return build, packets


def _uniform_8x8x8_sat() -> Tuple[Callable[[], Engine], List]:
    from repro.traffic.patterns import UniformRandom

    machine = Machine(MachineConfig(shape=(8, 8, 8), endpoints_per_chip=2))
    routes = RouteComputer(machine)
    spec = BatchSpec(
        UniformRandom((8, 8, 8)), packets_per_source=8, cores_per_chip=2, seed=4
    )
    packets = generate_batch(machine, routes, spec)
    return (lambda: Engine(machine)), packets


def _uniform_mesh_6x6_sat() -> Tuple[Callable[[], Engine], List]:
    from repro.traffic.patterns import UniformRandom

    machine = Machine(
        MachineConfig(shape=(6, 6), endpoints_per_chip=2, topology="mesh")
    )
    routes = RouteComputer(machine)
    spec = BatchSpec(
        UniformRandom(machine.config.shape),
        packets_per_source=32,
        cores_per_chip=2,
        seed=6,
    )
    packets = generate_batch(machine, routes, spec)
    return (lambda: Engine(machine)), packets


def _demand_4x4x2_hotspot() -> Tuple[Callable[[], Engine], List]:
    from repro.traffic.demand import (
        DemandMatrix,
        DemandSchedule,
        DemandSpec,
        generate_demand,
    )

    machine = Machine(MachineConfig(shape=(4, 4, 2), endpoints_per_chip=2))
    routes = RouteComputer(machine)
    matrices = [
        DemandMatrix.hotspot(
            (4, 4, 2), rate=0.6, hotspots=2, hot_fraction=0.6, seed=k
        )
        for k in range(2)
    ]
    spec = DemandSpec(
        demand=DemandSchedule.from_matrices(matrices, 64),
        cores_per_chip=2,
        mode="open",
        duration_cycles=128,
        injection="bernoulli",
        seed=5,
    )
    packets = generate_demand(machine, routes, spec)
    return (lambda: Engine(machine)), packets


#: name -> (workload factory, human description). Factories are called
#: once; each repetition re-clones packets into a fresh engine.
CONFIGS: Dict[str, Tuple[Callable, str]] = {
    "uniform_4x4x2_sat": (
        _uniform_4x4x2_sat,
        "uniform batch x64, 4x4x2, rr (saturation; the acceptance config)",
    ),
    "tornado_4x4x1_iw": (
        _tornado_4x4x1_iw,
        "tornado batch x64, 4x4x1, inverse-weighted both stages",
    ),
    "faulted_4x4x2_reroute": (
        _faulted_4x4x2_reroute,
        "uniform batch x48, 4x4x2, 2 scheduled link faults, reroute policy",
    ),
    "uniform_8x8x8_sat": (
        _uniform_8x8x8_sat,
        "uniform batch x8, 8x8x8 (512 nodes), rr (full machine scale)",
    ),
    "demand_4x4x2_hotspot": (
        _demand_4x4x2_hotspot,
        "open-loop hotspot demand r0.6, 2 epochs x64 cycles, 4x4x2, rr",
    ),
    # Absent from BENCH_engine.json on purpose: check_against ignores
    # configs present on only one side, so this leg measures the mesh
    # topology without perturbing the committed torus baseline.
    "uniform_mesh_6x6_sat": (
        _uniform_mesh_6x6_sat,
        "uniform batch x32, 6x6 standalone mesh, rr (line-dimension leg)",
    ),
}


def fastpath_active() -> bool:
    """Whether engines built by this benchmark will use the SoA fast path."""
    return os.environ.get("REPRO_FASTPATH", "") not in ("", "0")


def _clone_packets(packets: List) -> List:
    """Fresh Packet objects for one repetition (engines mutate packets)."""
    from repro.sim.packet import Packet

    clones = []
    for p in packets:
        clone = Packet(
            p.pid,
            p.route,
            size_flits=p.size_flits,
            pattern=p.pattern,
            traffic_class=p.traffic_class,
            release_cycle=p.release_cycle,
        )
        clones.append(clone)
    return clones


def _scheduler_events(stats: SimStats, size_flits: int = 1) -> int:
    total_departs = sum(stats.channel_flits.values()) // size_flits
    return 2 * total_departs


def run_config(name: str, repeat: int = 3) -> dict:
    """Measure one config; returns its result record (deterministic
    counts, minimum wall time over ``repeat`` runs)."""
    factory, description = CONFIGS[name]
    make_engine, packets = factory()
    best_wall: Optional[float] = None
    stats: Optional[SimStats] = None
    for _ in range(repeat):
        engine = make_engine()
        batch = _clone_packets(packets)
        start = time.perf_counter()
        for packet in batch:
            engine.enqueue(packet)
        run_stats = engine.run()
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
        stats = run_stats
    assert stats is not None and best_wall is not None
    events = _scheduler_events(stats)
    return {
        "description": description,
        "cycles": stats.end_cycle,
        "delivered": stats.delivered,
        "events": events,
        "wall_s": round(best_wall, 6),
        "cycles_per_s": round(stats.end_cycle / best_wall, 1),
        "events_per_s": round(events / best_wall, 1),
        "packets_per_s": round(stats.delivered / best_wall, 1),
    }


#: Shard counts measured by the sharded section (1 is the serial anchor).
SHARDED_COUNTS = (1, 2, 4)


def run_sharded_config(repeat: int = 3, transport: str = "process") -> dict:
    """Measure ``uniform_8x8x8_sat`` decomposed over the shard runner.

    The serial anchor (``shards=1``) is timed like every other config:
    enqueue plus run. Sharded entries time the *window phase* only -- the
    conservative-lookahead barrier loop from all-workers-ready through
    the final stats merge -- because per-worker setup (workload
    generation, engine build) is a fixed cost that amortizes over long
    interactive runs, while the window phase is the part that scales
    with cores. ``cpu_count`` is recorded alongside: shard workers
    time-slice on a single-core host, so real speedup needs as many
    cores as shards. Every sharded run is also checked bit-identical to
    the serial anchor -- a throughput number from a divergent simulation
    would be meaningless.
    """
    from repro.sim.shard import ShardedRun, run_sharded
    from repro.traffic.patterns import UniformRandom

    config = MachineConfig(shape=(8, 8, 8), endpoints_per_chip=2)
    spec = BatchSpec(
        UniformRandom((8, 8, 8)), packets_per_source=8, cores_per_chip=2, seed=4
    )
    machine = Machine(config)
    run = ShardedRun(config=config, spec=spec)

    entries: Dict[str, dict] = {}
    serial_rate: Optional[float] = None
    serial_dict: Optional[dict] = None
    for shards in SHARDED_COUNTS:
        best_wall: Optional[float] = None
        stats = None
        for _ in range(repeat):
            if shards == 1:
                timings: Optional[dict] = None
                start = time.perf_counter()
                stats = run_sharded(run, 1, machine=machine)
                wall = time.perf_counter() - start
            else:
                timings = {}
                stats = run_sharded(
                    run, shards, machine=machine,
                    transport=transport, timings=timings,
                )
                wall = timings["windows_s"]
            if best_wall is None or wall < best_wall:
                best_wall = wall
        assert stats is not None and best_wall is not None
        if shards == 1:
            serial_dict = stats.asdict()
            serial_rate = stats.end_cycle / best_wall
        elif stats.asdict() != serial_dict:
            raise RuntimeError(
                f"sharded run (shards={shards}) diverged from the serial "
                f"oracle; refusing to report throughput for a wrong answer"
            )
        rate = stats.end_cycle / best_wall
        entries[str(shards)] = {
            "cycles": stats.end_cycle,
            "delivered": stats.delivered,
            "wall_s": round(best_wall, 6),
            "cycles_per_s": round(rate, 1),
            "speedup_vs_serial": round(rate / serial_rate, 3),
        }
    return {
        "description": (
            "uniform batch x8, 8x8x8, rr, sharded over the conservative-"
            "lookahead runner (window-phase wall; shards=1 is the serial "
            "anchor)"
        ),
        "transport": transport,
        "cpu_count": os.cpu_count(),
        "shards": entries,
    }


def run_all(
    repeat: int = 3,
    configs: Optional[List[str]] = None,
    sharded: bool = False,
) -> dict:
    names = configs or list(CONFIGS)
    results = {name: run_config(name, repeat) for name in names}
    out = {
        "schema": BENCH_SCHEMA_VERSION,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "repeat": repeat,
        "fastpath": fastpath_active(),
        "configs": results,
    }
    if sharded:
        out["configs_sharded"] = {
            "uniform_8x8x8_sat_sharded": run_sharded_config(repeat=repeat)
        }
    return out


def check_against(baseline: dict, fresh: dict, tolerance: float) -> List[str]:
    """Compare a fresh measurement against a committed baseline.

    Returns a list of regression messages (empty = within tolerance).
    Configs present in only one of the two are ignored: adding a config
    must not fail the gate retroactively. A fresh result measured with
    the fast path enabled is compared against the baseline's
    ``configs_fastpath`` section, never against the scalar numbers.
    """
    section = "configs_fastpath" if fresh.get("fastpath") else "configs"
    problems = []
    for name, base in baseline.get(section, {}).items():
        new = fresh.get("configs", {}).get(name)
        if new is None:
            continue
        for metric, unit in (("cycles_per_s", "cycles/s"), ("events_per_s", "events/s")):
            base_rate = base.get(metric)
            new_rate = new.get(metric)
            if base_rate is None or new_rate is None:
                continue
            if new_rate < (1.0 - tolerance) * base_rate:
                problems.append(
                    f"{name}: {new_rate:,.0f} {unit} is "
                    f"{100 * (1 - new_rate / base_rate):.0f}% below the "
                    f"baseline {base_rate:,.0f} {unit} "
                    f"(tolerance {100 * tolerance:.0f}%)"
                )
    problems.extend(_check_sharded(baseline, fresh, tolerance))
    return problems


def _check_sharded(baseline: dict, fresh: dict, tolerance: float) -> List[str]:
    """Soft-gate the sharded section (when both sides measured it).

    Two kinds of message: per-shard-count cycles/s regression against
    the committed baseline (same factor tolerance as the scalar
    configs), and a structural check encoding the acceptance target --
    on a host with at least 4 cores, 4 shards should deliver >= 3x the
    serial window rate. Hosts with fewer cores than shards skip the
    structural check: workers time-slice one core there, so the ratio
    measures scheduler overhead, not the decomposition.
    """
    problems: List[str] = []
    for name, base in baseline.get("configs_sharded", {}).items():
        new = fresh.get("configs_sharded", {}).get(name)
        if new is None:
            continue
        for count, base_rec in base.get("shards", {}).items():
            new_rec = new.get("shards", {}).get(count)
            if new_rec is None:
                continue
            base_rate = base_rec["cycles_per_s"]
            new_rate = new_rec["cycles_per_s"]
            if new_rate < (1.0 - tolerance) * base_rate:
                problems.append(
                    f"{name}[shards={count}]: {new_rate:,.0f} cycles/s is "
                    f"{100 * (1 - new_rate / base_rate):.0f}% below the "
                    f"baseline {base_rate:,.0f} cycles/s "
                    f"(tolerance {100 * tolerance:.0f}%)"
                )
        cores = new.get("cpu_count") or 0
        four = new.get("shards", {}).get("4")
        if cores >= 4 and four is not None and four["speedup_vs_serial"] < 3.0:
            problems.append(
                f"{name}: 4-shard window-phase speedup is "
                f"{four['speedup_vs_serial']:.2f}x on a {cores}-core host "
                f"(target >= 3x)"
            )
    return problems


def _format_table(result: dict) -> str:
    lines = [
        f"{'config':26s} {'cycles':>8s} {'wall_s':>8s} "
        f"{'cycles/s':>10s} {'events/s':>10s} {'packets/s':>10s}"
    ]
    for name, rec in result["configs"].items():
        lines.append(
            f"{name:26s} {rec['cycles']:8d} {rec['wall_s']:8.3f} "
            f"{rec['cycles_per_s']:10,.0f} {rec['events_per_s']:10,.0f} "
            f"{rec['packets_per_s']:10,.0f}"
        )
    for name, rec in result.get("configs_sharded", {}).items():
        lines.append(
            f"{name} (window phase, {rec['cpu_count']} cpu(s), "
            f"{rec['transport']} transport):"
        )
        for count, sub in rec["shards"].items():
            lines.append(
                f"  shards={count:3s} {sub['cycles']:8d} {sub['wall_s']:8.3f} "
                f"{sub['cycles_per_s']:10,.0f}  "
                f"speedup {sub['speedup_vs_serial']:.2f}x"
            )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write results JSON here")
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="soft-gate against a committed baseline JSON (exit 2 on regression)",
    )
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--configs", nargs="+", choices=list(CONFIGS), default=None
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional cycles/sec drop before the gate trips",
    )
    parser.add_argument(
        "--soft",
        action="store_true",
        help="report regressions (warnings) but always exit 0 -- for CI "
        "runners whose wall-clock noise exceeds the tolerance",
    )
    parser.add_argument(
        "--sharded",
        action="store_true",
        help="also measure the uniform_8x8x8_sat_sharded section "
        "(shard counts 1/2/4 over the conservative-lookahead runner; "
        "slow -- spawns worker processes per shard count)",
    )
    args = parser.parse_args(argv)

    result = run_all(
        repeat=args.repeat, configs=args.configs, sharded=args.sharded
    )
    print(_format_table(result))

    if args.out:
        with open(args.out, "w") as stream:
            json.dump(result, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)

    if args.check:
        with open(args.check) as stream:
            baseline = json.load(stream)
        problems = check_against(baseline, result, args.tolerance)
        if problems:
            for problem in problems:
                # GitHub Actions annotation format; harmless elsewhere.
                print(f"::warning title=perf regression::{problem}")
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 0 if args.soft else 2
        print(f"within {100 * args.tolerance:.0f}% of {args.check}: ok")
    return 0


# --- pytest entry point (smoke: one fast config, sanity thresholds) ----------


def test_engine_throughput_smoke(report):
    result = run_all(repeat=1, configs=["uniform_4x4x2_sat"])
    rec = result["configs"]["uniform_4x4x2_sat"]
    # Deterministic counts: the run always simulates the same cycles.
    assert rec["delivered"] == 4096
    assert rec["cycles"] > 0 and rec["events"] > 0
    report("engine_throughput_smoke", _format_table(result))


if __name__ == "__main__":
    sys.exit(main())
