"""Table 1: die-area contribution of the network component types.

Regenerates the table from the structural area model (queue geometry,
arbiter gate counts, multicast tables, calibrated fixed categories).
Reproduced claims: router 3.4%, endpoint adapters 1.1%, channel adapters
4.7%, and a network total under 10% of the die.
"""

import pytest

from repro.analysis.report import format_table
from repro.models.area import AreaModel

PAPER = {"Router": (16, 3.4), "Endpoint": (23, 1.1), "Channel": (12, 4.7)}


def build_table():
    model = AreaModel()
    return model, model.table1(), model.component_counts()


def test_table1_component_area(benchmark, report):
    model, table, counts = benchmark.pedantic(build_table, rounds=1, iterations=1)

    for component, (count, pct) in PAPER.items():
        assert counts[component] == count
        assert table[component] == pytest.approx(pct, abs=0.3)
    assert sum(table.values()) < 10.0

    rows = [
        [
            {"Router": "Router", "Endpoint": "Endpoint adapter", "Channel": "Channel adapter"}[c],
            counts[c],
            round(table[c], 2),
            PAPER[c][1],
        ]
        for c in ("Router", "Endpoint", "Channel")
    ]
    rows.append(["TOTAL", sum(counts.values()), round(sum(table.values()), 2), 9.2])
    text = "\n".join(
        [
            "Table 1 -- network component contributions to die area",
            "",
            format_table(
                ["component", "count", "% die (measured)", "% die (paper)"], rows
            ),
            "",
            "paper: less than 10% of the ASIC's total die area is network.",
        ]
    )
    report("table1_component_area", text)
