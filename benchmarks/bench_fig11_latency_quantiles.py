"""Figure 11/12-style latency *distributions* versus offered load.

The paper reports latency means; its distributions (and the queueing
blow-up that drives the Figure 9 saturation story) live in the tails.
This benchmark sweeps open-loop load fractions and reports the streamed
p50/p95/p99 latency quantiles from the engine's deterministic
:class:`~repro.sim.metrics.StreamingQuantile` estimator -- no per-packet
latency lists are retained, so the measurement scales to arbitrarily
long runs.

Reproduced claims (shape):

* at low load all quantiles sit near the zero-load latency and the
  distribution is tight (p99 within a few hops of p50);
* approaching saturation the tail detaches: p99 grows much faster than
  p50, the classic queueing-delay signature.
"""

from repro.analysis.latency_load import latency_vs_load
from repro.analysis.report import format_table
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.traffic.patterns import UniformRandom

SHAPE = (4, 2, 2)
CORES = 2
FRACTIONS = (0.2, 0.5, 0.8, 0.95)


def run_experiment():
    machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=CORES))
    routes = RouteComputer(machine)
    return latency_vs_load(
        machine,
        routes,
        UniformRandom(SHAPE),
        cores_per_chip=CORES,
        fractions_of_saturation=FRACTIONS,
        duration_cycles=2500,
        seed=11,
    )


def test_fig11_latency_quantiles(benchmark, report):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for point in points:
        # Quantiles are a nondecreasing function of rank, and the mean
        # sits inside the distribution's bulk.
        assert point.p50_latency_cycles <= point.p95_latency_cycles
        assert point.p95_latency_cycles <= point.p99_latency_cycles
        assert point.p50_latency_cycles <= point.mean_latency_cycles * 1.5
    low, high = points[0], points[-1]
    # The tail detaches near saturation: p99 grows by more than p50 does.
    assert (high.p99_latency_cycles - low.p99_latency_cycles) > (
        high.p50_latency_cycles - low.p50_latency_cycles
    )
    # Low-load distribution is tight; near-saturation it is not.
    low_spread = low.p99_latency_cycles - low.p50_latency_cycles
    high_spread = high.p99_latency_cycles - high.p50_latency_cycles
    assert high_spread > 2 * low_spread

    rows = [
        [
            f"{p.offered_load:.2f}",
            round(p.mean_latency_cycles, 1),
            round(p.p50_latency_cycles, 1),
            round(p.p95_latency_cycles, 1),
            round(p.p99_latency_cycles, 1),
            p.delivered,
        ]
        for p in points
    ]
    report(
        "fig11_latency_quantiles",
        format_table(
            ["fraction of saturation", "mean (cycles)", "p50", "p95", "p99",
             "packets"],
            rows,
            title="Latency quantiles vs. offered load "
            "(uniform random, round-robin, streamed estimator)",
        ),
    )
