"""Figure 9: throughput beyond saturation, round-robin vs inverse-weighted.

Runs the paper's batch experiment on a downscaled machine (8x2x2 torus,
4 cores per chip -- see EXPERIMENTS.md for the scale substitution) with
2-hop-neighbor and uniform random traffic, sweeping the batch size. As in
the paper, a *single* set of arbiter weights computed from the uniform
pattern's channel loads is used for all traffic patterns.

Reproduced claims (shape, not absolute scale):

* with round-robin arbiters, normalized throughput degrades as the batch
  size grows (sustained saturation compounds the per-arbiter unfairness
  into starvation -- visible in the finish-time spread);
* with inverse-weighted arbiters, throughput saturates high (~0.85-0.9)
  and stays there as the batch size increases;
* the weights need not match the measured pattern exactly: the
  uniform-derived weights also stabilize 2-hop-neighbor traffic.

Runtime: a couple of minutes (cycle-level simulation of 32 ASICs; the
points are fanned across processes by ``repro.sim.sweep`` -- set
``REPRO_SWEEP_WORKERS=1`` to force the serial reference loop).
"""

import pytest

from repro.analysis.report import format_series
from repro.analysis.throughput import throughput_vs_batch_size
from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.sweep import default_workers
from repro.traffic.patterns import NHopNeighbor, UniformRandom

SHAPE = (8, 2, 2)
CORES = 4
BATCH_SIZES = (64, 256, 512)


def run_experiment():
    machine = Machine(MachineConfig(shape=SHAPE, endpoints_per_chip=CORES))
    routes = RouteComputer(machine)
    uniform = UniformRandom(SHAPE)
    patterns = [uniform, NHopNeighbor(SHAPE, 2)]
    return throughput_vs_batch_size(
        machine,
        routes,
        patterns,
        batch_sizes=BATCH_SIZES,
        cores_per_chip=CORES,
        weight_pattern=uniform,  # one weight set for all patterns
        seed=7,
        max_workers=default_workers(),
    )


def test_fig09_saturation_throughput(benchmark, report):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    by_key = {
        (p.pattern, p.arbitration, p.batch_size): p for p in points
    }
    largest = max(BATCH_SIZES)
    for pattern in ("uniform", "2-hop-neighbor"):
        rr_large = by_key[(pattern, "rr", largest)]
        iw_large = by_key[(pattern, "iw", largest)]
        # Beyond saturation, inverse weighting wins on throughput...
        assert iw_large.normalized_throughput > rr_large.normalized_throughput
        # ...and dramatically on fairness (finish-time spread).
        assert iw_large.finish_spread < rr_large.finish_spread
        # Inverse-weighted throughput is maintained as batch size grows:
        # the largest batch is no worse than the mid-sweep value (small
        # tolerance for sampling noise). This is the paper's "maintain
        # this throughput as batch size increases".
        iw_values = [
            by_key[(pattern, "iw", b)].normalized_throughput
            for b in BATCH_SIZES[1:]
        ]
        assert iw_values[-1] > iw_values[0] - 0.05
        assert iw_values[-1] > 0.7
    # Round-robin uniform degrades from its peak as saturation persists.
    rr_uniform = [
        by_key[("uniform", "rr", b)].normalized_throughput for b in BATCH_SIZES
    ]
    assert rr_uniform[-1] < max(rr_uniform) - 0.05

    series = {}
    spread_series = {}
    for p in points:
        key = f"{p.pattern}/{p.arbitration}"
        series.setdefault(key, {})[p.batch_size] = round(
            p.normalized_throughput, 3
        )
        spread_series.setdefault(key, {})[p.batch_size] = round(
            p.finish_spread, 3
        )
    text = "\n".join(
        [
            "Figure 9 -- normalized throughput vs. batch size",
            f"(torus {SHAPE[0]}x{SHAPE[1]}x{SHAPE[2]}, {CORES} cores/chip; "
            "weights from uniform loads for all patterns)",
            "",
            format_series(series, x_label="batch"),
            "",
            "finish-time spread (0 = all sources finish together):",
            format_series(spread_series, x_label="batch"),
            "",
            "paper (8x8x8, 16 cores/chip): round-robin uniform falls below",
            "0.6 beyond saturation; inverse-weighted saturates near 0.9 and",
            "holds. Shape reproduced at reduced scale; see EXPERIMENTS.md.",
        ]
    )
    report("fig09_saturation_throughput", text)
