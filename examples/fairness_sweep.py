#!/usr/bin/env python3
"""Fairness beyond saturation: a miniature Figure 10.

Tornado traffic sends every node's packets k/2 - 1 hops around the X
rings; beyond saturation, locally fair round-robin arbiters starve the
nodes whose traffic merges last (the parking-lot effect), while the
inverse-weighted arbiters keep every source's share proportional to its
load. This example blends tornado with reverse tornado and measures four
arbiter-weight configurations, like the paper's Figure 10 but at demo
scale.

Run:  python examples/fairness_sweep.py          (~1-2 minutes; the
twelve points are fanned across processes by repro.sim.sweep -- set
REPRO_SWEEP_WORKERS=1 to force the serial reference loop)
"""

from repro import Machine, MachineConfig, ReverseTornado, RouteComputer, Tornado
from repro.analysis import blend_sweep, format_series
from repro.sim.sweep import default_workers


def main() -> None:
    config = MachineConfig(shape=(8, 2, 2), endpoints_per_chip=4)
    machine = Machine(config)
    routes = RouteComputer(machine)
    forward = Tornado(config.shape)
    reverse = ReverseTornado(config.shape)
    workers = default_workers()
    print(machine.describe())
    print(f"tornado offset: {forward.offset} (X rings of 8)")
    print(f"running blend sweep (fractions 1.0 / 0.5 / 0.0, batch 128, "
          f"{workers} workers)...")

    points = blend_sweep(
        machine, routes, forward, reverse,
        fractions=(1.0, 0.5, 0.0),
        batch_size=128,
        cores_per_chip=4,
        max_workers=workers,
    )
    series = {}
    for point in points:
        fraction = float(point.pattern.split()[0])
        series.setdefault(point.arbitration, {})[fraction] = (
            point.normalized_throughput
        )
    print()
    print(format_series(
        series,
        x_label="tornado fraction",
        title="Normalized throughput vs. blend (cf. Figure 10)",
    ))
    print()
    print("Expected shape: 'none' (round-robin) lowest everywhere;")
    print("'forward'/'reverse' good only at their own end of the blend;")
    print("'both' (two weight sets, packets labeled by pattern) flat and high.")


if __name__ == "__main__":
    main()
