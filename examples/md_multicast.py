#!/usr/bin/env python3
"""MD particle broadcast over multicast trees (Section 2.3, Figure 3).

Molecular dynamics broadcasts each particle's position to the import
regions of neighboring nodes every timestep. This example builds the
multicast destination sets and trees for an 8x8x8 machine, verifies that
every root-to-leaf path is a valid unicast route (the property that keeps
multicast deadlock-free), and quantifies the inter-node bandwidth saved
versus unicasts -- including the multiplying effect of per-node endpoint
fan-out and the load balance gained by alternating dimension orders.

Run:  python examples/md_multicast.py
"""

from repro.analysis import format_table
from repro.core.multicast import (
    endpoint_fanout_savings,
    figure3_example,
    directional_loads,
    max_directional_load,
    multicast_savings,
    verify_unicast_paths,
)
from repro.traffic.md import MdMulticastWorkload, import_region


def figure3_demo() -> None:
    shape = (8, 8, 1)
    tree_xy, tree_yx, destinations = figure3_example(shape)
    verify_unicast_paths(tree_xy, shape)
    verify_unicast_paths(tree_yx, shape)
    print(f"Figure 3 style example: {len(destinations)} destinations in a plane")
    print(f"  unicast torus hops : {tree_xy.torus_hops + multicast_savings(tree_xy, shape)}")
    print(f"  multicast hops (XY): {tree_xy.torus_hops} "
          f"(saves {multicast_savings(tree_xy, shape)})")
    print(f"  multicast hops (YX): {tree_yx.torus_hops} "
          f"(saves {multicast_savings(tree_yx, shape)})")
    single = max_directional_load(directional_loads([tree_xy], [1.0], shape))
    both = max_directional_load(
        directional_loads([tree_xy, tree_yx], [0.5, 0.5], shape)
    )
    print(f"  peak per-direction channel load: {single:.1f} (one route) -> "
          f"{both:.1f} (alternating routes)")
    print(f"  with 3 endpoint copies per node, one tree saves "
          f"{endpoint_fanout_savings(tree_xy, shape, 3)} hops")
    print()


def workload_demo() -> None:
    shape = (8, 8, 8)
    rows = []
    for method in ("full-shell", "half-shell"):
        workload = MdMulticastWorkload(shape, radius=1, method=method)
        region = import_region((0, 0, 0), shape, 1, method)
        stats = workload.aggregate_stats(particles_per_node=64)
        rows.append([
            method,
            len(region),
            workload.per_particle_savings((0, 0, 0)),
            f"{stats['savings_ratio'] * 100:.0f}%",
            stats["peak_direction_load_single"],
            stats["peak_direction_load_alternating"],
        ])
    print(format_table(
        [
            "import region",
            "destinations",
            "hops saved/particle",
            "bandwidth saved",
            "peak load (one order)",
            "peak load (alternating)",
        ],
        rows,
        title=f"MD broadcast workload on {shape[0]}x{shape[1]}x{shape[2]} "
              "(64 particles/node/timestep)",
    ))


def main() -> None:
    figure3_demo()
    workload_demo()


if __name__ == "__main__":
    main()
