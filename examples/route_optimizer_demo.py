#!/usr/bin/env python3
"""The on-chip routing-algorithm search (Section 2.4, Figure 4).

Evaluates all 24 direction-order routing algorithms against every
permutation switching demand among the external torus channels, verifies
the result against the linear-programming formulation, and prints the
worst-case permutation -- the paper's equation (1) -- together with the
mesh-channel loads it induces under the chosen algorithm.

Run:  python examples/route_optimizer_demo.py
"""

from repro.analysis import format_table
from repro.core.chip import default_floorplan
from repro.core.onchip import ANTON_DIRECTION_ORDER, direction_order_name
from repro.core.params import BandwidthBudget
from repro.core.route_search import (
    PAPER_WORST_CASE,
    format_permutation,
    permutation_mesh_loads,
    search_direction_orders,
)
from repro.core.worstcase_lp import worst_case_lp


def main() -> None:
    print("Searching 24 direction orders x 720 permutations...")
    result = search_direction_orders()
    rows = [
        [r.name, r.worst_load, r.num_worst, r.mean_max_load]
        for r in sorted(result.per_order, key=lambda r: r.rank_key)
    ]
    print(format_table(
        ["direction order", "worst load", "#worst perms", "mean max load"],
        rows[:6] + [["...", "", "", ""]] + rows[-3:],
        title="Direction-order algorithms ranked (best first)",
    ))
    anton_name = direction_order_name(ANTON_DIRECTION_ORDER)
    best_names = [r.name for r in result.best_orders]
    print(f"\npaper's order {anton_name} in the optimal class: "
          f"{anton_name in best_names} ({len(best_names)} orders tie)")

    lp = worst_case_lp()
    print(f"LP cross-check: worst-case load {lp.worst_load:.1f} "
          f"(enumeration: {result.best.worst_load:.1f})")

    print("\nThe common worst-case permutation (paper's equation (1)):")
    print(format_permutation(PAPER_WORST_CASE))
    loads = permutation_mesh_loads(default_floorplan(), PAPER_WORST_CASE)
    peak = max(loads.values())
    print(f"\npeak mesh-channel load under it: {peak:.0f} torus channels")
    budget = BandwidthBudget()
    print(f"one mesh channel carries {budget.torus_channels_per_mesh_channel:.2f} "
          f"torus channels of bandwidth, leaving "
          f"{budget.headroom_after_two_torus_channels_gbps:.0f} Gb/s of headroom "
          "for endpoint traffic (Section 2.4's conclusion)")


if __name__ == "__main__":
    main()
