#!/usr/bin/env python3
"""Quickstart: build a small Anton 2 machine and run traffic through it.

Builds a 4x4x4 torus of ASICs (each with its 4x4 on-chip mesh, skip
channels, and channel adapters), routes a single packet to show the
unified on-chip/inter-node path, then runs a uniform-random batch under
round-robin and inverse-weighted arbitration and compares normalized
throughput.

Run:  python examples/quickstart.py
"""

from repro import Machine, MachineConfig, RouteComputer, UniformRandom
from repro.analysis import format_table, measure_batch
from repro.core.routing import RouteChoice


def show_one_route(machine: Machine, routes: RouteComputer) -> None:
    """Print every hop of one unified-network route."""
    src = machine.ep_id[((0, 0, 0), 0)]
    dst = machine.ep_id[((2, 3, 1), 1)]
    route = routes.compute(src, dst, RouteChoice(slice_index=1))
    print(f"Route {machine.components[src]} -> {machine.components[dst]} "
          f"({route.internode_hops} inter-node hops, {len(route.hops)} channel hops):")
    for channel_id, vc in route.hops:
        channel = machine.channels[channel_id]
        print(f"  {channel.kind.name:13s} "
              f"{str(machine.components[channel.src]):>18s} -> "
              f"{str(machine.components[channel.dst]):<18s} vc={vc}")
    print()


def main() -> None:
    config = MachineConfig(shape=(4, 4, 4), endpoints_per_chip=4)
    machine = Machine(config)
    routes = RouteComputer(machine)
    print(machine.describe())
    print()

    show_one_route(machine, routes)

    pattern = UniformRandom(config.shape)
    print(f"Batch experiment: {pattern.name} traffic, 64 packets per core, "
          f"4 cores per chip")
    rows = []
    for arbitration in ("rr", "iw"):
        point = measure_batch(
            machine, routes, pattern,
            batch_size=64, cores_per_chip=4, arbitration=arbitration,
        )
        rows.append([
            arbitration,
            point.normalized_throughput,
            point.finish_spread,
            point.completion_cycles,
        ])
    print(format_table(
        ["arbitration", "norm. throughput", "finish spread", "cycles"], rows
    ))


if __name__ == "__main__":
    main()
