#!/usr/bin/env python3
"""Latency versus offered load: the hockey-stick curve.

The paper reports the two endpoints of this curve — zero-load latency
(Figures 11-12) and post-saturation throughput (Figures 9-10). This
example sweeps the region between them: open-loop injection at fractions
of the analytically predicted saturation rate, showing flat latency at
low load and the queueing blow-up at the knee.

Run:  python examples/latency_vs_load.py
"""

from repro import Machine, MachineConfig, RouteComputer, UniformRandom
from repro.analysis import format_table, latency_vs_load, saturation_rate
from repro.traffic.loads import compute_loads


def main() -> None:
    config = MachineConfig(shape=(4, 2, 2), endpoints_per_chip=2)
    machine = Machine(config)
    routes = RouteComputer(machine)
    pattern = UniformRandom(config.shape)
    table = compute_loads(machine, routes, pattern, cores_per_chip=2)
    rate = saturation_rate(machine, table)
    print(machine.describe())
    print(f"predicted saturation rate: {rate:.3f} packets/cycle/source "
          f"(busiest torus channel load {table.max_torus_load(machine):.2f} "
          f"x {float(config.torus_cycles_per_flit):.2f} cycles/flit)")
    print()
    points = latency_vs_load(
        machine, routes, pattern,
        cores_per_chip=2,
        fractions_of_saturation=(0.2, 0.4, 0.6, 0.8, 0.9, 0.98),
        duration_cycles=2500,
    )
    rows = [
        [
            f"{p.offered_load:.2f}",
            round(p.mean_latency_cycles, 1),
            round(p.p50_latency_cycles, 1),
            round(p.p95_latency_cycles, 1),
            round(p.p99_latency_cycles, 1),
            p.delivered,
        ]
        for p in points
    ]
    print(format_table(
        ["fraction of saturation", "mean (cycles)", "p50", "p95", "p99",
         "packets"],
        rows,
        title="Latency vs. offered load (uniform random, round-robin)",
    ))
    print()
    print("Expected shape: flat at low load, sharp knee near saturation.")


if __name__ == "__main__":
    main()
