#!/usr/bin/env python3
"""Throughput and fairness on a degraded machine.

An Anton 2 machine with failed torus links still routes -- the
fault-aware resolver re-picks among the surviving slices and dimension
orders, escalating to two-phase detours only when no single-phase route
survives -- but it pays for the failures twice: the surviving channels
carry more load (the ideal bound drops), and the detoured routes skew
the loads the inverse-weighted arbiters were programmed for (here the
weights are re-programmed from the degraded loads, as the Section 3.2
offline flow would after reconfiguring around a failure).

This example sweeps 0..4 failed torus links (seeded sampling, so the
sweep is reproducible), measures each degraded machine under uniform
random traffic, and prints throughput and equality-of-service deltas
against the healthy k=0 baseline.

Run:  python examples/degraded_throughput.py       (~1-2 minutes; the
points are fanned across processes by repro.sim.sweep -- set
REPRO_SWEEP_WORKERS=1 to force the serial reference loop)
"""

from repro import Machine, MachineConfig, UniformRandom
from repro.analysis import degradation_sweep
from repro.sim.sweep import default_workers

MAX_FAILED = 4


def main() -> None:
    config = MachineConfig(shape=(3, 3, 3), endpoints_per_chip=2)
    machine = Machine(config)
    pattern = UniformRandom(config.shape)
    workers = default_workers()
    print(machine.describe())
    print(f"running degradation sweep (0..{MAX_FAILED} failed torus links, "
          f"batch 32, iw arbitration, {workers} workers)...")
    print()

    points = degradation_sweep(
        machine,
        pattern,
        batch_size=32,
        cores_per_chip=2,
        max_failed=MAX_FAILED,
        arbitration="iw",
        fault_seed=11,
        max_workers=workers,
    )

    healthy = points[0]
    header = (f"{'links':>5s} {'throughput':>11s} {'vs healthy':>11s} "
              f"{'spread':>7s} {'d-spread':>9s} {'jain':>7s} {'cycles':>7s}")
    print(header)
    for point in points:
        d_tp = point.throughput_vs_healthy_ideal - healthy.normalized_throughput
        d_spread = point.finish_spread - healthy.finish_spread
        print(f"{point.failed_links:>5d} "
              f"{point.normalized_throughput:>11.3f} "
              f"{d_tp:>+11.3f} "
              f"{point.finish_spread:>7.3f} "
              f"{d_spread:>+9.3f} "
              f"{point.finish_jain:>7.4f} "
              f"{point.completion_cycles:>7d}")
    print()
    print("'throughput' is normalized to the *degraded* ideal (near-flat:")
    print("the simulator extracts what the surviving topology offers);")
    print("'vs healthy' is the end-to-end cost of the failures against the")
    print("healthy machine's ideal bound. Spread/Jain track equality of")
    print("service: detours concentrate load, so fairness erodes slowly")
    print("as links fail.")


if __name__ == "__main__":
    main()
