#!/usr/bin/env python3
"""One-way message latency versus hop count (Figures 11 and 12).

Reproduces the paper's ping-pong measurement two ways:

1. the calibrated per-component latency model applied to the machine's
   actual routes, averaged per hop distance and fitted to a line
   (paper: 80.7 ns + 39.1 ns/hop, minimum 99 ns, network ~40% of it);
2. the cycle-level simulator injecting single packets into an idle
   network, demonstrating that simulated latency is linear in hop count.

Run:  python examples/latency_pingpong.py
"""

import numpy as np

from repro import Machine, MachineConfig, RouteComputer
from repro.analysis import format_table
from repro.core.geometry import all_coords, torus_hops
from repro.models.latency import (
    LatencyModel,
    aggregate_breakdown,
    latency_vs_hops,
    linear_fit,
    minimum_internode_route,
    network_fraction,
)
from repro.sim.simulator import run_single_packet


def model_fit(machine: Machine, routes: RouteComputer) -> None:
    model = LatencyModel()
    latencies = latency_vs_hops(machine, routes, model, max_pairs_per_distance=8)
    intercept, slope = linear_fit(latencies)
    print("Latency model vs. inter-node hops (cf. Figure 11):")
    print(format_table(
        ["hops", "one-way ns"],
        [[h, latencies[h]] for h in sorted(latencies)],
    ))
    print(f"linear fit: {intercept:.1f} ns + {slope:.1f} ns/hop "
          f"(paper: 80.7 + 39.1)")
    print()

    route = minimum_internode_route(machine, routes)
    items = model.route_breakdown(machine, route)
    print("Minimum inter-node latency decomposition (cf. Figure 12):")
    print(format_table(["component", "ns"], aggregate_breakdown(items)))
    total = sum(ns for _l, ns in items)
    print(f"total {total:.1f} ns (paper: ~99); network fraction "
          f"{network_fraction(items) * 100:.0f}% (paper: ~40%)")
    print()


def simulated_linearity(machine: Machine, routes: RouteComputer) -> None:
    print("Cycle-level simulator, idle network, one packet per distance:")
    src_ep = machine.ep_id[((0, 0, 0), 0)]
    rows = []
    seen = set()
    for dst_chip in all_coords(machine.config.shape):
        hops = torus_hops((0, 0, 0), dst_chip, machine.config.shape)
        if hops == 0 or hops in seen or hops > 6:
            continue
        seen.add(hops)
        dst_ep = machine.ep_id[(dst_chip, 0)]
        cycles = run_single_packet(machine, routes, src_ep, dst_ep)
        rows.append([hops, cycles])
    rows.sort()
    print(format_table(["hops", "latency (cycles)"], rows))
    hops = np.array([r[0] for r in rows])
    cycles = np.array([r[1] for r in rows])
    slope, intercept = np.polyfit(hops, cycles, 1)
    print(f"simulated fit: {intercept:.1f} cycles + {slope:.1f} cycles/hop")


def main() -> None:
    config = MachineConfig(shape=(8, 4, 4), endpoints_per_chip=2)
    machine = Machine(config)
    routes = RouteComputer(machine)
    print(machine.describe())
    print()
    model_fit(machine, routes)
    simulated_linearity(machine, routes)


if __name__ == "__main__":
    main()
