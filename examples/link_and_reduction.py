#!/usr/bin/env python3
"""Two supporting substrates: the torus link layer and in-network reductions.

Section 2.2 attributes the gap between 112 Gb/s raw and 89.6 Gb/s
effective torus bandwidth to framing, error checking, and go-back-N
retransmission; Table 2 devotes 9.6% of the network's area to in-network
"Reduction" logic in the channel adapters. This example exercises both
models:

* derive the published effective bandwidth from the frame format and
  show how goodput and latency degrade as the frame error rate rises
  (errors cost window replays, never packets);
* build a machine-wide reduction tree, evaluate it functionally, and
  compare its completion time against endpoint-based reduction.

Run:  python examples/link_and_reduction.py
"""

from repro.analysis import format_table
from repro.core.geometry import all_coords
from repro.core.link import FrameFormat, effective_bandwidth_sweep
from repro.core.reduction import (
    bandwidth_saving,
    build_reduction_tree,
    endpoint_reduction_cycles,
    evaluate,
)


def link_demo() -> None:
    fmt = FrameFormat()
    print(f"frame: {fmt.payload_bits} payload + {fmt.coding_bits} coding + "
          f"{fmt.sequence_bits} seq + {fmt.crc_bits} CRC = {fmt.frame_bits} bits "
          f"(efficiency {fmt.efficiency:.0%})")
    print(f"112 Gb/s raw x {fmt.efficiency:.0%} = "
          f"{fmt.effective_gbps():.1f} Gb/s effective (paper: 89.6)")
    print()
    rows = []
    for rate, _bw, outcome in effective_bandwidth_sweep(
        (0.0, 0.001, 0.01, 0.05), num_frames=1500, seed=1
    ):
        rows.append([
            rate,
            round(outcome.goodput, 3),
            outcome.retransmissions,
            round(outcome.mean_latency, 1),
            outcome.max_latency,
        ])
    print(format_table(
        ["frame error rate", "goodput", "retransmissions",
         "mean latency (slots)", "max latency"],
        rows,
        title="Go-back-N under frame errors (window 32, RTT 16 slots)",
    ))
    print()


def reduction_demo() -> None:
    shape = (4, 4, 4)
    root = (0, 0, 0)
    sources = [c for c in all_coords(shape) if c != root]
    tree = build_reduction_tree(shape, root, sources)
    contributions = {s: float(sum(s)) for s in sources}
    outcome = evaluate(tree, contributions, "sum")
    endpoint_cycles = endpoint_reduction_cycles(tree, shape)
    print(f"machine-wide sum over {len(sources)} nodes of a 4x4x4 torus:")
    print(f"  result: {outcome.value:.0f} "
          f"(check: {sum(contributions.values()):.0f})")
    print(f"  tree: {tree.torus_hops} torus hops "
          f"(saves {bandwidth_saving(tree, shape)} vs unicasts), "
          f"{len(tree.combining_chips())} combining chips, "
          f"depth {tree.depth()} hops")
    print(f"  completion: {outcome.completion_cycles} cycles in-network vs "
          f"{endpoint_cycles} cycles at the root's endpoint "
          f"({endpoint_cycles / outcome.completion_cycles:.1f}x faster)")


def main() -> None:
    link_demo()
    reduction_demo()


if __name__ == "__main__":
    main()
