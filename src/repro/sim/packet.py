"""Packets as simulated by the cycle-level engine.

The Anton 2 network is optimized for fine-grained packets: the common case
is 16 bytes of payload plus 8 bytes of header -- exactly one 24-byte flit,
transferred over a mesh channel in a single cycle -- and the largest packet
is two flits (Section 2.1). The simulator therefore tracks packets (not
individual flits) and charges channels one cycle of occupancy per flit.

A packet's route, including every VC decision, is computed at injection
time by :class:`repro.core.routing.RouteComputer`; routing in Anton 2 is
oblivious, so this is behaviourally identical to hop-by-hop route
computation and considerably faster to simulate.
"""

from __future__ import annotations

from typing import Optional

from repro.core.routing import Route


class Packet:
    """One simulated packet.

    Satisfies the :class:`repro.arbiters.base.Request` protocol
    (``pattern`` and ``inject_cycle``), so packets are passed directly to
    arbiters as requests.
    """

    __slots__ = (
        "pid",
        "route",
        "size_flits",
        "pattern",
        "traffic_class",
        "release_cycle",
        "inject_cycle",
        "deliver_cycle",
        "hop_index",
        "next_hop",
        "ready_cycle",
        "retries",
        "drop_on_arrival",
    )

    def __init__(
        self,
        pid: int,
        route: Route,
        size_flits: int = 1,
        pattern: int = 0,
        traffic_class: int = 0,
        release_cycle: int = 0,
    ) -> None:
        if size_flits < 1:
            raise ValueError(f"packet size must be at least one flit, got {size_flits}")
        self.pid = pid
        self.route = route
        self.size_flits = size_flits
        self.pattern = pattern
        self.traffic_class = traffic_class
        #: Cycle at which the packet becomes available at its source queue.
        self.release_cycle = release_cycle
        #: Cycle at which the packet's first flit entered the network
        #: (set by the engine; used by age-based arbitration and latency
        #: statistics).
        self.inject_cycle = release_cycle
        self.deliver_cycle: Optional[int] = None
        #: Index of the next hop in ``route.hops`` to be taken.
        self.hop_index = 0
        #: The ``(channel, vc)`` pair at ``hop_index``, or None past the
        #: last hop -- cached so the engine's eligibility scan skips the
        #: route indexing chain. Kept in sync by everything that moves
        #: ``hop_index`` or replaces ``route`` (the engine's depart,
        #: splice, and source-screening paths).
        self.next_hop = route.hops[0] if route.hops else None
        #: Cycle at which the packet clears the current component's
        #: pipeline and may arbitrate (set by the engine on arrival).
        self.ready_cycle = release_cycle
        #: Source re-injections performed so far (fault retry policy).
        self.retries = 0
        #: Set when a mid-run fault condemned this in-flight copy: the
        #: engine discards it (returning its credits) on arrival instead
        #: of buffering it.
        self.drop_on_arrival = False

    @property
    def src(self) -> int:
        """Source endpoint component id."""
        return self.route.src

    @property
    def dst(self) -> int:
        """Destination endpoint component id."""
        return self.route.dst

    @property
    def delivered(self) -> bool:
        return self.deliver_cycle is not None

    @property
    def latency(self) -> int:
        """Release-to-delivery latency in cycles (includes queueing)."""
        if self.deliver_cycle is None:
            raise ValueError(f"packet {self.pid} not delivered yet")
        return self.deliver_cycle - self.release_cycle

    @property
    def network_latency(self) -> int:
        """Injection-to-delivery latency in cycles (excludes source queueing)."""
        if self.deliver_cycle is None:
            raise ValueError(f"packet {self.pid} not delivered yet")
        return self.deliver_cycle - self.inject_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.pid}, src={self.src}, dst={self.dst}, "
            f"hop={self.hop_index}/{len(self.route.hops)})"
        )
