"""Endpoint-level software model: counted writes and ping-pong.

The Anton 2 programming model (Section 2.1) is distributed memory with
remote writes; synchronization uses a *counted-write* mechanism at the
endpoints [Grossman et al., ASPLOS 2013]: a counter decrements as writes
arrive, and when it reaches zero a software handler is dispatched. The
one-way latency measurement of Section 4.3 is a ping-pong built on this:
core A remote-writes 16 bytes to core B; B's handler fires and writes
back; half the round trip (averaged) is the one-way latency, *including*
software and synchronization overheads.

This module reproduces that methodology on the cycle-level simulator
using the engine's delivery hook:

* :class:`CountedWriteCounter` -- the hardware counter + handler;
* :class:`PingPongDriver` -- runs N ping-pongs between two endpoints with
  configurable software overhead (in cycles) per handler dispatch;
* :func:`measure_one_way_latency` -- the Section 4.3 measurement.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.core.machine import Machine
from repro.core.routing import RouteChoice, RouteComputer

from .engine import Engine
from .packet import Packet


class CountedWriteCounter:
    """One counted-write synchronization counter.

    Armed with an expected write count; each matching delivery decrements
    it, and the handler fires exactly when it reaches zero.
    """

    def __init__(self, expected: int, handler: Callable[[int], None]) -> None:
        if expected < 1:
            raise ValueError("expected write count must be at least 1")
        self.remaining = expected
        self.handler = handler
        self.fired = False

    def on_write(self, cycle: int) -> None:
        if self.remaining <= 0:
            raise RuntimeError("counted-write counter already satisfied")
        self.remaining -= 1
        if self.remaining == 0:
            self.fired = True
            self.handler(cycle)


@dataclasses.dataclass
class PingPongResult:
    """Outcome of a ping-pong measurement."""

    round_trips: int
    total_cycles: int
    one_way_cycles: float
    #: Per-round-trip durations (cycles).
    round_trip_cycles: List[int]


class PingPongDriver:
    """Runs the Section 4.3 ping-pong between two endpoints.

    ``software_overhead_cycles`` models the handler dispatch plus the
    store assembly on each side before the return write is injected.
    """

    def __init__(
        self,
        machine: Machine,
        route_computer: RouteComputer,
        endpoint_a: int,
        endpoint_b: int,
        rounds: int = 16,
        software_overhead_cycles: int = 20,
        choice: Optional[RouteChoice] = None,
        trace=None,
    ) -> None:
        if rounds < 1:
            raise ValueError("at least one round trip is required")
        self.machine = machine
        self.routes = route_computer
        self.endpoint_a = endpoint_a
        self.endpoint_b = endpoint_b
        self.rounds = rounds
        self.software_overhead = software_overhead_cycles
        self.choice = choice or RouteChoice()
        self._engine = Engine(machine, trace=trace)
        self._engine.on_delivery = self._handle_delivery
        self._counters: Dict[int, CountedWriteCounter] = {}
        self._round_starts: List[int] = []
        self._round_ends: List[int] = []
        self._next_pid = 0

    def _send(self, src: int, dst: int, release_cycle: int) -> None:
        route = self.routes.compute(src, dst, self.choice)
        packet = Packet(self._next_pid, route, release_cycle=release_cycle)
        self._next_pid += 1
        self._engine.enqueue(packet)

    def _arm(self, endpoint: int, handler: Callable[[int], None]) -> None:
        self._counters[endpoint] = CountedWriteCounter(1, handler)

    def _handle_delivery(self, packet: Packet, cycle: int) -> None:
        counter = self._counters.get(packet.dst)
        if counter is not None and not counter.fired:
            counter.on_write(cycle)

    def _on_pong_received(self, cycle: int) -> None:
        # A pong arrived back at A: the round trip is complete.
        self._round_ends.append(cycle)
        if len(self._round_ends) < self.rounds:
            self._start_round(cycle + self.software_overhead)

    def _on_ping_received(self, cycle: int) -> None:
        # B's handler dispatches and writes back to A.
        self._arm(self.endpoint_a, self._on_pong_received)
        self._send(
            self.endpoint_b, self.endpoint_a, cycle + self.software_overhead
        )

    def _start_round(self, cycle: int) -> None:
        self._round_starts.append(cycle)
        self._arm(self.endpoint_b, self._on_ping_received)
        self._send(self.endpoint_a, self.endpoint_b, cycle)

    def run(self) -> PingPongResult:
        self._start_round(0)
        self._engine.run()
        if self._engine.trace is not None:
            self._engine.trace.flush()
        if len(self._round_ends) != self.rounds:  # pragma: no cover
            raise RuntimeError("ping-pong did not complete")
        durations = [
            end - start
            for start, end in zip(self._round_starts, self._round_ends)
        ]
        total = sum(durations)
        return PingPongResult(
            round_trips=self.rounds,
            total_cycles=total,
            one_way_cycles=total / (2 * self.rounds),
            round_trip_cycles=durations,
        )


def measure_one_way_latency(
    machine: Machine,
    route_computer: RouteComputer,
    endpoint_a: int,
    endpoint_b: int,
    rounds: int = 16,
    software_overhead_cycles: int = 20,
    choice: Optional[RouteChoice] = None,
) -> float:
    """One-way software-to-software latency in cycles (Section 4.3).

    Half the average round-trip time of ``rounds`` ping-pongs, software
    overheads included -- exactly the paper's definition.
    """
    driver = PingPongDriver(
        machine,
        route_computer,
        endpoint_a,
        endpoint_b,
        rounds=rounds,
        software_overhead_cycles=software_overhead_cycles,
        choice=choice,
    )
    return driver.run().one_way_cycles
