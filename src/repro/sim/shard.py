"""Sharded torus engine: conservative-lookahead spatial decomposition.

The cycle-level engine is sequential; an interactive 8x8x8 run is bound
by one core. This module partitions the torus into contiguous sub-boxes
(1/2/4/8 shards, split along the largest dimensions), runs one
:class:`~repro.sim.engine.Engine` per shard, and synchronizes them with
a conservative-lookahead barrier -- classic conservative parallel
discrete-event simulation, exact rather than approximate:

* **Partitioning.** Chips map to shards by contiguous per-dimension
  slabs (:func:`partition_parts`); every component on a chip belongs to
  the chip's shard. Only torus channels can cross a shard boundary --
  mesh and E-group channels connect components of a single chip.

* **Lookahead.** A packet granted onto a cross-shard channel at cycle
  ``g`` arrives at the remote buffer no earlier than
  ``g + lat - 1 + (occ - 1) // tpc`` cycles (wire latency plus the
  serialization already accrued by the grant), and its credit returns
  to the sender at exactly ``g + lat``. With

      ``L = min over cross-shard channels of min(lat, lat - 1 + (occ - 1) // tpc)``

  every event a shard generates for a peer during the window
  ``[B, B + L)`` lands at cycle ``>= B + L``: shards may run the window
  independently and exchange at the barrier without ever producing an
  event in a peer's past. On the default machine (torus latency 12
  cycles, 45 occupancy ticks at 14 ticks/cycle) ``L = 12``.

* **Exchange.** Cross-shard grants divert to a per-engine outbox
  (``Engine._remote_dst``); at each barrier the hub routes them to the
  destination shard, which replays them with
  :meth:`~repro.sim.engine.Engine.feed_arrival`. Transfer records ride
  the checkpoint module's canonical-JSON packet serialization as the
  wire format; credit returns flow back the same way.

* **Exactness.** Each shard generates the *full* workload (identical
  pids and RNG draws) but enqueues only its local sources; the engine's
  canonical within-cycle event order makes every observable stream a
  pure function of simulation state. Stats, metrics summaries, golden
  traces, and checkpoint bytes are therefore bit-identical to the
  serial engine for every shard count -- the conformance suite under
  ``tests/shard/`` pins this.

* **Checkpointing.** At checkpoint barriers the hub snapshots every
  shard, merges the snapshots into one serial-format checkpoint at
  ``path`` (byte-identical to the serial oracle's), and writes the
  per-shard snapshots to ``path.shard<i>`` plus a ``path.manifest``
  index. A killed run resumes from the manifest bit-identically; the
  "an existing file marks an interrupted run" contract is unchanged.

Transports: ``transport="process"`` runs each shard in its own
``multiprocessing`` process (the performance configuration);
``transport="inline"`` drives the identical shard cores synchronously
in-process (deterministic, debuggable, used by most conformance tests).
Both produce byte-identical results.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import tempfile
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.machine import Machine, MachineConfig

from .checkpoint import (
    CRASH_ENV_VAR,
    CheckpointError,
    _packet_from_json,
    _packet_to_json,
    dumps,
    load_checkpoint,
    loads,
    restore_engine,
    snapshot_engine,
)
from .engine import _EV_FAULT, DeadlockError, Engine
from .metrics import MetricsCollector
from .stats import SimStats

#: Which shard honors :data:`~repro.sim.checkpoint.CRASH_ENV_VAR` in a
#: sharded run (default shard 0) -- the crash-resume tests kill one
#: worker mid-window and resume the whole fleet from the manifest.
CRASH_SHARD_ENV_VAR = "REPRO_CRASH_SHARD"

MANIFEST_SCHEMA_VERSION = 1

ALLOWED_SHARD_COUNTS = (1, 2, 4, 8)

#: Watchdog applied to shard engines while they run lookahead windows:
#: progress is global, so a shard that is legitimately idle (its traffic
#: drained, a neighbor's still coming) must not trip the per-engine
#: watchdog. The hub enforces the true watchdog across all shards.
_HUGE_WATCHDOG = 1 << 60


# --- partitioning -----------------------------------------------------------------


def partition_parts(shape: Sequence[int], shards: int) -> Tuple[int, int, int]:
    """Split ``shape`` into ``shards`` contiguous sub-boxes.

    Repeatedly halves the dimension with the largest remaining
    per-shard extent (ties to the lowest dimension index), so an 8x8x8
    torus becomes 4x8x8 / 4x4x8 / 4x4x4 slabs at 2 / 4 / 8 shards.
    Every halving requires the extent to be even -- an odd split would
    make shard membership depend on rounding, not geometry.
    """
    if shards not in ALLOWED_SHARD_COUNTS:
        raise ValueError(
            f"shard count must be one of {ALLOWED_SHARD_COUNTS}, got {shards}"
        )
    parts = [1, 1, 1]
    remaining = shards
    while remaining > 1:
        dim = max(range(3), key=lambda d: (shape[d] // parts[d], -d))
        extent = shape[dim] // parts[dim]
        if extent % 2:
            raise ValueError(
                f"cannot split shape {tuple(shape)} into {shards} shards: "
                f"dimension {dim} extent {extent} is not even"
            )
        parts[dim] *= 2
        remaining //= 2
    return tuple(parts)


def component_owners(machine: Machine, parts: Sequence[int]) -> List[int]:
    """Owning shard index per component id (chip slab membership)."""
    shape = machine.config.shape

    def owner(chip) -> int:
        ix = chip[0] * parts[0] // shape[0]
        iy = chip[1] * parts[1] // shape[1]
        iz = chip[2] * parts[2] // shape[2]
        return (ix * parts[1] + iy) * parts[2] + iz

    return [owner(comp.chip) for comp in machine.components]


def shard_boundary(
    machine: Machine, owners: Sequence[int], shard: int
) -> Tuple[frozenset, frozenset, frozenset]:
    """A shard's boundary channel sets: (remote_dst, remote_src, fault_owned).

    ``remote_dst`` -- channels whose source is local and destination
    remote (grants divert to the outbox); ``remote_src`` -- the reverse
    (credit returns divert); ``fault_owned`` -- channels whose fault
    bookkeeping (stats, trace) this shard owns: every shard applies the
    full fault timeline for routing parity, but only the channel's
    source shard counts it.
    """
    remote_dst = set()
    remote_src = set()
    fault_owned = set()
    for channel in machine.channels:
        src_owner = owners[channel.src]
        dst_owner = owners[channel.dst]
        if src_owner == shard:
            fault_owned.add(channel.cid)
            if dst_owner != shard:
                remote_dst.add(channel.cid)
        elif dst_owner == shard:
            remote_src.add(channel.cid)
    return frozenset(remote_dst), frozenset(remote_src), frozenset(fault_owned)


def _channel_lookahead(machine: Machine, channel) -> int:
    """Safe window length contributed by one cross-shard channel.

    The arrival bound is ``lat - 1 + (occ - 1) // tpc`` cycles after the
    grant (a grant at cycle ``g`` ends serialization no earlier than
    tick ``g * tpc + occ``); the credit bound is exactly ``lat``. Both
    must be ``>= L`` for a window of length ``L``.
    """
    lat = channel.latency
    occ = machine.occupancy_ticks_for_channel(channel)
    tpc = machine.ticks_per_cycle
    return min(lat, lat - 1 + (occ - 1) // tpc)


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """A validated decomposition: slab geometry plus the safe lookahead."""

    shape: Tuple[int, int, int]
    parts: Tuple[int, int, int]
    shards: int
    lookahead: int

    @classmethod
    def for_machine(cls, machine: Machine, shards: int) -> "ShardPlan":
        # The slab partitioner and its lookahead derivation assume the
        # wrap links of a torus; rather than risk a silently wrong
        # decomposition, other topologies are rejected outright and must
        # run serially (``shards=1``).
        if machine.config.topology != "torus":
            raise ValueError(
                f"sharded runs support only the torus topology, not "
                f"{machine.config.topology!r}; run serially (shards=1) "
                f"instead"
            )
        parts = partition_parts(machine.config.shape, shards)
        owners = component_owners(machine, parts)
        cross = [
            c for c in machine.channels if owners[c.src] != owners[c.dst]
        ]
        if shards > 1 and not cross:
            raise ValueError(
                f"partition {parts} of shape {machine.config.shape} produced "
                f"no cross-shard channels"
            )
        lookahead = (
            min(_channel_lookahead(machine, c) for c in cross) if cross else 1
        )
        if lookahead < 1:
            raise ValueError(
                "cross-shard channel latency too small for a conservative "
                f"lookahead window (computed {lookahead} cycles)"
            )
        return cls(
            shape=tuple(machine.config.shape),
            parts=parts,
            shards=shards,
            lookahead=lookahead,
        )

    def to_json(self) -> dict:
        return {
            "shape": list(self.shape),
            "parts": list(self.parts),
            "shards": self.shards,
            "lookahead": self.lookahead,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ShardPlan":
        return cls(
            shape=tuple(data["shape"]),
            parts=tuple(data["parts"]),
            shards=data["shards"],
            lookahead=data["lookahead"],
        )


# --- workload specification -------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ShardedRun:
    """Picklable description of one sharded experiment.

    Each shard process rebuilds the machine, route computer, and fault
    runtime from this spec deterministically, generates the *full*
    workload (keeping global packet ids and RNG draw order), and
    enqueues only packets whose source it owns. ``spec`` is a
    :class:`~repro.traffic.batch.BatchSpec` or
    :class:`~repro.traffic.demand.DemandSpec`.
    """

    config: MachineConfig
    spec: object
    arbitration: str = "rr"
    weight_patterns: tuple = ()
    weight_bits: int = 5
    fault_set: Optional[object] = None
    fault_policy: Optional[object] = None


def build_shard_context(run: ShardedRun, machine: Optional[Machine] = None):
    """(machine, route computer, fault runtime) for one run, deterministically.

    The serial fallback and every shard worker build through here, so a
    faulted run's route computer sees the same initially-failed set (and
    accrues the same generation-time resolution counts) everywhere.
    """
    from repro.core.routing import RouteComputer

    if machine is None:
        machine = Machine(run.config)
    if run.fault_set is not None:
        from repro.faults.routing import FaultAwareRouteComputer
        from repro.faults.runtime import FaultRuntime

        route_computer = FaultAwareRouteComputer(machine)
        faults = FaultRuntime(
            machine,
            run.fault_set,
            policy=run.fault_policy,
            route_computer=route_computer,
        )
    else:
        route_computer = RouteComputer(machine)
        faults = None
    return machine, route_computer, faults


def _build_engine(
    run: ShardedRun,
    machine: Machine,
    route_computer,
    faults,
    trace=None,
    use_fastpath: Optional[bool] = None,
    source_filter=None,
) -> Engine:
    weight_patterns = list(run.weight_patterns) if run.weight_patterns else None
    if getattr(run.spec, "demand", None) is not None:
        from repro.traffic.demand import build_demand_engine

        return build_demand_engine(
            machine,
            route_computer,
            run.spec,
            arbitration=run.arbitration,
            weight_patterns=weight_patterns,
            weight_bits=run.weight_bits,
            trace=trace,
            faults=faults,
            use_fastpath=use_fastpath,
            source_filter=source_filter,
        )
    from .simulator import build_batch_engine

    return build_batch_engine(
        machine,
        route_computer,
        run.spec,
        arbitration=run.arbitration,
        weight_patterns=weight_patterns,
        weight_bits=run.weight_bits,
        trace=trace,
        faults=faults,
        use_fastpath=use_fastpath,
        source_filter=source_filter,
    )


# --- wire format ------------------------------------------------------------------


def _encode_transfer(packet, oc: int, cycle: int) -> str:
    """Canonical-JSON transfer record: the cross-shard wire format."""
    record = {
        "cycle": cycle,
        "oc": oc,
        "packet": _packet_to_json(packet),
    }
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _encode_credit(cid: int, vc: int, size: int, cycle: int) -> str:
    record = {"channel": cid, "cycle": cycle, "size": size, "vc": vc}
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


# --- shard worker -----------------------------------------------------------------


class _ShardTraceRecorder:
    """Trace sink that tags each event with its canonical merge key.

    The engine maintains ``_trace_key`` -- the (phase, site) tuple of
    whatever is currently emitting -- whenever a sink is attached.
    Sorting the union of all shards' records by ``(cycle, key, seq)``
    reproduces the serial emission order exactly: within one
    ``(cycle, key)`` class a single shard is the producer, so the
    per-shard sequence number only breaks ties the producer itself
    created in order.
    """

    def __init__(self) -> None:
        self.engine: Optional[Engine] = None
        self.records: list = []
        self._seq = 0

    def emit(self, event) -> None:
        self._seq += 1
        self.records.append((event.cycle, self.engine._trace_key, self._seq, event))

    def flush(self) -> None:
        pass

    def drain(self) -> list:
        out = self.records
        self.records = []
        return out


class _ShardCore:
    """One shard's engine plus the barrier-protocol message handlers.

    Transport-agnostic: the inline worker calls the handlers directly,
    the process worker drives them over a pipe. Identical computation
    either way.
    """

    def __init__(self, init: dict) -> None:
        self.index: int = init["shard"]
        run: ShardedRun = init["run"]
        plan = ShardPlan.from_json(init["plan"])
        machine = Machine(run.config)
        owners = component_owners(machine, plan.parts)
        recorder = _ShardTraceRecorder() if init["tracing"] else None
        snapshot = init.get("snapshot")
        self._g_counts: Optional[dict] = None
        if snapshot is not None:
            engine = restore_engine(
                snapshot,
                machine=machine,
                trace=recorder,
                use_fastpath=init["use_fastpath"],
            )
        else:
            shard = self.index
            _, route_computer, faults = build_shard_context(run, machine=machine)
            engine = _build_engine(
                run,
                machine,
                route_computer,
                faults,
                trace=recorder,
                use_fastpath=init["use_fastpath"],
                source_filter=lambda comp: owners[comp] == shard,
            )
            if faults is not None:
                # Generation-time resolution counts: identical in every
                # shard (each generates the full workload), subtracted
                # once per extra shard when merging checkpoint state.
                self._g_counts = dict(route_computer.resolution_counts)
        remote_dst, remote_src, fault_owned = shard_boundary(
            machine, owners, self.index
        )
        engine._remote_dst = remote_dst
        engine._remote_src = remote_src
        engine._outbox = []
        engine._outbox_credits = []
        if engine._fault_runtime is not None:
            engine._fault_owned = fault_owned
        if recorder is not None:
            recorder.engine = engine
        self._true_watchdog = engine.watchdog_cycles
        engine.watchdog_cycles = _HUGE_WATCHDOG
        crash_env = os.environ.get(CRASH_ENV_VAR)
        crash_shard = int(os.environ.get(CRASH_SHARD_ENV_VAR, "0"))
        self._crash_cycle = (
            int(crash_env) if crash_env and self.index == crash_shard else None
        )
        self._choices: dict = {}
        self.engine = engine
        self.recorder = recorder

    def ready_info(self) -> dict:
        return {"g_counts": self._g_counts, "watchdog": self._true_watchdog}

    def _report(self) -> dict:
        engine = self.engine
        return {
            "drained": engine.drained,
            "queued": engine._queued,
            "in_network": engine._in_network,
            "pending": engine._events.pending,
            "last_progress": engine._last_progress,
        }

    def feed(self, arrivals: list, credits: list) -> tuple:
        """Replay the barrier's incoming transfer and credit records."""
        engine = self.engine
        for text in arrivals:
            record = json.loads(text)
            packet = _packet_from_json(record["packet"], self._choices)
            engine.feed_arrival(packet, record["oc"], record["cycle"])
        for text in credits:
            record = json.loads(text)
            engine.feed_credit(
                record["channel"], record["vc"], record["size"], record["cycle"]
            )
        return ("fed", self._report())

    def run_window(self, w_end: int) -> tuple:
        """Advance to the barrier at ``w_end`` and flush the outboxes."""
        engine = self.engine
        start = engine.cycle
        if not engine.drained:
            crash = self._crash_cycle
            if crash is not None and crash <= w_end:
                if crash > start:
                    engine.run_for(crash - start)
                if not engine.drained:
                    return ("crash", engine.cycle)
                # Drained before the crash cycle: like a real process
                # finishing before the kill lands, the run exits normally.
                self._crash_cycle = None
            if not engine.drained and engine.cycle < w_end:
                engine.run_for(w_end - engine.cycle)
        # A shard that drained mid-window still observes the barrier: a
        # checkpoint taken here must place every shard at the same cycle.
        # (run_for already left stats.end_cycle at the true drain cycle;
        # forcing the clock does not disturb it.)
        engine.cycle = w_end
        packets = []
        inflight = engine._inflight
        for packet, oc, cycle in engine._outbox:
            # The packet now belongs to the destination shard, which
            # re-registers it via feed_arrival.
            engine._in_network -= 1
            if inflight is not None:
                inflight.pop(packet, None)
            packets.append(_encode_transfer(packet, oc, cycle))
        del engine._outbox[:]
        credits = [
            _encode_credit(cid, vc, size, cycle)
            for cid, vc, size, cycle in engine._outbox_credits
        ]
        del engine._outbox_credits[:]
        records = self.recorder.drain() if self.recorder is not None else []
        return ("ok", packets, credits, records)

    def snapshot(self) -> tuple:
        """Serial-format snapshot of this shard's engine at the barrier."""
        engine = self.engine
        engine.watchdog_cycles = self._true_watchdog
        try:
            data = snapshot_engine(engine)
        finally:
            engine.watchdog_cycles = _HUGE_WATCHDOG
        return ("snap", data)

    def finish(self) -> tuple:
        return ("stats", self.engine.stats)


def _dispatch(core: _ShardCore, msg: tuple) -> tuple:
    kind = msg[0]
    if kind == "feed":
        return core.feed(msg[1], msg[2])
    if kind == "run":
        return core.run_window(msg[1])
    if kind == "snapshot":
        return core.snapshot()
    if kind == "finish":
        return core.finish()
    raise ValueError(f"unknown shard message {kind!r}")


class _InlineWorker:
    """Synchronous in-process transport: the conformance default.

    With ``init["profile"]`` set, everything this shard executes -- core
    construction (workload generation, engine build) and every barrier
    message -- runs under a private :mod:`cProfile` profiler, so
    ``repro profile --shards N`` can merge deterministic per-shard call
    tables.
    """

    def __init__(self, init: dict) -> None:
        self.profiler = None
        if init.get("profile"):
            import cProfile

            self.profiler = cProfile.Profile()
        if self.profiler is not None:
            self.profiler.enable()
        try:
            self._core = _ShardCore(init)
        finally:
            if self.profiler is not None:
                self.profiler.disable()
        self._reply: Optional[tuple] = ("ready", self._core.ready_info())

    def send(self, msg: tuple) -> None:
        if msg[0] == "stop":
            self._reply = None
            return
        if self.profiler is not None:
            self.profiler.enable()
            try:
                self._reply = _dispatch(self._core, msg)
            finally:
                self.profiler.disable()
        else:
            self._reply = _dispatch(self._core, msg)

    def recv_reply(self) -> tuple:
        return self._reply

    def close(self) -> None:
        pass


def _shard_worker_main(conn) -> None:
    try:
        init = conn.recv()
        core = _ShardCore(init)
        conn.send(("ready", core.ready_info()))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                return
            conn.send(_dispatch(core, msg))
    except EOFError:
        return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


class _ProcessWorker:
    """One shard in its own process, driven over a ``multiprocessing`` pipe."""

    def __init__(self, init: dict) -> None:
        ctx = multiprocessing.get_context()
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main, args=(child_conn,), daemon=True
        )
        self._proc.start()
        child_conn.close()
        self._conn.send(init)

    def send(self, msg: tuple) -> None:
        self._conn.send(msg)

    def recv_reply(self) -> tuple:
        reply = self._conn.recv()
        if reply[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        return reply

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join()


# --- checkpoint materialization ---------------------------------------------------


def _manifest_path(path: str) -> str:
    return path + ".manifest"


def _shard_path(path: str, shard: int) -> str:
    return f"{path}.shard{shard}"


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _wheel_insert(wheel, cycle: int, now: int, payload: tuple) -> None:
    # Mirror Engine._feed_event: a barrier-cycle event must land in its
    # bucket (where the serial engine's copy lives), not the overflow heap.
    if 0 <= cycle - now < wheel.size:
        wheel.buckets[cycle & wheel.mask].append(payload)
        wheel.pending += 1
    else:
        wheel.push(cycle, now, payload)


def merge_shard_snapshots(
    plan: ShardPlan,
    machine: Machine,
    snaps: List[dict],
    trace=None,
    resolution_base: Optional[dict] = None,
    cycle: Optional[int] = None,
) -> dict:
    """Merge per-shard barrier snapshots into one serial-format snapshot.

    Restores every shard into a live engine and copies each piece of
    state into shard 0's engine from its owning shard: channel-source
    state (staging timer, credit view, SA2 arbiter) from the source
    component's owner, channel-destination state (buffers, input timer,
    SA1 arbiter) from the destination's, source queues and in-flight
    registries as disjoint unions. Foreign wheel events are re-pushed
    into the base wheel -- push order is irrelevant because checkpoint
    serialization orders every cycle canonically -- skipping fault
    timeline events, which every shard schedules in full. The result is
    byte-identical (via :func:`~repro.sim.checkpoint.dumps`) to the
    snapshot the serial engine would write at the same cycle.
    """
    if cycle is None:
        cycle = snaps[0]["cycle"]
    engines = [
        restore_engine(snap, machine=machine, use_fastpath=False)
        for snap in snaps
    ]
    base = engines[0]
    owners = component_owners(machine, plan.parts)
    for shard in range(1, len(engines)):
        eng = engines[shard]
        if eng.cycle != cycle:
            raise CheckpointError(
                f"shard {shard} snapshot is at cycle {eng.cycle}, "
                f"expected barrier cycle {cycle}"
            )
        base._source_queues.update(eng._source_queues)
        base._source_heads.update(eng._source_heads)
        for channel in machine.channels:
            cid = channel.cid
            if owners[channel.dst] == shard:
                base._buffers[cid] = eng._buffers[cid]
                base._buffer_heads[cid] = eng._buffer_heads[cid]
                base._buffered_count[cid] = eng._buffered_count[cid]
                base._input_free_at[cid] = eng._input_free_at[cid]
                if base.vc_arbiters[cid] is not None:
                    base.vc_arbiters[cid] = eng.vc_arbiters[cid]
            if owners[channel.src] == shard:
                base._channel_free_at[cid] = eng._channel_free_at[cid]
                src_row = eng._credits[cid]
                dst_row = base._credits[cid]
                for vc in range(len(dst_row)):
                    dst_row[vc] = src_row[vc]
                if cid in base.arbiters:
                    base.arbiters[cid] = eng.arbiters[cid]
        wheel = eng._events
        for delta in range(wheel.size):
            cyc = cycle + delta
            for payload in wheel.buckets[cyc & wheel.mask]:
                if payload[0] == _EV_FAULT:
                    continue
                _wheel_insert(base._events, cyc, cycle, payload)
        for cyc, _seq, payload in wheel.overflow:
            if payload[0] == _EV_FAULT:
                continue
            _wheel_insert(base._events, cyc, cycle, payload)
        for comp in eng._active:
            base._active[comp] = None
        base._queued += eng._queued
        base._in_network += eng._in_network
        base._last_progress = max(base._last_progress, eng._last_progress)
        if base._inflight is not None:
            base._inflight.update(eng._inflight)
        base.stats.merge(eng.stats)
    # A serial engine checkpointing mid-run sits exactly at the barrier.
    base.stats.end_cycle = cycle
    if base._fault_routes is not None and resolution_base is not None:
        counts = base._fault_routes.resolution_counts
        merged = dict(counts)
        for shard in range(1, len(engines)):
            shard_counts = engines[shard]._fault_routes.resolution_counts
            for stage in set(shard_counts) | set(resolution_base):
                merged[stage] = (
                    merged.get(stage, 0)
                    + shard_counts.get(stage, 0)
                    - resolution_base.get(stage, 0)
                )
        counts.clear()
        counts.update(merged)
    base.trace = trace
    return snapshot_engine(base)


def load_sharded_checkpoint(
    path: str,
    expected_shards: Optional[int] = None,
    expected_plan: Optional[ShardPlan] = None,
) -> Tuple[dict, List[dict]]:
    """Load and validate a sharded checkpoint's manifest and shard files.

    Raises :class:`~repro.sim.checkpoint.CheckpointError` -- naming the
    offending file -- if the manifest references a missing shard file or
    a stray extra one exists: a resume must never silently run with a
    different decomposition than the one that wrote the checkpoint.
    """
    manifest_path = _manifest_path(path)
    try:
        with open(manifest_path, "r") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise CheckpointError(
            f"cannot read sharded manifest {manifest_path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"sharded manifest {manifest_path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("kind") != "sharded-manifest":
        raise CheckpointError(
            f"{manifest_path} is not a sharded-run manifest "
            f"(missing kind='sharded-manifest')"
        )
    if manifest.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported sharded-manifest schema {manifest.get('schema')!r}; "
            f"this build reads version {MANIFEST_SCHEMA_VERSION}"
        )
    shards = manifest["shards"]
    if expected_shards is not None and shards != expected_shards:
        raise CheckpointError(
            f"manifest {manifest_path} records {shards} shards but this run "
            f"was asked for {expected_shards}; resume with the original "
            f"shard count"
        )
    if expected_plan is not None and manifest["plan"] != expected_plan.to_json():
        raise CheckpointError(
            f"manifest {manifest_path} was written by a different "
            f"decomposition ({manifest['plan']}) than this run computes "
            f"({expected_plan.to_json()})"
        )
    for shard in range(shards):
        if not os.path.exists(_shard_path(path, shard)):
            raise CheckpointError(
                f"sharded checkpoint {path} is missing shard file "
                f"{_shard_path(path, shard)}; refusing to resume with fewer "
                f"shards than the manifest records"
            )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    prefix = os.path.basename(path) + ".shard"
    for name in sorted(os.listdir(directory)):
        if not name.startswith(prefix):
            continue
        suffix = name[len(prefix):]
        if suffix.isdigit() and int(suffix) >= shards:
            raise CheckpointError(
                f"sharded checkpoint {path} has unexpected extra shard file "
                f"{os.path.join(directory, name)}; the manifest records "
                f"{shards} shards"
            )
    snaps = []
    for shard in range(shards):
        with open(_shard_path(path, shard), "r") as handle:
            snap = loads(handle.read())
        if snap["cycle"] != manifest["cycle"]:
            raise CheckpointError(
                f"shard file {_shard_path(path, shard)} is at cycle "
                f"{snap['cycle']} but the manifest records "
                f"{manifest['cycle']}"
            )
        snaps.append(snap)
    return manifest, snaps


def _cleanup_checkpoint_files(path: str, shards: int) -> None:
    for target in (
        [path, _manifest_path(path)]
        + [_shard_path(path, shard) for shard in range(shards)]
    ):
        if os.path.exists(target):
            os.unlink(target)


# --- hub --------------------------------------------------------------------------


class _Hub:
    """Barrier coordinator: windows, exchange, checkpoints, merge."""

    def __init__(
        self,
        run: ShardedRun,
        plan: ShardPlan,
        machine: Machine,
        trace,
        use_fastpath: Optional[bool],
        transport: str,
        checkpoint_path: Optional[str],
        checkpoint_every: int,
        max_cycles: int,
        timings: Optional[dict] = None,
        halt_at: Optional[int] = None,
        profiles: Optional[list] = None,
    ) -> None:
        if transport not in ("process", "inline"):
            raise ValueError(f"unknown shard transport {transport!r}")
        if profiles is not None and transport != "inline":
            raise ValueError(
                "per-shard profiling requires the inline transport"
            )
        self.run = run
        self.plan = plan
        self.machine = machine
        self.trace = trace
        self.use_fastpath = use_fastpath
        self.transport = transport
        self.checkpoint_path = (
            checkpoint_path if checkpoint_path and checkpoint_every > 0 else None
        )
        self.checkpoint_every = checkpoint_every
        self.max_cycles = max_cycles
        owners = component_owners(machine, plan.parts)
        self._arrival_dest = [owners[c.dst] for c in machine.channels]
        self._credit_dest = [owners[c.src] for c in machine.channels]
        self._workers: list = []
        self._g_counts: Optional[dict] = None
        #: Optional caller-supplied dict filled with wall-clock phase
        #: timings (``setup_s``: spawn through every worker ready,
        #: ``windows_s``: barrier loop through final merge). The
        #: throughput benchmark separates steady-state simulation rate
        #: from the per-worker workload-generation cost this way.
        self._timings = timings
        #: ``halt_at``: stop right after the checkpoint saved at this
        #: barrier, leaving the files on disk (``repro checkpoint save
        #: --shards``). Windows keep advancing past drained engines so
        #: the save lands at exactly this cycle, mirroring ``run_for``.
        self._halt_at = halt_at
        #: ``profiles``: list extended with each inline worker's
        #: :class:`cProfile.Profile` once the run finishes.
        self._profiles = profiles

    def run_to_completion(self) -> SimStats:
        try:
            return self._run()
        finally:
            for worker in self._workers:
                try:
                    worker.send(("stop",))
                except Exception:
                    pass
            for worker in self._workers:
                worker.close()

    def _exchange(self, messages: List[tuple]) -> List[tuple]:
        for worker, msg in zip(self._workers, messages):
            worker.send(msg)
        return [worker.recv_reply() for worker in self._workers]

    def _run(self) -> SimStats:
        plan = self.plan
        shards = plan.shards
        cycle = 0
        snaps = None
        resumed = False
        if self.checkpoint_path:
            manifest_path = _manifest_path(self.checkpoint_path)
            if os.path.exists(manifest_path):
                manifest, snaps = load_sharded_checkpoint(
                    self.checkpoint_path,
                    expected_shards=shards,
                    expected_plan=plan,
                )
                cycle = manifest["cycle"]
                self._g_counts = manifest["resolution_base"]
                resumed = True
                if isinstance(self.trace, MetricsCollector) and os.path.exists(
                    self.checkpoint_path
                ):
                    state = load_checkpoint(self.checkpoint_path)["trace"][
                        "collector"
                    ]
                    if state is not None:
                        self.trace.restore_state(state)
            elif os.path.exists(self.checkpoint_path):
                raise CheckpointError(
                    f"checkpoint {self.checkpoint_path} exists but its sharded "
                    f"manifest {manifest_path} is missing; cannot resume a "
                    f"sharded run without per-shard state"
                )
        worker_cls = _InlineWorker if self.transport == "inline" else _ProcessWorker
        t_spawn = time.perf_counter()
        for shard in range(shards):
            init = {
                "shard": shard,
                "run": self.run,
                "plan": plan.to_json(),
                "tracing": self.trace is not None,
                "use_fastpath": self.use_fastpath,
                "snapshot": snaps[shard] if snaps is not None else None,
                "profile": self._profiles is not None,
            }
            self._workers.append(worker_cls(init))
        infos = [reply[1] for reply in
                 [worker.recv_reply() for worker in self._workers]]
        t_ready = time.perf_counter()
        if self._timings is not None:
            self._timings["setup_s"] = t_ready - t_spawn
        watchdog = infos[0]["watchdog"]
        if not resumed:
            g_counts = infos[0]["g_counts"]
            for shard, info in enumerate(infos):
                if info["g_counts"] != g_counts:
                    raise RuntimeError(
                        f"shard {shard} generated different resolution "
                        f"counts than shard 0; workload generation is not "
                        f"deterministic"
                    )
            self._g_counts = g_counts

        pending = [([], []) for _ in range(shards)]
        last_saved = cycle if resumed else None
        halted = False
        while True:
            replies = self._exchange(
                [("feed", pending[s][0], pending[s][1]) for s in range(shards)]
            )
            pending = [([], []) for _ in range(shards)]
            reports = [reply[1] for reply in replies]
            if (
                all(report["drained"] for report in reports)
                and self._halt_at is None
            ):
                break
            if cycle >= self.max_cycles:
                outstanding = sum(
                    report["queued"] + report["in_network"]
                    for report in reports
                )
                raise RuntimeError(
                    f"simulation exceeded {self.max_cycles} cycles with "
                    f"{outstanding} packets outstanding"
                )
            in_network = sum(report["in_network"] for report in reports)
            progress = max(report["last_progress"] for report in reports)
            if in_network and cycle - progress > watchdog:
                raise DeadlockError(
                    f"no progress for {watchdog} cycles at cycle {cycle}; "
                    f"{in_network} packets stuck in the network"
                )
            if (
                self.checkpoint_path
                and cycle > 0
                and cycle % self.checkpoint_every == 0
                and cycle != last_saved
            ):
                self._save(cycle)
                last_saved = cycle
                if self._halt_at is not None and cycle >= self._halt_at:
                    halted = True
            if halted:
                break
            w_end = cycle + plan.lookahead
            if self.checkpoint_path:
                next_save = (
                    cycle // self.checkpoint_every + 1
                ) * self.checkpoint_every
                w_end = min(w_end, next_save)
            w_end = min(w_end, self.max_cycles)

            replies = self._exchange([("run", w_end)] * shards)
            for shard, reply in enumerate(replies):
                if reply[0] == "crash":
                    raise KeyboardInterrupt(
                        f"simulated crash at cycle {reply[1]} "
                        f"({CRASH_ENV_VAR}={reply[1]}) in shard {shard}"
                    )
            records: list = []
            for reply in replies:
                _, packets, credits, shard_records = reply
                for text in packets:
                    oc = json.loads(text)["oc"]
                    pending[self._arrival_dest[oc]][0].append(text)
                for text in credits:
                    cid = json.loads(text)["channel"]
                    pending[self._credit_dest[cid]][1].append(text)
                records.extend(shard_records)
            if self.trace is not None and records:
                records.sort(key=lambda item: (item[0], item[1], item[2]))
                emit = self.trace.emit
                for _cycle, _key, _seq, event in records:
                    emit(event)
            cycle = w_end

        replies = self._exchange([("finish",)] * shards)
        merged = replies[0][1]
        for reply in replies[1:]:
            merged.merge(reply[1])
        if self._timings is not None:
            self._timings["windows_s"] = time.perf_counter() - t_ready
        if self._profiles is not None:
            self._profiles.extend(
                worker.profiler for worker in self._workers
            )
        if self.trace is not None:
            self.trace.flush()
        if self.checkpoint_path and not halted:
            _cleanup_checkpoint_files(self.checkpoint_path, shards)
        return merged

    def _save(self, cycle: int) -> None:
        replies = self._exchange([("snapshot",)] * self.plan.shards)
        snaps = [reply[1] for reply in replies]
        if self.trace is not None:
            self.trace.flush()
        data = merge_shard_snapshots(
            self.plan,
            self.machine,
            snaps,
            trace=self.trace,
            resolution_base=self._g_counts,
            cycle=cycle,
        )
        _atomic_write(self.checkpoint_path, dumps(data))
        for shard, snap in enumerate(snaps):
            _atomic_write(_shard_path(self.checkpoint_path, shard), dumps(snap))
        manifest = {
            "kind": "sharded-manifest",
            "schema": MANIFEST_SCHEMA_VERSION,
            "shards": self.plan.shards,
            "cycle": cycle,
            "plan": self.plan.to_json(),
            "resolution_base": self._g_counts,
        }
        _atomic_write(
            _manifest_path(self.checkpoint_path),
            json.dumps(manifest, separators=(",", ":")) + "\n",
        )


# --- entry points -----------------------------------------------------------------


def run_sharded(
    run: ShardedRun,
    shards: int,
    machine: Optional[Machine] = None,
    trace=None,
    max_cycles: int = 10_000_000,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    use_fastpath: Optional[bool] = None,
    transport: str = "process",
    timings: Optional[dict] = None,
    profiles: Optional[list] = None,
) -> SimStats:
    """Run one experiment decomposed over ``shards`` sub-boxes.

    ``shards=1`` is the serial engine itself (no hub, no proxies); any
    other count produces bit-identical stats, trace events, and
    checkpoint bytes. The retry fault policy is rejected: it re-injects
    at the packet's original source, which may live in another shard.
    """
    if machine is None:
        machine = Machine(run.config)
    if shards == 1:
        return _run_serial(
            run,
            machine,
            trace=trace,
            max_cycles=max_cycles,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            use_fastpath=use_fastpath,
        )
    if run.fault_policy is not None and run.fault_policy.mode == "retry":
        raise ValueError(
            "the retry fault policy is not supported in sharded runs: "
            "re-injection happens at the stranded packet's source, which "
            "may belong to another shard"
        )
    plan = ShardPlan.for_machine(machine, shards)
    hub = _Hub(
        run,
        plan,
        machine,
        trace,
        use_fastpath,
        transport,
        checkpoint_path,
        checkpoint_every,
        max_cycles,
        timings=timings,
        profiles=profiles,
    )
    return hub.run_to_completion()


def save_sharded_checkpoint(
    run: ShardedRun,
    shards: int,
    cycle: int,
    path: str,
    machine: Optional[Machine] = None,
    trace=None,
    transport: str = "inline",
) -> SimStats:
    """Run to the barrier at ``cycle``, save there, and stop.

    The sharded analogue of ``build -> run_for(cycle) ->
    save_checkpoint``: the merged checkpoint left at ``path`` is
    byte-identical to what the serial engine writes at the same cycle
    (the per-shard ``path.shard<i>`` files and ``path.manifest`` stay on
    disk too). Returns the merged stats as of the save barrier.
    """
    if cycle <= 0:
        raise ValueError(f"checkpoint cycle must be positive, got {cycle}")
    if machine is None:
        machine = Machine(run.config)
    if shards == 1:
        raise ValueError(
            "save_sharded_checkpoint needs shards >= 2; use the serial "
            "snapshot_engine/save_checkpoint flow for one shard"
        )
    if run.fault_policy is not None and run.fault_policy.mode == "retry":
        raise ValueError(
            "the retry fault policy is not supported in sharded runs: "
            "re-injection happens at the stranded packet's source, which "
            "may belong to another shard"
        )
    plan = ShardPlan.for_machine(machine, shards)
    hub = _Hub(
        run,
        plan,
        machine,
        trace,
        None,
        transport,
        path,
        cycle,
        max_cycles=10_000_000,
        halt_at=cycle,
    )
    return hub.run_to_completion()


def _run_serial(
    run: ShardedRun,
    machine: Machine,
    trace=None,
    max_cycles: int = 10_000_000,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    use_fastpath: Optional[bool] = None,
) -> SimStats:
    """The 1-shard fallback: the ordinary serial run path, via the same
    deterministic context builder the shard workers use."""
    from .simulator import run_engine

    _, route_computer, faults = build_shard_context(run, machine=machine)

    def build() -> Engine:
        return _build_engine(
            run,
            machine,
            route_computer,
            faults,
            trace=trace,
            use_fastpath=use_fastpath,
        )

    return run_engine(
        build,
        trace=trace,
        max_cycles=max_cycles,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        use_fastpath=use_fastpath,
        machine=machine,
    )
