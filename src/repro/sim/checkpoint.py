"""Deterministic engine checkpoint/restart.

A checkpoint is a complete, versioned, canonical-JSON snapshot of one
:class:`~repro.sim.engine.Engine`: every piece of mutable state that can
influence a future cycle is captured, so that

    ``run(n)`` -> :func:`snapshot_engine` -> :func:`restore_engine` -> ``run(m)``

is *byte-identical* -- trace JSONL, stats dict, arbiter grants, event
schedule -- to the uninterrupted ``run(n + m)``. The guarantee is pinned
by the resume-equivalence property suite
(``tests/properties/test_checkpoint_props.py``) and the golden checkpoint
fixture.

What makes the engine checkpointable at all is that its state is already
exact and discrete (PR 1's integer-tick timebase) and its event order is
fully determined by serializable data:

* the timing wheel's bucket FIFOs and its overflow heap reconstruct the
  exact drain order (bucket cycles are recovered from the index via
  ``now + ((i - now) & mask)``, valid because every pending event
  satisfies ``now <= cycle < now + size`` between cycles), and each
  cycle's events are serialized in the *canonical within-cycle order*
  (:func:`~repro.sim.engine.event_sort_key`) the engine processes them
  in -- so the serialized schedule is a function of simulation state,
  identical whether it was produced serially or merged from shards;
* ``Engine._active`` serializes as a sorted membership list (the engine
  walks it in sorted order);
* packets are tracked by *identity* (pids are reused by fault-retry
  clones), via an index table built in one canonical traversal order, so
  the restored ``_inflight`` keys and wheel arrivals are the same
  objects.

Serialization is canonical: compact separators, **insertion-ordered**
keys, where every producer inserts in a canonical order -- dataclass
field order for sections, and per-id stats dicts pre-sorted by key in
``SimStats.asdict`` (a pure function of the counts, identical between a
serial run and a shard-merged one). ``json.loads`` preserves object key
order, so a save/load/save round trip is byte-stable (double-checkpoint
idempotence, also pinned by tests).

FIFO queues (VC buffers, source queues) are serialized *compacted* --
dead prefixes before the head index dropped, heads zeroed -- which is
observationally invisible and keeps snapshots minimal and canonical.

Failure is explicit: any malformed, truncated, corrupted, or
future-versioned payload raises :class:`CheckpointError` (the CLI maps
it to a one-line error and exit code 1).
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.arbiters.age_based import AgeBasedArbiter
from repro.arbiters.base import Arbiter
from repro.arbiters.inverse_weighted import InverseWeightedArbiter
from repro.arbiters.round_robin import FixedPriorityArbiter, RoundRobinArbiter
from repro.core.geometry import Dim
from repro.core.machine import Fraction, Machine, MachineConfig
from repro.core.routing import Route, RouteChoice

from .engine import Engine, event_sort_key
from .metrics import MetricsCollector
from .packet import Packet
from .stats import SimStats
from .trace import JsonlTraceWriter, Tee

#: Version of the checkpoint payload schema; bump on any layout change.
CHECKPOINT_SCHEMA_VERSION = 1

#: Environment variable naming a cycle at which
#: :func:`run_with_checkpoints` simulates a crash (raises
#: ``KeyboardInterrupt`` *without* saving). Deterministic stand-in for
#: kill-at-random-time in the crash-resume tests; inherited by sweep
#: worker processes.
CRASH_ENV_VAR = "REPRO_CRASH_AT_CYCLE"


class CheckpointError(RuntimeError):
    """A checkpoint payload is invalid, unsupported, or unserializable."""


# --- arbiter registry -------------------------------------------------------------

#: isinstance-dispatch order matters: subclasses before bases.
_ARBITER_TAGS: Tuple[Tuple[type, str], ...] = (
    (InverseWeightedArbiter, "iw"),
    (AgeBasedArbiter, "age"),
    (RoundRobinArbiter, "rr"),
    (FixedPriorityArbiter, "fixed"),
)


def _dump_arbiter(arbiter: Arbiter) -> dict:
    for cls, tag in _ARBITER_TAGS:
        if type(arbiter) is cls:
            return {"type": tag, "state": arbiter.state()}
    raise CheckpointError(
        f"cannot checkpoint arbiter of type {type(arbiter).__name__}; "
        f"supported: {', '.join(tag for _, tag in _ARBITER_TAGS)}"
    )


def _build_arbiter(spec: dict) -> Arbiter:
    tag = spec["type"]
    state = spec["state"]
    num_inputs = len(state["grants"])
    if tag == "iw":
        arbiter: Arbiter = InverseWeightedArbiter(
            [list(row) for row in state["weights"]],
            state["weight_bits"],
            bit_exact=bool(state["bit_exact"]),
        )
    elif tag == "age":
        arbiter = AgeBasedArbiter(num_inputs)
    elif tag == "rr":
        arbiter = RoundRobinArbiter(num_inputs)
    elif tag == "fixed":
        arbiter = FixedPriorityArbiter(num_inputs)
    else:
        raise CheckpointError(f"unknown arbiter type {tag!r} in checkpoint")
    arbiter.restore(state)
    return arbiter


# --- RNG state helpers ------------------------------------------------------------


def rng_state_to_json(rng: random.Random) -> list:
    """JSON-safe form of a ``random.Random`` state (Mersenne Twister)."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_state_from_json(state: list) -> random.Random:
    """Rebuild a ``random.Random`` mid-stream from its serialized state."""
    rng = random.Random()
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))
    return rng


# --- snapshot ---------------------------------------------------------------------


def _machine_to_json(machine: Machine) -> dict:
    cfg = machine.config
    tcf = cfg.torus_cycles_per_flit
    data = {
        "shape": list(cfg.shape),
        "endpoints_per_chip": cfg.endpoints_per_chip,
        "vc_scheme": cfg.vc_scheme,
        "num_classes": cfg.num_classes,
        "mesh_latency": cfg.mesh_latency,
        "skip_latency": cfg.skip_latency,
        "adapter_link_latency": cfg.adapter_link_latency,
        "torus_latency": cfg.torus_latency,
        "onchip_buffer_flits": cfg.onchip_buffer_flits,
        "torus_buffer_flits": cfg.torus_buffer_flits,
        "torus_cycles_per_flit": [tcf.numerator, tcf.denominator],
        "router_pipeline_cycles": cfg.router_pipeline_cycles,
    }
    # Emitted only for non-default topologies: every torus checkpoint --
    # including the committed golden -- keeps its exact byte layout.
    if cfg.topology != "torus":
        data["topology"] = cfg.topology
    return data


def _machine_from_json(data: dict) -> Machine:
    num, den = data["torus_cycles_per_flit"]
    config = MachineConfig(
        shape=tuple(data["shape"]),
        topology=data.get("topology", "torus"),
        endpoints_per_chip=data["endpoints_per_chip"],
        vc_scheme=data["vc_scheme"],
        num_classes=data["num_classes"],
        mesh_latency=data["mesh_latency"],
        skip_latency=data["skip_latency"],
        adapter_link_latency=data["adapter_link_latency"],
        torus_latency=data["torus_latency"],
        onchip_buffer_flits=data["onchip_buffer_flits"],
        torus_buffer_flits=data["torus_buffer_flits"],
        torus_cycles_per_flit=Fraction(num, den),
        router_pipeline_cycles=data["router_pipeline_cycles"],
    )
    return Machine(config)


def _route_to_json(route: Route) -> dict:
    choice = route.choice
    return {
        "src": route.src,
        "dst": route.dst,
        "choice": {
            "order": [int(d) for d in choice.dim_order],
            "slice": choice.slice_index,
            "deltas": None if choice.deltas is None else list(choice.deltas),
        },
        "hops": [[channel, vc] for channel, vc in route.hops],
        "internode": route.internode_hops,
        "via": None if route.via is None else list(route.via),
    }


def _packet_to_json(packet: Packet) -> dict:
    return {
        "pid": packet.pid,
        "route": _route_to_json(packet.route),
        "size_flits": packet.size_flits,
        "pattern": packet.pattern,
        "traffic_class": packet.traffic_class,
        "release_cycle": packet.release_cycle,
        "inject_cycle": packet.inject_cycle,
        "deliver_cycle": packet.deliver_cycle,
        "hop_index": packet.hop_index,
        "ready_cycle": packet.ready_cycle,
        "retries": packet.retries,
        "drop": packet.drop_on_arrival,
    }


def _packet_from_json(data: dict, choice_cache: Dict[tuple, RouteChoice]) -> Packet:
    rdata = data["route"]
    cdata = rdata["choice"]
    deltas = cdata["deltas"]
    key = (tuple(cdata["order"]), cdata["slice"], None if deltas is None else tuple(deltas))
    choice = choice_cache.get(key)
    if choice is None:
        choice = RouteChoice(
            dim_order=tuple(Dim(d) for d in cdata["order"]),
            slice_index=cdata["slice"],
            deltas=None if deltas is None else tuple(deltas),
        )
        choice_cache[key] = choice
    via = rdata["via"]
    route = Route(
        src=rdata["src"],
        dst=rdata["dst"],
        choice=choice,
        hops=tuple((channel, vc) for channel, vc in rdata["hops"]),
        internode_hops=rdata["internode"],
        via=None if via is None else tuple(via),
    )
    packet = Packet(
        data["pid"],
        route,
        size_flits=data["size_flits"],
        pattern=data["pattern"],
        traffic_class=data["traffic_class"],
        release_cycle=data["release_cycle"],
    )
    packet.inject_cycle = data["inject_cycle"]
    packet.deliver_cycle = data["deliver_cycle"]
    packet.hop_index = data["hop_index"]
    packet.ready_cycle = data["ready_cycle"]
    packet.retries = data["retries"]
    packet.drop_on_arrival = data["drop"]
    # ``next_hop`` is an invariant of (route, hop_index) at checkpoint
    # boundaries, so it is derived rather than stored.
    hops = route.hops
    packet.next_hop = hops[packet.hop_index] if packet.hop_index < len(hops) else None
    return packet


# Event kind constants mirrored from the engine (module-private there).
_EV_ARRIVAL = 0


class _PacketIndex:
    """Identity-keyed packet index table.

    Pids are *not* unique (a retry clone shares its pid with the
    condemned in-flight copy it replaces), so packets are indexed by
    object identity in one canonical traversal order: source queues,
    then VC buffers, then wheel events. The restored engine shares one
    object per index, exactly as the live engine does.
    """

    def __init__(self) -> None:
        self._ids: Dict[int, int] = {}
        self.packets: List[Packet] = []

    def index(self, packet: Packet) -> int:
        idx = self._ids.get(id(packet))
        if idx is None:
            idx = len(self.packets)
            self._ids[id(packet)] = idx
            self.packets.append(packet)
        return idx


def _wheel_to_json(wheel, now: int, encode=list) -> dict:
    """Serialize the timing wheel in canonical drain order.

    Buckets are scanned in cycle order from ``now``: between cycles every
    pending bucket event satisfies ``now <= cycle < now + size``, so the
    bucket at index ``i`` holds exactly the events for cycle
    ``now + ((i - now) & mask)``. Each cycle's events -- bucket and
    overflow alike -- are serialized in the canonical within-cycle order
    (:func:`~repro.sim.engine.event_sort_key`), which is exactly the
    order the engine processes them in, so the serialized schedule is a
    pure function of simulation state: a sharded run's merged wheel
    equals the serial engine's. Overflow sequence numbers are
    *renumbered* ``0..k-1`` in that canonical order (with ``seq`` = k),
    erasing push history while preserving pop order; the sorted tuples
    are already a valid heap. ``encode`` maps each payload tuple to a
    JSON-safe list (the engine path swaps packet objects for index-table
    entries).
    """
    buckets = []
    for delta in range(wheel.size):
        cycle = now + delta
        bucket = wheel.buckets[cycle & wheel.mask]
        if bucket:
            ordered = (
                sorted(bucket, key=event_sort_key) if len(bucket) > 1 else bucket
            )
            buckets.append([cycle, [encode(payload) for payload in ordered]])
    # Final tie-break on the original seq: within one (cycle, sort-key)
    # class only a single deterministic producer pushes, so push order is
    # itself canonical -- but the heap's *array* layout is not, so it
    # cannot serve as the stable-sort fallback.
    ordered_overflow = sorted(
        wheel.overflow,
        key=lambda item: (item[0], event_sort_key(item[2]), item[1]),
    )
    overflow = [
        [cycle, new_seq, encode(payload)]
        for new_seq, (cycle, _seq, payload) in enumerate(ordered_overflow)
    ]
    return {
        "seq": len(overflow),
        "pending": wheel.pending,
        "buckets": buckets,
        "overflow": overflow,
    }


def _trace_section(engine: Engine) -> dict:
    """Record enough about the attached sink(s) to resume byte-identically.

    For a :class:`JsonlTraceWriter` (directly or inside a
    :class:`~repro.sim.trace.Tee`) the event and byte counters are
    recorded so a resume can truncate a crashed run's trace file back to
    this checkpoint and append header-free. A
    :class:`~repro.sim.metrics.MetricsCollector` is captured wholesale.
    """
    section: dict = {"events_written": None, "bytes_written": None, "collector": None}

    def visit(sink) -> None:
        if sink is None:
            return
        if isinstance(sink, Tee):
            for sub in sink.sinks:
                visit(sub)
        elif isinstance(sink, JsonlTraceWriter):
            section["events_written"] = sink.events_written
            section["bytes_written"] = sink.bytes_written
        elif isinstance(sink, MetricsCollector):
            section["collector"] = sink.state()
        # Other sinks (ListSink, ad-hoc test sinks) carry no state a
        # resume needs: the caller re-attaches whatever it wants.

    visit(engine.trace)
    return section


def snapshot_engine(engine: Engine) -> dict:
    """Full mutable-state snapshot of a quiescent engine (between cycles).

    The engine is not modified. Raises :class:`CheckpointError` for state
    that cannot be serialized (an ``on_delivery`` hook -- arbitrary
    callables do not survive serialization -- or an unregistered arbiter
    type).
    """
    if engine.on_delivery is not None:
        raise CheckpointError(
            "engine has an on_delivery hook attached; callable hooks are "
            "not checkpointable"
        )
    if engine._fastpath is not None:
        # Publish mirrored arbiter pointers/grants and deferred channel
        # stats into the Python objects serialized below. The mirrors
        # themselves are never serialized: a fast-path checkpoint is
        # byte-identical to the scalar engine's at the same cycle.
        engine._fastpath.flush()
    pindex = _PacketIndex()

    source_queues = []
    for src in sorted(engine._source_queues):
        queue = engine._source_queues[src]
        head = engine._source_heads[src]
        source_queues.append([src, [pindex.index(p) for p in queue[head:]]])

    buffers = []
    for cid, bufs in enumerate(engine._buffers):
        heads = engine._buffer_heads[cid]
        buffers.append(
            [[pindex.index(p) for p in queue[heads[vc]:]] for vc, queue in enumerate(bufs)]
        )

    def encode(payload: tuple) -> list:
        kind, a, b, c = payload
        if kind == _EV_ARRIVAL:
            a = pindex.index(a)
            # The fast path caches the arrival VC in the otherwise-unused
            # payload slot; the canonical serialized form keeps None (the
            # VC is derivable from the packet's traversed hop), so scalar
            # and fast engines write identical bytes.
            c = None
        return [kind, a, b, c]

    wheel = _wheel_to_json(engine._events, engine.cycle, encode)

    faults = None
    if engine._fault_runtime is not None:
        # Deferred import: repro.faults imports the engine module.
        from repro.faults.routing import RESOLUTION_STAGES

        runtime = engine._fault_runtime
        policy = runtime.policy
        faults = {
            "fault_set": json.loads(runtime.fault_set.to_json()),
            "policy": {
                "mode": policy.mode,
                "max_retries": policy.max_retries,
                "backoff_base_cycles": policy.backoff_base_cycles,
                "backoff_cap_cycles": policy.backoff_cap_cycles,
            },
            "failed": sorted(engine._failed_channels or ()),
            # Sorted by packet index: every in-network packet already has
            # a pending wheel arrival, so its index was assigned by the
            # canonical traversal above and the sort erases push history.
            "inflight": sorted(
                [pindex.index(packet), oc]
                for packet, oc in engine._inflight.items()
            ),
            # Diagnostic escalation-stage counts, in canonical stage
            # order. The route computer's resolution *caches* are pure
            # memoization (recomputation is deterministic and
            # value-equal) and deliberately restart cold; the counts are
            # observable state and must survive.
            "resolution": [
                [stage, runtime.route_computer.resolution_counts[stage]]
                for stage in RESOLUTION_STAGES
                if runtime.route_computer.resolution_counts[stage]
            ],
        }

    return {
        "kind": "engine-checkpoint",
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "cycle": engine.cycle,
        "machine": _machine_to_json(engine.machine),
        "watchdog_cycles": engine.watchdog_cycles,
        "keep_packet_latencies": engine.keep_packet_latencies,
        "packets": [_packet_to_json(p) for p in pindex.packets],
        "source_queues": source_queues,
        "buffers": buffers,
        "credits": [list(vcs) for vcs in engine._credits],
        "channel_free_at": list(engine._channel_free_at),
        "input_free_at": list(engine._input_free_at),
        "arbiters": [
            [oc, _dump_arbiter(arb)] for oc, arb in engine.arbiters.items()
        ],
        "vc_arbiters": [
            [cid, _dump_arbiter(arb)]
            for cid, arb in enumerate(engine.vc_arbiters)
            if arb is not None
        ],
        "wheel": wheel,
        "active": sorted(engine._active),
        "queued": engine._queued,
        "in_network": engine._in_network,
        "last_progress": engine._last_progress,
        "stats": engine.stats.asdict(),
        "trace": _trace_section(engine),
        "faults": faults,
    }


# --- restore ----------------------------------------------------------------------


def _wheel_from_json(wheel, data: dict, decode=tuple) -> None:
    """Reinstate a :func:`_wheel_to_json` snapshot into ``wheel`` in place.

    ``decode`` maps each encoded payload list back to its event tuple
    (the engine path swaps packet indices for the shared objects). The
    sorted (cycle, seq)-keyed overflow tuples are already a valid heap;
    no heapify is needed, and pop order is fully determined by the keys.
    """
    for bucket in wheel.buckets:
        del bucket[:]
    for cycle, encoded in data["buckets"]:
        wheel.buckets[cycle & wheel.mask].extend(decode(e) for e in encoded)
    wheel.overflow = [
        (cycle, seq, decode(enc)) for cycle, seq, enc in data["overflow"]
    ]
    wheel.seq = data["seq"]
    wheel.pending = data["pending"]


def _restore_into(engine: Engine, data: dict, packets: List[Packet]) -> None:
    engine.cycle = data["cycle"]

    engine._source_queues = {}
    engine._source_heads = {}
    for src, indices in data["source_queues"]:
        engine._source_queues[src] = [packets[i] for i in indices]
        engine._source_heads[src] = 0

    for cid, bufs in enumerate(data["buffers"]):
        engine._buffers[cid] = [[packets[i] for i in queue] for queue in bufs]
        engine._buffer_heads[cid] = [0] * len(bufs)
        engine._buffered_count[cid] = sum(len(queue) for queue in bufs)

    # Written element-wise: the engine's credit rows are views into one
    # flat typed array (and the free-at vectors are typed arrays) that
    # the vectorized fast path reads through numpy views -- rebinding to
    # fresh lists would silently decouple scalar state from those views.
    for row, values in zip(engine._credits, data["credits"]):
        for vc, value in enumerate(values):
            row[vc] = value
    for cid, value in enumerate(data["channel_free_at"]):
        engine._channel_free_at[cid] = value
    for cid, value in enumerate(data["input_free_at"]):
        engine._input_free_at[cid] = value

    for oc, spec in data["arbiters"]:
        engine.arbiters[oc] = _build_arbiter(spec)
    for cid, spec in data["vc_arbiters"]:
        engine.vc_arbiters[cid] = _build_arbiter(spec)

    def decode(enc: list) -> tuple:
        kind, a, b, c = enc
        if kind == _EV_ARRIVAL:
            a = packets[a]
            # Rehydrate the arrival-VC payload cache the fast path's
            # handlers read (the canonical form stores None; the VC is
            # derivable from the in-flight packet's traversed hop).
            c = a.route.hops[a.hop_index - 1][1]
        return (kind, a, b, c)

    _wheel_from_json(engine._events, data["wheel"], decode)

    engine._active = dict.fromkeys(data["active"])
    engine._queued = data["queued"]
    engine._in_network = data["in_network"]
    engine._last_progress = data["last_progress"]

    engine.stats = SimStats.from_dict(data["stats"])
    # The depart fast path increments these aliases directly; re-point
    # them at the restored stats object's dicts.
    engine._stat_channel_flits = engine.stats.channel_flits
    engine._stat_channel_busy = engine.stats.channel_busy_ticks

    if data["faults"] is not None:
        # Deferred import: repro.faults imports the engine module.
        from repro.faults.model import FaultSet
        from repro.faults.runtime import FaultPolicy, FaultRuntime

        fdata = data["faults"]
        fault_set = FaultSet.from_json(json.dumps(fdata["fault_set"]))
        policy = FaultPolicy(**fdata["policy"])
        # The runtime is rebuilt *after* engine construction so the
        # constructor's timeline pushes do not run: the restored wheel
        # already holds every pending fault event.
        runtime = FaultRuntime(engine.machine, fault_set, policy=policy)
        engine._fault_runtime = runtime
        engine._fault_routes = runtime.route_computer
        # The constructor's timeline pushes were skipped, so advance the
        # canonical fault-index counter past the timeline the restored
        # wheel already carries; later schedule_faults calls continue
        # the sequence instead of reusing indices.
        engine._fault_push_seq = len(runtime.timeline)
        engine._failed_channels = set(fdata["failed"])
        runtime.route_computer.set_failed(engine._failed_channels)
        runtime.route_computer.resolution_counts.update(
            {stage: count for stage, count in fdata["resolution"]}
        )
        engine._inflight = {packets[i]: oc for i, oc in fdata["inflight"]}

    if engine._fastpath is not None:
        # Buffers, arbiters, the active dict, and the stats object were
        # just rebound; every mirror is invalid until the next step
        # rebuilds from the restored state.
        engine._fastpath.stale = True


def restore_engine(
    data: dict,
    machine: Optional[Machine] = None,
    trace=None,
    use_fastpath: Optional[bool] = None,
) -> Engine:
    """Rebuild a running engine from :func:`snapshot_engine` output.

    ``machine`` may supply an already-elaborated machine (it must have
    been built from the same configuration); by default the machine is
    rebuilt from the embedded config. ``trace`` attaches a sink to the
    restored engine; when omitted and the checkpoint captured a
    :class:`~repro.sim.metrics.MetricsCollector`, the collector is
    revived and attached. ``use_fastpath`` selects the vectorized
    allocation core exactly as the :class:`Engine` constructor argument
    does (checkpoints are path-agnostic: either path resumes any
    checkpoint bitwise).

    Raises :class:`CheckpointError` on any structural defect.
    """
    _validate_header(data)
    try:
        if machine is None:
            machine = _machine_from_json(data["machine"])
        if trace is None and data["trace"]["collector"] is not None:
            trace = MetricsCollector.from_state(data["trace"]["collector"])
        engine = Engine(
            machine,
            watchdog_cycles=data["watchdog_cycles"],
            keep_packet_latencies=data["keep_packet_latencies"],
            trace=trace,
            use_fastpath=use_fastpath,
        )
        choice_cache: Dict[tuple, RouteChoice] = {}
        packets = [_packet_from_json(p, choice_cache) for p in data["packets"]]
        _restore_into(engine, data, packets)
    except CheckpointError:
        raise
    except (KeyError, IndexError, TypeError, ValueError, AttributeError) as exc:
        raise CheckpointError(f"truncated or corrupted checkpoint: {exc!r}") from exc
    return engine


def _validate_header(data) -> None:
    if not isinstance(data, dict) or data.get("kind") != "engine-checkpoint":
        raise CheckpointError(
            "not an engine checkpoint (missing kind='engine-checkpoint')"
        )
    schema = data.get("schema")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint schema version {schema!r}; this build "
            f"reads version {CHECKPOINT_SCHEMA_VERSION}"
        )


# --- canonical serialization ------------------------------------------------------


def dumps(data: dict) -> str:
    """Canonical text form: compact, insertion-ordered, one trailing newline.

    Insertion order *is* the canonical order -- every producer inserts
    canonically (``SimStats.asdict`` sorts its per-id dicts, sections
    follow dataclass field order), so equal snapshots are equal bytes
    without a global ``sort_keys`` pass.
    """
    return json.dumps(data, separators=(",", ":")) + "\n"


def loads(text: str) -> dict:
    """Parse and header-validate checkpoint text."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
    _validate_header(data)
    return data


def save_checkpoint(engine: Engine, path: str) -> dict:
    """Snapshot ``engine`` and atomically write it to ``path``.

    The payload lands via a same-directory temp file and ``os.replace``,
    so a crash mid-save leaves the previous checkpoint intact -- the
    invariant the sweep runner's resume path relies on. Returns the
    snapshot dict.
    """
    data = snapshot_engine(engine)
    text = dumps(data)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return data


def load_checkpoint(path: str) -> dict:
    """Read and validate a checkpoint file (see :func:`loads`)."""
    try:
        with open(path, "r") as handle:
            text = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return loads(text)


def checkpoint_info(data: dict) -> dict:
    """Human-oriented summary of a validated checkpoint payload."""
    stats = data["stats"]
    return {
        "schema": data["schema"],
        "cycle": data["cycle"],
        "shape": tuple(data["machine"]["shape"]),
        "queued": data["queued"],
        "in_network": data["in_network"],
        "events_pending": data["wheel"]["pending"],
        "injected": stats["injected"],
        "delivered": stats["delivered"],
        "faulted": data["faults"] is not None,
        "trace_events": data["trace"]["events_written"],
        "trace_bytes": data["trace"]["bytes_written"],
    }


# --- periodic checkpointing driver ------------------------------------------------


def run_with_checkpoints(
    engine: Engine,
    path: str,
    every: int,
    max_cycles: int = 10_000_000,
) -> SimStats:
    """Run to completion, saving a checkpoint every ``every`` cycles.

    Behaviorally identical to ``engine.run(max_cycles)`` -- the chunked
    ``run_for`` loop reaches the same end state (pinned by the engine's
    split-run property tests) -- with a checkpoint written after each
    chunk that leaves work outstanding. The attached trace sink is
    flushed before each save so the bytes on disk cover at least the
    recorded ``bytes_written``.

    When the :data:`CRASH_ENV_VAR` environment variable names a cycle,
    the run raises ``KeyboardInterrupt`` upon reaching it *without*
    saving -- a deterministic crash for the resume tests, leaving the
    last periodic checkpoint (and possibly further trace bytes past it)
    on disk exactly as a real mid-run kill would.
    """
    if every < 1:
        raise ValueError(f"checkpoint interval must be >= 1 cycle, got {every}")
    crash_env = os.environ.get(CRASH_ENV_VAR)
    crash_cycle = int(crash_env) if crash_env else None
    while engine._queued or engine._in_network or engine._events.pending:
        if engine.cycle >= max_cycles:
            raise RuntimeError(
                f"simulation exceeded {max_cycles} cycles with "
                f"{engine._queued + engine._in_network} packets outstanding"
            )
        budget = every
        crashing = crash_cycle is not None and engine.cycle + budget >= crash_cycle
        if crashing:
            budget = crash_cycle - engine.cycle
        if budget > 0:
            engine.run_for(budget)
        if crashing and (
            engine._queued or engine._in_network or engine._events.pending
        ):
            # A run that drains before the crash cycle "exits" normally,
            # like a real process finishing before the kill lands.
            raise KeyboardInterrupt(
                f"simulated crash at cycle {engine.cycle} "
                f"({CRASH_ENV_VAR}={crash_cycle})"
            )
        if engine._queued or engine._in_network or engine._events.pending:
            if engine.trace is not None:
                engine.trace.flush()
            save_checkpoint(engine, path)
    engine.stats.end_cycle = engine.cycle
    return engine.stats
