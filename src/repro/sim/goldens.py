"""Canonical golden-trace runs: the engine-semantics conformance suite.

Each run here is small, deterministic, and chosen to cover a distinct
slice of engine behavior:

* ``uniform_2x2x2`` -- uniform random batch on the smallest full machine
  with round-robin arbitration: exercises both slices, VC promotion at
  datelines, and multi-hop contention;
* ``tornado_4x1x1`` -- tornado on a radix-4 X ring with inverse-weighted
  arbitration at both stages: exercises the weight-table path and
  sustained torus serialization at the exact 45/14 rate;
* ``faulted_2x2x2`` -- uniform batch with two scheduled mid-run
  torus-link failures (one recovering) under the reroute policy:
  exercises the fault sweep, in-place rerouting, and the fault/reroute
  trace events;
* ``pingpong_2x2x2`` -- the Section 4.3 counted-write ping-pong:
  exercises the delivery hook, reply injection, and an idle network's
  pure pipeline latency;
* ``demand_2x2x2`` -- an open-loop seeded-hotspot demand matrix whose
  rates shift at an epoch boundary mid-run: exercises the demand-matrix
  workload generator, paced Bernoulli injection, and piecewise-constant
  rate evolution;
* ``mesh_4x4`` -- uniform random batch on a standalone 2D mesh
  (``topology="mesh"``): exercises line-dimension routing where the
  dateline is degenerate and the escape VC is never entered via
  crossing;
* ``chiplet_2x2`` -- uniform batch with inverse-weighted arbitration on
  a 2x2 chiplet grid (``topology="chiplet"``): exercises interposer
  channel timing (3/2 cycles per flit, so ``ticks_per_cycle`` is 2, not
  14) and the exhaustive -- non-translation-symmetric -- analytic load
  path feeding the weight tables.

Golden headers carry machine-readable run metadata (``arb``, ``cores``,
and for batch runs ``pattern``/``batch``/``seed``) so ``repro replay``
can reconstruct the engine configuration from the trace alone.

With the exact fixed-point timebase a run's trace is a pure function of
its spec, so the JSONL rendering of these runs is committed under
``tests/golden/`` and *byte*-compared on every CI run. Any change to
arbitration order, credit return, serialization timing, or the trace
schema shows up as a readable JSONL diff instead of a silent drift in
downstream figures. Regenerate after an intentional semantics change
with::

    python -m repro trace --golden <name> --out tests/golden/<name>.jsonl
"""

from __future__ import annotations

import io
import pathlib
from typing import IO, Dict

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer

from .endpoints import PingPongDriver
from .simulator import run_batch
from .trace import JsonlTraceWriter

#: Repo-relative directory holding the committed golden artifacts.
GOLDEN_DIR = (
    pathlib.Path(__file__).resolve().parents[3] / "tests" / "golden"
)


def _batch_golden(
    writer: JsonlTraceWriter,
    shape,
    endpoints: int,
    pattern,
    batch_size: int,
    arbitration: str,
    seed: int,
    shards: int = 1,
    fault_set=None,
    topology: str = "torus",
) -> None:
    from repro.traffic.batch import BatchSpec

    config = MachineConfig(
        shape=shape, endpoints_per_chip=endpoints, topology=topology
    )
    machine = Machine(config)
    spec = BatchSpec(
        pattern,
        packets_per_source=batch_size,
        cores_per_chip=endpoints,
        seed=seed,
    )
    if shards > 1:
        # The sharded runner is bit-identical to the serial path, so a
        # golden regenerated under --shards N must byte-match the
        # committed serial artifact; CI relies on exactly that.
        from .shard import ShardedRun, run_sharded

        stats = run_sharded(
            ShardedRun(
                config=config,
                spec=spec,
                arbitration=arbitration,
                weight_patterns=(pattern,) if arbitration == "iw" else (),
                fault_set=fault_set,
            ),
            shards,
            machine=machine,
            trace=writer,
            transport="inline",
        )
    elif fault_set is not None:
        from repro.faults import FaultRuntime

        runtime = FaultRuntime(machine, fault_set)
        stats = run_batch(
            machine,
            runtime.route_computer,
            spec,
            arbitration=arbitration,
            trace=writer,
            faults=runtime,
        )
    else:
        routes = RouteComputer(machine)
        stats = run_batch(
            machine,
            routes,
            spec,
            arbitration=arbitration,
            weight_patterns=[pattern] if arbitration == "iw" else None,
            trace=writer,
        )
    record = {
        "ev": "end",
        "cyc": stats.end_cycle,
        "injected": stats.injected,
        "delivered": stats.delivered,
        "events": writer.events_written,
    }
    if fault_set is not None:
        record = {
            "ev": "end",
            "cyc": stats.end_cycle,
            "injected": stats.injected,
            "delivered": stats.delivered,
            "dropped": stats.dropped,
            "rerouted": stats.rerouted,
            "events": writer.events_written,
        }
    writer.write_record(record)


def _run_uniform_2x2x2(writer: JsonlTraceWriter, shards: int = 1) -> None:
    from repro.traffic.patterns import UniformRandom

    _batch_golden(
        writer,
        shape=(2, 2, 2),
        endpoints=2,
        pattern=UniformRandom((2, 2, 2)),
        batch_size=2,
        arbitration="rr",
        seed=5,
        shards=shards,
    )


def _run_tornado_4x1x1(writer: JsonlTraceWriter, shards: int = 1) -> None:
    from repro.traffic.patterns import Tornado

    _batch_golden(
        writer,
        shape=(4, 1, 1),
        endpoints=1,
        pattern=Tornado((4, 1, 1)),
        batch_size=4,
        arbitration="iw",
        seed=3,
        shards=shards,
    )


def _run_faulted_2x2x2(writer: JsonlTraceWriter, shards: int = 1) -> None:
    """Mid-run fault golden: two scheduled torus-link failures (one of
    which recovers) under the reroute policy, pinning the fault sweep's
    re-disposition semantics -- fault/reroute event ordering, credit
    return for swept buffers, and the deterministic fault timeline."""
    from repro.faults import FaultSet, FaultSpec
    from repro.faults.model import failable_channels
    from repro.traffic.patterns import UniformRandom

    machine = Machine(MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2))
    torus = failable_channels(machine)
    fault_set = FaultSet(
        specs=(
            FaultSpec(kind="link", channel=torus[0], down_cycle=12),
            FaultSpec(
                kind="link",
                channel=torus[len(torus) // 2],
                down_cycle=20,
                up_cycle=40,
            ),
        ),
        shape=(2, 2, 2),
        note="golden faulted run",
    )
    _batch_golden(
        writer,
        shape=(2, 2, 2),
        endpoints=2,
        pattern=UniformRandom((2, 2, 2)),
        batch_size=4,
        arbitration="rr",
        seed=5,
        shards=shards,
        fault_set=fault_set,
    )


def _run_demand_2x2x2(writer: JsonlTraceWriter, shards: int = 1) -> None:
    """Open-loop demand-matrix golden: a seeded hotspot matrix whose
    rates, hotspot count, and skew all shift at the cycle-32 epoch
    boundary, pinning the paced-injection schedule and the epoch
    hand-off semantics."""
    from repro.traffic.demand import (
        DemandMatrix,
        DemandSchedule,
        DemandSpec,
        run_demand,
    )

    config = MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2)
    machine = Machine(config)
    base = DemandMatrix.hotspot(
        (2, 2, 2), rate=0.25, hotspots=1, hot_fraction=0.6, seed=11
    )
    shifted = DemandMatrix.hotspot(
        (2, 2, 2), rate=0.35, hotspots=2, hot_fraction=0.5, seed=12
    )
    spec = DemandSpec(
        demand=DemandSchedule(epochs=((0, base), (32, shifted))),
        cores_per_chip=2,
        mode="open",
        duration_cycles=64,
        seed=7,
    )
    if shards > 1:
        from .shard import ShardedRun, run_sharded

        stats = run_sharded(
            ShardedRun(config=config, spec=spec),
            shards,
            machine=machine,
            trace=writer,
            transport="inline",
        )
    else:
        routes = RouteComputer(machine)
        stats = run_demand(machine, routes, spec, arbitration="rr", trace=writer)
    writer.write_record(
        {
            "ev": "end",
            "cyc": stats.end_cycle,
            "injected": stats.injected,
            "delivered": stats.delivered,
            "events": writer.events_written,
        }
    )


def _run_mesh_4x4(writer: JsonlTraceWriter, shards: int = 1) -> None:
    """Mesh-topology golden: pins line-dimension route construction and
    the rule-2-only VC promotion discipline (no dateline ever crossed)."""
    from repro.traffic.patterns import UniformRandom

    _batch_golden(
        writer,
        shape=(4, 4),
        endpoints=1,
        pattern=UniformRandom((4, 4, 1)),
        batch_size=2,
        arbitration="rr",
        seed=5,
        shards=shards,
        topology="mesh",
    )


def _run_chiplet_2x2(writer: JsonlTraceWriter, shards: int = 1) -> None:
    """Chiplet-topology golden: pins interposer channel timing (3/2
    cycles per flit => 2 ticks per cycle) and the exhaustive analytic
    load path behind the inverse-weight arbitration tables."""
    from repro.traffic.patterns import UniformRandom

    _batch_golden(
        writer,
        shape=(2, 2),
        endpoints=2,
        pattern=UniformRandom((2, 2, 1)),
        batch_size=3,
        arbitration="iw",
        seed=9,
        shards=shards,
        topology="chiplet",
    )


def _run_pingpong_2x2x2(writer: JsonlTraceWriter) -> None:
    machine = Machine(MachineConfig(shape=(2, 2, 2), endpoints_per_chip=1))
    routes = RouteComputer(machine)
    driver = PingPongDriver(
        machine,
        routes,
        endpoint_a=machine.ep_id[((0, 0, 0), 0)],
        endpoint_b=machine.ep_id[((1, 1, 1), 0)],
        rounds=3,
        software_overhead_cycles=20,
        trace=writer,
    )
    result = driver.run()
    writer.write_record(
        {
            "ev": "end",
            "round_trips": result.round_trips,
            "total_cycles": result.total_cycles,
            "events": writer.events_written,
        }
    )


#: Name -> (runner, header metadata). Metadata pins the run spec in the
#: trace header so a golden file is self-describing.
_GOLDEN_RUNS = {
    "uniform_2x2x2": (
        _run_uniform_2x2x2,
        {
            "name": "uniform_2x2x2",
            "shape": [2, 2, 2],
            "endpoints": 2,
            "arb": "rr",
            "cores": 2,
            "pattern": "uniform",
            "batch": 2,
            "seed": 5,
            "workload": "batch uniform x2 rr seed5",
        },
    ),
    "tornado_4x1x1": (
        _run_tornado_4x1x1,
        {
            "name": "tornado_4x1x1",
            "shape": [4, 1, 1],
            "endpoints": 1,
            "arb": "iw",
            "cores": 1,
            "pattern": "tornado",
            "batch": 4,
            "seed": 3,
            "workload": "batch tornado x4 iw seed3",
        },
    ),
    "faulted_2x2x2": (
        _run_faulted_2x2x2,
        {
            "name": "faulted_2x2x2",
            "shape": [2, 2, 2],
            "endpoints": 2,
            "arb": "rr",
            "cores": 2,
            "pattern": "uniform",
            "batch": 4,
            "seed": 5,
            "workload": "batch uniform x4 rr seed5 faults2 reroute",
        },
    ),
    "pingpong_2x2x2": (
        _run_pingpong_2x2x2,
        {
            "name": "pingpong_2x2x2",
            "shape": [2, 2, 2],
            "endpoints": 1,
            "arb": "rr",
            "cores": 1,
            "workload": "pingpong corner-to-corner rounds3 overhead20",
        },
    ),
    "demand_2x2x2": (
        _run_demand_2x2x2,
        {
            "name": "demand_2x2x2",
            "shape": [2, 2, 2],
            "endpoints": 2,
            "arb": "rr",
            "cores": 2,
            "workload": "demand hotspot 2-epoch open dur64 seed7",
        },
    ),
    "mesh_4x4": (
        _run_mesh_4x4,
        {
            "name": "mesh_4x4",
            "topology": "mesh",
            "shape": [4, 4],
            "endpoints": 1,
            "arb": "rr",
            "cores": 1,
            "pattern": "uniform",
            "batch": 2,
            "seed": 5,
            "workload": "batch uniform x2 rr seed5 topology=mesh",
        },
    ),
    "chiplet_2x2": (
        _run_chiplet_2x2,
        {
            "name": "chiplet_2x2",
            "topology": "chiplet",
            "shape": [2, 2],
            "endpoints": 2,
            "arb": "iw",
            "cores": 2,
            "pattern": "uniform",
            "batch": 3,
            "seed": 9,
            "workload": "batch uniform x3 iw seed9 topology=chiplet",
        },
    ),
}

GOLDEN_NAMES = tuple(_GOLDEN_RUNS)

#: Goldens that can be regenerated through the sharded runner. Pingpong
#: is driven by a delivery hook that re-injects at the replying
#: endpoint, which may live in another shard, so it stays serial; the
#: mesh/chiplet goldens stay serial because the shard partitioner is
#: torus-only (it rejects other topologies with a ValueError).
SHARDABLE_GOLDEN_NAMES = (
    "uniform_2x2x2",
    "tornado_4x1x1",
    "faulted_2x2x2",
    "demand_2x2x2",
)


def write_golden(name: str, stream: IO[str], shards: int = 1) -> int:
    """Run one canonical spec, streaming its JSONL trace; returns the
    number of events written.

    ``shards > 1`` routes the run through the conservative-lookahead
    shard runner (:mod:`repro.sim.shard`); the output must byte-match
    the serial rendering -- CI regenerates goldens under ``--shards 2``
    and ``--shards 4`` and diffs against the committed files.
    """
    try:
        runner, meta = _GOLDEN_RUNS[name]
    except KeyError:
        raise ValueError(
            f"unknown golden trace {name!r}; known: {', '.join(GOLDEN_NAMES)}"
        )
    if shards > 1 and name not in SHARDABLE_GOLDEN_NAMES:
        raise ValueError(
            f"golden trace {name!r} cannot run sharded; shardable: "
            f"{', '.join(SHARDABLE_GOLDEN_NAMES)}"
        )
    machine_meta = dict(meta)
    shape = tuple(machine_meta["shape"])
    machine_meta["tpc"] = Machine(
        MachineConfig(
            shape=shape,
            endpoints_per_chip=machine_meta["endpoints"],
            topology=machine_meta.get("topology", "torus"),
        )
    ).ticks_per_cycle
    writer = JsonlTraceWriter(stream, meta=machine_meta)
    if shards > 1:
        runner(writer, shards=shards)
    else:
        runner(writer)
    writer.flush()
    return writer.events_written


def render_golden(name: str, shards: int = 1) -> str:
    """One canonical run's full JSONL text (for byte comparison)."""
    buffer = io.StringIO()
    write_golden(name, buffer, shards=shards)
    return buffer.getvalue()


def committed_golden_path(name: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{name}.jsonl"


def check_goldens(shards: int = 1) -> Dict[str, bool]:
    """Regenerate every golden and compare against the committed bytes.

    With ``shards > 1`` only the shardable goldens are regenerated (and
    they are still compared against the *serial* committed bytes --
    sharding must not change a single byte).
    """
    names = SHARDABLE_GOLDEN_NAMES if shards > 1 else GOLDEN_NAMES
    results: Dict[str, bool] = {}
    for name in names:
        path = committed_golden_path(name)
        results[name] = (
            path.exists()
            and path.read_text() == render_golden(name, shards=shards)
        )
    return results
