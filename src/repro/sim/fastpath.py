"""Vectorized structure-of-arrays fast path for the per-cycle hot loop.

The scalar engine's ``_step`` walks every active component and, per input
channel, scans VC head packets in Python to decide eligibility (packet
ready, input port free, output channel accepting, credits available).
At saturation that scan -- plus the per-grant departure bookkeeping and
the event drain -- is essentially all of the runtime. This module
replaces those passes with numpy sweeps over flat int64 arrays while
producing the *bit-identical* simulation: same grants in the same order,
same event schedule, same stats dicts (including key insertion order),
same checkpoint bytes.

Storage model
-------------

The engine's own hot state (``_channel_free_at``, ``_input_free_at``,
``_credits_flat``, ``_buffered_count``) is ``array('q')``; the fast path
views that memory through ``np.frombuffer`` so scalar writes and vector
reads always see one coherent store -- nothing is mirrored twice. On top
of that the fast path owns true *mirrors* of per-(channel, VC) head
state, keyed by the flat slot id ``(cid << vbits) | vc``:

* ``head_ready[slot]`` -- head packet's ready cycle (``_BIG`` when empty),
* ``head_pack[slot]``  -- ``(oslot << 3) | size_flits`` of the head's next
  hop (sizes above 7 flits disable the fast path at enqueue/rebuild),
* ``head_age[slot]``   -- head packet's inject cycle (age-based SA2/SA1),
* ``head_pkt[slot]``   -- the Python packet object itself,

plus per-endpoint source-queue mirrors (``src_release``, ``src_pack``)
and an ``active_mask`` byte per component shadowing the engine's
insertion-ordered ``_active`` dict. Mirrors are updated incrementally at
the three mutation points (arrival append, head pop, source enqueue /
inject) and rebuilt wholesale after a checkpoint restore (``stale``);
they are never serialized -- a checkpoint written mid-run is
byte-identical to the scalar engine's.

Bit-exactness argument
----------------------

Every eligibility input (ready cycles, input/channel free horizons,
credits) is a *cycle-start* value: each output channel and input port is
owned by exactly one component, a component's SA1 scan completes before
any of its SA2 grants mutate state, and arrivals/credits land only in
the event drain that precedes ``_step``. So evaluating all components'
eligibility in one vector pass is exact, not approximate. Order-bearing
decisions (grant emission order, event push order, stats-dict key
order) are preserved by walking the active set in the same canonical
sorted order as the scalar ``_step``, pushing credit-before-arrival per
grant exactly as the scalar departure does, and recording first-use
order of stats keys. Arbiter policy state lives in flat mirrors
(pointers, grant-count deltas) for the three closed-form policies
(round-robin, age-based, fixed-priority) -- their ``peek`` is a pure key
extremum, computed vectorized below and proven equal by the property
tests in ``tests/properties/test_fastpath_peek.py`` -- and stays in the
arbiter objects for the inverse-weighted policy, whose accumulator
update is delegated to the object's own ``commit``. Mirrored state is
flushed back into the arbiter objects and stats dicts at every sync
point (run-loop exit, checkpoint snapshot, disable).

Fallback
--------

``Engine`` only constructs a ``FastPath`` when tracing and fault
injection are off (their emission points are scattered through the
scalar code and are exercised by the goldens against the scalar engine).
At runtime the fast path disables itself -- after flushing -- when it
sees a packet larger than 7 flits or an arbiter type it has no vector
model for; the engine then continues on the scalar path mid-run.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional

try:  # pragma: no cover - exercised only on numpy-less installs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.arbiters.age_based import AgeBasedArbiter
from repro.arbiters.inverse_weighted import InverseWeightedArbiter
from repro.arbiters.round_robin import FixedPriorityArbiter, RoundRobinArbiter
from repro.core.machine import ComponentKind

from .engine import event_sort_key

__all__ = [
    "FastPath",
    "numpy_available",
    "rr_peek_vec",
    "age_peek_vec",
    "fixed_peek_vec",
    "iw_peek_vec",
]

#: Sentinel "no head packet" ready cycle -- larger than any real cycle.
_BIG = 1 << 60

#: Largest packet size the 3-bit field of ``head_pack`` can carry. Real
#: Anton 2 packets are at most a few flits; anything larger falls back.
MAX_FAST_FLITS = 7

_KIND_RR = 0
_KIND_AGE = 1
_KIND_IW = 2
_KIND_FIXED = 3

_INJECT = object()  # work-table sentinel: endpoint injection this cycle


def numpy_available() -> bool:
    """True when the vectorized fast path can run at all."""
    return _np is not None


# --- vectorized peeks over request masks -----------------------------------
#
# Each function computes the same winner as the corresponding arbiter's
# scalar ``peek`` over a boolean request mask, as one key extremum:
#
# * round-robin: winner minimizes the descending-from-pointer rank
#   ``(pointer - 1 - i) % k`` (the first requester in ``rr_order``);
# * age-based: ``peek`` keeps a strictly-smaller age while iterating
#   ``rr_order``, i.e. the winner minimizes the pair ``(age, rank)`` --
#   packed as ``age * k + rank`` (rank < k keeps the packing exact);
# * fixed-priority: highest requesting index;
# * inverse-weighted (behavioural model): winner maximizes
#   ``level * k + i`` with ``level = (acc[i] < window) + (i < pointer)``.
#
# Keys are distinct across inputs by construction (each embeds the input
# index), so the extremum is unique and ties cannot arise. These are the
# reference forms the engine-side SA1/SA2 vector passes use; the property
# tests pin them against the scalar arbiters input-by-input.


def rr_peek_vec(pointer: int, requests) -> Optional[int]:
    """Vectorized ``RoundRobinArbiter.peek`` over a boolean request mask."""
    np = _np
    mask = np.asarray(requests, dtype=bool)
    idx = np.nonzero(mask)[0]
    if not idx.size:
        return None
    rank = (pointer - 1 - idx) % mask.size
    return int(idx[np.argmin(rank)])


def age_peek_vec(pointer: int, ages, requests) -> Optional[int]:
    """Vectorized ``AgeBasedArbiter.peek``: min ``(age, rr rank)``."""
    np = _np
    mask = np.asarray(requests, dtype=bool)
    idx = np.nonzero(mask)[0]
    if not idx.size:
        return None
    k = mask.size
    rank = (pointer - 1 - idx) % k
    key = np.asarray(ages, dtype=np.int64)[idx] * k + rank
    return int(idx[np.argmin(key)])


def fixed_peek_vec(requests) -> Optional[int]:
    """Vectorized ``FixedPriorityArbiter.peek``: highest requester."""
    np = _np
    mask = np.asarray(requests, dtype=bool)
    idx = np.nonzero(mask)[0]
    if not idx.size:
        return None
    return int(idx[-1])


def iw_peek_vec(pointer: int, accumulators, window: int, requests) -> Optional[int]:
    """Vectorized ``InverseWeightedArbiter._grant_fast``."""
    np = _np
    mask = np.asarray(requests, dtype=bool)
    idx = np.nonzero(mask)[0]
    if not idx.size:
        return None
    k = mask.size
    acc = np.asarray(accumulators, dtype=np.int64)[idx]
    level = (acc < window).astype(np.int64) + (idx < pointer)
    key = level * k + idx
    return int(idx[np.argmax(key)])


class FastPath:
    """Structure-of-arrays accelerator bound to one :class:`Engine`.

    Lifecycle: constructed by the engine (``use_fastpath``), ``stale``
    until the first :meth:`step` rebuilds the mirrors, then incremental.
    A checkpoint restore marks it stale again; a non-representable
    configuration (oversized packet, unknown arbiter type) flushes and
    permanently disables it, dropping the engine back to the scalar path.
    """

    def __init__(self, engine) -> None:
        if _np is None:  # pragma: no cover - engine gates on numpy_available
            raise RuntimeError("numpy is required for the fast path")
        self.engine = engine
        self.enabled = True
        self.stale = True
        np = _np

        machine = engine.machine
        channels = machine.channels
        ncomps = len(machine.components)
        C = len(channels)
        vbits = engine._vbits
        self.vbits = vbits
        self.vmask = (1 << vbits) - 1
        S = C << vbits
        self.S = S

        # Static per-channel geometry (int64 for gathers, lists for the walk).
        self.nvcs: List[int] = [machine.vcs_for_channel(c) for c in channels]
        self.np_nvcs = np.array(self.nvcs, dtype=np.int64)
        self.np_chan_dst = np.array(engine._channel_dst, dtype=np.int64)
        self.np_latency = np.array(engine._latency, dtype=np.int64)
        self.np_occupancy = np.array(engine._occupancy_ticks, dtype=np.int64)
        component_inputs = engine._component_inputs
        input_pos = [0] * C
        for inputs in component_inputs:
            for pos, ic in enumerate(inputs):
                input_pos[ic] = pos
        self.np_input_pos = np.array(input_pos, dtype=np.int64)
        self.input_pos = input_pos
        #: SA2 request-vector width per output channel = input count of
        #: the component that owns (sources) the channel.
        self.num_in: List[int] = [
            len(component_inputs[c.src]) for c in channels
        ]
        ibits = max(
            (n - 1).bit_length() for n in self.num_in
        ) if self.num_in else 0
        self.ibits = ibits
        self.imask = (1 << ibits) - 1

        # Router components with inputs, flattened for one reduceat that
        # yields per-component buffered-packet totals (the scalar
        # ``has_packets`` test, evaluated for every component at once).
        perm: List[int] = []
        starts: List[int] = []
        red_comps: List[int] = []
        no_input_routers: List[int] = []
        is_ep = engine._is_endpoint
        for comp in machine.components:
            if comp.kind == ComponentKind.ENDPOINT:
                continue
            inputs = component_inputs[comp.cid]
            if not inputs:
                no_input_routers.append(comp.cid)
                continue
            starts.append(len(perm))
            perm.extend(inputs)
            red_comps.append(comp.cid)
        self.np_red_perm = np.array(perm, dtype=np.intp)
        self.np_red_starts = np.array(starts, dtype=np.intp)
        self.np_red_comps = np.array(red_comps, dtype=np.int64)
        self.no_input_routers = no_input_routers
        self.np_is_ep = np.array(is_ep, dtype=bool)

        # Zero-copy views of the engine's canonical array('q') hot state.
        self.np_credits = np.frombuffer(engine._credits_flat, dtype=np.int64)
        self.np_chan_free = np.frombuffer(
            engine._channel_free_at, dtype=np.int64
        )
        self.np_input_free = np.frombuffer(
            engine._input_free_at, dtype=np.int64
        )
        self.np_buffered = np.frombuffer(
            engine._buffered_count, dtype=np.int64
        )

        # Head-of-queue mirrors (owned; array('q') canonical, numpy view).
        from array import array

        self.head_ready = array("q", bytes(8 * S))
        self.head_pack = array("q", bytes(8 * S))
        self.head_age = array("q", bytes(8 * S))
        self.head_pkt: List[Optional[object]] = [None] * S
        self.np_head_ready = np.frombuffer(self.head_ready, dtype=np.int64)
        self.np_head_pack = np.frombuffer(self.head_pack, dtype=np.int64)
        self.np_head_age = np.frombuffer(self.head_age, dtype=np.int64)

        # Arbiter policy mirrors.
        self.sa1_kind: List[int] = [-1] * C
        self.sa2_kind: List[int] = [-1] * C
        self.np_sa1_kind = np.full(C, -1, dtype=np.int64)
        self.np_sa2_kind = np.full(C, -1, dtype=np.int64)
        self.sa1_ptr = array("q", bytes(8 * C))
        self.sa2_ptr = array("q", bytes(8 * C))
        self.np_sa1_ptr = np.frombuffer(self.sa1_ptr, dtype=np.int64)
        self.np_sa2_ptr = np.frombuffer(self.sa2_ptr, dtype=np.int64)
        self.sa1_grants = array("q", bytes(8 * S))
        self.sa2_grants = array("q", bytes(8 * (C << ibits)))
        self.np_sa1_grants = np.frombuffer(self.sa1_grants, dtype=np.int64)
        self.np_sa2_grants = np.frombuffer(self.sa2_grants, dtype=np.int64)

        # Endpoint source-queue mirrors and the active-set shadow.
        self.src_release = array("q", bytes(8 * ncomps))
        self.src_pack = array("q", bytes(8 * ncomps))
        self.np_src_release = np.frombuffer(self.src_release, dtype=np.int64)
        self.np_src_pack = np.frombuffer(self.src_pack, dtype=np.int64)
        self.active_mask = array("b", bytes(ncomps))
        self.np_active = np.frombuffer(self.active_mask, dtype=np.int8)

        # Deferred stats accumulation (flushed into the stats dicts in
        # first-use key order at sync points).
        self.flits_acc = array("q", bytes(8 * C))
        self.busy_acc = array("q", bytes(8 * C))
        self.np_flits_acc = np.frombuffer(self.flits_acc, dtype=np.int64)
        self.np_busy_acc = np.frombuffer(self.busy_acc, dtype=np.int64)
        self.stat_seen = array("b", bytes(C))
        self.np_stat_seen = np.frombuffer(self.stat_seen, dtype=np.int8)
        self.stat_new: List[int] = []

        #: Per-component work table for the ordered walk: ``None`` (no
        #: work), a nomination index, a list of them, or ``_INJECT``.
        #: Persistent and reset during the walk itself.
        self.work: List[object] = [None] * ncomps
        #: True when any arbiter site is inverse-weighted (set by
        #: rebuild); lets the grant hot path skip the per-site kind
        #: probes entirely on machines without IW arbitration.
        self.iw_present = True

    # --- lifecycle ----------------------------------------------------------

    def disable(self) -> None:
        """Flush mirrored state and fall back to the scalar path for good."""
        self.flush()
        self.enabled = False

    @staticmethod
    def _classify(arb) -> int:
        t = type(arb)
        if t is RoundRobinArbiter:
            return _KIND_RR
        if t is AgeBasedArbiter:
            return _KIND_AGE
        if t is InverseWeightedArbiter:
            return _KIND_IW
        if t is FixedPriorityArbiter:
            return _KIND_FIXED
        return -1

    def rebuild(self) -> None:
        """Reconstruct every mirror from engine state (post-restore, or
        first use). Disables the fast path instead if the configuration
        is not representable."""
        e = self.engine
        vbits = self.vbits

        # Arbiter classification and pointer snapshots.
        sa1_kind = self.sa1_kind
        sa2_kind = self.sa2_kind
        for ic, arb in enumerate(e.vc_arbiters):
            if arb is None:
                kind = -1
            else:
                kind = self._classify(arb)
                if kind < 0:
                    self.enabled = False
                    return
                if kind == _KIND_RR or kind == _KIND_AGE:
                    self.sa1_ptr[ic] = arb._pointer
            sa1_kind[ic] = kind
            self.np_sa1_kind[ic] = kind
        for ic in range(len(sa2_kind)):
            sa2_kind[ic] = -1
        self.np_sa2_kind[:] = -1
        for oc, arb in e.arbiters.items():
            kind = self._classify(arb)
            if kind < 0:
                self.enabled = False
                return
            sa2_kind[oc] = kind
            self.np_sa2_kind[oc] = kind
            if kind == _KIND_RR or kind == _KIND_AGE:
                self.sa2_ptr[oc] = arb._pointer
        self.np_sa1_grants[:] = 0
        self.np_sa2_grants[:] = 0
        self.iw_present = _KIND_IW in sa1_kind or _KIND_IW in sa2_kind

        # Head mirrors from the buffers (and the size guard over every
        # packet that can ever become a head without passing through the
        # arrival handler or the enqueue hook).
        self.np_head_ready[:] = _BIG
        head_pkt = self.head_pkt
        for slot in range(self.S):
            head_pkt[slot] = None
        for cid, bufs in enumerate(e._buffers):
            hds = e._buffer_heads[cid]
            for vc, queue in enumerate(bufs):
                h = hds[vc]
                n = len(queue)
                if h >= n:
                    continue
                for pkt in queue[h:]:
                    if pkt.size_flits > MAX_FAST_FLITS:
                        self.enabled = False
                        return
                pkt = queue[h]
                slot = (cid << vbits) | vc
                self.head_ready[slot] = pkt.ready_cycle
                nh = pkt.next_hop
                self.head_pack[slot] = (
                    (((nh[0] << vbits) | nh[1]) << 3) | pkt.size_flits
                )
                self.head_age[slot] = pkt.inject_cycle
                head_pkt[slot] = pkt

        # Source-queue mirrors.
        self.np_src_release[:] = _BIG
        for src, queue in e._source_queues.items():
            h = e._source_heads[src]
            for pkt in queue[h:]:
                if pkt.size_flits > MAX_FAST_FLITS:
                    self.enabled = False
                    return
            if h < len(queue):
                pkt = queue[h]
                self.src_release[src] = pkt.release_cycle
                nh = pkt.next_hop
                self.src_pack[src] = (
                    (((nh[0] << vbits) | nh[1]) << 3) | pkt.size_flits
                )

        # In-flight packets only surface through the arrival handler,
        # which assumes the size guard already ran.
        for bucket in e._events.buckets:
            for ev in bucket:
                if ev[0] == 0 and ev[1].size_flits > MAX_FAST_FLITS:
                    self.enabled = False
                    return
        for _cycle, _seq, ev in e._events.overflow:
            if ev[0] == 0 and ev[1].size_flits > MAX_FAST_FLITS:
                self.enabled = False
                return

        # Active-set shadow.
        self.np_active[:] = 0
        amask = self.active_mask
        for comp in e._active:
            amask[comp] = 1

        # Stats key order: existing keys keep their dict positions; only
        # channels granted for the first time ever get appended.
        self.np_stat_seen[:] = 0
        seen = self.stat_seen
        for cid in e.stats.channel_flits:
            seen[cid] = 1
        self.stat_new.clear()
        self.np_flits_acc[:] = 0
        self.np_busy_acc[:] = 0

        self.stale = False

    def flush(self) -> None:
        """Publish mirrored deltas into the engine's Python objects.

        Called at every synchronization point: run-loop exit, checkpoint
        snapshot, deadlock report, disable. Idempotent; a no-op while
        stale (nothing mirrored is pending).
        """
        if self.stale:
            return
        e = self.engine
        np = _np
        # Stats: create first-ever keys in first-grant order, then add
        # the accumulated counts (existing keys keep their positions, so
        # bulk order is irrelevant).
        flits = e._stat_channel_flits
        busy = e._stat_channel_busy
        new = self.stat_new
        if new:
            for cid in new:
                flits[cid] += 0
                busy[cid] += 0
            new.clear()
        nz = np.nonzero(self.np_flits_acc)[0]
        if nz.size:
            flits_acc = self.flits_acc
            busy_acc = self.busy_acc
            for cid in nz.tolist():
                flits[cid] += flits_acc[cid]
                busy[cid] += busy_acc[cid]
            self.np_flits_acc[:] = 0
            self.np_busy_acc[:] = 0
        # Arbiter service counts (deltas) and pointers.
        nz = np.nonzero(self.np_sa1_grants)[0]
        if nz.size:
            vbits = self.vbits
            vmask = self.vmask
            sa1_grants = self.sa1_grants
            vc_arbiters = e.vc_arbiters
            for slot in nz.tolist():
                vc_arbiters[slot >> vbits].grants[slot & vmask] += sa1_grants[
                    slot
                ]
            self.np_sa1_grants[:] = 0
        nz = np.nonzero(self.np_sa2_grants)[0]
        if nz.size:
            ibits = self.ibits
            imask = self.imask
            sa2_grants = self.sa2_grants
            arbiters = e.arbiters
            for idx in nz.tolist():
                arbiters[idx >> ibits].grants[idx & imask] += sa2_grants[idx]
            self.np_sa2_grants[:] = 0
        sa1_kind = self.sa1_kind
        sa1_ptr = self.sa1_ptr
        for ic, arb in enumerate(e.vc_arbiters):
            if arb is not None and sa1_kind[ic] <= _KIND_AGE:
                arb._pointer = sa1_ptr[ic]
        sa2_kind = self.sa2_kind
        sa2_ptr = self.sa2_ptr
        for oc, arb in e.arbiters.items():
            if sa2_kind[oc] <= _KIND_AGE:
                arb._pointer = sa2_ptr[oc]

    def note_enqueue(self, packet, src: int) -> None:
        """Engine hook: ``packet`` just entered ``src``'s source queue.

        Keeps the source-head and active-set mirrors coherent for
        mid-run enqueues (``on_delivery`` reply traffic); while stale the
        next rebuild observes everything, so nothing to do.
        """
        if not self.enabled or self.stale:
            return
        if packet.size_flits > MAX_FAST_FLITS:
            self.disable()
            return
        e = self.engine
        queue = e._source_queues[src]
        if e._source_heads[src] == len(queue) - 1:
            self.src_release[src] = packet.release_cycle
            nh = packet.next_hop
            self.src_pack[src] = (
                (((nh[0] << self.vbits) | nh[1]) << 3) | packet.size_flits
            )
        if packet.release_cycle <= e.cycle:
            self.active_mask[src] = 1

    # --- event drain --------------------------------------------------------

    def process_events(self) -> None:
        """Drain this cycle's events, maintaining the mirrors.

        Replicates ``Engine._process_events`` exactly: overdue overflow
        and the bucket merge into one batch processed in the canonical
        within-cycle order (:func:`~repro.sim.engine.event_sort_key`).
        The arrival/credit/wake handler bodies are inlined (this runs
        for every arrival at saturation); fault events never reach here
        (fault injection disables the fast path at construction).
        """
        e = self.engine
        if not self.enabled:
            e._process_events()
            return
        events = e._events
        now = e.cycle
        overflow = events.overflow
        batch = None
        if overflow and overflow[0][0] <= now:
            batch = []
            while overflow and overflow[0][0] <= now:
                batch.append(heappop(overflow)[2])
            events.pending -= len(batch)
        bucket = events.take_due(now)
        if bucket:
            if batch is None:
                batch = bucket
            else:
                batch.extend(bucket)
        if batch:
            if len(batch) > 1:
                batch.sort(key=event_sort_key)
            vbits = self.vbits
            credits_flat = e._credits_flat
            active = e._active
            amask = self.active_mask
            channel_src = e._channel_src
            channel_dst = e._channel_dst
            buffers = e._buffers
            bc = e._buffered_count
            latency = e._latency
            pipeline = e._pipeline
            head_ready = self.head_ready
            head_pack = self.head_pack
            head_age = self.head_age
            head_pkt = self.head_pkt
            stats = e.stats
            keep = e.keep_packet_latencies
            plat = stats.packet_latencies
            dps = stats.delivered_per_source
            sfc = stats.source_finish_cycle
            est = stats.latency_estimator
            est_add = est.add if est is not None else None
            wsize = events.size
            wmask = events.mask
            wbuckets = events.buckets
            on_delivery = e.on_delivery
            # Deliveries within one bucket all land at `now`; their
            # scalar-count stats (delivered, latency sums, _in_network)
            # are commutative adds, accumulated locally and published
            # once after the loop -- unless an on_delivery callback may
            # observe them mid-drain, in which case the exact scalar
            # per-packet sequence runs instead.
            nfin = 0
            lat_acc = 0
            nlat_acc = 0
            for kind, a, b, c in batch:
                if kind == 0:  # arrival of packet `a` on channel `b`
                    if a.next_hop is None:
                        # Final hop: consume at the destination endpoint
                        # (`c` carries the arrival VC; see _depart/grant).
                        a.deliver_cycle = now
                        if on_delivery is None:
                            nfin += 1
                            src = a.route.src
                            dps[src] += 1
                            sfc[src] = now
                            lat_acc += now - a.release_cycle
                            nlat = now - a.inject_cycle
                            nlat_acc += nlat
                            if keep:
                                plat.append(nlat)
                            if est_add is not None:
                                est_add(nlat)
                        else:
                            stats.record_delivery(a, keep)
                            e._in_network -= 1
                            e._last_progress = now
                        cr = now + latency[b]
                        if 0 < cr - now < wsize:
                            wbuckets[cr & wmask].append(
                                (1, b, c, a.size_flits)
                            )
                        else:
                            events.seq += 1
                            heappush(
                                overflow,
                                (cr, events.seq, (1, b, c, a.size_flits)),
                            )
                        if on_delivery is not None:
                            events.pending += 1
                            on_delivery(a, now)
                    else:
                        a.ready_cycle = ready = now + pipeline
                        buffers[b][c].append(a)
                        bc[b] += 1
                        comp = channel_dst[b]
                        active[comp] = None
                        amask[comp] = 1
                        slot = (b << vbits) | c
                        if head_pkt[slot] is None:
                            # Queue had no live head: this packet is it.
                            head_ready[slot] = ready
                            nh = a.next_hop
                            head_pack[slot] = (
                                (((nh[0] << vbits) | nh[1]) << 3)
                                | a.size_flits
                            )
                            head_age[slot] = a.inject_cycle
                            head_pkt[slot] = a
                elif kind == 1:  # credit return on channel `a`, vc `b`
                    credits_flat[(a << vbits) | b] += c
                    comp = channel_src[a]
                    active[comp] = None
                    amask[comp] = 1
                else:  # wake of endpoint `a` (faults never reach here)
                    active[a] = None
                    amask[a] = 1
            if nfin:
                stats.delivered += nfin
                if now > stats.last_delivery_cycle:
                    stats.last_delivery_cycle = now
                stats.latency_sum += lat_acc
                stats.network_latency_sum += nlat_acc
                e._in_network -= nfin
                e._last_progress = now
                events.pending += nfin  # one credit push per delivery

    # --- the per-cycle allocation pass --------------------------------------

    def step(self) -> None:
        """One vectorized SA1+SA2 allocation pass (see module docstring)."""
        e = self.engine
        if not self.enabled:
            e._step()
            return
        if self.stale:
            self.rebuild()
            if not self.enabled:
                e._step()
                return
        np = _np
        now = e.cycle
        tpc = e._ticks_per_cycle
        now_ticks = now * tpc
        horizon = now_ticks + tpc
        vbits = self.vbits
        vmask = self.vmask
        work = self.work

        # ---- Phase A: vectorized eligibility + SA1 over all slots ----
        #
        # Every comparison below is against cycle-start state, which the
        # scalar engine's incremental scan also observes (see module
        # docstring), so the candidate set is exact.
        cand = np.nonzero(self.np_head_ready <= now)[0]
        if cand.size:
            ics = cand >> vbits
            keep = self.np_input_free[ics] <= now
            if not keep.all():
                cand = cand[keep]
                ics = ics[keep]
        if cand.size:
            pack = self.np_head_pack[cand]
            oslot_all = pack >> 3
            size_all = pack & 7
            keep = (self.np_chan_free[oslot_all >> vbits] < horizon) & (
                self.np_credits[oslot_all] >= size_all
            )
            if not keep.all():
                cand = cand[keep]
                ics = ics[keep]
                pack = pack[keep]
        nset = 0
        if cand.size:
            # Group eligible slots by input channel (cand ascending keeps
            # ics nondecreasing) and pick each group's SA1 winner as a key
            # minimum; a sole eligible VC wins without consulting policy
            # state, exactly like the scalar skip-peek path.
            boundary = np.empty(ics.size, dtype=bool)
            boundary[0] = True
            np.not_equal(ics[1:], ics[:-1], out=boundary[1:])
            starts = np.nonzero(boundary)[0]
            if starts.size == ics.size:
                n_slot = cand
                n_ic = ics
            else:
                kinds = self.np_sa1_kind[ics]
                nv = self.np_nvcs[ics]
                ptr = self.np_sa1_ptr[ics]
                vcn = cand & vmask
                key = (ptr - 1 - vcn) % nv  # round-robin rank
                agem = kinds == _KIND_AGE
                if agem.any():
                    key = np.where(
                        agem, self.np_head_age[cand] * nv + key, key
                    )
                fixm = kinds == _KIND_FIXED
                if fixm.any():
                    key = np.where(fixm, nv - 1 - vcn, key)
                ends = np.empty_like(starts)
                ends[:-1] = starts[1:]
                ends[-1] = ics.size
                gmin = np.minimum.reduceat(key, starts)
                sel = np.nonzero(key == np.repeat(gmin, ends - starts))[0]
                n_slot = cand[sel]
                n_ic = ics[starts]
                # Inverse-weighted SA1 sites under real contention keep
                # their accumulator state in the arbiter object; ask it.
                iw_multi = np.nonzero(
                    (kinds[starts] == _KIND_IW) & (ends - starts > 1)
                )[0]
                if iw_multi.size:
                    n_slot = n_slot.copy()
                    vc_arbiters = e.vc_arbiters
                    head_pkt = self.head_pkt
                    nvcs = self.nvcs
                    for g in iw_multi.tolist():
                        ic = int(n_ic[g])
                        reqs: List[Optional[object]] = [None] * nvcs[ic]
                        for s in cand[starts[g] : ends[g]].tolist():
                            reqs[s & vmask] = head_pkt[s]
                        winner = vc_arbiters[ic].peek(reqs)
                        n_slot[g] = (ic << vbits) | winner
            # Nomination attributes and departure timing, batched. Losers
            # simply never apply theirs.
            if n_slot is cand:
                n_pack = pack
            else:
                n_pack = pack[sel]
                if iw_multi.size:
                    # Object-resolved winners replaced the key minimum;
                    # re-read just those heads.
                    n_pack[iw_multi] = self.np_head_pack[n_slot[iw_multi]]
            n_oslot = n_pack >> 3
            n_size = n_pack & 7
            n_oc = n_oslot >> vbits
            n_pos = self.np_input_pos[n_ic]
            n_busy = n_size * self.np_occupancy[n_oc]
            end_t = np.maximum(self.np_chan_free[n_oc], now_ticks) + n_busy
            arr_c = np.maximum(
                (end_t - 1) // tpc - 1 + self.np_latency[n_oc], now + 1
            )
            l_slot = n_slot.tolist()
            l_ic = n_ic.tolist()
            l_pos = n_pos.tolist()
            l_oc = n_oc.tolist()
            l_size = n_size.tolist()
            # One tuple per nomination: the walk's grant body unpacks it
            # in a single indexed load instead of six list subscripts.
            noms = list(
                zip(
                    l_slot,
                    l_ic,
                    l_pos,
                    l_oc,
                    (n_oslot & vmask).tolist(),
                    l_size,
                    (now + self.np_latency[n_ic]).tolist(),
                    arr_c.tolist(),
                )
            )
            l_comp = self.np_chan_dst[n_ic].tolist()
            for j, comp in enumerate(l_comp):
                w = work[comp]
                if w is None:
                    work[comp] = j
                    nset += 1
                elif type(w) is int:
                    work[comp] = [w, j]
                else:
                    w.append(j)
        else:
            l_comp = ()

        # ---- Endpoint injection eligibility, vectorized ----
        inj_list: Optional[List[int]] = None
        rel = self.np_src_release
        np_active = self.np_active
        ready_eps = np.nonzero((rel <= now) & (np_active != 0))[0]
        if ready_eps.size:
            pk = self.np_src_pack[ready_eps]
            osl = pk >> 3
            sz = pk & 7
            ok = (self.np_chan_free[osl >> vbits] <= now_ticks) & (
                self.np_credits[osl] >= sz
            )
            inj = ready_eps[ok]
            if inj.size:
                inj_list = inj.tolist()
                for comp in inj_list:
                    work[comp] = _INJECT
                    nset += 1

        # ---- Removal set (cycle-start state, applied after the walk,
        # matching the scalar idle collection) ----
        if self.np_red_starts.size:
            comp_buf = np.add.reduceat(
                self.np_buffered[self.np_red_perm], self.np_red_starts
            )
            rm_r = self.np_red_comps[
                (comp_buf == 0) & (np_active[self.np_red_comps] != 0)
            ]
        else:  # pragma: no cover - machines always have routers
            rm_r = self.np_red_comps
        rm_e = np.nonzero((rel > now) & (np_active != 0) & self.np_is_ep)[0]

        # ---- Phase B: ordered walk over the active dict ----
        nreset = 0
        granted: List[int] = []
        if nset:
            events = e._events
            active = e._active
            overflow = events.overflow
            wsize = events.size
            wmask = events.mask
            wbuckets = events.buckets
            head_ready = self.head_ready
            head_pack = self.head_pack
            head_age = self.head_age
            head_pkt = self.head_pkt
            sa1_kind = self.sa1_kind
            sa2_kind = self.sa2_kind
            sa2_ptr = self.sa2_ptr
            ibits = self.ibits
            num_in = self.num_in
            buffers = e._buffers
            heads = e._buffer_heads
            bc = e._buffered_count
            vc_arbiters = e.vc_arbiters
            arbiters = e.arbiters
            source_queues = e._source_queues
            source_heads = e._source_heads
            src_release = self.src_release
            src_pack = self.src_pack
            stats = e.stats
            occupancy = e._occupancy_ticks
            latency = e._latency
            channel_free = e._channel_free_at
            credits_flat = e._credits_flat
            flits_acc = self.flits_acc
            busy_acc = self.busy_acc
            seen = self.stat_seen
            stat_new = self.stat_new
            granted_append = granted.append

            iw_present = self.iw_present
            remote_dst = e._remote_dst
            remote_src = e._remote_src
            outbox = e._outbox
            outbox_credits = e._outbox_credits
            ndivert = 0

            def grant(j: int) -> None:
                nonlocal ndivert
                # One departure: head pop + mirror update, route advance,
                # and the credit-then-arrival event pushes -- the exact
                # scalar ``_depart`` order. Timing was batched in Phase
                # A; arbiter pointer/grant-count mirrors, free-at,
                # credit, and input-port scatters all land vectorized
                # after the walk (each input, output, and slot grants at
                # most once per cycle and nothing re-reads them within
                # it) -- only the inverse-weighted policy's opaque
                # accumulator commit stays with the object here.
                slot, ic, pos, oc, ovc, size, cc, ac = noms[j]
                vc = slot & vmask
                pkt = head_pkt[slot]
                if iw_present:
                    if sa1_kind[ic] == _KIND_IW:
                        vc_arbiters[ic].commit(vc, pkt)
                    if sa2_kind[oc] == _KIND_IW:
                        arbiters[oc].commit(pos, pkt)
                hds = heads[ic]
                h = hds[vc] + 1
                hds[vc] = h
                bc[ic] -= 1
                queue = buffers[ic][vc]
                if h > 32 and h * 2 >= len(queue):
                    del queue[:h]
                    hds[vc] = h = 0
                if h < len(queue):
                    nxt = queue[h]
                    head_ready[slot] = nxt.ready_cycle
                    nh = nxt.next_hop
                    head_pack[slot] = (
                        (((nh[0] << vbits) | nh[1]) << 3) | nxt.size_flits
                    )
                    head_age[slot] = nxt.inject_cycle
                    head_pkt[slot] = nxt
                else:
                    head_ready[slot] = _BIG
                    head_pkt[slot] = None
                hi = pkt.hop_index + 1
                pkt.hop_index = hi
                hops = pkt.route.hops
                pkt.next_hop = hops[hi] if hi < len(hops) else None
                if remote_src is not None and ic in remote_src:
                    # Ingress channel: its source arbitration point lives
                    # in another shard -- the credit crosses the barrier.
                    outbox_credits.append((ic, vc, size, cc))
                    ndivert += 1
                elif 0 < cc - now < wsize:
                    wbuckets[cc & wmask].append((1, ic, vc, size))
                else:
                    events.seq += 1
                    heappush(overflow, (cc, events.seq, (1, ic, vc, size)))
                if remote_dst is not None and oc in remote_dst:
                    # Egress channel: the peer shard materializes the
                    # arrival after the barrier (repro/sim/shard.py).
                    outbox.append((pkt, oc, ac))
                    ndivert += 1
                elif 0 < ac - now < wsize:
                    wbuckets[ac & wmask].append((0, pkt, oc, ovc))
                else:
                    events.seq += 1
                    heappush(overflow, (ac, events.seq, (0, pkt, oc, ovc)))
                # First-ever grant on this output channel: claim its
                # stats-dict position here, in walk order, so router
                # grants interleave with endpoint injections exactly as
                # the scalar engine's single pass records them.
                if not seen[oc]:
                    seen[oc] = 1
                    stat_new.append(oc)
                granted_append(j)

            # Sorted, not insertion, order: the canonical within-cycle
            # schedule the scalar ``_step`` walks (see event_sort_key).
            for comp in sorted(active):
                w = work[comp]
                if w is None:
                    continue
                work[comp] = None
                nreset += 1
                if type(w) is int:
                    # Sole nominating input of this component: its output
                    # is uncontended by construction, grant directly.
                    grant(w)
                elif w is _INJECT:
                    queue = source_queues[comp]
                    h = source_heads[comp]
                    pkt = queue[h]
                    h += 1
                    if h >= len(queue):
                        del source_queues[comp]
                        del source_heads[comp]
                        src_release[comp] = _BIG
                    else:
                        source_heads[comp] = h
                        nxt = queue[h]
                        src_release[comp] = nxt.release_cycle
                        nh = nxt.next_hop
                        src_pack[comp] = (
                            (((nh[0] << vbits) | nh[1]) << 3) | nxt.size_flits
                        )
                    e._queued -= 1
                    e._in_network += 1
                    pkt.inject_cycle = now
                    stats.injected += 1
                    # Departure from an endpoint adapter: no input port,
                    # no SA1/SA2, and its output channel is touched by no
                    # router grant this cycle, so the direct reads below
                    # still see cycle-start values.
                    nh = pkt.next_hop
                    oc = nh[0]
                    size = pkt.size_flits
                    busy_t = size * occupancy[oc]
                    free = channel_free[oc]
                    endt = (free if free > now_ticks else now_ticks) + busy_t
                    channel_free[oc] = endt
                    credits_flat[(oc << vbits) | nh[1]] -= size
                    flits_acc[oc] += size
                    busy_acc[oc] += busy_t
                    if not seen[oc]:
                        seen[oc] = 1
                        stat_new.append(oc)
                    e._last_progress = now
                    pkt.hop_index = 1
                    hops = pkt.route.hops
                    pkt.next_hop = hops[1] if len(hops) > 1 else None
                    ac = (endt - 1) // tpc - 1 + latency[oc]
                    if ac <= now:  # pragma: no cover - latency >= 1
                        ac = now + 1
                    if 0 < ac - now < wsize:
                        wbuckets[ac & wmask].append((0, pkt, oc, nh[1]))
                    else:
                        events.seq += 1
                        heappush(
                            overflow, (ac, events.seq, (0, pkt, oc, nh[1]))
                        )
                    events.pending += 1
                else:
                    # Multiple nominating inputs: group by output channel
                    # in input-index order (the scalar candidates-dict
                    # insertion order), then resolve each output.
                    w.sort(key=l_pos.__getitem__)
                    occand: dict = {}
                    for j in w:
                        oc = l_oc[j]
                        prev = occand.get(oc)
                        if prev is None:
                            occand[oc] = j
                        elif type(prev) is list:
                            prev.append(j)
                        else:
                            occand[oc] = [prev, j]
                    for oc, entry in occand.items():
                        if type(entry) is int:
                            grant(entry)
                            continue
                        k = sa2_kind[oc]
                        if k == _KIND_RR:
                            p = sa2_ptr[oc]
                            ni = num_in[oc]
                            best = entry[0]
                            bestk = (p - 1 - l_pos[best]) % ni
                            for j in entry[1:]:
                                r = (p - 1 - l_pos[j]) % ni
                                if r < bestk:
                                    bestk = r
                                    best = j
                        elif k == _KIND_AGE:
                            p = sa2_ptr[oc]
                            ni = num_in[oc]
                            best = entry[0]
                            bestk = (
                                head_age[l_slot[best]],
                                (p - 1 - l_pos[best]) % ni,
                            )
                            for j in entry[1:]:
                                kk = (
                                    head_age[l_slot[j]],
                                    (p - 1 - l_pos[j]) % ni,
                                )
                                if kk < bestk:
                                    bestk = kk
                                    best = j
                        elif k == _KIND_FIXED:
                            best = entry[0]
                            for j in entry[1:]:
                                if l_pos[j] > l_pos[best]:
                                    best = j
                        else:  # inverse-weighted: the object decides
                            reqs = [None] * num_in[oc]
                            for j in entry:
                                reqs[l_pos[j]] = head_pkt[l_slot[j]]
                            winner = arbiters[oc].peek(reqs)
                            best = entry[0]
                            for j in entry:
                                if l_pos[j] == winner:
                                    best = j
                                    break
                        grant(best)
            if nreset != nset:
                # A component held work but was missing from the active
                # dict: the buffered=>active invariant the vector pass
                # relies on has been violated. State may be partially
                # applied; fail loudly rather than diverge silently.
                raise RuntimeError(
                    "fastpath: active-set invariant violated "
                    f"({nset} work entries, {nreset} walked)"
                )
            if granted:
                g = np.fromiter(granted, dtype=np.intp, count=len(granted))
                goc = n_oc[g]
                gic = n_ic[g]
                gslot = n_slot[g]
                gsize = n_size[g]
                self.np_chan_free[goc] = end_t[g]
                self.np_credits[n_oslot[g]] -= gsize
                self.np_input_free[gic] = now + gsize
                self.np_flits_acc[goc] += gsize
                self.np_busy_acc[goc] += n_busy[g]
                # Arbiter commit scatters. Pointer mirrors are written
                # unconditionally -- fixed-priority and inverse-weighted
                # entries are never read back (flush and rebuild both key
                # on kind) -- while grant-count deltas must skip
                # inverse-weighted sites, whose object commit in the walk
                # already counted the grant.
                self.np_sa1_ptr[gic] = gslot & vmask
                gpos = n_pos[g]
                self.np_sa2_ptr[goc] = gpos
                m = self.np_sa1_kind[gic] != _KIND_IW
                if m.all():
                    self.np_sa1_grants[gslot] += 1
                else:
                    self.np_sa1_grants[gslot[m]] += 1
                gout = (goc << ibits) | gpos
                m = self.np_sa2_kind[goc] != _KIND_IW
                if m.all():
                    self.np_sa2_grants[gout] += 1
                else:
                    self.np_sa2_grants[gout[m]] += 1
                events.pending += 2 * len(granted) - ndivert
                e._last_progress = now

        # ---- Apply removals (scalar pops its idle list after the walk) ----
        active = e._active
        amask = self.active_mask
        if rm_r.size:
            for comp in rm_r.tolist():
                active.pop(comp, None)
                amask[comp] = 0
        if rm_e.size:
            for comp in rm_e.tolist():
                active.pop(comp, None)
                amask[comp] = 0
        if self.no_input_routers:  # pragma: no cover - not in any topology
            for comp in self.no_input_routers:
                if amask[comp]:
                    active.pop(comp, None)
                    amask[comp] = 0
