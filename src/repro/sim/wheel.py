"""A deterministic bucketed timing wheel for the engine's event core.

The engine schedules four kinds of events (arrivals, credit returns,
source wakes, fault transitions), and almost all of them land a small
bounded number of cycles in the future: channel latencies are small
integers, and serialization of the largest packet adds only a few more
cycles. A global ``heapq`` therefore pays an O(log n) tuple comparison
per push/pop for what is structurally an O(1) problem.

The wheel keeps one FIFO bucket per future cycle over a power-of-two
horizon ``size``: an event for cycle ``c`` pushed at cycle ``now`` with
``0 < c - now < size`` is appended to ``buckets[c & mask]``. Everything
else -- far-future events (fault timelines, open-loop release wakes) and
the degenerate ``c <= now`` case -- goes to a small overflow heap keyed
by ``(cycle, seq)``.

**Determinism argument.** The engine's original heap ordered events by
``(cycle, seq)`` where ``seq`` is a global push counter; handlers at
equal cycles therefore ran in push order. The wheel reproduces that
order exactly:

* pushes are chronological, so within one bucket FIFO append order *is*
  seq order;
* every wheel event satisfies ``now < c < now + size`` at all times (the
  engine's idle jumps go to the earliest pending event, never past it),
  so a bucket holds events for exactly one cycle and buckets never need
  sorting;
* an overflow event for cycle ``c`` that coexists with wheel events for
  ``c`` was necessarily pushed at least ``size`` cycles earlier than any
  of them (the only other overflow case, ``c <= now`` at push time,
  cannot coexist with wheel events for ``c``, which require a push
  strictly before ``c``) -- so draining overflow events ``<= now``
  *before* the bucket preserves global seq order;
* same-cycle pushes made *by handlers during processing* have the
  largest seq of the cycle and go to overflow (``delta == 0``), so a
  final overflow drain after the bucket keeps even that case in order
  (no engine handler currently does this; the drain is a single heap
  peek in practice).

The engine inlines the push fast path (one ``and``-chain plus a list
append) rather than calling :meth:`push`; this class carries the shared
state, the sizing rule, and the cold paths (overflow, next-event scan).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

__all__ = ["TimingWheel"]

#: Smallest wheel ever built. Keeps the modulo masking meaningful on toy
#: machines and makes the next-event scan trivially cheap.
_MIN_SIZE = 64


class TimingWheel:
    """Bucketed event schedule with an overflow heap.

    ``buckets[c & mask]`` is the FIFO of payloads for cycle ``c`` (valid
    for cycles within ``size`` of the current cycle); ``overflow`` is a
    heap of ``(cycle, seq, payload)``; ``pending`` counts events across
    both structures so the engine's run loops can test "anything left?"
    without touching either.
    """

    __slots__ = ("size", "mask", "buckets", "overflow", "seq", "pending")

    def __init__(self, horizon: int) -> None:
        size = _MIN_SIZE
        while size < horizon:
            size <<= 1
        self.size = size
        self.mask = size - 1
        self.buckets: List[list] = [[] for _ in range(size)]
        self.overflow: List[Tuple[int, int, tuple]] = []
        #: Global push counter for overflow ordering (bucket FIFOs get
        #: seq ordering for free from chronological appends).
        self.seq = 0
        self.pending = 0

    def push(self, cycle: int, now: int, payload: tuple) -> None:
        """Schedule ``payload`` for ``cycle`` (the engine inlines this)."""
        if 0 < cycle - now < self.size:
            self.buckets[cycle & self.mask].append(payload)
        else:
            self.seq += 1
            heapq.heappush(self.overflow, (cycle, self.seq, payload))
        self.pending += 1

    def take_due(self, now: int) -> list:
        """Detach and return cycle ``now``'s bucket (batched drain).

        The returned list is the bucket's payloads in push (= seq) order;
        a fresh list is swapped in and ``pending`` is decremented up
        front, so the caller may process the batch without touching the
        wheel again -- and a handler that pushes new events never mutates
        the list being iterated. Overflow events are not touched; drain
        them around the batch exactly as :meth:`push` ordering requires.
        """
        index = now & self.mask
        bucket = self.buckets[index]
        if not bucket:
            return bucket
        self.buckets[index] = []
        self.pending -= len(bucket)
        return bucket

    def next_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle holding a pending event, or None when empty.

        O(size) worst case, but only called on idle jumps -- cycles where
        nothing is active -- which are off the hot path by definition.
        """
        buckets = self.buckets
        mask = self.mask
        wheel_next: Optional[int] = None
        for delta in range(self.size):
            if buckets[(now + delta) & mask]:
                wheel_next = now + delta
                break
        if self.overflow:
            over_next = self.overflow[0][0]
            if wheel_next is None or over_next < wheel_next:
                return over_next
        return wheel_next

    def __len__(self) -> int:
        return self.pending

    def __bool__(self) -> bool:
        return self.pending > 0
