"""Cycle-level simulator for the unified Anton 2 network."""

from .endpoints import (
    CountedWriteCounter,
    PingPongDriver,
    PingPongResult,
    measure_one_way_latency,
)
from .engine import ArbiterBuilder, DeadlockError, Engine, round_robin_builder
from .packet import Packet
from .simulator import (
    DEFAULT_WEIGHT_BITS,
    arbiter_builder_for,
    make_vc_weight_tables,
    make_weight_tables,
    run_batch,
    run_single_packet,
)
from .stats import SimStats

__all__ = [
    "ArbiterBuilder",
    "CountedWriteCounter",
    "DEFAULT_WEIGHT_BITS",
    "DeadlockError",
    "Engine",
    "Packet",
    "PingPongDriver",
    "PingPongResult",
    "SimStats",
    "arbiter_builder_for",
    "make_vc_weight_tables",
    "make_weight_tables",
    "measure_one_way_latency",
    "round_robin_builder",
    "run_batch",
    "run_single_packet",
]
