"""Cycle-level simulator for the unified Anton 2 network."""

from .endpoints import (
    CountedWriteCounter,
    PingPongDriver,
    PingPongResult,
    measure_one_way_latency,
)
from .engine import ArbiterBuilder, DeadlockError, Engine, round_robin_builder
from .metrics import (
    ChannelBusyWindows,
    MetricsCollector,
    MetricsSummary,
    StreamingQuantile,
    VcOccupancyHistogram,
)
from .packet import Packet
from .simulator import (
    DEFAULT_WEIGHT_BITS,
    arbiter_builder_for,
    make_vc_weight_tables,
    make_weight_tables,
    run_batch,
    run_single_packet,
)
from .stats import SimStats
from .trace import JsonlTraceWriter, ListSink, Tee, TraceEvent, read_trace

__all__ = [
    "ArbiterBuilder",
    "ChannelBusyWindows",
    "CountedWriteCounter",
    "DEFAULT_WEIGHT_BITS",
    "DeadlockError",
    "Engine",
    "JsonlTraceWriter",
    "ListSink",
    "MetricsCollector",
    "MetricsSummary",
    "Packet",
    "PingPongDriver",
    "PingPongResult",
    "SimStats",
    "StreamingQuantile",
    "Tee",
    "TraceEvent",
    "VcOccupancyHistogram",
    "arbiter_builder_for",
    "make_vc_weight_tables",
    "make_weight_tables",
    "measure_one_way_latency",
    "read_trace",
    "round_robin_builder",
    "run_batch",
    "run_single_packet",
]
