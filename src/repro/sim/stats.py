"""Measurement collection for the cycle-level simulator.

The statistics mirror the paper's measurement methodology (Section 4):
batch completion time for throughput, per-source delivery counts for
fairness (equality of service), per-channel flit counts for utilization,
and per-packet latencies for the ping-pong experiments.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from .metrics import DEFAULT_QUANTILES, StreamingQuantile
from .packet import Packet

#: SimStats fields whose dicts count per-id quantities and must default
#: missing ids to zero (restored as defaultdicts by :meth:`SimStats.from_dict`).
_COUNTER_DICT_FIELDS = ("delivered_per_source", "channel_flits", "channel_busy_ticks")


@dataclasses.dataclass
class SimStats:
    """Aggregated results of one simulation run."""

    #: Total packets injected into the network.
    injected: int = 0
    #: Total packets delivered.
    delivered: int = 0
    #: Cycle of the last delivery (the batch completion time).
    last_delivery_cycle: int = 0
    #: Cycle the simulation stopped at.
    end_cycle: int = 0
    #: Integer ticks per cycle of the engine that produced these stats
    #: (the machine's exact fixed-point timebase); busy-tick counts below
    #: are denominated in it.
    ticks_per_cycle: int = 1
    #: Delivered packets per source endpoint component id.
    delivered_per_source: Dict[int, int] = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    #: Cycle of each source's last delivery: in a batch run, the cycle the
    #: source *finished*. The spread of these values is the direct
    #: signature of (un)fairness beyond saturation.
    source_finish_cycle: Dict[int, int] = dataclasses.field(
        default_factory=dict
    )
    #: Flits carried per channel id.
    channel_flits: Dict[int, int] = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    #: Exact serialization ticks occupied per channel id. Unlike flit
    #: counts, this weighs each flit by the channel's rational occupancy
    #: (45 ticks on a derated torus channel vs 14 on a mesh channel at 14
    #: ticks/cycle), so utilization is exact integer accounting.
    channel_busy_ticks: Dict[int, int] = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    #: Sum and count of release-to-delivery latencies.
    latency_sum: int = 0
    #: Sum of injection-to-delivery (network) latencies.
    network_latency_sum: int = 0
    #: Packets dropped by the fault policy (zero on healthy runs).
    dropped: int = 0
    #: Packets re-routed in place around a failed channel.
    rerouted: int = 0
    #: Source re-injections performed by the retry policy.
    retried: int = 0
    #: Route requests that found no path on the degraded machine.
    unroutable: int = 0
    #: Link-down/link-up events applied mid-run.
    fault_events: int = 0
    #: Retained per-packet latencies when ``keep_packet_latencies`` is set
    #: on the engine (used by the latency-vs-hops experiment).
    packet_latencies: List[int] = dataclasses.field(default_factory=list)
    #: Streaming injection-to-delivery latency quantile estimator,
    #: attached by ``Engine(latency_quantiles=True)``: p50/p95/p99 without
    #: retaining every packet's latency.
    latency_estimator: Optional[StreamingQuantile] = None

    def record_injection(self, packet: Packet) -> None:
        self.injected += 1

    def record_delivery(self, packet: Packet, keep_latency: bool = False) -> None:
        self.delivered += 1
        assert packet.deliver_cycle is not None
        self.last_delivery_cycle = max(self.last_delivery_cycle, packet.deliver_cycle)
        self.delivered_per_source[packet.src] += 1
        self.source_finish_cycle[packet.src] = packet.deliver_cycle
        self.latency_sum += packet.latency
        self.network_latency_sum += packet.network_latency
        if keep_latency:
            self.packet_latencies.append(packet.network_latency)
        if self.latency_estimator is not None:
            self.latency_estimator.add(packet.network_latency)

    def record_channel_use(
        self, channel_id: int, flits: int, busy_ticks: int = 0
    ) -> None:
        self.channel_flits[channel_id] += flits
        self.channel_busy_ticks[channel_id] += busy_ticks

    def channel_utilization(self, channel_id: int) -> float:
        """Fraction of the run a channel spent serializing flits.

        Computed from exact busy-tick counts over the run's cycle span
        (``end_cycle``, falling back to the last delivery for a run whose
        engine never finalized ``end_cycle``).
        """
        cycles = self.end_cycle or self.last_delivery_cycle
        if cycles == 0:
            return 0.0
        return self.channel_busy_ticks[channel_id] / (
            cycles * self.ticks_per_cycle
        )

    @property
    def mean_latency(self) -> float:
        """Mean release-to-delivery latency in cycles."""
        if self.delivered == 0:
            raise ValueError("no packets delivered")
        return self.latency_sum / self.delivered

    @property
    def mean_network_latency(self) -> float:
        """Mean injection-to-delivery latency in cycles."""
        if self.delivered == 0:
            raise ValueError("no packets delivered")
        return self.network_latency_sum / self.delivered

    def throughput_packets_per_cycle(self) -> float:
        """Delivered packets divided by batch completion time."""
        if self.last_delivery_cycle == 0:
            return 0.0
        return self.delivered / self.last_delivery_cycle

    def service_counts(self) -> List[int]:
        """Delivered counts per source, sorted ascending (fairness view)."""
        return sorted(self.delivered_per_source.values())

    def min_max_service_ratio(self) -> Optional[float]:
        """Min/max per-source delivered ratio; 1.0 is perfectly fair.

        Meaningful mid-run or for open-loop workloads; after a batch run
        completes every source has delivered its whole batch, so use
        :meth:`finish_spread` instead.
        """
        counts = self.service_counts()
        if not counts or counts[-1] == 0:
            return None
        return counts[0] / counts[-1]

    def latency_quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[float, int]:
        """Network-latency quantiles from the streaming estimator.

        Requires the engine to have been built with
        ``latency_quantiles=True``; raises ``ValueError`` otherwise.
        A run that delivered nothing (every packet dropped by a fault
        policy) reports an empty dict rather than raising.
        """
        if self.latency_estimator is None:
            raise ValueError(
                "no latency estimator attached; build the engine with "
                "latency_quantiles=True"
            )
        return self.latency_estimator.quantiles(qs)

    # --- serialization / aggregation --------------------------------------------

    def asdict(self) -> dict:
        """JSON-safe plain-dict form; inverse of :meth:`from_dict`.

        Unlike raw ``dataclasses.asdict``, the streaming estimator is
        rendered as its serialized state, so the result survives JSON (or
        pickling across the sweep runner's process boundary) losslessly.
        Per-id dicts are emitted sorted by key so the rendering is a pure
        function of the counts -- independent of first-touch order, and
        therefore identical between a serial run and a shard-merged one.
        """
        out = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name != "latency_estimator"
        }
        for name in _COUNTER_DICT_FIELDS + ("source_finish_cycle",):
            src = out[name]
            out[name] = {key: src[key] for key in sorted(src)}
        out["packet_latencies"] = list(out["packet_latencies"])
        out["latency_estimator"] = (
            None if self.latency_estimator is None
            else self.latency_estimator.state()
        )
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Rebuild stats from :meth:`asdict` output (or its JSON round-trip).

        Normalizes what generic reconstruction loses: the per-id counter
        dicts come back as *defaultdicts* again (so ``channel_flits[cid]``
        on an unused channel is 0, not a ``KeyError``), keys stringified
        by JSON are restored to ints, and the quantile estimator is
        revived from its serialized state.
        """
        kwargs = dict(data)
        estimator_state = kwargs.pop("latency_estimator", None)
        for name in _COUNTER_DICT_FIELDS:
            restored = defaultdict(int)
            for key, value in kwargs.get(name, {}).items():
                restored[int(key)] = value
            kwargs[name] = restored
        kwargs["source_finish_cycle"] = {
            int(key): value
            for key, value in kwargs.get("source_finish_cycle", {}).items()
        }
        stats = cls(**kwargs)
        if estimator_state is not None:
            if isinstance(estimator_state, StreamingQuantile):
                stats.latency_estimator = estimator_state
            else:
                stats.latency_estimator = StreamingQuantile.from_state(
                    estimator_state
                )
        return stats

    def merge(self, other: "SimStats") -> "SimStats":
        """Fold another run's (or shard's) stats into this one, in place.

        Counters add, per-id dicts add id-wise, completion cycles take the
        max, and per-source finishes keep the latest. Both sides must
        share a timebase (``ticks_per_cycle``).
        """
        if self.ticks_per_cycle != other.ticks_per_cycle:
            raise ValueError(
                f"cannot merge stats across timebases "
                f"({self.ticks_per_cycle} vs {other.ticks_per_cycle} ticks/cycle)"
            )
        self.injected += other.injected
        self.delivered += other.delivered
        self.last_delivery_cycle = max(
            self.last_delivery_cycle, other.last_delivery_cycle
        )
        self.end_cycle = max(self.end_cycle, other.end_cycle)
        for src, count in other.delivered_per_source.items():
            self.delivered_per_source[src] += count
        for src, cycle in other.source_finish_cycle.items():
            existing = self.source_finish_cycle.get(src)
            if existing is None or cycle > existing:
                self.source_finish_cycle[src] = cycle
        for cid, flits in other.channel_flits.items():
            self.channel_flits[cid] += flits
        for cid, ticks in other.channel_busy_ticks.items():
            self.channel_busy_ticks[cid] += ticks
        self.latency_sum += other.latency_sum
        self.network_latency_sum += other.network_latency_sum
        self.dropped += other.dropped
        self.rerouted += other.rerouted
        self.retried += other.retried
        self.unroutable += other.unroutable
        self.fault_events += other.fault_events
        self.packet_latencies.extend(other.packet_latencies)
        if other.latency_estimator is not None:
            if self.latency_estimator is None:
                self.latency_estimator = StreamingQuantile.from_state(
                    other.latency_estimator.state()
                )
            else:
                self.latency_estimator.merge(other.latency_estimator)
        return self

    def finish_spread(self) -> Optional[float]:
        """Relative spread of per-source batch finish times.

        ``(latest - earliest finish) / latest``: 0 means every source
        finished together (perfect equality of service); values near 1
        mean some sources were starved until the very end -- the
        unfairness mechanism that collapses round-robin throughput beyond
        saturation (Figure 9).
        """
        if not self.source_finish_cycle:
            return None
        finishes = self.source_finish_cycle.values()
        latest = max(finishes)
        if latest == 0:
            return None
        return (latest - min(finishes)) / latest
