"""Measurement collection for the cycle-level simulator.

The statistics mirror the paper's measurement methodology (Section 4):
batch completion time for throughput, per-source delivery counts for
fairness (equality of service), per-channel flit counts for utilization,
and per-packet latencies for the ping-pong experiments.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, List, Optional

from .packet import Packet


@dataclasses.dataclass
class SimStats:
    """Aggregated results of one simulation run."""

    #: Total packets injected into the network.
    injected: int = 0
    #: Total packets delivered.
    delivered: int = 0
    #: Cycle of the last delivery (the batch completion time).
    last_delivery_cycle: int = 0
    #: Cycle the simulation stopped at.
    end_cycle: int = 0
    #: Integer ticks per cycle of the engine that produced these stats
    #: (the machine's exact fixed-point timebase); busy-tick counts below
    #: are denominated in it.
    ticks_per_cycle: int = 1
    #: Delivered packets per source endpoint component id.
    delivered_per_source: Dict[int, int] = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    #: Cycle of each source's last delivery: in a batch run, the cycle the
    #: source *finished*. The spread of these values is the direct
    #: signature of (un)fairness beyond saturation.
    source_finish_cycle: Dict[int, int] = dataclasses.field(
        default_factory=dict
    )
    #: Flits carried per channel id.
    channel_flits: Dict[int, int] = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    #: Exact serialization ticks occupied per channel id. Unlike flit
    #: counts, this weighs each flit by the channel's rational occupancy
    #: (45 ticks on a derated torus channel vs 14 on a mesh channel at 14
    #: ticks/cycle), so utilization is exact integer accounting.
    channel_busy_ticks: Dict[int, int] = dataclasses.field(
        default_factory=lambda: defaultdict(int)
    )
    #: Sum and count of release-to-delivery latencies.
    latency_sum: int = 0
    #: Sum of injection-to-delivery (network) latencies.
    network_latency_sum: int = 0
    #: Retained per-packet latencies when ``keep_packet_latencies`` is set
    #: on the engine (used by the latency-vs-hops experiment).
    packet_latencies: List[int] = dataclasses.field(default_factory=list)

    def record_injection(self, packet: Packet) -> None:
        self.injected += 1

    def record_delivery(self, packet: Packet, keep_latency: bool = False) -> None:
        self.delivered += 1
        assert packet.deliver_cycle is not None
        self.last_delivery_cycle = max(self.last_delivery_cycle, packet.deliver_cycle)
        self.delivered_per_source[packet.src] += 1
        self.source_finish_cycle[packet.src] = packet.deliver_cycle
        self.latency_sum += packet.latency
        self.network_latency_sum += packet.network_latency
        if keep_latency:
            self.packet_latencies.append(packet.network_latency)

    def record_channel_use(
        self, channel_id: int, flits: int, busy_ticks: int = 0
    ) -> None:
        self.channel_flits[channel_id] += flits
        self.channel_busy_ticks[channel_id] += busy_ticks

    def channel_utilization(self, channel_id: int) -> float:
        """Fraction of the run a channel spent serializing flits.

        Computed from exact busy-tick counts over the run's cycle span
        (``end_cycle``, falling back to the last delivery for a run whose
        engine never finalized ``end_cycle``).
        """
        cycles = self.end_cycle or self.last_delivery_cycle
        if cycles == 0:
            return 0.0
        return self.channel_busy_ticks[channel_id] / (
            cycles * self.ticks_per_cycle
        )

    @property
    def mean_latency(self) -> float:
        """Mean release-to-delivery latency in cycles."""
        if self.delivered == 0:
            raise ValueError("no packets delivered")
        return self.latency_sum / self.delivered

    @property
    def mean_network_latency(self) -> float:
        """Mean injection-to-delivery latency in cycles."""
        if self.delivered == 0:
            raise ValueError("no packets delivered")
        return self.network_latency_sum / self.delivered

    def throughput_packets_per_cycle(self) -> float:
        """Delivered packets divided by batch completion time."""
        if self.last_delivery_cycle == 0:
            return 0.0
        return self.delivered / self.last_delivery_cycle

    def service_counts(self) -> List[int]:
        """Delivered counts per source, sorted ascending (fairness view)."""
        return sorted(self.delivered_per_source.values())

    def min_max_service_ratio(self) -> Optional[float]:
        """Min/max per-source delivered ratio; 1.0 is perfectly fair.

        Meaningful mid-run or for open-loop workloads; after a batch run
        completes every source has delivered its whole batch, so use
        :meth:`finish_spread` instead.
        """
        counts = self.service_counts()
        if not counts or counts[-1] == 0:
            return None
        return counts[0] / counts[-1]

    def finish_spread(self) -> Optional[float]:
        """Relative spread of per-source batch finish times.

        ``(latest - earliest finish) / latest``: 0 means every source
        finished together (perfect equality of service); values near 1
        mean some sources were starved until the very end -- the
        unfairness mechanism that collapses round-robin throughput beyond
        saturation (Figure 9).
        """
        if not self.source_finish_cycle:
            return None
        finishes = self.source_finish_cycle.values()
        latest = max(finishes)
        if latest == 0:
            return None
        return (latest - min(finishes)) / latest
