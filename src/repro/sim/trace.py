"""Structured event tracing for the cycle-level engine.

The paper's measurement sections (Figures 9-13) all derive from per-flit
events -- channel occupancy, VC residency, release-to-delivery latency --
so the engine exposes an opt-in structured event stream rather than only
end-of-run aggregates. With the exact fixed-point timebase (PR 1) a run's
full event trace is a pure function of its spec, which makes traces
*pinnable*: the canonical runs in :mod:`repro.sim.goldens` are committed
as JSONL artifacts and byte-compared on every CI run, so any drift in
engine semantics becomes an immediate, diffable failure.

Event stream
------------

Six event kinds, each stamped with the cycle, the exact tick
(``cycle * ticks_per_cycle``), the packet id, a channel id, and a VC:

========== =====================================================================
kind       meaning (extra fields)
========== =====================================================================
``inject``  packet leaves its source queue onto its first channel
            (``src``, ``dst``, ``flits``)
``grant``   an SA2 output arbiter granted the packet its next channel
            (``in_ch``, ``in_vc``: the buffer it is leaving)
``depart``  packet begins serializing onto ``ch`` (``flits``, ``busy``:
            exact occupancy ticks, ``end``: exact serialization-end tick)
``promote`` the hop raised the packet's VC (dateline / dimension-completion
            promotion; ``from_vc``)
``arrive``  packet fully received into the VC buffer at ``ch``'s destination
``deliver`` packet consumed at its destination endpoint (``lat``: injection-
            to-delivery cycles, ``qlat``: release-to-delivery cycles)
``fault``   channel ``ch`` failed or recovered mid-run (``down``: 1 on
            failure, 0 on recovery; ``pid`` is -1 -- no packet involved)
``reroute`` a fault stranded the packet and it was re-routed in place from
            the component holding it (``hops``: new remaining hop count)
``drop``    a fault stranded the packet and the policy dropped it
``retry``   a fault stranded the packet and the retry policy re-injected it
            at its source (``attempt``, ``rel``: the re-release cycle)
========== =====================================================================

The fault kinds were added in PR 3 as a purely additive extension: a
trace containing no faults serializes byte-identically to one produced
before they existed, so the schema version is unchanged.

Within a cycle, events appear in causal order (``grant`` before the
``depart`` it caused, ``depart`` before any ``promote`` it carried).

Sinks
-----

The engine emits through a minimal sink protocol (``emit``/``flush``) and
pays a single ``is None`` check per site when tracing is disabled:

* :class:`ListSink` -- in-memory event list (tests, reducers);
* :class:`JsonlTraceWriter` -- canonical JSONL serialization, one event
  per line with a fixed key order, so equal traces are equal *bytes*;
* :class:`Tee` -- fan one stream out to several sinks (e.g. a JSONL file
  plus a :class:`repro.sim.metrics.MetricsCollector`).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, NamedTuple, Tuple

#: Version of the serialized trace schema; bump on any field change.
TRACE_SCHEMA_VERSION = 1

#: The event kinds, in the order documented above.
EVENT_KINDS = (
    "inject",
    "grant",
    "depart",
    "promote",
    "arrive",
    "deliver",
    "fault",
    "reroute",
    "drop",
    "retry",
)


class TraceEvent(NamedTuple):
    """One structured engine event.

    ``extra`` holds the kind-specific fields as ``(key, value)`` pairs in
    their canonical serialization order.
    """

    kind: str
    cycle: int
    tick: int
    pid: int
    channel: int
    vc: int
    extra: Tuple[Tuple[str, int], ...] = ()

    def to_json(self) -> str:
        """Canonical single-line JSON: fixed key order, no whitespace."""
        parts = [
            f'"ev":"{self.kind}"',
            f'"cyc":{self.cycle}',
            f'"t":{self.tick}',
            f'"pid":{self.pid}',
            f'"ch":{self.channel}',
            f'"vc":{self.vc}',
        ]
        parts.extend(f'"{key}":{value}' for key, value in self.extra)
        return "{" + ",".join(parts) + "}"

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        obj = json.loads(line)
        extra = tuple(
            (key, value)
            for key, value in obj.items()
            if key not in ("ev", "cyc", "t", "pid", "ch", "vc")
        )
        return cls(
            kind=obj["ev"],
            cycle=obj["cyc"],
            tick=obj["t"],
            pid=obj["pid"],
            channel=obj["ch"],
            vc=obj["vc"],
            extra=extra,
        )

    def get(self, key: str, default: int = 0) -> int:
        """Look up a kind-specific extra field."""
        for k, value in self.extra:
            if k == key:
                return value
        return default


class ListSink:
    """Collects events in memory (``.events``)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.emit = self.events.append  # bound append: no per-event frame

    def flush(self) -> None:
        pass


class Tee:
    """Fans every event (and flush) out to several sinks."""

    def __init__(self, *sinks) -> None:
        self.sinks = sinks

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()


class JsonlTraceWriter:
    """Serializes events as canonical JSONL onto a text stream.

    The first line is a header record (``"ev":"trace"``) carrying the
    schema version and whatever run metadata the caller supplies; callers
    may append further non-event records (e.g. an ``"ev":"end"`` summary)
    via :meth:`write_record`. All records use sorted keys and compact
    separators, so a trace's byte representation is a pure function of
    its events -- the property the golden-trace suite pins.

    ``header=False`` suppresses the header record: a checkpoint-resumed
    run appends its events to the first phase's trace file, which already
    carries the header. Together with ``resume_counts`` -- the
    ``(events_written, bytes_written)`` pair recorded in the checkpoint --
    the concatenated file is byte-identical to the uninterrupted run's,
    end-record event count included. ``bytes_written`` counts UTF-8 bytes
    of everything written (header and records too), so a crashed run's
    trace can be truncated back to its last checkpoint before resuming.

    ``flush_every`` is an opt-in liveness mode for *live* consumers (the
    serve package's trace stream, ``tail -f`` on a trace file): every
    ``flush_every``-th event flushes the underlying stream, so a reader
    sees events promptly instead of at Python's buffer granularity
    (``flush_every=1`` flushes line by line). The default ``0`` keeps the
    historical buffering behavior; the serialized bytes are identical
    either way -- flushing changes *when* bytes land, never what they are
    -- so the golden-trace contract is untouched.
    """

    def __init__(
        self,
        stream: IO[str],
        meta: dict = None,
        header: bool = True,
        resume_counts: Tuple[int, int] = (0, 0),
        flush_every: int = 0,
    ) -> None:
        if flush_every < 0:
            raise ValueError(f"flush_every must be >= 0, got {flush_every}")
        self.stream = stream
        self.flush_every = flush_every
        self.events_written, self.bytes_written = resume_counts
        if header:
            hdr = {"ev": "trace", "schema": TRACE_SCHEMA_VERSION}
            hdr.update(meta or {})
            self.write_record(hdr)

    def emit(self, event: TraceEvent) -> None:
        line = event.to_json()
        self.stream.write(line)
        self.stream.write("\n")
        self.events_written += 1
        self.bytes_written += len(line.encode("utf-8")) + 1
        if self.flush_every and self.events_written % self.flush_every == 0:
            self.stream.flush()

    def write_record(self, record: dict) -> None:
        """Write one non-event metadata record (header, end summary)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.stream.write(line)
        self.stream.write("\n")
        self.bytes_written += len(line.encode("utf-8")) + 1

    def flush(self) -> None:
        self.stream.flush()


def read_trace(lines: Iterable[str]) -> Tuple[List[dict], List[TraceEvent]]:
    """Parse JSONL trace lines into (metadata records, events).

    Accepts any iterable of lines (an open file, ``str.splitlines()``);
    blank lines are ignored. Raises ``json.JSONDecodeError`` on a corrupt
    line -- the golden and watchdog tests rely on this strictness.
    """
    records: List[dict] = []
    events: List[TraceEvent] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("ev") in EVENT_KINDS:
            events.append(TraceEvent.from_json(line))
        else:
            records.append(obj)
    return records, events
