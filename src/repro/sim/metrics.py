"""Streaming metric reducers over the engine's structured event stream.

These turn the :mod:`repro.sim.trace` event stream into the paper's
measurement quantities without retaining per-packet state:

* :class:`StreamingQuantile` -- a deterministic streaming quantile
  estimator over integer samples (release/injection-to-delivery latencies
  are integer cycles), used for the Figure 11/12-style p50/p95/p99
  columns. Exact while the sample spread is small; degrades to
  power-of-two-width bins under a hard memory bound, with a final state
  that depends only on the *multiset* of samples (not their order or
  chunking) -- so parallel sweeps and serial loops report identical
  quantiles.
* :class:`ChannelBusyWindows` -- per-channel busy-tick time series in
  fixed cycle windows (channel occupancy vs time, Figure 9's saturation
  behavior made observable).
* :class:`VcOccupancyHistogram` -- cycles spent at each buffer occupancy
  level per (channel, VC): the VC-residency view behind the dateline/
  promotion analysis.
* :class:`MetricsCollector` -- a trace sink that feeds all of the above
  and renders a picklable :class:`MetricsSummary` for sweep results.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .trace import TraceEvent

#: The quantiles reported by default everywhere (p50/p95/p99).
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class StreamingQuantile:
    """Deterministic streaming quantiles over integer samples.

    Samples are counted in bins of width ``2**k`` (``k`` starts at 0:
    exact). When the number of occupied bins exceeds ``max_bins`` the
    width doubles (re-binning in place) until it fits, so memory is
    bounded by ``max_bins`` regardless of sample count. The width only
    grows when the *seen* multiset requires it, which makes the final
    state a pure function of the multiset: feeding the same samples in
    any order, any chunking, or via :meth:`merge` yields bit-identical
    quantiles. While the width is 1 (spread below ``max_bins``), reported
    quantiles are exact order statistics.

    ``quantile(q)`` uses the nearest-rank definition: the smallest sample
    value v such that at least ``ceil(q * n)`` samples are <= v (the bin's
    lower edge once widened) -- monotone in q by construction.
    """

    def __init__(self, max_bins: int = 4096) -> None:
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        self.max_bins = max_bins
        self.width = 1
        self.count = 0
        self._bins: Dict[int, int] = {}

    def add(self, value: int) -> None:
        """Count one integer sample."""
        value = int(value)
        start = value - value % self.width
        bins = self._bins
        bins[start] = bins.get(start, 0) + 1
        self.count += 1
        if len(bins) > self.max_bins:
            self._compact()

    def add_many(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    def _compact(self) -> None:
        while len(self._bins) > self.max_bins:
            self.width *= 2
            merged: Dict[int, int] = {}
            for start, count in self._bins.items():
                wide = start - start % self.width
                merged[wide] = merged.get(wide, 0) + count
            self._bins = merged

    def merge(self, other: "StreamingQuantile") -> None:
        """Fold another estimator's samples into this one.

        Equivalent to having added the other estimator's samples here
        (at its recorded resolution), so merge order does not matter.
        """
        if other.width > self.width:
            # Re-bin our finer bins at the coarser width.
            self.width = other.width
            merged: Dict[int, int] = {}
            for start, count in self._bins.items():
                wide = start - start % self.width
                merged[wide] = merged.get(wide, 0) + count
            self._bins = merged
        bins = self._bins
        for start, count in other._bins.items():
            wide = start - start % self.width
            bins[wide] = bins.get(wide, 0) + count
        self.count += other.count
        if len(bins) > self.max_bins:
            self._compact()

    def quantile(self, q: float) -> int:
        """Nearest-rank quantile; exact while the bin width is 1."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            raise ValueError("no samples recorded")
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for start in sorted(self._bins):
            cumulative += self._bins[start]
            if cumulative >= rank:
                return start
        raise AssertionError("rank exceeded total count")  # pragma: no cover

    def quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[float, int]:
        """Quantile dict for ``qs``; empty when no samples were recorded.

        The empty-dict convention (rather than :meth:`quantile`'s
        ``ValueError``) lets zero-delivery runs -- e.g. a faulted run
        whose drop policy discards every packet -- summarize as a
        legitimately degraded result instead of crashing the reporting
        path.
        """
        if self.count == 0:
            return {}
        return {q: self.quantile(q) for q in qs}

    def state(self) -> dict:
        """JSON-safe serialized state (see :meth:`from_state`)."""
        return {
            "max_bins": self.max_bins,
            "width": self.width,
            "count": self.count,
            "bins": {str(start): n for start, n in self._bins.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingQuantile":
        est = cls(max_bins=state["max_bins"])
        est.width = state["width"]
        est.count = state["count"]
        est._bins = {int(start): n for start, n in state["bins"].items()}
        return est

    def __eq__(self, other) -> bool:
        if not isinstance(other, StreamingQuantile):
            return NotImplemented
        return (
            self.max_bins == other.max_bins
            and self.width == other.width
            and self.count == other.count
            and self._bins == other._bins
        )


class ChannelBusyWindows:
    """Per-channel busy-tick time series in fixed cycle windows.

    Consumes ``depart`` events: a departure's exact occupancy ticks are
    attributed to the window containing the cycle serialization was
    granted (windows are an observability grain, not a timing model, so
    spill across a window edge is not split).
    """

    def __init__(self, window_cycles: int = 256) -> None:
        if window_cycles < 1:
            raise ValueError("window must be at least one cycle")
        self.window_cycles = window_cycles
        self._windows: Dict[int, Dict[int, int]] = {}

    def on_depart(self, event: TraceEvent) -> None:
        window = event.cycle // self.window_cycles
        per_channel = self._windows.setdefault(event.channel, {})
        per_channel[window] = per_channel.get(window, 0) + event.get("busy")

    def series(self, channel: int) -> List[int]:
        """Busy ticks per window for one channel, zero-filled, from t=0."""
        per_channel = self._windows.get(channel)
        if not per_channel:
            return []
        out = [0] * (max(per_channel) + 1)
        for window, ticks in per_channel.items():
            out[window] = ticks
        return out

    def totals(self) -> Dict[int, int]:
        """Total busy ticks per channel (matches SimStats accounting)."""
        return {
            channel: sum(per_channel.values())
            for channel, per_channel in sorted(self._windows.items())
        }

    def state(self) -> dict:
        """JSON-safe serialized state (insertion order preserved)."""
        return {
            "window_cycles": self.window_cycles,
            "windows": [
                [channel, list(per_channel.items())]
                for channel, per_channel in self._windows.items()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ChannelBusyWindows":
        out = cls(window_cycles=state["window_cycles"])
        out._windows = {
            channel: {window: ticks for window, ticks in pairs}
            for channel, pairs in state["windows"]
        }
        return out


class VcOccupancyHistogram:
    """Cycles spent at each occupancy level per (channel, VC) buffer.

    ``arrive`` events raise a buffer's occupancy; ``grant`` events (whose
    ``in_ch``/``in_vc`` name the buffer a packet is leaving) lower it.
    Each transition charges the elapsed cycles to the level the buffer
    was at; call :meth:`finalize` (idempotent per end cycle) to charge
    the tail through the end of the run.
    """

    def __init__(self) -> None:
        self._occupancy: Dict[Tuple[int, int], int] = {}
        self._since: Dict[Tuple[int, int], int] = {}
        self._hist: Dict[Tuple[int, int], Dict[int, int]] = {}

    def _charge(self, key: Tuple[int, int], now: int) -> None:
        level = self._occupancy.get(key, 0)
        elapsed = now - self._since.get(key, 0)
        if elapsed:
            hist = self._hist.setdefault(key, {})
            hist[level] = hist.get(level, 0) + elapsed
        self._since[key] = now

    def on_arrive(self, event: TraceEvent) -> None:
        key = (event.channel, event.vc)
        self._charge(key, event.cycle)
        self._occupancy[key] = self._occupancy.get(key, 0) + 1

    def on_grant(self, event: TraceEvent) -> None:
        key = (event.get("in_ch"), event.get("in_vc"))
        self._charge(key, event.cycle)
        self._occupancy[key] = self._occupancy.get(key, 0) - 1

    def finalize(self, end_cycle: int) -> None:
        for key in list(self._since):
            self._charge(key, end_cycle)

    def histogram(self, channel: int, vc: int) -> Dict[int, int]:
        """``{occupancy level: cycles}`` for one buffer."""
        return dict(self._hist.get((channel, vc), {}))

    def histograms(self) -> Dict[Tuple[int, int], Dict[int, int]]:
        return {key: dict(hist) for key, hist in sorted(self._hist.items())}

    def state(self) -> dict:
        """JSON-safe serialized state ((channel, vc) keys as pairs)."""
        return {
            "occupancy": [
                [list(key), level] for key, level in self._occupancy.items()
            ],
            "since": [
                [list(key), cycle] for key, cycle in self._since.items()
            ],
            "hist": [
                [list(key), list(hist.items())]
                for key, hist in self._hist.items()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "VcOccupancyHistogram":
        out = cls()
        out._occupancy = {tuple(key): level for key, level in state["occupancy"]}
        out._since = {tuple(key): cycle for key, cycle in state["since"]}
        out._hist = {
            tuple(key): {level: cycles for level, cycles in pairs}
            for key, pairs in state["hist"]
        }
        return out


@dataclasses.dataclass
class MetricsSummary:
    """Picklable end-of-run rendering of one collector (sweep results)."""

    delivered: int
    window_cycles: int
    #: Injection-to-delivery latency quantiles, keyed by q (p50/p95/p99).
    latency_quantiles: Dict[float, int]
    #: Total busy ticks per channel id (trace-derived; must equal the
    #: engine's ``SimStats.channel_busy_ticks`` accounting).
    channel_busy_ticks: Dict[int, int]
    #: Busy-tick series per channel id, one entry per window.
    busy_windows: Dict[int, List[int]]
    #: ``{(channel, vc): {occupancy: cycles}}`` buffer residency.
    vc_occupancy: Dict[Tuple[int, int], Dict[int, int]]


class MetricsCollector:
    """Trace sink feeding the streaming reducers.

    Attach directly as ``Engine(trace=collector)`` or fan out alongside a
    JSONL writer via :class:`repro.sim.trace.Tee`.
    """

    def __init__(
        self,
        window_cycles: int = 256,
        max_bins: int = 4096,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> None:
        self.latency = StreamingQuantile(max_bins=max_bins)
        self.busy = ChannelBusyWindows(window_cycles=window_cycles)
        self.occupancy = VcOccupancyHistogram()
        self.delivered = 0
        self.last_cycle = 0
        self._quantiles = tuple(quantiles)

    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        if event.cycle > self.last_cycle:
            self.last_cycle = event.cycle
        if kind == "depart":
            self.busy.on_depart(event)
        elif kind == "arrive":
            self.occupancy.on_arrive(event)
        elif kind == "grant":
            self.occupancy.on_grant(event)
        elif kind == "deliver":
            self.delivered += 1
            self.latency.add(event.get("lat"))

    def flush(self) -> None:
        pass

    def state(self) -> dict:
        """JSON-safe serialized state of every reducer (checkpointing)."""
        return {
            "latency": self.latency.state(),
            "busy": self.busy.state(),
            "occupancy": self.occupancy.state(),
            "delivered": self.delivered,
            "last_cycle": self.last_cycle,
            "quantiles": list(self._quantiles),
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate a :meth:`state` snapshot in place.

        In-place so a resumed run can revive the checkpointed reducer
        contents into the collector object the caller already holds (the
        sweep harness summarizes the collector it constructed).
        """
        self.latency = StreamingQuantile.from_state(state["latency"])
        self.busy = ChannelBusyWindows.from_state(state["busy"])
        self.occupancy = VcOccupancyHistogram.from_state(state["occupancy"])
        self.delivered = state["delivered"]
        self.last_cycle = state["last_cycle"]
        self._quantiles = tuple(state["quantiles"])

    @classmethod
    def from_state(cls, state: dict) -> "MetricsCollector":
        out = cls(
            window_cycles=state["busy"]["window_cycles"],
            max_bins=state["latency"]["max_bins"],
        )
        out.restore_state(state)
        return out

    def snapshot(self) -> dict:
        """Non-mutating mid-run observation of every reducer.

        Returns a canonical JSON-safe dict -- :meth:`state` (all freshly
        built containers, no internal references) plus the current
        latency quantiles keyed by their string form. Unlike
        :meth:`summary`, nothing is finalized or modified: snapshotting
        mid-run and continuing is bitwise-indistinguishable from an
        uninterrupted run, which is what lets the serve package's metrics
        stream observe live sessions without perturbing determinism.
        """
        snap = self.state()
        snap["latency_quantiles"] = (
            {
                str(q): value
                for q, value in self.latency.quantiles(self._quantiles).items()
            }
            if self.delivered
            else {}
        )
        return snap

    def summary(self, end_cycle: Optional[int] = None) -> MetricsSummary:
        """Render the picklable summary (finalizes occupancy residency)."""
        self.occupancy.finalize(
            self.last_cycle if end_cycle is None else end_cycle
        )
        quantiles = (
            self.latency.quantiles(self._quantiles) if self.delivered else {}
        )
        return MetricsSummary(
            delivered=self.delivered,
            window_cycles=self.busy.window_cycles,
            latency_quantiles=quantiles,
            channel_busy_ticks=self.busy.totals(),
            busy_windows={
                channel: self.busy.series(channel)
                for channel in self.busy.totals()
            },
            vc_occupancy=self.occupancy.histograms(),
        )
