"""Parallel sweep runner for independent simulation points.

The throughput experiments (Figures 9 and 10, and the weight-robustness
ablation) are embarrassingly parallel: every measured point -- a (machine
config, traffic pattern, batch size, arbiter config, seed) tuple -- is an
independent cycle-level simulation. With the engine's exact fixed-point
timing, a point's result is a pure function of its spec, so fanning points
across a :class:`~concurrent.futures.ProcessPoolExecutor` returns results
bitwise-identical to a serial loop, just wall-clock faster.

Workers rebuild machines from their (hashable) configs via
:func:`shared_machine`, a per-process cache, instead of pickling the fully
elaborated component/channel graph into every task.

Run ``python -m repro.sim.sweep`` for a self-checking smoke sweep (two
Figure 9-style points executed serially and in parallel, results
compared); CI uses it as the parallel-runner gate.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer


class SweepPointError(RuntimeError):
    """One or more sweep points failed.

    Raised by :func:`run_sweep` *after* every point has executed, so a
    single bad point does not forfeit the rest of an expensive sweep:
    ``results`` holds the full result list (failed points carry
    ``value=None`` and an ``error`` traceback), and the message names
    each failing point with its parameters.
    """

    def __init__(self, message: str, results: List["SweepResult"]) -> None:
        super().__init__(message)
        self.results = results

    @property
    def failures(self) -> List["SweepResult"]:
        return [result for result in self.results if result.error is not None]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a sweep.

    ``fn`` must be a module-level (picklable) callable; it is invoked as
    ``fn(**kwargs)``. ``seed``, when given, is merged into ``kwargs`` --
    making per-point seeding explicit in sweep construction rather than
    buried in each point's argument dict.
    """

    label: str
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = dataclasses.field(default_factory=dict)
    seed: Optional[int] = None

    def call_kwargs(self) -> Dict[str, Any]:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs


@dataclasses.dataclass
class SweepResult:
    """Structured result of one executed sweep point."""

    label: str
    index: int
    value: Any
    wall_seconds: float
    #: PID of the worker process that ran the point (the parent's own PID
    #: for serial execution) -- makes work distribution inspectable.
    worker_pid: int
    #: Formatted traceback when the point's ``fn`` raised; ``None`` on
    #: success. Failed points carry ``value=None``.
    error: Optional[str] = None
    #: Identity fingerprint of the point that produced this result (see
    #: :func:`point_fingerprint`); ``resume`` only reuses a persisted
    #: result whose fingerprint matches the point at the same index.
    fingerprint: Optional[str] = None


def _canonical(value: Any) -> str:
    """A value repr stable across processes and interpreter runs.

    ``repr`` alone is not an identity: objects without a custom
    ``__repr__`` (e.g. traffic patterns) render their memory address,
    which would make every resume look stale. Containers and dataclasses
    recurse; plain objects render as ``module.Class(sorted vars)``; sets
    sort their elements so hash randomization cannot reorder them.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = ", ".join(
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{cls.__module__}.{cls.__qualname__}({fields})"
    if isinstance(value, dict):
        items = sorted(
            (_canonical(k), _canonical(v)) for k, v in value.items()
        )
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        inner = ", ".join(_canonical(v) for v in value)
        return f"[{inner}]" if isinstance(value, list) else f"({inner})"
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(_canonical(v) for v in value)) + "}"
    if callable(value) and hasattr(value, "__qualname__"):
        return f"{getattr(value, '__module__', '?')}.{value.__qualname__}"
    if type(value).__repr__ is object.__repr__:
        cls = type(value)
        state = ", ".join(
            f"{name}={_canonical(val)}"
            for name, val in sorted(getattr(value, "__dict__", {}).items())
        )
        return f"{cls.__module__}.{cls.__qualname__}({state})"
    return repr(value)


def point_fingerprint(point: SweepPoint) -> str:
    """Canonical identity of a sweep point for resume validation.

    Combines the label, the fully qualified ``fn`` name, and a canonical
    rendering of the effective kwargs (seed merged, keys sorted). Two
    points with the same fingerprint run the same computation, so a
    persisted result may stand in for a re-run; a mismatch means the
    checkpoint dir belongs to a different sweep (or the point list was
    edited/reordered) and the point must re-run rather than silently
    returning another point's result.
    """
    kwargs = point.call_kwargs()
    canonical = ", ".join(
        f"{key}={_canonical(kwargs[key])}" for key in sorted(kwargs)
    )
    return f"{point.label}|{_canonical(point.fn)}|{canonical}"


def _result_path(checkpoint_dir: str, index: int) -> str:
    return os.path.join(checkpoint_dir, f"point_{index:04d}.result.pkl")


def _persist_result(result: SweepResult, path: str) -> None:
    """Atomically pickle one completed point result (crash-consistent)."""
    fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(result, handle)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _load_result(path: str) -> Optional[SweepResult]:
    """A previously persisted result, or None if absent/unreadable.

    A truncated pickle (crash mid-write of a pre-atomic-rename tool, or
    disk corruption) is treated as not-done: the point simply re-runs.
    """
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None


def _execute_point(
    point: SweepPoint, index: int, result_path: Optional[str] = None
) -> SweepResult:
    start = time.perf_counter()
    value = None
    error = None
    try:
        value = point.fn(**point.call_kwargs())
    except Exception:
        # Capture the failure with the point's parameters instead of
        # letting a bare pool traceback kill the whole sweep; the parent
        # reports all failures together once every point has run.
        # KeyboardInterrupt deliberately escapes: a kill mid-sweep must
        # abort the run (persisted results make it resumable), not be
        # recorded as a point failure.
        error = (
            f"sweep point {point.label!r} (index {index}) failed with "
            f"kwargs {point.call_kwargs()!r}:\n{traceback.format_exc()}"
        )
    result = SweepResult(
        label=point.label,
        index=index,
        value=value,
        wall_seconds=time.perf_counter() - start,
        worker_pid=os.getpid(),
        error=error,
        fingerprint=point_fingerprint(point),
    )
    if result_path is not None and error is None:
        # Only successes persist; failed points re-run on resume.
        _persist_result(result, result_path)
    return result


def default_workers() -> int:
    """Worker count for benchmark sweeps.

    Honors ``REPRO_SWEEP_WORKERS`` (0 or 1 forces serial execution);
    otherwise uses up to four cores -- the benchmarks' sweeps have about a
    dozen points, so wider pools mostly add startup cost.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env is not None:
        return max(1, int(env))
    return min(4, os.cpu_count() or 1)


def run_sweep(
    points: Sequence[SweepPoint],
    max_workers: Optional[int] = None,
    on_error: str = "raise",
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> List[SweepResult]:
    """Execute every point and return results in sweep order.

    ``max_workers=1`` (or a single point) runs serially in-process --
    useful under profilers and as the reference for determinism checks;
    ``None`` uses :func:`default_workers`. Results are returned in input
    order regardless of completion order, so serial and parallel runs are
    directly comparable element by element.

    A point whose ``fn`` raises does not abort the sweep: every other
    point still runs, and the failure is recorded on its
    :class:`SweepResult` (``value=None``, ``error`` holding the point's
    parameters and traceback). Afterwards, ``on_error="raise"`` (the
    default) raises :class:`SweepPointError` summarizing every failed
    point, with the partial results attached as ``.results``;
    ``on_error="return"`` returns the result list and leaves failure
    handling to the caller.

    ``checkpoint_dir`` makes the sweep crash-resumable: each point's
    result is pickled (atomically, as it completes) into the directory,
    and ``resume=True`` loads completed points instead of re-running them
    -- a killed sweep restarted with ``resume`` finishes the remaining
    points and returns results identical to an uninterrupted run. The
    per-point pickles compose with mid-run engine checkpoints (a
    :class:`~repro.analysis.throughput.BatchPoint` with
    ``checkpoint_path`` set), so even the interrupted point resumes from
    its last engine snapshot rather than from cycle 0.
    """
    if on_error not in ("raise", "return"):
        raise ValueError(f"unknown on_error mode {on_error!r}")
    if max_workers is None:
        max_workers = default_workers()
    result_paths: List[Optional[str]] = [None] * len(points)
    done: Dict[int, SweepResult] = {}
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
        result_paths = [
            _result_path(checkpoint_dir, i) for i in range(len(points))
        ]
        if resume:
            for i, path in enumerate(result_paths):
                loaded = _load_result(path)
                if (
                    loaded is not None
                    and loaded.error is None
                    and loaded.fingerprint == point_fingerprint(points[i])
                ):
                    # Results persisted by an older schema (no
                    # fingerprint) or by a *different* sweep sharing the
                    # directory fail the identity check and re-run.
                    done[i] = loaded
    todo = [i for i in range(len(points)) if i not in done]
    if max_workers <= 1 or len(todo) <= 1:
        for i in todo:
            done[i] = _execute_point(points[i], i, result_paths[i])
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                i: pool.submit(_execute_point, points[i], i, result_paths[i])
                for i in todo
            }
            for i, future in futures.items():
                try:
                    done[i] = future.result()
                except KeyboardInterrupt:
                    # A kill mid-sweep aborts (persisted results make it
                    # resumable), exactly as in the serial path.
                    raise
                except BaseException:
                    # A pool-level failure (e.g. BrokenProcessPool from an
                    # OOM-killed worker) reaches the parent through
                    # ``future.result()`` without a SweepResult. Recording
                    # it as a per-point failure preserves the documented
                    # partial-results contract: every other point's result
                    # survives, and on_error="raise" reports this point
                    # alongside ordinary fn failures.
                    done[i] = SweepResult(
                        label=points[i].label,
                        index=i,
                        value=None,
                        wall_seconds=0.0,
                        worker_pid=os.getpid(),
                        error=(
                            f"sweep point {points[i].label!r} (index {i}) "
                            f"lost to a worker-pool failure with kwargs "
                            f"{points[i].call_kwargs()!r}:\n"
                            f"{traceback.format_exc()}"
                        ),
                        fingerprint=point_fingerprint(points[i]),
                    )
    results = [done[i] for i in range(len(points))]
    if on_error == "raise":
        failures = [result for result in results if result.error is not None]
        if failures:
            summary = "\n".join(failure.error.rstrip() for failure in failures)
            raise SweepPointError(
                f"{len(failures)} of {len(results)} sweep points failed:\n"
                f"{summary}",
                results,
            )
    return results


# --- per-process machine cache ------------------------------------------------

_MACHINE_CACHE: Dict[MachineConfig, Tuple[Machine, RouteComputer]] = {}


def shared_machine(config: MachineConfig) -> Tuple[Machine, RouteComputer]:
    """The (machine, route computer) pair for a config, cached per process.

    Machine elaboration is deterministic, so a rebuilt machine is
    behaviorally identical to the caller's instance; caching means each
    worker process elaborates a given config once per sweep, not once per
    point.
    """
    cached = _MACHINE_CACHE.get(config)
    if cached is None:
        machine = Machine(config)
        cached = (machine, RouteComputer(machine))
        _MACHINE_CACHE[config] = cached
    return cached


# --- smoke sweep (CLI / CI gate) ----------------------------------------------


def _smoke_points() -> List[SweepPoint]:
    # Imported here: analysis.throughput imports this module.
    from repro.analysis.throughput import BatchPoint, measure_batch_point
    from repro.traffic.patterns import UniformRandom

    config = MachineConfig(shape=(2, 2, 2), endpoints_per_chip=2)
    pattern = UniformRandom(config.shape)
    return [
        SweepPoint(
            label=f"uniform/{arbitration}/batch32",
            fn=measure_batch_point,
            kwargs={
                "point": BatchPoint(
                    config=config,
                    pattern=pattern,
                    batch_size=32,
                    cores_per_chip=2,
                    arbitration=arbitration,
                    seed=7,
                    collect_metrics=True,
                )
            },
        )
        for arbitration in ("rr", "iw")
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Self-checking smoke sweep: serial and parallel runs must agree."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Run a smoke sweep through the parallel sweep runner "
        "and verify parallel results match serial execution."
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="process-pool width for the parallel leg (default: 2)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="persist per-point results (parallel leg) for crash resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip points already completed in --checkpoint-dir",
    )
    args = parser.parse_args(argv)

    serial = run_sweep(_smoke_points(), max_workers=1)
    parallel = run_sweep(
        _smoke_points(),
        max_workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
    )
    status = 0
    for s, p in zip(serial, parallel):
        # Every measured field -- including the streaming metric summary
        # that crossed the process boundary -- must be bitwise-identical.
        match = (
            s.value.normalized_throughput == p.value.normalized_throughput
            and s.value.completion_cycles == p.value.completion_cycles
            and s.value.finish_spread == p.value.finish_spread
            and s.value.metrics == p.value.metrics
        )
        if not match:
            status = 1
        quantiles = p.value.metrics.latency_quantiles
        print(
            f"{s.label:24s} throughput={p.value.normalized_throughput:.3f} "
            f"cycles={p.value.completion_cycles} "
            f"p50={quantiles[0.5]} p99={quantiles[0.99]} "
            f"worker={p.worker_pid} "
            f"{'OK' if match else 'MISMATCH vs serial'}"
        )
    print("smoke sweep:", "PASS" if status == 0 else "FAIL")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
