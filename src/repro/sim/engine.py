"""The cycle-driven simulation engine.

The engine advances a global cycle counter and, each cycle, performs the
two-stage switch allocation of the Anton 2 router pipeline:

* **SA1 (input arbitration)** -- each input port nominates at most one of
  its VCs' head packets, chosen round-robin among *eligible* VCs (next
  output channel idle and downstream VC credit available for the whole
  packet -- virtual cut-through flow control);
* **SA2 (output arbitration)** -- each output channel's arbiter (the
  policy under study: round-robin, age-based, or inverse-weighted) picks
  one winner among the nominating input ports.

Winning packets occupy the output channel for one cycle per flit, occupy
their input port likewise, consume downstream credits immediately, and
arrive in the downstream buffer after the channel latency. Credits return
to the upstream arbitration point one channel latency after a packet
departs a buffer.

**Timing is exact fixed point.** Channel occupancy is carried in integer
*ticks*: one cycle is :attr:`~repro.core.machine.Machine.ticks_per_cycle`
ticks (the LCM of every channel's ``cycles_per_flit`` denominator -- 14 on
a default machine, where torus channels cost exactly 45/14 cycles per
flit). Serialization start/end times and the channel-free horizon are
plain integer arithmetic, so sub-cycle torus bandwidth is modeled without
quantization *and* without floating-point drift: a million-cycle
saturation run ends on exactly the tick the rational arithmetic predicts.

**Scheduling is a bucketed timing wheel.** Arrivals, credit returns,
source wakes, and fault transitions land in per-cycle FIFO buckets;
since channel latencies are small bounded integers, almost every event
lands within a few cycles and is an O(1) FIFO append into
:class:`~repro.sim.wheel.TimingWheel` rather than an O(log n) heap push
(far-future events -- fault timelines, open-loop release wakes --
overflow into a small heap). Each cycle's batch is processed in the
*canonical within-cycle order* (see :func:`event_sort_key`): a fixed
rank over event kinds with state-derived tie keys, so the observable
event stream is a pure function of simulation state rather than push
history -- the property the sharded runner (:mod:`repro.sim.shard`)
relies on to reproduce serial bytes from per-shard streams. See
DESIGN.md sections 9 and 14.

Endpoint adapters inject from an unbounded source queue (the Section 4.1
batch methodology: every core has a batch of packets ready at time zero)
and consume delivered packets at arrival.

The engine is deliberately conservative about liveness: if no packet
moves for ``watchdog_cycles`` while packets are in flight, it raises
:class:`DeadlockError`. With correctly assigned VCs this never fires; the
deadlock tests use it to demonstrate that *broken* VC assignments (e.g.,
no datelines) really do deadlock.
"""

from __future__ import annotations

import os
from array import array
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional

from repro.arbiters.base import Arbiter
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.core.machine import ComponentKind, Machine
from repro.core.routing import Route, Unroutable

from .metrics import StreamingQuantile
from .packet import Packet
from .stats import SimStats
from .trace import TraceEvent
from .wheel import TimingWheel


class DeadlockError(RuntimeError):
    """Raised when the network makes no progress for the watchdog period."""


#: Builds an arbiter given (number of inputs, output channel id).
ArbiterBuilder = Callable[[int, int], Arbiter]


def round_robin_builder(num_inputs: int, site: int) -> Arbiter:
    """Default arbiter builder: locally fair round-robin everywhere."""
    return RoundRobinArbiter(num_inputs)


#: Builds the SA1 (per-input VC selection) arbiter given (number of VCs,
#: input channel id).
VcArbiterBuilder = Callable[[int, int], Arbiter]


_EV_ARRIVAL = 0
_EV_CREDIT = 1
_EV_WAKE = 2
_EV_FAULT = 3


def event_sort_key(payload: tuple) -> tuple:
    """Canonical within-cycle event order, shared by the engine, the
    fast path, and checkpoint serialization.

    Same-cycle events are processed in a fixed rank order -- faults (by
    timeline index, carried in the payload's spare slot), source wakes
    (by component id), credit returns (by channel then VC), arrivals
    (by channel id) -- rather than in push order. Within one cycle the
    physical state updates commute (a channel receives at most one
    arrival per cycle, credits add, per-component grant state is
    disjoint), so the rank order pins only the *observable* stream:
    trace emission, stats dict fill order, and serialized wheel
    contents become functions of simulation state, not push history.
    That is what lets a spatially sharded run (repro/sim/shard.py)
    reproduce the serial engine's bytes: each shard generates its own
    events, and the union processed in (cycle, key) order equals the
    serial schedule. Ties (several credits for one (channel, VC) swept
    in the same cycle) fall back to push order via sort stability;
    every tie class has a single producing component, so the order is
    shard-invariant too.
    """
    kind, a, b, c = payload
    if kind == _EV_ARRIVAL:
        return (3, b, 0)
    if kind == _EV_CREDIT:
        return (2, a, b)
    if kind == _EV_WAKE:
        return (1, a, 0)
    return (0, -1 if c is None else c, 0)


def serialization_end_ticks(
    free_at_ticks: int, now_ticks: int, size_flits: int, occupancy_ticks: int
) -> int:
    """Tick at which a packet's last flit clears the channel.

    Serialization begins when the previous packet's last flit clears the
    channel (``free_at_ticks``, which may be mid-cycle on slow torus
    channels) or now, whichever is later; back-to-back packets therefore
    serialize gaplessly at the channel's exact rational bandwidth.
    """
    start = free_at_ticks if free_at_ticks > now_ticks else now_ticks
    return start + size_flits * occupancy_ticks


def arrival_cycle(end_ticks: int, ticks_per_cycle: int, latency: int) -> int:
    """Cycle at which a packet is fully received downstream.

    The channel-latency pipeline is counted from the last whole cycle the
    packet's serialization has begun by the time it ends: ``latency``
    cycles after ``floor(end) - 1``, with a serialization ending exactly
    on a cycle boundary attributed to the cycle it closes (the ``- 1``
    inside the floor division). The calibrated channel latencies (the
    Figure 11/12 fits) include the final partial serialization cycle, so
    this matches the engine's original float expression
    ``-int(-(end - 1e-6)) - 1`` -- a *floor* with an epsilon guard, since
    Python's ``int()`` truncates toward zero -- exactly, for every value
    the float code computed correctly: the epsilon forgave upward float
    drift at integer boundaries, which exact ticks render impossible.
    """
    return (end_ticks - 1) // ticks_per_cycle - 1 + latency


def arrival_vc(packet: Packet) -> int:
    """VC the packet occupies at the end of its most recent hop.

    The hop that carried a packet to its current arbitration point is
    ``route.hops[hop_index - 1]``; its VC component is the buffer the
    packet sits in (or, on the final hop, the VC whose credit is returned
    at delivery). Every arrival disposition -- buffer, deliver, and
    fault-drop -- shares this one lookup.
    """
    return packet.route.hops[packet.hop_index - 1][1]


class Engine:
    """Cycle-level simulator over a :class:`~repro.core.machine.Machine`."""

    def __init__(
        self,
        machine: Machine,
        arbiter_builder: ArbiterBuilder = round_robin_builder,
        vc_arbiter_builder: VcArbiterBuilder = round_robin_builder,
        watchdog_cycles: int = 20_000,
        keep_packet_latencies: bool = False,
        trace=None,
        latency_quantiles: bool = False,
        faults=None,
        use_fastpath: Optional[bool] = None,
    ) -> None:
        self.machine = machine
        self.stats = SimStats()
        self.cycle = 0
        self.watchdog_cycles = watchdog_cycles
        self.keep_packet_latencies = keep_packet_latencies
        #: Optional structured-event sink (see :mod:`repro.sim.trace`).
        #: ``None`` keeps tracing zero-overhead: one attribute check per
        #: emission site, no event construction.
        self.trace = trace
        if latency_quantiles:
            # Streaming p50/p95/p99 without retaining per-packet latency
            # lists (see :mod:`repro.sim.metrics`).
            self.stats.latency_estimator = StreamingQuantile()

        channels = machine.channels
        #: Per-channel, per-VC buffers at the channel's destination.
        self._buffers: List[List[List[Packet]]] = []
        #: Integer ticks per cycle; all channel timing below is in ticks.
        self._ticks_per_cycle: int = machine.ticks_per_cycle
        # The per-cycle hot state lives in typed ``array('q')`` storage so
        # the vectorized fast path (repro/sim/fastpath.py) can view the
        # *same* memory as numpy arrays via ``np.frombuffer`` -- scalar
        # writes are immediately visible to vector reads and vice versa,
        # with no mirror copies to keep coherent. Scalar indexing
        # semantics are unchanged (Python ints in, Python ints out).
        #: Tick at which each channel's staging buffer drains (the last
        #: flit of the previous packet clears the channel).
        self._channel_free_at = array("q", bytes(8 * len(channels)))
        self._input_free_at = array("q", bytes(8 * len(channels)))
        self._latency: List[int] = [c.latency for c in channels]
        #: Ticks of channel occupancy per flit (45 vs the mesh's 14 on a
        #: default machine: torus effective bandwidth is below one flit
        #: per on-chip cycle, by exactly 45/14).
        self._occupancy_ticks: List[int] = [
            machine.occupancy_ticks_for_channel(c) for c in channels
        ]
        self._pipeline = machine.config.router_pipeline_cycles
        self.stats.ticks_per_cycle = self._ticks_per_cycle
        channel_vcs = [machine.vcs_for_channel(c) for c in channels]
        #: Bits of the VC field in a flat ``(channel << vbits) | vc`` slot
        #: id -- the indexing scheme shared with the fast path.
        self._vbits: int = max(
            (vcs - 1).bit_length() for vcs in channel_vcs
        ) if channel_vcs else 0
        stride = 1 << self._vbits
        #: Flat per-(channel, VC) credit store, indexed by slot id; the
        #: rows below are writable views into it.
        self._credits_flat = array("q", bytes(8 * len(channels) * stride))
        flat_view = memoryview(self._credits_flat)
        #: Per-channel, per-VC credits available to the channel's source;
        #: ``_credits[cid][vc]`` is a view into ``_credits_flat``.
        self._credits: List[memoryview] = []
        for channel, vcs in zip(channels, channel_vcs):
            depth = machine.buffer_depth_for_channel(channel)
            self._buffers.append([[] for _ in range(vcs)])
            base = channel.cid << self._vbits
            row = flat_view[base : base + vcs]
            for vc in range(vcs):
                row[vc] = depth
            self._credits.append(row)
        # Buffers are plain lists used as FIFOs with an explicit head index
        # to avoid O(n) pops; heads are compacted periodically.
        self._buffer_heads: List[List[int]] = [
            [0] * len(bufs) for bufs in self._buffers
        ]
        #: Packets buffered per channel (all VCs); lets the hot loop skip
        #: empty inputs without scanning their VC queues. Typed storage
        #: like the timing state above: the fast path sums it per
        #: component in one ``np.add.reduceat``.
        self._buffered_count = array("q", bytes(8 * len(channels)))
        # Flat per-channel endpoint lookups, hoisted out of the hot loop
        # (attribute chains through Machine/Channel cost more than the
        # work they guard).
        self._channel_src: List[int] = [c.src for c in channels]
        self._channel_dst: List[int] = [c.dst for c in channels]
        self._is_endpoint: List[bool] = [
            comp.kind == ComponentKind.ENDPOINT for comp in machine.components
        ]
        self._component_inputs: List[tuple] = [
            tuple(ics) for ics in machine.component_inputs
        ]
        # Hot-path aliases into the stats counter dicts (defaultdicts):
        # ``_depart`` increments these directly instead of calling
        # ``stats.record_channel_use`` tens of thousands of times.
        self._stat_channel_flits = self.stats.channel_flits
        self._stat_channel_busy = self.stats.channel_busy_ticks

        #: Output (SA2) arbiters keyed by output channel id.
        self.arbiters: Dict[int, Arbiter] = {}
        for comp in machine.components:
            if comp.kind == ComponentKind.ENDPOINT:
                continue
            num_inputs = len(machine.component_inputs[comp.cid])
            for oc in machine.component_outputs[comp.cid]:
                self.arbiters[oc] = arbiter_builder(num_inputs, oc)
        #: Input (SA1) VC-selection arbiters keyed by input channel id;
        #: only channels whose destination forwards packets need one.
        self.vc_arbiters: List[Optional[Arbiter]] = [None] * len(channels)
        for channel in channels:
            if machine.components[channel.dst].kind == ComponentKind.ENDPOINT:
                continue
            vcs = machine.vcs_for_channel(channel)
            self.vc_arbiters[channel.cid] = vc_arbiter_builder(vcs, channel.cid)

        #: Injection queues per endpoint component id.
        self._source_queues: Dict[int, List[Packet]] = {}
        self._source_heads: Dict[int, int] = {}
        #: The event core: a bucketed timing wheel sized so every
        #: credit/arrival push (bounded by channel latency plus a couple
        #: of serialization cycles) takes the O(1) bucket path.
        self._events = TimingWheel(2 * max(self._latency, default=1) + 16)
        #: Components with (potentially) arbitrable work, as an
        #: insertion-ordered dict used as an ordered set. ``_step``
        #: walks it in *sorted* order -- part of the canonical
        #: within-cycle order (see :func:`event_sort_key`) that makes
        #: every observable stream a function of simulation state, so
        #: only membership matters; a dict still beats a ``set`` for
        #: the O(1) ordered-pop pattern and reproducible serialization
        #: (checkpoint.py).
        self._active: Dict[int, None] = {}
        self._queued = 0
        self._in_network = 0
        self._last_progress = 0
        #: Optional hook invoked as ``on_delivery(packet, cycle)`` when a
        #: packet is consumed at its destination endpoint. Handlers may
        #: call :meth:`enqueue` (e.g. to send a reply), which models the
        #: endpoint's counted-write handler dispatch [Grossman 2013].
        self.on_delivery: Optional[Callable[[Packet, int], None]] = None

        #: Monotone count of fault events ever pushed onto the wheel --
        #: the next canonical timeline index handed out by
        #: :meth:`schedule_faults` (see :func:`event_sort_key`).
        self._fault_push_seq = 0
        #: Timeline index of the fault currently being applied (the
        #: sweeps key their trace records by it).
        self._fault_idx_now = -1
        #: Canonical merge key for the event/phase currently emitting
        #: trace records, maintained only while a trace sink is attached.
        #: The sharded runner (repro/sim/shard.py) keys per-shard trace
        #: streams by it to interleave them into the serial order.
        self._trace_key: Optional[tuple] = None
        # Shard-boundary hooks (repro/sim/shard.py). ``None`` on a
        # serial engine keeps every gate below a single falsy check --
        # the same zero-overhead standard as tracing and faults.
        #: Channel ids whose destination lives in another shard: grants
        #: divert their arrival record to ``_outbox`` instead of the
        #: wheel.
        self._remote_dst: Optional[frozenset] = None
        #: Channel ids whose source lives in another shard: credit
        #: returns divert to ``_outbox_credits``.
        self._remote_src: Optional[frozenset] = None
        #: Channel ids whose fault bookkeeping this shard owns (None =
        #: all): ``stats.fault_events`` and 'fault' trace records are
        #: emitted only by the owning shard so merged totals match the
        #: serial engine's.
        self._fault_owned: Optional[frozenset] = None
        self._outbox: Optional[list] = None
        self._outbox_credits: Optional[list] = None

        #: Optional fault state (see :mod:`repro.faults`). ``None`` keeps
        #: the fault path zero-overhead: ``_failed_channels`` stays None,
        #: so every gate below is a single falsy check -- the same
        #: standard as tracing.
        self._fault_runtime = faults
        self._failed_channels: Optional[set] = None
        self._fault_routes = None
        #: In-flight arrivals (packet -> output channel), maintained only
        #: when faults are configured: the fault sweep needs to find
        #: packets committed to the wire, and the timing wheel (unlike the
        #: old global heap) has no cheap scan for them. Insertion order is
        #: push order, matching the event-seq order the sweep re-routes in.
        self._inflight: Optional[Dict[Packet, int]] = None
        if faults is not None:
            self._inflight = {}
            self._fault_routes = faults.route_computer
            self._failed_channels = set(faults.initial_failed)
            self._fault_routes.set_failed(self._failed_channels)
            for idx, (fault_cycle, cid, is_down) in enumerate(faults.timeline):
                # The timeline index rides in the payload's spare slot:
                # it is the canonical same-cycle fault order (see
                # event_sort_key) and survives checkpointing.
                self._push_event(fault_cycle, _EV_FAULT, cid, is_down, idx)
            self._fault_push_seq = len(faults.timeline)

        #: Optional vectorized allocation core (repro/sim/fastpath.py).
        #: ``use_fastpath=None`` defers to the ``REPRO_FASTPATH``
        #: environment variable. Only constructed when its preconditions
        #: hold -- numpy importable, no tracing, no fault injection (both
        #: emit from scalar-only sites); it may still disable *itself*
        #: mid-run (oversized packet, unknown arbiter type), after which
        #: the run continues bit-identically on the scalar path.
        self._fastpath = None
        if use_fastpath is None:
            use_fastpath = os.environ.get(
                "REPRO_FASTPATH", ""
            ).strip() not in ("", "0")
        if use_fastpath and trace is None and faults is None:
            from .fastpath import FastPath, numpy_available

            if numpy_available():
                self._fastpath = FastPath(self)

    # --- public API -------------------------------------------------------------

    def enqueue(self, packet: Packet) -> None:
        """Add a packet to its source endpoint's injection queue.

        Packets must be enqueued per-source in nondecreasing
        ``release_cycle`` order (generators in :mod:`repro.traffic` do
        this naturally).
        """
        src = packet.src
        component = self.machine.components[src]
        if component.kind != ComponentKind.ENDPOINT:
            raise ValueError(f"packet source {src} is not an endpoint adapter")
        if self._failed_channels:
            # The machine is currently degraded: resolve the route against
            # the failed set before it enters the queue (replies enqueued
            # by on_delivery handlers may carry stale healthy routes).
            if self.trace is not None:
                self._trace_key = (0, packet.pid)
            packet = self._screen_source_packet(packet)
            if packet is None:
                return
        queue = self._source_queues.setdefault(src, [])
        if queue and queue[-1].release_cycle > packet.release_cycle:
            raise ValueError("packets must be enqueued in release order")
        queue.append(packet)
        self._source_heads.setdefault(src, 0)
        self._queued += 1
        if packet.release_cycle <= self.cycle:
            self._active[src] = None
        else:
            self._push_event(packet.release_cycle, _EV_WAKE, src, 0, None)
        fastpath = self._fastpath
        if fastpath is not None:
            fastpath.note_enqueue(packet, src)

    @property
    def drained(self) -> bool:
        """True when no queued, in-flight, or scheduled work remains.

        The public form of the run loops' continuation condition, for
        callers advancing the engine in slices (``repro serve`` sessions,
        tests): ``run_for`` on a drained engine is a no-op.
        """
        return not (self._queued or self._in_network or self._events.pending)

    def feed_arrival(self, packet: Packet, oc: int, cycle: int) -> None:
        """Materialize a cross-shard arrival (see :mod:`repro.sim.shard`).

        The peer shard granted ``packet`` onto channel ``oc`` and its
        barrier exchange delivered the transfer record here; schedule
        the arrival exactly as the local ``_depart`` would have. The
        payload's spare slot carries the arrival VC -- the fast path's
        inlined arrival handler requires it (the scalar handler derives
        it from the route and ignores the slot).
        """
        vc = packet.route.hops[packet.hop_index - 1][1]
        self._feed_event(cycle, (_EV_ARRIVAL, packet, oc, vc))
        self._in_network += 1
        if self._inflight is not None:
            self._inflight[packet] = oc

    def feed_credit(self, cid: int, vc: int, size: int, cycle: int) -> None:
        """Materialize a cross-shard credit return (barrier exchange)."""
        self._feed_event(cycle, (_EV_CREDIT, cid, vc, size))

    def _feed_event(self, cycle: int, payload: tuple) -> None:
        # A fed event may land exactly on the current (barrier) cycle --
        # its serial counterpart was pushed cycles earlier and sits in
        # the wheel *bucket* for that cycle, so the delta == 0 case must
        # take the bucket path too (``push`` would route it to the
        # overflow heap, which serializes differently). Processing order
        # is unaffected either way (the canonical within-cycle sort),
        # only the serialized wheel bytes are.
        events = self._events
        if 0 <= cycle - self.cycle < events.size:
            events.buckets[cycle & events.mask].append(payload)
            events.pending += 1
        else:
            events.push(cycle, self.cycle, payload)

    def schedule_faults(self, fault_set) -> int:
        """Merge additional *future* faults into a faulted engine mid-run.

        The live-injection entry point (``repro serve``'s
        ``inject_fault``): validates the :class:`~repro.faults.model.FaultSet`
        against this machine, requires every down/up cycle to lie strictly
        in the future (cycle-0 faults only make sense at construction),
        merges the specs into the attached runtime's set -- so checkpoints
        taken later serialize the full schedule -- and pushes the new
        timeline events onto the wheel exactly as the constructor would
        have. Returns the number of scheduled events. Raises
        :class:`ValueError` if the engine was built without fault support
        (the fault sweep state only exists when ``faults=`` was passed).
        """
        if self._fault_runtime is None:
            raise ValueError(
                "engine was built without fault support; construct it with "
                "faults= (an empty FaultSet is fine) to inject faults later"
            )
        fault_set.validate(self.machine)
        for spec in fault_set.specs:
            if spec.down_cycle <= self.cycle:
                raise ValueError(
                    f"fault down_cycle {spec.down_cycle} is not in the "
                    f"future (engine is at cycle {self.cycle})"
                )
            if spec.up_cycle is not None and spec.up_cycle <= self.cycle:
                raise ValueError(
                    f"fault up_cycle {spec.up_cycle} is not in the future "
                    f"(engine is at cycle {self.cycle})"
                )
        events = self._fault_runtime.extend(fault_set)
        for fault_cycle, cid, is_down in events:
            self._push_event(
                fault_cycle, _EV_FAULT, cid, is_down, self._fault_push_seq
            )
            self._fault_push_seq += 1
        return len(events)

    def run_for(self, cycles: int) -> SimStats:
        """Advance the simulation by at most ``cycles`` cycles.

        Returns early if all traffic drains first. Useful for observing
        mid-run state (e.g. arbiter service shares while the network is
        still saturated); call again or call :meth:`run` to finish.
        ``stats.end_cycle`` is updated on every return, so mid-run
        snapshots (utilization, trace footers) see the true cycle span.

        Like :meth:`run`, raises :class:`DeadlockError` if no packet moves
        for ``watchdog_cycles`` while packets are in the network -- a
        genuinely wedged configuration must not silently burn the caller's
        whole cycle budget.
        """
        target = self.cycle + cycles
        events = self._events
        active = self._active
        process_events = self._process_events
        step = self._step
        fastpath = self._fastpath
        if fastpath is not None and fastpath.enabled:
            # Both entry points re-check ``enabled`` per call and delegate
            # to the scalar methods after a mid-run fallback.
            process_events = fastpath.process_events
            step = fastpath.step
        watchdog = self.watchdog_cycles
        while (self._queued or self._in_network or events.pending) and (
            self.cycle < target
        ):
            if not active and events.pending:
                # Nothing can move; jump to the next event. If no event
                # lands before the budget boundary, consume the rest of
                # the budget and stop -- running the loop body at
                # ``target`` would overshoot to ``target + 1``, making a
                # split run drift one cycle per call past a single run.
                nxt = events.next_cycle(self.cycle)
                if nxt >= target:
                    self.cycle = target
                    break
                if nxt > self.cycle:
                    self.cycle = nxt
            process_events()
            if active:
                step()
            if (
                self._in_network
                and self.cycle - self._last_progress > watchdog
            ):
                self._raise_deadlock()
            self.cycle += 1
        if fastpath is not None:
            # Publish mirrored arbiter/stats deltas: the caller may read
            # grants, service shares, or channel stats between runs.
            fastpath.flush()
        self.stats.end_cycle = self.cycle
        return self.stats

    def run(self, max_cycles: int = 10_000_000) -> SimStats:
        """Run until all enqueued packets are delivered (or ``max_cycles``)."""
        events = self._events
        active = self._active
        process_events = self._process_events
        step = self._step
        fastpath = self._fastpath
        if fastpath is not None and fastpath.enabled:
            process_events = fastpath.process_events
            step = fastpath.step
        watchdog = self.watchdog_cycles
        while self._queued or self._in_network or events.pending:
            if self.cycle >= max_cycles:
                if fastpath is not None:
                    fastpath.flush()
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles with "
                    f"{self._queued + self._in_network} packets outstanding"
                )
            if not active and events.pending:
                # Nothing can move; jump to the next event.
                nxt = events.next_cycle(self.cycle)
                if nxt > self.cycle:
                    self.cycle = nxt
            process_events()
            if active:
                step()
            if (
                self._in_network
                and self.cycle - self._last_progress > watchdog
            ):
                self._raise_deadlock()
            self.cycle += 1
        if fastpath is not None:
            fastpath.flush()
        self.stats.end_cycle = self.cycle
        return self.stats

    # --- checkpoint/restart -------------------------------------------------------

    def save_checkpoint(self, path: str) -> dict:
        """Write a full state snapshot to ``path`` (atomic replace).

        See :mod:`repro.sim.checkpoint` for the format and the bitwise
        resume-equivalence guarantee. Returns the snapshot dict.
        """
        from .checkpoint import save_checkpoint

        return save_checkpoint(self, path)

    @classmethod
    def from_checkpoint(
        cls, path: str, machine=None, trace=None, use_fastpath=None
    ) -> "Engine":
        """Rebuild an engine from a checkpoint file written by
        :meth:`save_checkpoint`."""
        from .checkpoint import load_checkpoint, restore_engine

        return restore_engine(
            load_checkpoint(path),
            machine=machine,
            trace=trace,
            use_fastpath=use_fastpath,
        )

    # --- internals ----------------------------------------------------------------

    def _raise_deadlock(self) -> None:
        # Flush any partial trace first: a wedged run's events up to the
        # jam are exactly the evidence a deadlock post-mortem needs.
        if self.trace is not None:
            self.trace.flush()
        if self._fastpath is not None:
            # Likewise the mirrored arbiter/stats state: the post-mortem
            # (and the deadlock tests) read grants and channel counters.
            self._fastpath.flush()
        raise DeadlockError(
            f"no progress for {self.watchdog_cycles} cycles at cycle "
            f"{self.cycle}; {self._in_network} packets stuck in the network"
        )

    def _push_event(self, cycle: int, kind: int, a, b, c) -> None:
        self._events.push(cycle, self.cycle, (kind, a, b, c))

    def _push_credit(self, cycle: int, cid: int, vc: int, size: int) -> None:
        remote_src = self._remote_src
        if remote_src is not None and cid in remote_src:
            # The channel's source arbitration point lives in another
            # shard; the credit return crosses at the next barrier.
            self._outbox_credits.append((cid, vc, size, cycle))
        else:
            self._events.push(cycle, self.cycle, (_EV_CREDIT, cid, vc, size))

    def _process_events(self) -> None:
        events = self._events
        now = self.cycle
        overflow = events.overflow
        batch = None
        if overflow and overflow[0][0] <= now:
            # Overdue overflow events (far-future pushes whose cycle has
            # come, idle-jump targets) join the cycle's batch.
            batch = []
            while overflow and overflow[0][0] <= now:
                batch.append(heappop(overflow)[2])
            events.pending -= len(batch)
        bucket = events.take_due(now)
        if bucket:
            if batch is None:
                batch = bucket
            else:
                batch.extend(bucket)
        elif batch is None:
            return
        if len(batch) > 1:
            # Canonical within-cycle order (see event_sort_key): the
            # processing order -- and every observable stream derived
            # from it -- is a function of simulation state, not of the
            # push history. Handlers never schedule same-cycle work, so
            # the batch is complete before it is sorted.
            batch.sort(key=event_sort_key)
        credits = self._credits
        active = self._active
        channel_src = self._channel_src
        handle_arrival = self._handle_arrival
        trace = self.trace
        for kind, a, b, c in batch:
            if kind == _EV_ARRIVAL:
                if trace is not None:
                    self._trace_key = (2, b)
                handle_arrival(a, b)
            elif kind == _EV_CREDIT:
                credits[a][b] += c
                active[channel_src[a]] = None
            elif kind == _EV_WAKE:
                active[a] = None
            else:  # fault
                self._apply_fault(a, b, c)

    def _handle_arrival(self, packet: Packet, channel_id: int) -> None:
        now = self.cycle
        inflight = self._inflight
        if inflight is not None:
            inflight.pop(packet, None)
        if packet.drop_on_arrival:
            # A mid-run fault condemned this copy while it was in flight
            # (drop policy, retry re-injection, or unroutable stranding);
            # discard it and return its buffer credits. Accounting was
            # done when the fault was applied.
            self._in_network -= 1
            self._last_progress = now
            self._push_credit(
                now + self._latency[channel_id],
                channel_id,
                arrival_vc(packet),
                packet.size_flits,
            )
            return
        if packet.next_hop is None:
            # Final hop: consume at the destination endpoint.
            packet.deliver_cycle = now
            self.stats.record_delivery(packet, self.keep_packet_latencies)
            self._in_network -= 1
            self._last_progress = now
            vc = arrival_vc(packet)
            if self.trace is not None:
                self.trace.emit(
                    TraceEvent(
                        "deliver",
                        now,
                        now * self._ticks_per_cycle,
                        packet.pid,
                        channel_id,
                        vc,
                        (
                            ("lat", packet.network_latency),
                            ("qlat", packet.latency),
                        ),
                    )
                )
            self._push_credit(
                now + self._latency[channel_id],
                channel_id,
                vc,
                packet.size_flits,
            )
            if self.on_delivery is not None:
                self.on_delivery(packet, now)
            return
        vc = arrival_vc(packet)
        packet.ready_cycle = now + self._pipeline
        self._buffers[channel_id][vc].append(packet)
        self._buffered_count[channel_id] += 1
        self._active[self._channel_dst[channel_id]] = None
        if self.trace is not None:
            self.trace.emit(
                TraceEvent(
                    "arrive",
                    now,
                    now * self._ticks_per_cycle,
                    packet.pid,
                    channel_id,
                    vc,
                )
            )

    def _step(self) -> None:
        """One SA1+SA2 allocation pass over every active component.

        This is the hottest loop in the repository, so the per-component
        arbitration body lives inline here (rather than in a helper
        called ~500 times per saturated cycle): every engine attribute it
        touches is hoisted to a local exactly once per cycle.
        """
        now = self.cycle
        active = self._active
        is_endpoint = self._is_endpoint
        component_inputs = self._component_inputs
        buffers = self._buffers
        heads = self._buffer_heads
        buffered_count = self._buffered_count
        input_free_at = self._input_free_at
        channel_free_at = self._channel_free_at
        credits = self._credits
        vc_arbiters = self.vc_arbiters
        arbiters = self.arbiters
        failed = self._failed_channels
        trace = self.trace
        inject = self._inject_endpoint
        depart = self._depart
        # First tick of the next cycle: a channel accepts a new packet in
        # any cycle in which its staging buffer drains (free_at strictly
        # before this horizon). A drain exactly on a cycle boundary keeps
        # the channel busy through the drain cycle -- the whole-cycle
        # convention the original integer-vs-float comparison expressed.
        horizon_ticks = (now + 1) * self._ticks_per_cycle
        idle: List[int] = []
        # Sorted, not insertion, order: part of the canonical
        # within-cycle schedule (event_sort_key) -- same-cycle grants
        # across components are physically independent, so sorting only
        # pins the observable emission order.
        for comp_id in sorted(active):
            if trace is not None:
                self._trace_key = (3, comp_id)
            if is_endpoint[comp_id]:
                if not inject(comp_id, now):
                    idle.append(comp_id)
                continue
            inputs = component_inputs[comp_id]
            has_packets = False
            # SA1: each input port nominates one VC's head packet among
            # the *eligible* ones (next channel accepting, credits
            # available). The SA1 arbiter state is only committed if the
            # packet also wins SA2. ``candidates`` maps oc -> one
            # nomination tuple, widened to a list of them only under
            # output contention, so the common uncontended case allocates
            # nothing per output.
            candidates: Optional[Dict[int, object]] = None
            for input_idx, ic in enumerate(inputs):
                if not buffered_count[ic]:
                    continue
                has_packets = True
                if input_free_at[ic] > now:
                    continue
                bufs = buffers[ic]
                hds = heads[ic]
                # The request vector is materialized lazily: inputs whose
                # scan yields a single eligible VC (the common case)
                # never build it.
                vc_requests: Optional[List] = None
                first_vc = -1
                first_packet = None
                for vc, queue in enumerate(bufs):
                    head = hds[vc]
                    if head >= len(queue):
                        continue
                    packet = queue[head]
                    if packet.ready_cycle > now:
                        continue
                    oc, ovc = packet.next_hop
                    # Frozen channels grant nothing. (The fault sweep
                    # re-routes every stranded packet, so this only fires
                    # in the window before a re-resolved packet's next
                    # arbitration.)
                    if failed and oc in failed:
                        continue
                    # A channel accepts a new packet in any cycle in
                    # which its staging buffer drains (free_at < now + 1,
                    # in ticks); fractional occupancy carries over so
                    # sub-cycle bandwidth (the 45/14 cycles/flit torus
                    # channels) is not quantized away.
                    if channel_free_at[oc] >= horizon_ticks:
                        continue
                    if credits[oc][ovc] < packet.size_flits:
                        continue
                    if first_packet is None:
                        first_vc = vc
                        first_packet = packet
                        continue
                    if vc_requests is None:
                        vc_requests = [None] * len(bufs)
                        vc_requests[first_vc] = first_packet
                    vc_requests[vc] = packet
                if first_packet is None:
                    continue
                if vc_requests is None:
                    # A sole eligible VC needs no SA1 arbitration: every
                    # policy's ``peek`` returns the index of the only
                    # non-None request, so skipping the call is
                    # bit-identical (``commit`` still runs on an SA2 win,
                    # keeping arbiter state in lockstep).
                    vc = first_vc
                    packet = first_packet
                else:
                    vc = vc_arbiters[ic].peek(vc_requests)
                    packet = vc_requests[vc]
                oc = packet.next_hop[0]
                entry = (input_idx, packet, ic, vc)
                if candidates is None:
                    candidates = {oc: entry}
                else:
                    prev = candidates.get(oc)
                    if prev is None:
                        candidates[oc] = entry
                    elif type(prev) is list:
                        prev.append(entry)
                    else:
                        candidates[oc] = [prev, entry]
            if candidates is not None:
                # SA2: arbitrate each requested output channel.
                for oc, entry in candidates.items():
                    if type(entry) is not list:
                        # Sole nominator: every policy's ``peek`` over a
                        # request vector with one non-None slot returns
                        # that slot, so the grant is unconditional --
                        # commit directly (the same state update
                        # ``arbitrate`` would have applied).
                        input_idx, packet, ic, vc = entry
                        arbiters[oc].commit(input_idx, packet)
                    else:
                        requests: List = [None] * len(inputs)
                        for slot in entry:
                            requests[slot[0]] = slot[1]
                        winner = arbiters[oc].arbitrate(requests)
                        if winner is None:  # pragma: no cover
                            continue
                        for slot in entry:
                            if slot[0] == winner:
                                break
                        input_idx, packet, ic, vc = slot
                    ovc = packet.next_hop[1]
                    vc_arbiters[ic].commit(vc, packet)
                    if trace is not None:
                        trace.emit(
                            TraceEvent(
                                "grant",
                                now,
                                now * self._ticks_per_cycle,
                                packet.pid,
                                oc,
                                ovc,
                                (("in_ch", ic), ("in_vc", vc)),
                            )
                        )
                    depart(packet, ic, vc, oc, ovc, now)
            if not has_packets:
                idle.append(comp_id)
        for comp_id in idle:
            active.pop(comp_id, None)

    def _inject_endpoint(self, comp_id: int, now: int) -> bool:
        queue = self._source_queues.get(comp_id)
        if queue is None:
            return False
        head = self._source_heads[comp_id]
        if head >= len(queue):
            # Allow the queue list to be garbage collected once drained.
            del self._source_queues[comp_id]
            del self._source_heads[comp_id]
            return False
        packet = queue[head]
        if packet.release_cycle > now:
            # Head not released yet; a wake event will re-activate us.
            return False
        oc, ovc = packet.next_hop
        if self._channel_free_at[oc] > now * self._ticks_per_cycle:
            return True
        if self._credits[oc][ovc] < packet.size_flits:
            return True
        self._source_heads[comp_id] = head + 1
        if head + 1 >= len(queue):
            del self._source_queues[comp_id]
            del self._source_heads[comp_id]
        self._queued -= 1
        self._in_network += 1
        packet.inject_cycle = now
        self.stats.record_injection(packet)
        if self.trace is not None:
            self.trace.emit(
                TraceEvent(
                    "inject",
                    now,
                    now * self._ticks_per_cycle,
                    packet.pid,
                    oc,
                    ovc,
                    (
                        ("src", comp_id),
                        ("dst", packet.dst),
                        ("flits", packet.size_flits),
                    ),
                )
            )
        self._depart(packet, None, 0, oc, ovc, now)
        return True

    def _depart(
        self,
        packet: Packet,
        from_channel: Optional[int],
        from_vc: int,
        oc: int,
        ovc: int,
        now: int,
    ) -> None:
        size = packet.size_flits
        busy_ticks = size * self._occupancy_ticks[oc]
        tpc = self._ticks_per_cycle
        latency = self._latency
        # serialization_end_ticks(), inlined: departs dominate the profile.
        channel_free_at = self._channel_free_at
        free_at = channel_free_at[oc]
        now_ticks = now * tpc
        start = free_at if free_at > now_ticks else now_ticks
        end_ticks = start + busy_ticks
        channel_free_at[oc] = end_ticks
        self._credits[oc][ovc] -= size
        self._stat_channel_flits[oc] += size
        self._stat_channel_busy[oc] += busy_ticks
        self._last_progress = now
        trace = self.trace
        if trace is not None:
            trace.emit(
                TraceEvent(
                    "depart",
                    now,
                    now_ticks,
                    packet.pid,
                    oc,
                    ovc,
                    (("flits", size), ("busy", busy_ticks), ("end", end_ticks)),
                )
            )
            if from_channel is not None and ovc != from_vc:
                # Dateline / dimension-completion VC promotion: the hop
                # carried the packet onto a higher VC (Section 2.5).
                trace.emit(
                    TraceEvent(
                        "promote",
                        now,
                        now_ticks,
                        packet.pid,
                        oc,
                        ovc,
                        (("from_vc", from_vc),),
                    )
                )
        events = self._events
        wheel_size = events.size
        buckets = events.buckets
        mask = events.mask
        if from_channel is not None:
            self._input_free_at[from_channel] = now + size
            # _pop_head(), inlined: advance the FIFO head index and
            # compact once the dead prefix dominates (amortized O(1)).
            hds = self._buffer_heads[from_channel]
            head = hds[from_vc] + 1
            hds[from_vc] = head
            self._buffered_count[from_channel] -= 1
            if head > 32:
                queue = self._buffers[from_channel][from_vc]
                if head * 2 >= len(queue):
                    del queue[:head]
                    hds[from_vc] = 0
            # Credit-return push, inlined timing-wheel fast path. A
            # channel fed from another shard returns its credits over
            # the barrier instead (repro/sim/shard.py).
            credit_cycle = now + latency[from_channel]
            remote_src = self._remote_src
            if remote_src is not None and from_channel in remote_src:
                self._outbox_credits.append(
                    (from_channel, from_vc, size, credit_cycle)
                )
            elif 0 < credit_cycle - now < wheel_size:
                buckets[credit_cycle & mask].append(
                    (_EV_CREDIT, from_channel, from_vc, size)
                )
                events.pending += 1
            else:
                events.seq += 1
                heappush(
                    events.overflow,
                    (
                        credit_cycle,
                        events.seq,
                        (_EV_CREDIT, from_channel, from_vc, size),
                    ),
                )
                events.pending += 1
        hop_index = packet.hop_index + 1
        packet.hop_index = hop_index
        hops = packet.route.hops
        packet.next_hop = hops[hop_index] if hop_index < len(hops) else None
        # The packet is fully received downstream one latency after the
        # cycle in which its last flit finishes serializing
        # (arrival_cycle(), inlined).
        arrival = (end_ticks - 1) // tpc - 1 + latency[oc]
        if arrival <= now:  # pragma: no cover - latency >= 1 prevents this
            arrival = now + 1
        remote_dst = self._remote_dst
        if remote_dst is not None and oc in remote_dst:
            # Cross-shard hop: the peer shard materializes the arrival
            # after the next barrier. The packet stays in ``_inflight``
            # (and in ``_in_network``) until the barrier flush so a
            # fault landing inside this window sweeps it exactly as the
            # serial engine would -- its arrival provably lies beyond
            # the lookahead window.
            self._outbox.append((packet, oc, arrival))
        elif 0 < arrival - now < wheel_size:
            buckets[arrival & mask].append((_EV_ARRIVAL, packet, oc, None))
            events.pending += 1
        else:
            events.seq += 1
            heappush(
                events.overflow,
                (arrival, events.seq, (_EV_ARRIVAL, packet, oc, None)),
            )
            events.pending += 1
        inflight = self._inflight
        if inflight is not None:
            inflight[packet] = oc

    # --- fault handling ----------------------------------------------------------
    #
    # Semantics of a link-down event at cycle C: the transfer currently in
    # flight on the channel completes (it is already committed on the
    # wire), but the channel grants nothing from cycle C on. Every packet
    # whose *remaining* route crosses a failed channel is immediately
    # re-dispositioned per the policy: re-routed in place, dropped, or
    # re-injected at its source with backoff. A link-up event only makes
    # the channel available to future route resolutions.

    def _route_clear_from(self, route: Route, from_hop: int) -> bool:
        failed = self._failed_channels
        for cid, _vc in route.hops[from_hop:]:
            if cid in failed:
                return False
        return True

    def _first_blocked(self, route: Route, from_hop: int) -> int:
        failed = self._failed_channels
        for cid, _vc in route.hops[from_hop:]:
            if cid in failed:
                return cid
        return -1

    def _apply_fault(self, channel_id: int, is_down: bool, fault_idx) -> None:
        now = self.cycle
        if fault_idx is None:
            # Pre-canonical checkpoints carry no timeline index; hand
            # out fresh ones in drain order (the order they were saved).
            fault_idx = self._fault_push_seq
            self._fault_push_seq += 1
        self._fault_idx_now = fault_idx
        if is_down:
            self._failed_channels.add(channel_id)
        else:
            self._failed_channels.discard(channel_id)
        self._fault_routes.set_failed(self._failed_channels)
        # Every shard applies every fault (routing state is global), but
        # only the owner of the channel accounts and announces it.
        owned = self._fault_owned
        owner = owned is None or channel_id in owned
        if owner:
            self.stats.fault_events += 1
        # Applying a fault is progress for watchdog purposes: the drops
        # and re-routes below change the network state.
        self._last_progress = now
        if self.trace is not None:
            self._trace_key = (1, fault_idx, 0)
            if owner:
                self.trace.emit(
                    TraceEvent(
                        "fault",
                        now,
                        now * self._ticks_per_cycle,
                        -1,
                        channel_id,
                        0,
                        (("down", int(is_down)),),
                    )
                )
        if not is_down:
            # Recovery strands nothing; wake sources so resolutions that
            # can now use the channel are re-attempted promptly.
            for src in self._source_queues:
                self._active[src] = None
            return
        self._sweep_source_queues(now)
        self._sweep_buffers(now)
        self._sweep_inflight(now)

    def _screen_source_packet(self, packet: Packet) -> Optional[Packet]:
        """Resolve a not-yet-injected packet against the failed set.

        Returns the packet (possibly with a re-resolved route) or None if
        it was dropped. Callers own the ``_queued`` accounting.
        """
        blocked = self._first_blocked(packet.route, 0)
        if blocked < 0:
            return packet
        now = self.cycle
        mode = self._fault_runtime.policy.mode
        if mode != "drop":
            try:
                packet.route = self._fault_routes.compute(
                    packet.route.src,
                    packet.route.dst,
                    packet.route.choice,
                    packet.traffic_class,
                )
            except Unroutable:
                self.stats.unroutable += 1
            else:
                packet.next_hop = packet.route.hops[0]
                self.stats.rerouted += 1
                if self.trace is not None:
                    self.trace.emit(
                        TraceEvent(
                            "reroute",
                            now,
                            now * self._ticks_per_cycle,
                            packet.pid,
                            blocked,
                            0,
                            (("hops", len(packet.route.hops)),),
                        )
                    )
                return packet
        self.stats.dropped += 1
        if self.trace is not None:
            self.trace.emit(
                TraceEvent(
                    "drop",
                    now,
                    now * self._ticks_per_cycle,
                    packet.pid,
                    blocked,
                    0,
                )
            )
        return None

    def _sweep_source_queues(self, now: int) -> None:
        trace = self.trace
        for src in sorted(self._source_queues):
            if trace is not None:
                self._trace_key = (1, self._fault_idx_now, 1, src)
            queue = self._source_queues[src]
            head = self._source_heads[src]
            survivors = []
            dropped = 0
            for packet in queue[head:]:
                kept = self._screen_source_packet(packet)
                if kept is None:
                    dropped += 1
                else:
                    survivors.append(kept)
            if not dropped and not head:
                continue
            self._queued -= dropped
            if survivors:
                self._source_queues[src] = survivors
                self._source_heads[src] = 0
            else:
                del self._source_queues[src]
                del self._source_heads[src]

    def _sweep_buffers(self, now: int) -> None:
        machine = self.machine
        for ic in range(len(self._buffers)):
            if not self._buffered_count[ic]:
                continue
            bufs = self._buffers[ic]
            heads = self._buffer_heads[ic]
            for vc in range(len(bufs)):
                queue = bufs[vc]
                head = heads[vc]
                if head >= len(queue):
                    continue
                if self.trace is not None:
                    self._trace_key = (1, self._fault_idx_now, 2, ic, vc)
                kept = []
                removed = 0
                for packet in queue[head:]:
                    if self._route_clear_from(packet.route, packet.hop_index):
                        kept.append(packet)
                    elif self._handle_blocked_buffered(packet, ic, vc, now):
                        kept.append(packet)
                    else:
                        removed += 1
                        self._buffered_count[ic] -= 1
                        self._in_network -= 1
                        self._push_credit(
                            now + self._latency[ic],
                            ic,
                            vc,
                            packet.size_flits,
                        )
                if removed or head:
                    bufs[vc] = kept
                    heads[vc] = 0
                if kept:
                    self._active[machine.channels[ic].dst] = None

    def _handle_blocked_buffered(
        self, packet: Packet, ic: int, vc: int, now: int
    ) -> bool:
        """Disposition a buffered packet whose remaining route is blocked.

        Returns True to keep the packet in its buffer (re-routed in
        place), False to remove it (dropped or re-injected at source).
        """
        policy = self._fault_runtime.policy
        if policy.mode == "reroute":
            holder = self.machine.channels[ic].dst
            try:
                tail = self._fault_routes.compute_reroute(
                    holder, packet.route.dst, packet.traffic_class
                )
            except Unroutable:
                self.stats.unroutable += 1
            else:
                self._splice_route(packet, ic, vc, tail)
                self.stats.rerouted += 1
                if self.trace is not None:
                    self.trace.emit(
                        TraceEvent(
                            "reroute",
                            now,
                            now * self._ticks_per_cycle,
                            packet.pid,
                            ic,
                            vc,
                            (("hops", len(packet.route.hops) - 1),),
                        )
                    )
                return True
        elif policy.mode == "retry" and packet.retries < policy.max_retries:
            self._schedule_retry(packet, ic, now)
            return False
        self.stats.dropped += 1
        if self.trace is not None:
            self.trace.emit(
                TraceEvent(
                    "drop",
                    now,
                    now * self._ticks_per_cycle,
                    packet.pid,
                    ic,
                    vc,
                )
            )
        return False

    def _sweep_inflight(self, now: int) -> None:
        machine = self.machine
        policy = self._fault_runtime.policy
        trace = self.trace
        # Snapshot (retry dispositions mutate engine state mid-scan) in
        # canonical pid order -- shard-invariant, unlike insertion
        # order. Stable sort keeps push order for duplicate pids (a
        # retried packet's condemned copy and its clone), which only
        # the serial engine can produce.
        items = sorted(self._inflight.items(), key=lambda item: item[0].pid)
        for packet, oc in items:
            if trace is not None:
                self._trace_key = (1, self._fault_idx_now, 3, packet.pid)
            if packet.drop_on_arrival:
                continue
            hop_index = packet.hop_index
            if hop_index >= len(packet.route.hops):
                continue  # final delivery hop; endpoint links cannot fail
            if self._route_clear_from(packet.route, hop_index):
                continue
            vc = arrival_vc(packet)
            if policy.mode == "reroute":
                holder = machine.channels[oc].dst
                try:
                    tail = self._fault_routes.compute_reroute(
                        holder, packet.route.dst, packet.traffic_class
                    )
                except Unroutable:
                    self.stats.unroutable += 1
                else:
                    self._splice_route(packet, oc, vc, tail)
                    self.stats.rerouted += 1
                    if self.trace is not None:
                        self.trace.emit(
                            TraceEvent(
                                "reroute",
                                now,
                                now * self._ticks_per_cycle,
                                packet.pid,
                                oc,
                                vc,
                                (("hops", len(packet.route.hops) - 1),),
                            )
                        )
                    continue
            elif policy.mode == "retry" and packet.retries < policy.max_retries:
                packet.drop_on_arrival = True
                self._schedule_retry(packet, oc, now)
                continue
            packet.drop_on_arrival = True
            self.stats.dropped += 1
            if self.trace is not None:
                self.trace.emit(
                    TraceEvent(
                        "drop",
                        now,
                        now * self._ticks_per_cycle,
                        packet.pid,
                        oc,
                        vc,
                    )
                )

    def _splice_route(
        self, packet: Packet, holding_channel: int, holding_vc: int, tail: Route
    ) -> None:
        """Replace a packet's remaining route with a freshly resolved tail.

        The packet keeps its identity (pid, source, destination) and its
        current position: the new route's hop 0 is the channel currently
        holding (or delivering) it, so the engine's ``hops[hop_index - 1]``
        buffer-VC lookups stay valid with ``hop_index = 1``.
        """
        old = packet.route
        packet.route = Route(
            src=old.src,
            dst=old.dst,
            choice=old.choice,
            hops=((holding_channel, holding_vc),) + tail.hops,
            internode_hops=tail.internode_hops,
            via=tail.via,
        )
        packet.hop_index = 1
        packet.next_hop = packet.route.hops[1]

    def _schedule_retry(self, packet: Packet, where: int, now: int) -> None:
        """Re-inject a stranded packet at its source with backoff.

        The in-network copy is discarded by the caller; a fresh copy with
        a fault-aware route enters the source queue ``backoff(attempt)``
        cycles from now (or is dropped once retries are exhausted or the
        pair is unroutable).
        """
        policy = self._fault_runtime.policy
        attempt = packet.retries + 1
        release = now + policy.backoff(attempt)
        old = packet.route
        try:
            route = self._fault_routes.compute(
                old.src, old.dst, old.choice, packet.traffic_class
            )
        except Unroutable:
            self.stats.unroutable += 1
            self.stats.dropped += 1
            if self.trace is not None:
                self.trace.emit(
                    TraceEvent(
                        "drop",
                        now,
                        now * self._ticks_per_cycle,
                        packet.pid,
                        where,
                        0,
                    )
                )
            return
        queue = self._source_queues.get(old.src)
        if queue and queue[-1].release_cycle > release:
            # Keep the per-source release order invariant.
            release = queue[-1].release_cycle
        clone = Packet(
            packet.pid,
            route,
            size_flits=packet.size_flits,
            pattern=packet.pattern,
            traffic_class=packet.traffic_class,
            release_cycle=release,
        )
        clone.retries = attempt
        self.stats.retried += 1
        if self.trace is not None:
            self.trace.emit(
                TraceEvent(
                    "retry",
                    now,
                    now * self._ticks_per_cycle,
                    packet.pid,
                    where,
                    0,
                    (("attempt", attempt), ("rel", release)),
                )
            )
        self.enqueue(clone)

    # --- introspection (used by tests) ------------------------------------------

    def buffered_packets(self) -> int:
        """Packets currently sitting in network buffers."""
        total = 0
        for cid, bufs in enumerate(self._buffers):
            heads = self._buffer_heads[cid]
            for vc, queue in enumerate(bufs):
                total += len(queue) - heads[vc]
        return total

    def credits_outstanding(self, channel_id: int, vc: int) -> int:
        """Credits currently held (buffer depth minus available credits)."""
        channel = self.machine.channels[channel_id]
        depth = self.machine.buffer_depth_for_channel(channel)
        return depth - self._credits[channel_id][vc]
