"""High-level simulation facade: wiring machines, arbiters, and workloads.

This is the main entry point for running experiments:

    machine = Machine(MachineConfig(shape=(4, 4, 4), endpoints_per_chip=4))
    rc = RouteComputer(machine)
    spec = BatchSpec(UniformRandom(machine.config.shape), 64, cores_per_chip=4)
    stats = run_batch(machine, rc, spec, arbitration="iw",
                      weight_patterns=[UniformRandom(machine.config.shape)])

The ``arbitration`` argument selects the policy at every router and
adapter output:

* ``"rr"`` -- round-robin (the paper's gray baseline curves);
* ``"age"`` -- age-based (the heavy-weight EoS reference);
* ``"iw"`` -- inverse-weighted, programmed from analytically computed
  loads of one or more traffic patterns (the paper's black curves).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.arbiters.age_based import AgeBasedArbiter
from repro.arbiters.base import Arbiter
from repro.arbiters.inverse_weighted import InverseWeightedArbiter
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.arbiters.weights import WeightTable, compute_inverse_weights
from repro.core.machine import Machine
from repro.core.routing import RouteComputer

from .engine import ArbiterBuilder, Engine
from .stats import SimStats

#: Default inverse-weight width, matching the Figure 6 example hardware.
DEFAULT_WEIGHT_BITS = 5


def make_weight_tables(
    machine: Machine,
    route_computer: RouteComputer,
    patterns: Sequence["TrafficPattern"],
    cores_per_chip: int,
    dst_endpoint_mode: str = "same_index",
    weight_bits: int = DEFAULT_WEIGHT_BITS,
    load_tables: Optional[Sequence["LoadTable"]] = None,
) -> Dict[int, WeightTable]:
    """Program inverse-weight tables for every arbitration site.

    This is the offline flow of Section 3.2: compute per-input loads for
    each traffic pattern, then quantize their inverses into the per-site
    weight memories. ``load_tables`` may be passed to reuse
    already-computed loads.
    """
    # Imported here (not at module top) to avoid a circular import:
    # repro.traffic generates Packet objects and so imports repro.sim.
    from repro.traffic.loads import compute_loads, merge_arbiter_loads

    if load_tables is None:
        load_tables = [
            compute_loads(
                machine, route_computer, pattern, cores_per_chip, dst_endpoint_mode
            )
            for pattern in patterns
        ]
    merged = merge_arbiter_loads(machine, load_tables)
    return {
        oc: compute_inverse_weights(matrix, weight_bits=weight_bits)
        for oc, matrix in merged.items()
    }


def make_vc_weight_tables(
    machine: Machine,
    route_computer: RouteComputer,
    patterns: Sequence["TrafficPattern"],
    cores_per_chip: int,
    dst_endpoint_mode: str = "same_index",
    weight_bits: int = DEFAULT_WEIGHT_BITS,
    load_tables: Optional[Sequence["LoadTable"]] = None,
) -> Dict[int, WeightTable]:
    """Program inverse-weight tables for the SA1 (VC selection) stage.

    Equality of service must hold at *every* arbitration point
    (Section 3.1), and the per-input VC selection is one: dateline
    geography makes per-VC loads uneven (sources beyond a dateline travel
    on promoted VCs), so an unweighted SA1 would re-introduce exactly the
    source bias the output arbiters remove.
    """
    from repro.traffic.loads import compute_loads, merge_vc_loads

    if load_tables is None:
        load_tables = [
            compute_loads(
                machine, route_computer, pattern, cores_per_chip, dst_endpoint_mode
            )
            for pattern in patterns
        ]
    merged = merge_vc_loads(machine, load_tables)
    return {
        cid: compute_inverse_weights(matrix, weight_bits=weight_bits)
        for cid, matrix in merged.items()
    }


def arbiter_builder_for(
    arbitration: str,
    weight_tables: Optional[Dict[int, WeightTable]] = None,
    num_patterns: int = 1,
    weight_bits: int = DEFAULT_WEIGHT_BITS,
) -> ArbiterBuilder:
    """Build the per-site arbiter factory for an arbitration policy.

    Used for both arbitration stages: SA2 sites are keyed by output
    channel id with per-input-port weights, SA1 sites by input channel id
    with per-VC weights.
    """
    if arbitration == "rr":
        return lambda num_inputs, site: RoundRobinArbiter(num_inputs)
    if arbitration == "age":
        return lambda num_inputs, site: AgeBasedArbiter(num_inputs)
    if arbitration == "iw":
        if weight_tables is None:
            raise ValueError("inverse-weighted arbitration requires weight tables")

        def build(num_inputs: int, site: int) -> Arbiter:
            table = weight_tables.get(site)
            if table is None:
                # No modeled traffic ever crosses this output; any packets
                # that do show up are handled with equal (maximal) weights.
                table = compute_inverse_weights(
                    [[0.0] * num_patterns] * num_inputs, weight_bits=weight_bits
                )
            return InverseWeightedArbiter(table.inverse_weights, table.weight_bits)

        return build
    raise ValueError(f"unknown arbitration policy {arbitration!r}")


def build_batch_engine(
    machine: Machine,
    route_computer: RouteComputer,
    spec: "BatchSpec",
    arbitration: str = "rr",
    weight_patterns: Optional[Sequence["TrafficPattern"]] = None,
    weight_tables: Optional[Dict[int, WeightTable]] = None,
    vc_weight_tables: Optional[Dict[int, WeightTable]] = None,
    weight_bits: int = DEFAULT_WEIGHT_BITS,
    keep_packet_latencies: bool = False,
    trace=None,
    latency_quantiles: bool = False,
    faults=None,
    use_fastpath: Optional[bool] = None,
    source_filter=None,
) -> Engine:
    """Construct a cycle-0 engine with a full batch enqueued.

    This is :func:`run_batch` minus the run: arbiters programmed, sinks
    attached, every generated packet in its source queue. Exposed so the
    checkpoint tooling (``repro checkpoint save``, the crash-resume
    tests) can build the exact engine a batch experiment would run.

    ``source_filter`` (a predicate over source component ids) restricts
    which generated packets are *enqueued*; the full batch is still
    generated in order, so packet ids and RNG draws are unchanged. The
    sharded runner uses this to give each shard exactly its local
    sources while preserving global generation determinism.
    """
    from repro.traffic.batch import generate_batch
    from repro.traffic.loads import compute_loads

    num_patterns = 1
    if arbitration == "iw":
        if weight_tables is None or vc_weight_tables is None:
            if weight_patterns is None:
                raise ValueError(
                    "iw arbitration needs weight_patterns or weight tables"
                )
            load_tables = [
                compute_loads(
                    machine,
                    route_computer,
                    pattern,
                    spec.cores_per_chip,
                    spec.dst_endpoint_mode,
                )
                for pattern in weight_patterns
            ]
            if weight_tables is None:
                weight_tables = make_weight_tables(
                    machine,
                    route_computer,
                    weight_patterns,
                    spec.cores_per_chip,
                    spec.dst_endpoint_mode,
                    weight_bits,
                    load_tables=load_tables,
                )
            if vc_weight_tables is None:
                vc_weight_tables = make_vc_weight_tables(
                    machine,
                    route_computer,
                    weight_patterns,
                    spec.cores_per_chip,
                    spec.dst_endpoint_mode,
                    weight_bits,
                    load_tables=load_tables,
                )
        for table in weight_tables.values():
            num_patterns = table.num_patterns
            break
    builder = arbiter_builder_for(arbitration, weight_tables, num_patterns, weight_bits)
    vc_builder = arbiter_builder_for(
        arbitration, vc_weight_tables, num_patterns, weight_bits
    )
    engine = Engine(
        machine,
        arbiter_builder=builder,
        vc_arbiter_builder=vc_builder,
        keep_packet_latencies=keep_packet_latencies,
        trace=trace,
        latency_quantiles=latency_quantiles,
        faults=faults,
        use_fastpath=use_fastpath,
    )
    for packet in generate_batch(machine, route_computer, spec):
        if source_filter is not None and not source_filter(packet.src):
            continue
        engine.enqueue(packet)
    return engine


def run_batch(
    machine: Machine,
    route_computer: RouteComputer,
    spec: "BatchSpec",
    arbitration: str = "rr",
    weight_patterns: Optional[Sequence["TrafficPattern"]] = None,
    weight_tables: Optional[Dict[int, WeightTable]] = None,
    vc_weight_tables: Optional[Dict[int, WeightTable]] = None,
    weight_bits: int = DEFAULT_WEIGHT_BITS,
    max_cycles: int = 10_000_000,
    keep_packet_latencies: bool = False,
    trace=None,
    latency_quantiles: bool = False,
    faults=None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    use_fastpath: Optional[bool] = None,
) -> SimStats:
    """Run one batch experiment and return its statistics.

    For ``arbitration="iw"``, either ``weight_tables``/``vc_weight_tables``
    (pre-programmed) or ``weight_patterns`` (programmed here from analytic
    loads) must be given. Inverse weighting is applied at both
    arbitration stages (output ports and per-input VC selection).

    ``trace`` attaches a structured-event sink (:mod:`repro.sim.trace`);
    ``latency_quantiles`` enables the streaming p50/p95/p99 estimator on
    the returned stats (:mod:`repro.sim.metrics`). Both are pure
    observers: results are bitwise-identical with or without them.

    ``faults`` attaches a :class:`repro.faults.FaultRuntime` (failed
    channels, mid-run schedule, stranded-packet policy). Pass its
    fault-aware computer as ``route_computer`` too so generated routes
    avoid the initially failed channels.

    ``checkpoint_path`` with ``checkpoint_every > 0`` enables periodic
    checkpointing (:mod:`repro.sim.checkpoint`): a snapshot is written
    every ``checkpoint_every`` cycles and removed on completion, so an
    *existing* file always marks an interrupted run and is resumed from
    -- the results are bitwise-identical to a never-interrupted run.
    When ``trace`` is a :class:`~repro.sim.metrics.MetricsCollector`, the
    checkpointed collector contents are revived into it on resume.
    """
    def build() -> Engine:
        return build_batch_engine(
            machine,
            route_computer,
            spec,
            arbitration=arbitration,
            weight_patterns=weight_patterns,
            weight_tables=weight_tables,
            vc_weight_tables=vc_weight_tables,
            weight_bits=weight_bits,
            keep_packet_latencies=keep_packet_latencies,
            trace=trace,
            latency_quantiles=latency_quantiles,
            faults=faults,
            use_fastpath=use_fastpath,
        )

    return run_engine(
        build,
        trace=trace,
        max_cycles=max_cycles,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        use_fastpath=use_fastpath,
        machine=machine,
    )


def run_batch_sharded(
    machine: Machine,
    spec: "BatchSpec",
    shards: int = 1,
    arbitration: str = "rr",
    weight_patterns: Optional[Sequence["TrafficPattern"]] = None,
    weight_bits: int = DEFAULT_WEIGHT_BITS,
    fault_set=None,
    fault_policy=None,
    max_cycles: int = 10_000_000,
    trace=None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    use_fastpath: Optional[bool] = None,
    transport: str = "process",
) -> SimStats:
    """Run a batch experiment decomposed over ``shards`` torus sub-boxes.

    Results (stats, trace events, checkpoint bytes) are bit-identical to
    :func:`run_batch` on the same workload for every shard count;
    ``shards=1`` *is* the serial path. Unlike :func:`run_batch`, fault
    injection is specified by ``fault_set``/``fault_policy`` rather than
    a pre-built runtime, because each shard process rebuilds its own
    deterministic fault-aware route computer. See
    :mod:`repro.sim.shard` for the synchronization protocol.
    """
    from .shard import ShardedRun, run_sharded

    run = ShardedRun(
        config=machine.config,
        spec=spec,
        arbitration=arbitration,
        weight_patterns=(
            tuple(weight_patterns) if weight_patterns is not None else ()
        ),
        weight_bits=weight_bits,
        fault_set=fault_set,
        fault_policy=fault_policy,
    )
    return run_sharded(
        run,
        shards,
        machine=machine,
        trace=trace,
        max_cycles=max_cycles,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        use_fastpath=use_fastpath,
        transport=transport,
    )


def run_engine(
    build_engine_fn,
    trace=None,
    max_cycles: int = 10_000_000,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 0,
    use_fastpath: Optional[bool] = None,
    machine: Optional[Machine] = None,
) -> SimStats:
    """Run a freshly built (or checkpoint-resumed) engine to completion.

    The workload-agnostic core of :func:`run_batch`, shared with the
    demand-matrix runner (:func:`repro.traffic.demand.run_demand`):
    ``build_engine_fn`` constructs the cycle-0 engine, and the
    checkpoint/resume contract is identical -- an existing
    ``checkpoint_path`` marks an interrupted run and is resumed for a
    result bitwise-identical to a never-interrupted run.
    """
    if checkpoint_path and checkpoint_every > 0:
        from .checkpoint import (
            load_checkpoint,
            restore_engine,
            run_with_checkpoints,
        )
        from .metrics import MetricsCollector

        if os.path.exists(checkpoint_path):
            data = load_checkpoint(checkpoint_path)
            engine = restore_engine(
                data, machine=machine, trace=trace, use_fastpath=use_fastpath
            )
            collector_state = data["trace"]["collector"]
            if collector_state is not None and isinstance(trace, MetricsCollector):
                trace.restore_state(collector_state)
        else:
            engine = build_engine_fn()
        stats = run_with_checkpoints(
            engine, checkpoint_path, checkpoint_every, max_cycles=max_cycles
        )
        if os.path.exists(checkpoint_path):
            os.unlink(checkpoint_path)
    else:
        engine = build_engine_fn()
        stats = engine.run(max_cycles=max_cycles)
    if trace is not None:
        trace.flush()
    return stats


def run_single_packet(
    machine: Machine,
    route_computer: RouteComputer,
    src_endpoint: int,
    dst_endpoint: int,
    choice=None,
    size_flits: int = 1,
) -> int:
    """Inject one packet into an idle network; returns its latency in cycles.

    Used by the latency-versus-hops experiment (Figure 11): in an idle
    network the measured latency is pure pipeline and channel delay.
    """
    from repro.core.routing import RouteChoice
    from repro.sim.packet import Packet

    if choice is None:
        choice = RouteChoice()
    route = route_computer.compute(src_endpoint, dst_endpoint, choice)
    engine = Engine(machine)
    packet = Packet(0, route, size_flits=size_flits)
    engine.enqueue(packet)
    engine.run()
    return packet.network_latency
