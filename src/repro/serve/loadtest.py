"""Load-test harness: hundreds of concurrent sessions, quantile reports.

Drives N sessions through a server -- by default an in-process one on
the same event loop, so CI needs no process management -- over a small
pool of pooled connections, with a seeded arrival process. Every session
is created before any is stepped (a two-phase barrier), so the peak
live-session count the report claims is a *measured* fact: the
coordinator samples ``server_stats`` while the barrier holds all N
sessions resident.

Latency is reported from both ends in integer microseconds through the
same :class:`~repro.sim.metrics.StreamingQuantile` the engine uses for
packet latencies: client-side per-request round trips, and the server's
own per-request dispatch times. The report is the ``BENCH_serve.json``
schema checked (softly) by CI.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import time
from typing import Any, Dict, Optional

from repro.sim.metrics import StreamingQuantile

from .client import ServeClient, ServeError
from .server import SimServer

#: Version of the loadtest report schema; bump on any shape change.
LOADTEST_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class LoadTestSpec:
    """Parameters of one load-test run."""

    sessions: int = 500
    connections: int = 16
    #: step requests per session after the creation barrier.
    steps: int = 2
    step_cycles: int = 64
    #: Arrival offsets are drawn uniformly from [0, spread) seconds.
    arrival_spread_s: float = 0.25
    seed: int = 0
    #: Workload spec per session; ``None`` selects a small batch whose
    #: per-session ``seed`` varies, so sessions are not byte-clones.
    workload: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.steps < 0 or self.step_cycles < 1:
            raise ValueError("steps must be >= 0, step_cycles >= 1")
        if self.arrival_spread_s < 0:
            raise ValueError("arrival_spread_s must be >= 0")


def default_workload(index: int, seed: int) -> dict:
    """The stock loadtest workload: a small seeded batch."""
    return {
        "kind": "batch",
        "shape": [2, 2, 2],
        "endpoints": 1,
        "cores": 1,
        "pattern": "uniform",
        "batch": 2,
        "seed": seed + index,
    }


class _Phases:
    """Two-phase rendezvous: all-arrived, then released to step.

    Failed creations still *arrive* (without holding a session), so the
    barrier always fills and the coordinator never deadlocks on a
    partial fleet.
    """

    def __init__(self, parties: int) -> None:
        self.parties = parties
        self.arrived = 0
        self.all_arrived = asyncio.Event()
        self.release = asyncio.Event()

    def arrive(self) -> None:
        self.arrived += 1
        if self.arrived >= self.parties:
            self.all_arrived.set()

    async def hold(self) -> None:
        await self.release.wait()


async def _session_task(
    index: int,
    client: ServeClient,
    spec: LoadTestSpec,
    phases: _Phases,
    latency: StreamingQuantile,
    tally: Dict[str, int],
) -> None:
    rng = random.Random((spec.seed << 20) ^ index)
    await asyncio.sleep(rng.uniform(0.0, spec.arrival_spread_s))
    sid = f"lt{index}"
    workload = (
        dict(spec.workload)
        if spec.workload is not None
        else default_workload(index, spec.seed)
    )

    async def timed(coro):
        t0 = time.perf_counter_ns()
        result = await coro
        latency.add((time.perf_counter_ns() - t0) // 1000)
        tally["requests"] += 1
        return result

    arrived = False
    try:
        await timed(client.create(workload, session=sid))
        phases.arrive()
        arrived = True
        await phases.hold()
        for _ in range(spec.steps):
            result = await timed(client.step(sid, spec.step_cycles))
            tally["cycles"] += result.get("advanced", 0)
        await timed(client.stats(sid))
        await timed(client.close_session(sid))
        tally["completed"] += 1
    except ServeError as exc:
        tally["failed"] += 1
        if not tally.get("_error_text"):
            tally["_error_text"] = f"{sid}: {exc}"
    finally:
        if not arrived:
            phases.arrive()


async def run_loadtest(
    spec: LoadTestSpec,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> Dict[str, Any]:
    """Run one load test; returns the ``BENCH_serve.json`` report dict.

    With ``host`` ``None`` an in-process :class:`SimServer` is started on
    the current loop (sized to hold every session live) and torn down
    afterwards; otherwise an external server at ``host:port`` is driven.
    """
    server: Optional[SimServer] = None
    if host is None:
        server = SimServer(max_sessions=spec.sessions + 8)
        await server.start()
        host, port = server.address
    if port is None:
        raise ValueError("an external server needs an explicit port")

    latency = StreamingQuantile()
    tally: Dict[str, Any] = {
        "requests": 0,
        "cycles": 0,
        "completed": 0,
        "failed": 0,
    }
    phases = _Phases(spec.sessions)
    clients = []
    t_start = time.perf_counter()
    try:
        # Append as each connect succeeds so the finally block closes a
        # partially built pool when a later connect fails.
        for _ in range(spec.connections):
            clients.append(await ServeClient.connect(host, port))
        tasks = [
            asyncio.ensure_future(
                _session_task(
                    i,
                    clients[i % spec.connections],
                    spec,
                    phases,
                    latency,
                    tally,
                )
            )
            for i in range(spec.sessions)
        ]

        # Sample the live-session count while the barrier holds every
        # successfully created session resident -- the report's
        # concurrency claim is this measurement, not the request count.
        await phases.all_arrived.wait()
        peak_live = (await clients[0].server_stats())["sessions"]["live"]
        phases.release.set()
        await asyncio.gather(*tasks)
        server_stats = await clients[0].server_stats()
    finally:
        for client in clients:
            await client.close()
        if server is not None:
            await server.close()
    duration = time.perf_counter() - t_start

    quantiles = (
        latency.quantiles([0.5, 0.95, 0.99])
        if latency.count
        else {0.5: 0, 0.95: 0, 0.99: 0}
    )
    report: Dict[str, Any] = {
        "kind": "serve-loadtest",
        "schema": LOADTEST_SCHEMA_VERSION,
        "sessions": spec.sessions,
        "connections": spec.connections,
        "steps": spec.steps,
        "step_cycles": spec.step_cycles,
        "seed": spec.seed,
        "in_process_server": server is not None,
        "peak_live_sessions": peak_live,
        "completed": tally["completed"],
        "failed": tally["failed"],
        "duration_s": round(duration, 3),
        "requests": tally["requests"],
        "requests_per_s": round(tally["requests"] / duration, 1)
        if duration > 0
        else 0.0,
        "sessions_per_s": round(tally["completed"] / duration, 1)
        if duration > 0
        else 0.0,
        "cycles_simulated": tally["cycles"],
        "client_latency_us": {
            "count": latency.count,
            "p50": quantiles[0.5],
            "p95": quantiles[0.95],
            "p99": quantiles[0.99],
        },
        "server": server_stats,
    }
    if tally.get("_error_text"):
        report["first_error"] = tally["_error_text"]
    return report


def check_report(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    factor: float = 5.0,
) -> list:
    """Soft regression gate: compare a report against a baseline.

    Returns a list of human-readable violations (empty when clean).
    Latency may regress up to ``factor``x the baseline p99 -- generous,
    because CI wallclock is noisy -- while correctness fields (failures,
    sustained concurrency) are hard floors.
    """
    problems = []
    if report.get("failed"):
        problems.append(f"{report['failed']} sessions failed")
    want = baseline.get("peak_live_sessions", 0)
    if report.get("peak_live_sessions", 0) < want:
        problems.append(
            f"peak_live_sessions {report.get('peak_live_sessions')} < "
            f"baseline {want}"
        )
    for side in ("client_latency_us", "server"):
        base_q = baseline.get(side, {})
        got_q = report.get(side, {})
        if side == "server":
            base_q = base_q.get("latency_us", {})
            got_q = got_q.get("latency_us", {})
        base_p99 = base_q.get("p99", 0)
        got_p99 = got_q.get("p99", 0)
        if base_p99 and got_p99 > factor * base_p99:
            problems.append(
                f"{side} p99 {got_p99}us > {factor}x baseline {base_p99}us"
            )
    return problems
