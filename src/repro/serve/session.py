"""One served simulation session: an engine, its streams, its budget.

A :class:`Session` wraps exactly the engine a direct
:func:`~repro.sim.simulator.run_batch` / :func:`~repro.traffic.demand.run_demand`
call would build -- same builders, same arbiter programming, same seeds --
and advances it in bounded quanta on the server's event loop. That makes
the direct runner the *oracle* for the server, the same way the scalar
engine is the oracle for the fast path: the conformance tests drive a
workload over the wire and byte-compare stats and checkpoint text against
the serial run.

Determinism argument
--------------------

* **Slicing.** ``run_for(q)`` chunks compose bitwise into ``run()``
  (pinned since PR 1 by the split-run property tests), so cooperative
  time-slicing is invisible in the results.
* **Observation.** The session traces through ``Tee(collector, buffer)``.
  The checkpoint module's trace section records the
  :class:`~repro.sim.metrics.MetricsCollector` and *ignores* sinks it
  does not recognize, so the extra :class:`TraceStreamBuffer` leaves
  checkpoint bytes identical to an engine traced by the collector alone.
  The buffer itself is a pure observer; metrics pushes use the
  non-mutating :meth:`~repro.sim.metrics.MetricsCollector.snapshot`.
* **Eviction.** :meth:`spool_payload` embeds a
  :func:`~repro.sim.checkpoint.snapshot_engine` snapshot; :meth:`thaw`
  restores it with a revived collector. Checkpoint/restore is bitwise
  resume-equivalent (PR 5), so an evict/thaw cycle cannot change a
  single byte of the final stats.

Backpressure
------------

Stream frames flow into each subscriber connection's
:class:`OutboundChannel`, which carries two lanes: *control* frames
(hello, replies, the drain sentinel) are never dropped and never
blocked, preserving the protocol's exactly-one-reply-per-request
invariant under any load; *event* frames (trace/metrics pushes) are
bounded, and when the event lane is full the session applies its
configured policy: ``drop-oldest`` discards the oldest queued *event*
frame (counted in ``trace_frames_dropped``) and keeps simulating;
``pause`` awaits event-lane space (counted in ``backpressure_pauses``),
letting one slow consumer throttle its session -- but only its session,
since every other session keeps its own quantum turn on the loop.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import json
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.machine import Machine, MachineConfig
from repro.core.routing import RouteComputer
from repro.sim.checkpoint import dumps as checkpoint_dumps
from repro.sim.checkpoint import snapshot_engine
from repro.sim.engine import Engine
from repro.sim.metrics import MetricsCollector
from repro.sim.trace import Tee

from .protocol import (
    STREAM_NAMES,
    encode_frame,
    metrics_event_frame,
    trace_event_frame,
)

#: Version of the spool-file schema (the eviction payload wrapping an
#: engine checkpoint); bump on any shape change.
SPOOL_SCHEMA_VERSION = 1

#: Outbound-queue overflow policies (see the module docstring).
BACKPRESSURE_MODES = ("drop-oldest", "pause")

#: Workload kinds a ``create`` request may name.
WORKLOAD_KINDS = ("batch", "demand", "idle")


class SessionError(ValueError):
    """A request is invalid against this session's current state."""


@dataclasses.dataclass(frozen=True)
class SessionConfig:
    """Scheduling and streaming knobs of one session.

    ``quantum_cycles`` bounds how long a session may hold the event loop
    per turn -- one hot session cannot starve the rest. ``max_cycles``
    mirrors the direct runners' budget and turns a wedged workload into
    an error reply instead of an unbounded spin.
    """

    quantum_cycles: int = 256
    backpressure: str = "drop-oldest"
    #: Trace lines per pushed ``trace`` event frame.
    trace_batch: int = 256
    #: Default cadence (cycles) of pushed ``metrics`` frames; 0 disables
    #: unless a subscriber asks for its own cadence.
    metrics_every: int = 0
    #: Window of the per-session MetricsCollector.
    window_cycles: int = 256
    max_cycles: int = 10_000_000

    def __post_init__(self) -> None:
        if self.quantum_cycles < 1:
            raise ValueError("quantum_cycles must be >= 1")
        if self.backpressure not in BACKPRESSURE_MODES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_MODES}, "
                f"got {self.backpressure!r}"
            )
        if self.trace_batch < 1:
            raise ValueError("trace_batch must be >= 1")
        if self.metrics_every < 0 or self.window_cycles < 1:
            raise ValueError("metrics_every must be >= 0, window_cycles >= 1")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")


class MachineCache:
    """Shares elaborated :class:`Machine` objects across sessions.

    Machine elaboration dominates session-creation cost, and a loadtest
    creates hundreds of sessions over the same few shapes. Engines never
    mutate their machine, so sharing is safe.
    """

    def __init__(self) -> None:
        self._machines: Dict[Any, Machine] = {}

    def get(self, key, build) -> Machine:
        machine = self._machines.get(key)
        if machine is None:
            machine = self._machines[key] = build()
        return machine

    def __len__(self) -> int:
        return len(self._machines)


class TraceStreamBuffer:
    """Trace sink that batches canonical event lines for streaming.

    Sits behind a :class:`~repro.sim.trace.Tee` next to the session's
    collector. Disabled (the default, until a ``trace`` subscriber
    attaches) it discards events, so an unobserved long run does not
    accumulate memory; enabled, it buffers exactly the single-line JSON a
    :class:`~repro.sim.trace.JsonlTraceWriter` would emit. The checkpoint
    trace section ignores this sink entirely -- see the module docstring.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.lines: List[str] = []

    def emit(self, event) -> None:
        if self.enabled:
            self.lines.append(event.to_json())

    def flush(self) -> None:
        pass

    def take(self) -> List[str]:
        """Drain and return the buffered lines."""
        lines, self.lines = self.lines, []
        return lines


class OutboundChannel:
    """One connection's outbound frame channel, in two lanes.

    *Control* frames -- the hello, request replies, the drain task's
    ``None`` stop sentinel -- are enqueued with :meth:`put_control`:
    never dropped, never blocked. *Event* frames (trace/metrics pushes)
    are bounded by ``limit`` and subject to the owning session's
    backpressure policy. Keeping the lanes in one FIFO preserves the
    relative order frames were produced in, while guaranteeing overload
    can only ever discard events -- a queued-but-unflushed reply
    survives any drop storm, so the protocol's exactly-one-reply
    invariant holds regardless of streaming load.

    Control-lane depth is intrinsically bounded: the connection loop
    reads one request at a time and enqueues its single reply before
    reading the next, so at most a hello plus one reply (plus the stop
    sentinel) are ever queued.
    """

    def __init__(self, limit: int = 0) -> None:
        if limit < 0:
            raise ValueError("limit must be >= 0 (0 means unbounded)")
        self._limit = limit
        #: FIFO of ``(is_event, frame-bytes-or-None)``.
        self._items: Deque[Tuple[bool, Optional[bytes]]] = (
            collections.deque()
        )
        self._events = 0
        self._ready = asyncio.Event()
        self._space = asyncio.Event()
        self._space.set()

    # --- producer side ---

    def put_control(self, data: Optional[bytes]) -> None:
        """Enqueue a control frame (or the ``None`` stop sentinel)."""
        self._items.append((False, data))
        self._ready.set()

    def events_full(self) -> bool:
        return bool(self._limit) and self._events >= self._limit

    async def put_event(self, data: bytes) -> None:
        """Enqueue an event frame, waiting for event-lane space."""
        while self.events_full():
            self._space.clear()
            await self._space.wait()
        self._items.append((True, data))
        self._events += 1
        self._ready.set()

    def put_event_drop_oldest(self, data: bytes) -> int:
        """Enqueue an event frame, dropping oldest events to make room.

        Returns how many queued event frames were discarded; control
        frames are always skipped.
        """
        dropped = 0
        while self.events_full() and self._drop_oldest_event():
            dropped += 1
        self._items.append((True, data))
        self._events += 1
        self._ready.set()
        return dropped

    def _drop_oldest_event(self) -> bool:
        for i, (is_event, _) in enumerate(self._items):
            if is_event:
                del self._items[i]
                self._events -= 1
                self._space.set()
                return True
        return False  # pragma: no cover - _events counts queued events

    # --- consumer side ---

    def empty(self) -> bool:
        return not self._items

    def qsize(self) -> int:
        return len(self._items)

    def get_nowait(self) -> Optional[bytes]:
        if not self._items:
            raise asyncio.QueueEmpty
        return self._pop()

    async def get(self) -> Optional[bytes]:
        while not self._items:
            self._ready.clear()
            await self._ready.wait()
        return self._pop()

    def _pop(self) -> Optional[bytes]:
        is_event, data = self._items.popleft()
        if is_event:
            self._events -= 1
            self._space.set()
        return data


class Subscriber:
    """One connection's attachment to a session's event streams."""

    __slots__ = ("channel", "streams", "metrics_every", "next_metrics_cycle")

    def __init__(
        self,
        channel: OutboundChannel,
        streams,
        metrics_every: int = 0,
    ) -> None:
        unknown = set(streams) - set(STREAM_NAMES)
        if unknown:
            raise SessionError(
                f"unknown streams {sorted(unknown)}; known: {STREAM_NAMES}"
            )
        if metrics_every < 0:
            raise SessionError("metrics_every must be >= 0")
        self.channel = channel
        self.streams = frozenset(streams)
        self.metrics_every = metrics_every
        self.next_metrics_cycle = 0


class Session:
    """A workload-bearing engine plus its serving state."""

    def __init__(
        self,
        session_id: str,
        engine: Engine,
        collector: MetricsCollector,
        buffer: TraceStreamBuffer,
        config: SessionConfig,
        workload: dict,
        routes: RouteComputer,
        counters: Optional[dict] = None,
    ) -> None:
        self.session_id = session_id
        self.engine = engine
        self.machine = engine.machine
        self.collector = collector
        self.buffer = buffer
        self.config = config
        #: The creating workload spec, verbatim -- respooled on eviction
        #: so a thawed session still knows what it is running.
        self.workload = workload
        #: Route computer used for post-create workload generation
        #: (``submit_demand``); the fault-aware one on faulted sessions.
        self.routes = routes
        self.subscribers: List[Subscriber] = []
        #: True while a step/run quantum loop holds the engine.
        self.busy = False
        counters = counters or {}
        self.cycles_run = int(counters.get("cycles_run", 0))
        self.quanta = int(counters.get("quanta", 0))
        self.trace_events_streamed = int(
            counters.get("trace_events_streamed", 0)
        )
        self.trace_frames_dropped = int(
            counters.get("trace_frames_dropped", 0)
        )
        self.backpressure_pauses = int(counters.get("backpressure_pauses", 0))
        self.demands_submitted = int(counters.get("demands_submitted", 0))
        self.faults_injected = int(counters.get("faults_injected", 0))
        self.thaws = int(counters.get("thaws", 0))

    # --- construction -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        session_id: str,
        workload: dict,
        config: Optional[SessionConfig] = None,
        machines: Optional[MachineCache] = None,
    ) -> "Session":
        """Build a session from a workload spec dict.

        The spec mirrors the CLI surfaces: ``kind`` picks the generator
        (``batch``/``demand``/``idle``), ``shape``/``endpoints``/``cores``
        the machine, ``arbitration``/``seed`` the engine programming.
        ``batch`` kinds take ``pattern`` (a name from
        :data:`repro.traffic.patterns.PATTERN_NAMES`) and ``batch``
        (packets per source); ``demand`` kinds take a ``demand`` sub-dict
        (see :meth:`_demand_spec`); ``idle`` builds an empty engine for
        later ``submit_demand`` requests. A ``faults``/``policy`` pair
        attaches a fault runtime (``faults`` may be omitted for an empty
        set that only enables live ``inject_fault``).
        """
        config = config or SessionConfig()
        if not isinstance(workload, dict):
            raise SessionError("workload must be a JSON object")
        kind = workload.get("kind", "idle")
        if kind not in WORKLOAD_KINDS:
            raise SessionError(
                f"unknown workload kind {kind!r}; known: {WORKLOAD_KINDS}"
            )
        shape = tuple(int(x) for x in workload.get("shape", (2, 2, 2)))
        if len(shape) not in (2, 3) or any(x < 1 for x in shape):
            raise SessionError(
                f"shape must be 2 or 3 positive ints, got {shape}"
            )
        topology = workload.get("topology", "torus")
        endpoints = int(workload.get("endpoints", 2))
        cores = int(workload.get("cores", 2))
        arbitration = workload.get("arbitration", "rr")
        if arbitration not in ("rr", "age", "iw"):
            raise SessionError(
                f"arbitration must be rr, age, or iw, got {arbitration!r}"
            )
        seed = int(workload.get("seed", 0))

        def build_machine() -> Machine:
            try:
                return Machine(
                    MachineConfig(
                        shape=shape,
                        endpoints_per_chip=endpoints,
                        topology=topology,
                    )
                )
            except ValueError as exc:
                raise SessionError(str(exc))

        if machines is not None:
            machine = machines.get(
                ("config", shape, endpoints, topology), build_machine
            )
        else:
            machine = build_machine()
        # Patterns and demand matrices key off the normalized 3-tuple
        # (two-axis workloads write "shape": [4, 4]).
        shape = machine.config.shape
        routes: RouteComputer = RouteComputer(machine)

        faults = None
        if workload.get("faults") is not None or "policy" in workload:
            from repro.faults import FaultPolicy, FaultRuntime, FaultSet

            if workload.get("faults") is not None:
                fault_set = FaultSet.from_json(json.dumps(workload["faults"]))
            else:
                fault_set = FaultSet(
                    shape=machine.config.shape, topology=topology
                )
            fault_set.validate(machine)
            pol = workload.get("policy") or {}
            policy = FaultPolicy(
                mode=pol.get("mode", "reroute"),
                max_retries=int(pol.get("retries", 4)),
            )
            faults = FaultRuntime(machine, fault_set, policy=policy)
            # Same sharing as ``repro demand --fault-file``: workload
            # generation resolves routes through the fault-aware computer.
            routes = faults.route_computer

        collector = MetricsCollector(window_cycles=config.window_cycles)
        buffer = TraceStreamBuffer()
        trace = Tee(collector, buffer)

        if kind == "batch":
            from repro.sim.simulator import build_batch_engine
            from repro.traffic.batch import BatchSpec
            from repro.traffic.patterns import pattern_factories

            factories = pattern_factories(shape)
            name = workload.get("pattern", "uniform")
            if name not in factories:
                raise SessionError(
                    f"unknown pattern {name!r}; known: "
                    f"{', '.join(sorted(factories))}"
                )
            pattern = factories[name]()
            spec = BatchSpec(
                pattern=pattern,
                packets_per_source=int(workload.get("batch", 8)),
                cores_per_chip=cores,
                seed=seed,
            )
            engine = build_batch_engine(
                machine,
                routes,
                spec,
                arbitration=arbitration,
                weight_patterns=[pattern] if arbitration == "iw" else None,
                trace=trace,
                faults=faults,
            )
        elif kind == "demand":
            from repro.traffic.demand import build_demand_engine

            spec = cls._demand_spec(
                workload.get("demand") or {}, shape, cores, seed,
                machine, routes,
            )
            engine = build_demand_engine(
                machine,
                routes,
                spec,
                arbitration=arbitration,
                trace=trace,
                faults=faults,
            )
        else:  # idle
            if arbitration != "rr":
                raise SessionError(
                    "idle sessions use rr arbitration; create a demand or "
                    "batch session for age/iw programming"
                )
            engine = Engine(machine, trace=trace, faults=faults)

        return cls(
            session_id, engine, collector, buffer, config, workload, routes
        )

    @staticmethod
    def _demand_spec(d: dict, shape, cores: int, seed: int, machine, routes):
        """Build a :class:`~repro.traffic.demand.DemandSpec` from a
        ``demand`` sub-dict.

        Keys mirror ``repro demand``: ``generator``/``rate``/
        ``matrix_seed`` (+ generator-specific ``hotspots``,
        ``hot_fraction``, ``skew_exponent``, ``restarts``, ``steps``, or
        an inline ``matrix`` object for ``generator="file"``) choose the
        matrix per epoch (epoch ``k`` draws from ``matrix_seed + k``,
        exactly the CLI's rule); ``epochs``/``epoch_length`` build a
        schedule; ``mode``/``duration``/``scale``/``injection``/``seed``
        parameterize emission.
        """
        from repro.traffic.demand import (
            DemandSchedule,
            DemandSpec,
            matrix_from_params,
        )

        if not isinstance(d, dict):
            raise SessionError("'demand' must be a JSON object")
        generator = d.get("generator", "uniform")
        rate = float(d.get("rate", 0.1))
        matrix_seed = int(d.get("matrix_seed", 0))
        epochs = int(d.get("epochs", 1))
        if epochs < 1:
            raise SessionError("epochs must be >= 1")
        matrix_json = (
            json.dumps(d["matrix"]) if d.get("matrix") is not None else None
        )
        matrices = [
            matrix_from_params(
                shape,
                generator,
                rate,
                seed=matrix_seed + k,
                hotspots=int(d.get("hotspots", 1)),
                hot_fraction=float(d.get("hot_fraction", 0.5)),
                skew_exponent=float(d.get("skew_exponent", 1.0)),
                matrix_json=matrix_json,
                restarts=int(d.get("restarts", 3)),
                steps=int(d.get("steps", 60)),
                cores_per_chip=cores,
                machine=machine,
                route_computer=routes,
            )
            for k in range(epochs)
        ]
        demand = (
            matrices[0]
            if epochs == 1
            else DemandSchedule.from_matrices(
                matrices, int(d.get("epoch_length", 64))
            )
        )
        mode = d.get("mode", "open")
        return DemandSpec(
            demand=demand,
            cores_per_chip=cores,
            mode=mode,
            duration_cycles=int(d.get("duration", 256)) if mode == "open" else 0,
            packets_scale=float(d.get("scale", 1.0)),
            injection=d.get("injection", "bernoulli"),
            seed=int(d.get("seed", seed)),
        )

    # --- advancing --------------------------------------------------------------

    @property
    def drained(self) -> bool:
        return self.engine.drained

    def _require_idle(self, what: str) -> None:
        if self.busy:
            raise SessionError(
                f"session {self.session_id!r} is busy; {what} needs an idle "
                "session (stats is valid mid-run)"
            )

    async def advance(self, cycles: Optional[int] = None) -> dict:
        """Advance until drained, or by at most ``cycles``.

        Runs the engine in ``quantum_cycles`` slices, publishing stream
        frames and yielding the event loop between slices. ``None``
        means run-to-drain (the ``run`` request); an integer bounds the
        advance (the ``step`` request -- a no-op on a drained session,
        mirroring ``run_for``).
        """
        self._require_idle("step/run")
        self.busy = True
        engine = self.engine
        start_cycle = engine.cycle
        delivered_before = engine.stats.delivered
        remaining = cycles
        try:
            while not engine.drained:
                if remaining is not None and remaining <= 0:
                    break
                if engine.cycle >= self.config.max_cycles:
                    raise SessionError(
                        f"session exceeded max_cycles="
                        f"{self.config.max_cycles} with traffic outstanding"
                    )
                quantum = self.config.quantum_cycles
                if remaining is not None:
                    quantum = min(quantum, remaining)
                quantum = min(quantum, self.config.max_cycles - engine.cycle)
                before = engine.cycle
                engine.run_for(quantum)
                self.quanta += 1
                advanced = engine.cycle - before
                self.cycles_run += advanced
                if remaining is not None:
                    # ``run_for`` can return early on drain; charge at
                    # least one cycle so a stuck budget still terminates.
                    remaining -= max(advanced, 1)
                await self._publish()
                await asyncio.sleep(0)
        finally:
            self.busy = False
        return {
            "session": self.session_id,
            "cycle": engine.cycle,
            "advanced": engine.cycle - start_cycle,
            "delivered": engine.stats.delivered - delivered_before,
            "drained": engine.drained,
        }

    # --- streams ----------------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> None:
        self.subscribers.append(subscriber)
        if "trace" in subscriber.streams:
            self.buffer.enabled = True
        # First metrics frame fires at the first publish past this point.
        subscriber.next_metrics_cycle = self.engine.cycle

    def unsubscribe_channel(self, channel: OutboundChannel) -> None:
        """Detach every subscription feeding ``channel`` (connection drop)."""
        self.subscribers = [
            s for s in self.subscribers if s.channel is not channel
        ]
        if not any("trace" in s.streams for s in self.subscribers):
            self.buffer.enabled = False
            self.buffer.take()

    async def _publish(self) -> None:
        """Push buffered trace lines and due metrics frames."""
        lines = self.buffer.take()
        if lines:
            trace_subs = [
                s for s in self.subscribers if "trace" in s.streams
            ]
            batch_size = self.config.trace_batch
            for i in range(0, len(lines), batch_size):
                data = encode_frame(
                    trace_event_frame(
                        self.session_id, lines[i : i + batch_size]
                    )
                )
                for sub in trace_subs:
                    await self._offer(sub, data)
            self.trace_events_streamed += len(lines)
        cycle = self.engine.cycle
        data = None
        for sub in self.subscribers:
            if "metrics" not in sub.streams:
                continue
            every = sub.metrics_every or self.config.metrics_every
            if not every or cycle < sub.next_metrics_cycle:
                continue
            if data is None:
                data = encode_frame(
                    metrics_event_frame(
                        self.session_id, cycle, self.collector.snapshot()
                    )
                )
            await self._offer(sub, data)
            sub.next_metrics_cycle = cycle + every

    async def _offer(self, sub: Subscriber, data: bytes) -> None:
        """Enqueue one event frame under the session's backpressure policy.

        Both policies act on the channel's event lane only -- control
        frames (replies, hello) are never dropped or displaced.
        """
        channel = sub.channel
        if self.config.backpressure == "pause":
            if channel.events_full():
                self.backpressure_pauses += 1
            await channel.put_event(data)
            return
        self.trace_frames_dropped += channel.put_event_drop_oldest(data)

    # --- requests against a quiescent engine ------------------------------------

    def submit_demand(self, demand_cfg: dict) -> dict:
        """Generate a demand workload and enqueue it at the current cycle.

        Uses the same generator as ``run_demand`` (so a submission into a
        fresh session is oracle-identical), with every packet's timing
        shifted by the session's current cycle. Seed and cores default to
        the session's workload-level values -- the same defaults
        :meth:`create` threads into :meth:`_demand_spec` -- so the same
        ``demand`` dict denotes the same traffic on both surfaces; a
        ``cores`` key in ``demand_cfg`` overrides per submission. Packet
        ids restart at 0 per submission -- the engine tracks packets by
        identity (pids are already reused by fault retries), so only
        trace readers see it.
        """
        self._require_idle("submit_demand")
        from repro.traffic.demand import generate_demand

        demand_cfg = demand_cfg or {}
        workload = self.workload if isinstance(self.workload, dict) else {}
        spec = self._demand_spec(
            demand_cfg,
            self.machine.config.shape,
            int(demand_cfg.get("cores", workload.get("cores", 2))),
            int(workload.get("seed", 0)),
            self.machine,
            self.routes,
        )
        offset = self.engine.cycle
        packets = generate_demand(self.machine, self.routes, spec)
        for packet in packets:
            if offset:
                packet.release_cycle += offset
                packet.inject_cycle += offset
                packet.ready_cycle += offset
            self.engine.enqueue(packet)
        self.demands_submitted += 1
        return {
            "session": self.session_id,
            "enqueued": len(packets),
            "at_cycle": offset,
        }

    def inject_faults(self, faults_obj: dict) -> dict:
        """Schedule future link faults (requires a faulted session)."""
        self._require_idle("inject_fault")
        from repro.faults import FaultSet

        fault_set = FaultSet.from_json(json.dumps(faults_obj))
        scheduled = self.engine.schedule_faults(fault_set)
        self.faults_injected += scheduled
        return {
            "session": self.session_id,
            "scheduled": scheduled,
            "at_cycle": self.engine.cycle,
        }

    # --- observation ------------------------------------------------------------

    def counters(self) -> dict:
        return {
            "cycles_run": self.cycles_run,
            "quanta": self.quanta,
            "trace_events_streamed": self.trace_events_streamed,
            "trace_frames_dropped": self.trace_frames_dropped,
            "backpressure_pauses": self.backpressure_pauses,
            "demands_submitted": self.demands_submitted,
            "faults_injected": self.faults_injected,
            "thaws": self.thaws,
        }

    def stats_payload(self) -> dict:
        """The ``stats`` reply: engine stats + metrics + serving counters.

        Valid mid-run (every reducer read here is non-mutating), and
        canonical: dict insertion order follows delivery order, so equal
        histories serialize to equal bytes.
        """
        return {
            "session": self.session_id,
            "cycle": self.engine.cycle,
            "busy": self.busy,
            "drained": self.drained,
            "stats": self.engine.stats.asdict(),
            "metrics": self.collector.snapshot(),
            "counters": self.counters(),
        }

    def snapshot_text(self) -> str:
        """Canonical engine-checkpoint text (the ``snapshot`` reply)."""
        self._require_idle("snapshot")
        return checkpoint_dumps(snapshot_engine(self.engine))

    # --- eviction ---------------------------------------------------------------

    def spool_payload(self) -> dict:
        """The eviction record: serving metadata around a full checkpoint."""
        self._require_idle("evict")
        return {
            "kind": "serve-session",
            "schema": SPOOL_SCHEMA_VERSION,
            "session": self.session_id,
            "workload": self.workload,
            "config": dataclasses.asdict(self.config),
            "counters": self.counters(),
            "engine": snapshot_engine(self.engine),
        }

    @classmethod
    def thaw(cls, payload: dict) -> "Session":
        """Rebuild a session from a :meth:`spool_payload` record."""
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "serve-session"
        ):
            raise SessionError("not a serve-session spool record")
        if payload.get("schema") != SPOOL_SCHEMA_VERSION:
            raise SessionError(
                f"spool schema {payload.get('schema')!r} is not "
                f"{SPOOL_SCHEMA_VERSION}"
            )
        from repro.sim.checkpoint import restore_engine

        config = SessionConfig(**payload["config"])
        engine_data = payload["engine"]
        captured = (engine_data.get("trace") or {}).get("collector")
        if captured is not None:
            collector = MetricsCollector.from_state(captured)
        else:
            collector = MetricsCollector(window_cycles=config.window_cycles)
        buffer = TraceStreamBuffer()
        engine = restore_engine(engine_data, trace=Tee(collector, buffer))
        # Faulted engines re-route through the runtime's computer, like
        # create(); healthy ones get a fresh (cache-cold but value-equal)
        # computer.
        routes = engine._fault_routes or RouteComputer(engine.machine)
        session = cls(
            str(payload["session"]),
            engine,
            collector,
            buffer,
            config,
            payload.get("workload") or {},
            routes,
            counters=payload.get("counters"),
        )
        session.thaws += 1
        return session
