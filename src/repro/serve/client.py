"""Asyncio client SDK for the simulation service.

A :class:`ServeClient` owns one connection: a background reader task
routes reply frames to the futures of in-flight requests (correlated by
``id``) and unsolicited event frames (trace/metrics pushes) onto
:attr:`ServeClient.events`. Requests may be issued concurrently from
many tasks over the same connection; the server replies in request
order, but correlation is by id, so callers never need to care.

Example::

    client = await ServeClient.connect("127.0.0.1", 7777)
    sid = (await client.create({"kind": "batch", "pattern": "tornado",
                                "batch": 8}))["session"]
    await client.subscribe(sid, streams=["metrics"], metrics_every=256)
    result = await client.run(sid)
    stats = await client.stats(sid)
    await client.close_session(sid)
    await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Optional

from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)


class ServeError(RuntimeError):
    """The server replied with an error, or the connection failed."""


class ServeClient:
    """One connection to a :class:`~repro.serve.server.SimServer`."""

    def __init__(self, reader, writer, hello: Dict[str, Any]) -> None:
        self._reader = reader
        self._writer = writer
        #: The server's hello frame (proto version, server name).
        self.hello = hello
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        #: Unsolicited event frames (trace/metrics pushes), in arrival
        #: order across all subscribed sessions.
        self.events: asyncio.Queue = asyncio.Queue()
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        line = await reader.readline()
        if not line:
            writer.close()
            raise ServeError("server closed the connection before hello")
        hello = decode_frame(line)
        if hello.get("type") != "hello":
            writer.close()
            raise ServeError(f"expected hello frame, got {hello.get('type')!r}")
        if hello.get("proto") != PROTOCOL_VERSION:
            writer.close()
            raise ServeError(
                f"server speaks protocol {hello.get('proto')!r}, "
                f"client speaks {PROTOCOL_VERSION}"
            )
        return cls(reader, writer, hello)

    async def _read_loop(self) -> None:
        error: Optional[BaseException] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    error = ServeError(f"unparseable frame from server: {exc}")
                    break
                ftype = frame.get("type")
                if ftype == "reply":
                    future = self._pending.pop(frame.get("id"), None)
                    if future is not None and not future.done():
                        future.set_result(frame)
                elif ftype == "event":
                    await self.events.put(frame)
                # Unknown frame types are ignored: room for additive
                # server-side extensions without a version bump.
        except (ConnectionError, OSError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ServeError("client closed")
        finally:
            self._closed = True
            failure = error or ServeError("connection closed by server")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()
            self.events.put_nowait(None)  # EOF sentinel for event readers

    async def request(
        self, rtype: str, session: Optional[str] = None, **fields
    ) -> Dict[str, Any]:
        """Send one request and await its result payload.

        Raises :class:`ServeError` if the server replies ``ok: false``
        or the connection dies first.
        """
        if self._closed:
            raise ServeError("client is closed")
        rid = next(self._ids)
        frame: Dict[str, Any] = {"type": rtype, "id": rid}
        if session is not None:
            frame["session"] = session
        for key, value in fields.items():
            if value is not None:
                frame[key] = value
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        self._writer.write(encode_frame(frame))
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(rid, None)
            raise ServeError(f"connection lost: {exc}") from exc
        reply = await future
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "unknown server error"))
        return reply.get("result") or {}

    # --- convenience wrappers ---------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def server_stats(self) -> Dict[str, Any]:
        return await self.request("server_stats")

    async def create(
        self,
        workload: Dict[str, Any],
        config: Optional[Dict[str, Any]] = None,
        session: Optional[str] = None,
    ) -> Dict[str, Any]:
        return await self.request(
            "create", session=session, workload=workload, config=config
        )

    async def step(self, session: str, cycles: int = 1) -> Dict[str, Any]:
        return await self.request("step", session=session, cycles=cycles)

    async def run(self, session: str) -> Dict[str, Any]:
        return await self.request("run", session=session)

    async def submit_demand(
        self, session: str, demand: Dict[str, Any]
    ) -> Dict[str, Any]:
        return await self.request(
            "submit_demand", session=session, demand=demand
        )

    async def inject_fault(
        self, session: str, faults: Dict[str, Any]
    ) -> Dict[str, Any]:
        return await self.request(
            "inject_fault", session=session, faults=faults
        )

    async def snapshot(self, session: str) -> Dict[str, Any]:
        return await self.request("snapshot", session=session)

    async def stats(self, session: str) -> Dict[str, Any]:
        return await self.request("stats", session=session)

    async def subscribe(
        self,
        session: str,
        streams=None,
        metrics_every: int = 0,
    ) -> Dict[str, Any]:
        return await self.request(
            "subscribe",
            session=session,
            streams=list(streams) if streams is not None else None,
            metrics_every=metrics_every or None,
        )

    async def evict(self, session: str) -> Dict[str, Any]:
        return await self.request("evict", session=session)

    async def close_session(self, session: str) -> Dict[str, Any]:
        return await self.request("close", session=session)

    async def close(self) -> None:
        """Tear the connection down and stop the reader task."""
        if not self._closed:
            self._closed = True
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
